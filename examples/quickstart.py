"""Quickstart: build and run your first LifeStream temporal query.

This example walks through the basic workflow:

1. wrap timestamp/value arrays in a periodic stream source,
2. describe the computation with the fluent temporal query language,
3. compile and execute it with the engine,
4. inspect the result and the execution statistics.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import ArraySource, LifeStreamEngine, Query
from repro.data import generate_ecg


def main() -> None:
    # ------------------------------------------------------------------
    # 1. A periodic stream: 30 seconds of 500 Hz ECG-like signal.
    #    Timestamps are integer milliseconds, spaced one period (2 ms) apart.
    # ------------------------------------------------------------------
    times, values = generate_ecg(duration_seconds=30.0, heart_rate_bpm=110, seed=0)
    ecg = ArraySource(times, values, period=2)
    print(f"input stream: {ecg.event_count()} events, descriptor {ecg.descriptor}")

    # ------------------------------------------------------------------
    # 2. A temporal query (the Listing 1 pattern from the paper):
    #    subtract each 1-second tumbling-window mean from the raw signal,
    #    then keep only the samples more than two window-standard-deviations
    #    above the local mean — a simple R-peak detector.
    # ------------------------------------------------------------------
    base = Query.source("ecg", frequency_hz=500)
    centred = base.multicast(
        lambda s: s.join(s.tumbling_window(1000).mean(), lambda value, mean: value - mean)
    )
    peaks = centred.multicast(
        lambda s: s.join(s.tumbling_window(1000).std(), lambda delta, std: delta / std)
    ).where(lambda z: z > 2.0)

    # ------------------------------------------------------------------
    # 3. Compile and run.  The engine performs locality tracing, allocates
    #    every FWindow up front, and only executes windows that can produce
    #    output (targeted query processing).
    # ------------------------------------------------------------------
    engine = LifeStreamEngine(window_size=60_000)
    compiled = engine.compile(peaks, sources={"ecg": ecg})
    print("\nexecution plan:")
    print(compiled.explain())

    result = compiled.run()

    # ------------------------------------------------------------------
    # 4. Inspect the output.
    # ------------------------------------------------------------------
    stats = result.stats
    print(f"\ndetected {len(result)} above-threshold samples")
    beats = np.sum(np.diff(result.times, prepend=-10_000) > 300)
    print(f"grouped into roughly {beats} beats over 30 s "
          f"(~{beats * 2} bpm, generator used 110 bpm)")
    print(f"events ingested : {stats.events_ingested}")
    print(f"windows computed: {stats.windows_computed}")
    print(f"pre-allocated   : {stats.preallocated_bytes / 1024:.1f} KiB of FWindow buffers")
    print(f"throughput      : {stats.throughput_events_per_second / 1e6:.2f} M events/s")


if __name__ == "__main__":
    main()
