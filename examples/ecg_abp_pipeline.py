"""The Figure 3 pipeline: clean, resample, normalise and join ECG with ABP.

This is the paper's running end-to-end application.  The example builds the
pipeline three times — on LifeStream, on the Trill-like baseline and on the
hand-written NumPy/SciPy (NumLib) baseline — runs all three on the same
gappy two-signal dataset, and prints a small comparison table, mirroring
the Figure 9(c) experiment at example scale.

Run with::

    python examples/ecg_abp_pipeline.py [seconds_of_signal]
"""

from __future__ import annotations

import sys

from repro.bench.reporting import format_table
from repro.data import generate_abp, generate_ecg, inject_burst_gaps
from repro.pipelines import run_lifestream_e2e, run_numlib_e2e, run_trill_e2e


def build_dataset(duration_seconds: float):
    """ECG (500 Hz) and ABP (125 Hz) with long disconnection gaps.

    Real disconnections last minutes to hours (Figure 2 of the paper), so
    the gaps are injected as a couple of long bursts; that is also what lets
    targeted query processing skip whole FWindows below.
    """
    ecg_times, ecg_values = generate_ecg(duration_seconds, seed=0)
    abp_times, abp_values = generate_abp(duration_seconds, seed=1)
    ecg = inject_burst_gaps(ecg_times, ecg_values, gap_fraction=0.15, n_bursts=2, seed=2)
    abp = inject_burst_gaps(abp_times, abp_values, gap_fraction=0.30, n_bursts=2, seed=3)
    return ecg, abp


def main() -> None:
    duration = float(sys.argv[1]) if len(sys.argv) > 1 else 600.0
    ecg, abp = build_dataset(duration)
    total_events = ecg[0].size + abp[0].size
    print(
        f"dataset: {duration:.0f}s of signal, {ecg[0].size} ECG events + "
        f"{abp[0].size} ABP events ({total_events} total, with burst gaps)"
    )

    runs = [
        run_lifestream_e2e(ecg, abp),
        run_trill_e2e(ecg, abp),
        run_numlib_e2e(ecg, abp),
    ]

    rows = [
        [
            run.engine,
            run.events_emitted,
            run.elapsed_seconds,
            run.throughput_events_per_second / 1e6,
        ]
        for run in runs
    ]
    print()
    print(
        format_table(
            ["engine", "joined events", "seconds", "million events/s"],
            rows,
            title="Figure 3 pipeline (impute -> upsample -> normalize -> join)",
        )
    )

    lifestream, trill, numlib = runs
    print()
    print(f"LifeStream speedup over the Trill baseline : {lifestream.speedup_over(trill):.2f}x")
    print(f"LifeStream speedup over the NumLib baseline: {lifestream.speedup_over(numlib):.2f}x")
    print(
        "windows skipped by targeted query processing: "
        f"{lifestream.extra['windows_skipped']} of "
        f"{lifestream.extra['windows_skipped'] + lifestream.extra['windows_computed']}"
    )


if __name__ == "__main__":
    main()
