"""Scalability study: data-parallel processing across patients and machines.

Physiological pipelines parallelise naturally across patients (Section 8.6
of the paper).  This example:

1. measures real multi-process execution of the Figure 3 pipeline over a
   small patient cohort (1 and 2 workers),
2. calibrates the per-engine analytic scaling model with measured
   single-worker throughput and prints the modelled 1–48 thread curves
   (the Figure 10(c) reproduction), including the Trill out-of-memory point
   and the NumLib saturation point,
3. extends the model to a 16-machine cluster (the Figure 10(d) reproduction).

Run with::

    python examples/scalability_study.py
"""

from __future__ import annotations

from repro.bench.reporting import format_table
from repro.data import make_cohort
from repro.scaling import ClusterModel, ScalingModel, measure_single_worker_throughput, run_data_parallel

ENGINES = ("lifestream", "trill", "numlib")
THREADS = (1, 2, 4, 8, 12, 16, 24, 32)
MACHINES = (1, 2, 4, 8, 16)


def main() -> None:
    cohort = make_cohort(4, duration_seconds=30.0, seed=0)
    print(f"cohort: {len(cohort)} patients, {sum(p.total_events() for p in cohort)} events total")

    # Real data-parallel execution for small worker counts.
    print("\nmeasured data-parallel execution (LifeStream, Figure 3 pipeline):")
    for workers in (1, 2):
        point = run_data_parallel("lifestream", cohort, n_workers=workers)
        print(f"  {workers} worker(s): {point.throughput_events_per_second / 1e6:.2f} M events/s")

    # Calibrate the analytic model from single-worker throughput.
    baselines = {
        engine: measure_single_worker_throughput(engine, cohort[0]) for engine in ENGINES
    }

    rows = []
    for engine in ENGINES:
        model = ScalingModel.for_engine(engine, baselines[engine])
        for point in model.curve(list(THREADS)).points:
            rows.append(
                [
                    engine,
                    point.workers,
                    "OOM" if point.failed else f"{point.throughput_events_per_second / 1e6:.2f}",
                ]
            )
    print()
    print(
        format_table(
            ["engine", "threads", "million events/s"],
            rows,
            title="Modelled multi-core scaling (Figure 10(c))",
        )
    )

    rows = []
    for engine in ENGINES:
        model = ClusterModel(engine, baselines[engine])
        for point in model.curve(list(MACHINES)).points:
            rows.append([engine, point.workers, point.throughput_events_per_second / 1e6])
    print()
    print(
        format_table(
            ["engine", "machines", "million events/s"],
            rows,
            title="Modelled multi-machine scaling (Figure 10(d))",
        )
    )


if __name__ == "__main__":
    main()
