"""Shape-based artifact detection: find line-zero artifacts in blood pressure.

Line-zero artifacts appear in arterial blood pressure whenever the pressure
transducer is opened to air for calibration (Figure 7 of the paper).  This
example:

1. generates a realistic ABP waveform and injects a handful of artifacts at
   known positions,
2. uses LifeStream's extended ``where_shape`` operator (constrained DTW) to
   detect them,
3. scores the detections against the injected ground truth — the paper
   reports 0% false negatives and 0.2% false positives for this model,
4. shows how the same query, flipped from ``keep`` to ``remove`` mode,
   scrubs the artifacts out of the stream for downstream analysis.

Run with::

    python examples/linezero_detection.py
"""

from __future__ import annotations

from repro import ArraySource, LifeStreamEngine, Query
from repro.data import generate_abp, inject_line_zero, line_zero_template
from repro.pipelines import evaluate_linezero_accuracy, run_lifestream_linezero


def main() -> None:
    # 2.5 minutes of 125 Hz ABP with five injected line-zero artifacts.
    times, clean = generate_abp(duration_seconds=150.0, seed=10)
    corrupted, artifacts = inject_line_zero(clean, n_artifacts=5, seed=11)
    print(f"signal: {times.size} ABP samples, {len(artifacts)} injected line-zero artifacts")
    for artifact in artifacts:
        print(f"  ground truth artifact at samples [{artifact.start_index}, {artifact.end_index})")

    # Detection: the LineZero model (shape-based Where in `keep` mode).
    regions, run = run_lifestream_linezero(times, corrupted)
    print(f"\ndetected {len(regions)} regions in {run.elapsed_seconds:.2f}s:")
    for start, end in regions:
        print(f"  detected region at samples [{start}, {end})")

    scores = evaluate_linezero_accuracy(regions, artifacts, corrupted.size)
    print(
        f"\nfalse negative rate: {scores['false_negative_rate']:.1%}   "
        f"false positive rate: {scores['false_positive_rate']:.1%}"
    )

    # Scrubbing: the same shape query in `remove` mode drops the artifacts.
    source = ArraySource(times, corrupted, period=8)
    scrub_query = Query.source("abp", frequency_hz=125).where_shape(
        line_zero_template(), threshold=0.05, mode="remove"
    )
    scrubbed = LifeStreamEngine().run(scrub_query, sources={"abp": source})
    removed = times.size - len(scrubbed)
    print(
        f"\nscrubbing removed {removed} samples "
        f"({removed / times.size:.1%} of the stream) before downstream analysis"
    )


if __name__ == "__main__":
    main()
