"""CAP model preprocessing: join six physiological signals into one stream.

The cardiac-arrest prediction (CAP) model of Section 8.4 consumes a single
feature stream produced by imputing, resampling, normalising, masking and
temporally joining six different signal types.  This example builds that
preprocessing pipeline as one LifeStream query, runs it on a synthetic
six-signal patient record, and compares against the Trill-like baseline.

Run with::

    python examples/cap_preprocessing.py
"""

from __future__ import annotations

from repro.bench.reporting import format_table
from repro.data import make_cap_patient
from repro.pipelines import cap_query, run_lifestream_cap, run_trill_cap


def main() -> None:
    record = make_cap_patient(duration_seconds=120.0, gap_fraction=0.15, seed=5)
    print(f"patient {record.patient_id}: {record.total_events()} events across 6 signals")
    for name, signal in record.signals.items():
        print(f"  {name:<6} {signal.frequency_hz:>6.1f} Hz  {signal.event_count:>7} events")

    query = cap_query([(name, s.frequency_hz) for name, s in record.signals.items()])
    print(
        f"\nthe preprocessing query contains {query.operator_count()} temporal operators "
        f"over {len(query.source_names())} sources"
    )

    lifestream = run_lifestream_cap(record)
    trill = run_trill_cap(record)

    rows = [
        [run.engine, run.events_emitted, run.elapsed_seconds, run.throughput_events_per_second / 1e6]
        for run in (lifestream, trill)
    ]
    print()
    print(
        format_table(
            ["engine", "feature events", "seconds", "million events/s"],
            rows,
            title="CAP preprocessing (6-signal join), Table 4 workload",
        )
    )
    print(f"\nLifeStream speedup over the Trill baseline: {lifestream.speedup_over(trill):.2f}x")
    print(
        f"targeted query processing skipped {lifestream.extra['windows_skipped']} windows "
        "whose data could never reach the final join output"
    )


if __name__ == "__main__":
    main()
