"""Compatibility shim so `pip install -e .` works on toolchains without the
`wheel` package (the actual configuration lives in pyproject.toml)."""

from setuptools import setup

setup()
