"""Packaging for the LifeStream reproduction (src layout).

``pip install -e .`` installs the ``repro`` package; the test suite needs
the ``test`` extra (pytest, pytest-benchmark, hypothesis) on top.
"""

from setuptools import find_packages, setup

setup(
    name="lifestream-repro",
    version="1.0.0",
    description=(
        "Reproduction of 'LifeStream: A High-Performance Stream Processing "
        "Engine for Periodic Streams' (ASPLOS 2021)"
    ),
    long_description=open("README.md").read(),
    long_description_content_type="text/markdown",
    license="MIT",
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages("src"),
    install_requires=[
        "numpy>=1.22",
        "scipy>=1.8",
    ],
    extras_require={
        "test": [
            "pytest>=7",
            "pytest-benchmark>=4",
            "hypothesis>=6",
        ],
        "lint": [
            "ruff>=0.4",
        ],
    },
    classifiers=[
        "Programming Language :: Python :: 3",
        "Programming Language :: Python :: 3.10",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
        "Topic :: Scientific/Engineering",
    ],
)
