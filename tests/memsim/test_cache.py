"""Tests for the cache model and access tracer."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.memsim import AccessTracer, CacheSimulator
from repro.memsim.cache import CacheStats


class TestCacheSimulator:
    def test_first_access_misses_second_hits(self):
        cache = CacheSimulator(size_bytes=64 * 1024, line_bytes=64, associativity=4)
        cache.access_range(0, 64)
        assert cache.misses == 1
        cache.access_range(0, 64)
        assert cache.hits == 1
        assert cache.misses == 1

    def test_range_access_touches_every_line(self):
        cache = CacheSimulator(size_bytes=64 * 1024, line_bytes=64, associativity=4)
        cache.access_range(0, 64 * 10)
        assert cache.misses == 10

    def test_working_set_within_capacity_stays_resident(self):
        cache = CacheSimulator(size_bytes=64 * 1024, line_bytes=64, associativity=8)
        for _ in range(5):
            cache.access_range(0, 32 * 1024)  # half the cache
        # Only the first pass misses.
        assert cache.misses == 32 * 1024 // 64
        assert cache.stats.miss_rate < 0.25

    def test_streaming_larger_than_cache_keeps_missing(self):
        cache = CacheSimulator(size_bytes=16 * 1024, line_bytes=64, associativity=4)
        for _ in range(3):
            cache.access_range(0, 64 * 1024)  # 4x the cache
        assert cache.stats.miss_rate > 0.9

    def test_lru_eviction_within_set(self):
        # Direct-mapped-ish: 2 ways, lines mapping to the same set evict LRU.
        cache = CacheSimulator(size_bytes=4 * 64, line_bytes=64, associativity=2)
        n_sets = cache.n_sets
        same_set = np.array([0, n_sets, 2 * n_sets], dtype=np.int64)
        cache.access_lines(same_set)  # three lines, two ways -> one eviction
        cache.access_lines(np.array([0], dtype=np.int64))  # line 0 was evicted (LRU)
        assert cache.misses == 4

    def test_reset(self):
        cache = CacheSimulator()
        cache.access_range(0, 1024)
        cache.reset()
        assert cache.misses == 0 and cache.hits == 0

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            CacheSimulator(size_bytes=0)


class TestCacheStatsScaled:
    """Regression: independent truncation used to break hits+misses==accesses."""

    @given(
        hits=st.integers(min_value=0, max_value=10**9),
        misses=st.integers(min_value=0, max_value=10**9),
        factor=st.one_of(
            st.integers(min_value=0, max_value=64).map(float),
            st.floats(min_value=0.0, max_value=64.0, allow_nan=False),
        ),
    )
    def test_scaled_counters_stay_consistent(self, hits, misses, factor):
        stats = CacheStats(accesses=hits + misses, hits=hits, misses=misses)
        scaled = stats.scaled(factor)
        assert scaled.hits + scaled.misses == scaled.accesses
        assert 0 <= scaled.hits <= scaled.accesses
        assert 0 <= scaled.misses <= scaled.accesses

    def test_regression_example(self):
        # accesses=2, hits=1, misses=1 scaled by 1.5 used to truncate to
        # accesses=3, hits=1, misses=1 — one access lost.
        stats = CacheStats(accesses=2, hits=1, misses=1)
        scaled = stats.scaled(1.5)
        assert scaled.accesses == 3
        assert scaled.hits == 1
        assert scaled.misses == 2
        assert scaled.hits + scaled.misses == scaled.accesses

    def test_identity_scale_is_exact(self):
        stats = CacheStats(accesses=10, hits=7, misses=3)
        scaled = stats.scaled(1.0)
        assert (scaled.accesses, scaled.hits, scaled.misses) == (10, 7, 3)

    def test_negative_factor_rejected(self):
        with pytest.raises(ValueError):
            CacheStats(accesses=1, hits=1).scaled(-1.0)


class TestAccessTracer:
    def test_allocations_get_disjoint_addresses(self):
        tracer = AccessTracer(sample_stride=1)
        first = tracer.allocate(1000, "a")
        second = tracer.allocate(1000, "b")
        buffer_a = tracer.buffer(first)
        buffer_b = tracer.buffer(second)
        assert buffer_a.base_address + buffer_a.n_bytes <= buffer_b.base_address

    def test_touch_feeds_cache(self):
        tracer = AccessTracer(sample_stride=1)
        buffer_id = tracer.allocate(64 * 100, "buf")
        tracer.touch(buffer_id, 0, 64 * 100)
        assert tracer.stats().misses == 100

    def test_repeated_touch_of_same_buffer_hits(self):
        tracer = AccessTracer(sample_stride=1)
        buffer_id = tracer.allocate(64 * 100, "buf")
        tracer.touch(buffer_id, 0, 64 * 100)
        tracer.touch(buffer_id, 0, 64 * 100)
        stats = tracer.stats()
        assert stats.hits == 100
        assert stats.misses == 100

    def test_fresh_allocations_always_miss(self):
        tracer = AccessTracer(sample_stride=1)
        for index in range(10):
            buffer_id = tracer.allocate(64 * 16, f"batch-{index}")
            tracer.touch(buffer_id, 0, 64 * 16)
        assert tracer.stats().misses == 160
        assert tracer.allocation_count == 10

    def test_sampling_scales_counts(self):
        dense = AccessTracer(sample_stride=1)
        sampled = AccessTracer(sample_stride=8)
        for tracer in (dense, sampled):
            buffer_id = tracer.allocate(64 * 800, "buf")
            tracer.touch(buffer_id, 0, 64 * 800)
        assert sampled.stats().misses == pytest.approx(dense.stats().misses, rel=0.05)

    def test_touch_none_buffer_is_noop(self):
        tracer = AccessTracer()
        tracer.touch(None, 0, 100)
        assert tracer.stats().accesses == 0

    def test_invalid_stride_rejected(self):
        with pytest.raises(ValueError):
            AccessTracer(sample_stride=0)


class TestEngineCacheBehaviour:
    """The Table 5 mechanism at unit-test scale."""

    def test_lifestream_reuses_buffers_trill_streams_new_ones(self):
        from repro.baselines.trill import TrillEngine, TrillInput, TrillSelect
        from repro.core.engine import LifeStreamEngine
        from repro.core.query import Query
        from repro.core.sources import ArraySource

        n = 50_000
        times = np.arange(n, dtype=np.int64)
        values = np.random.default_rng(0).random(n)

        lifestream_tracer = AccessTracer(sample_stride=4)
        engine = LifeStreamEngine(window_size=5_000, tracer=lifestream_tracer)
        engine.run(
            Query.source("s", frequency_hz=1000).select(lambda v: v * 2),
            sources={"s": ArraySource(times, values, period=1)},
        )

        trill_tracer = AccessTracer(sample_stride=4)
        trill = TrillEngine(batch_size=2048, tracer=trill_tracer)
        trill.run_unary(
            TrillInput(times, values, 1), [TrillSelect(lambda v: v * 2, tracer=trill_tracer)]
        )

        # LifeStream allocates one FWindow per plan node; the Trill baseline
        # allocates a batch per operator invocation.
        assert lifestream_tracer.allocation_count < 10
        assert trill_tracer.allocation_count > 40
        # And its reused working set produces far fewer cache misses.
        assert lifestream_tracer.stats().misses < trill_tracer.stats().misses
