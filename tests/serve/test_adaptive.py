"""Adaptive recompilation in the serving layer.

Covers the measurement half (PlanProfile aggregation and merging, the
ProfileStore keyed by signature digest, JSON persistence), the decision
half (profile-aware ``recommend_backend``, ``CompileHints`` derivation and
validation), and the serving loop that ties them together: a
``StreamingService(adaptive=True)`` hot-swapping a hot session's plan
mid-stream with bit-identical output.
"""

import json
from types import SimpleNamespace

import numpy as np
import pytest

from repro.core.compiler import CompileHints, compile_plan
from repro.core.engine import LifeStreamEngine
from repro.core.query import Query
from repro.core.runtime import (
    BatchedBackend,
    PlanProfile,
    SerialBackend,
    VectorizedBackend,
    recommend_backend,
)
from repro.core.runtime.profile import (
    MAX_HINTED_BATCH_WINDOWS,
    MAX_HINTED_RUN_WINDOWS,
    MIN_HINTED_RUN_WINDOWS,
)
from repro.core.sources import ArraySource, ReplaySource
from repro.errors import CompilationError, ExecutionError
from repro.serve import PlanCache, ProfileStore, StreamingService, signature_digest
from repro.serve.service import COLD_START_EXPECTED_SECONDS

WINDOW_SIZE = 1000


def _tick(windows_run=0, window_runs=0, deferred=0, events=0, plan_s=0.0,
          execute_s=0.0, mode="serial"):
    """A TickStats stand-in with exactly the fields PlanProfile reads."""
    return SimpleNamespace(
        windows_run=windows_run,
        window_runs=window_runs,
        windows_deferred=deferred,
        events_emitted=events,
        plan_seconds=plan_s,
        execute_seconds=execute_s,
        execution_mode=mode,
    )


def _dense_source(n=30000, period=2):
    times = np.arange(n, dtype=np.int64) * period
    values = np.sin(np.arange(n) * 0.01) * 10
    return ArraySource(times, values, period=period)


def _hot_query(depth=8):
    query = Query.source("s", frequency_hz=500)
    for _ in range(depth):
        query = query.select(lambda v: v * 1.0001 + 0.25)
    return query.tumbling_window(200).mean()


class TestPlanProfile:
    def test_observe_accumulates_and_buckets_runs(self):
        profile = PlanProfile()
        profile.observe(_tick(windows_run=12, window_runs=2, events=30,
                              plan_s=0.01, execute_s=0.05))
        profile.observe(_tick())  # empty tick: counted, not busy
        profile.observe(_tick(windows_run=5, window_runs=5, deferred=1))
        assert profile.ticks == 3
        assert profile.busy_ticks == 2
        assert profile.windows_run == 17
        assert profile.window_runs == 7
        assert profile.windows_deferred == 1
        # Mean run lengths 6.0 and 1.0 floor to the 4 and 1 buckets.
        assert profile.run_length_histogram == {4: 1, 1: 1}
        assert profile.mean_run_length == pytest.approx(17 / 7)
        assert profile.elapsed_seconds == pytest.approx(0.06)

    def test_fallback_ticks_counted(self):
        profile = PlanProfile()
        profile.observe(_tick(windows_run=1, window_runs=1,
                              mode="vectorized+serial-fallback"))
        profile.observe(_tick(windows_run=1, window_runs=1, mode="vectorized"))
        assert profile.fallback_ticks == 1

    def test_fragmented_means_multiple_runs_per_busy_tick(self):
        dense = PlanProfile()
        dense.observe(_tick(windows_run=8, window_runs=1))
        assert not dense.fragmented
        gappy = PlanProfile()
        gappy.observe(_tick(windows_run=8, window_runs=3))
        assert gappy.fragmented

    def test_merge_is_tick_weighted(self):
        old = PlanProfile()
        for _ in range(9):
            old.observe(_tick(windows_run=4, window_runs=1, execute_s=0.1))
        fresh = PlanProfile()
        fresh.observe(_tick(windows_run=40, window_runs=1, execute_s=0.9))
        old.merge(fresh)
        assert old.ticks == 10
        assert old.windows_run == 76
        # The 9-tick history dominates the 1-tick newcomer 9:1.
        assert old.ewma_execute_seconds == pytest.approx(0.9 * 0.1 + 0.1 * 0.9)
        assert old.run_length_histogram == {4: 9, 32: 1}

    def test_merge_into_empty_copies(self):
        fresh = PlanProfile()
        src = PlanProfile()
        src.observe(_tick(windows_run=6, window_runs=2, execute_s=0.3))
        fresh.merge(src)
        assert fresh.ticks == 1
        assert fresh.ewma_execute_seconds == pytest.approx(0.3)

    def test_hints_derivation(self):
        profile = PlanProfile()
        for _ in range(4):
            profile.observe(_tick(windows_run=24, window_runs=3))  # mean run 8
        hints = profile.hints()
        assert hints.batch_windows == 8
        # Largest bucket 8 -> next pow2 above 2*8 is 16 (also the floor).
        assert hints.max_run_windows == 16
        assert hints.targeted is True  # fragmented (3 runs per busy tick)
        assert "4 tick(s)" in hints.reason

    def test_hints_bounds(self):
        isolated = PlanProfile()
        isolated.observe(_tick(windows_run=3, window_runs=3))
        hints = isolated.hints()
        assert hints.batch_windows is None  # nothing to amortise
        assert hints.max_run_windows == MIN_HINTED_RUN_WINDOWS

        huge = PlanProfile()
        huge.observe(_tick(windows_run=100000, window_runs=1))
        hints = huge.hints()
        assert hints.batch_windows == MAX_HINTED_BATCH_WINDOWS
        assert hints.max_run_windows == MAX_HINTED_RUN_WINDOWS
        assert hints.targeted is None  # dense: no opinion

    def test_json_round_trip(self):
        profile = PlanProfile()
        profile.observe(_tick(windows_run=12, window_runs=2, deferred=3,
                              events=40, plan_s=0.02, execute_s=0.2,
                              mode="vectorized+serial-fallback"))
        clone = PlanProfile.from_dict(json.loads(json.dumps(profile.to_dict())))
        assert clone == profile


class TestProfileStore:
    SIGNATURE = ("sig-format", 1000, 2, (("source", "s", ("descriptor", 0, 2)),))

    def test_digest_is_stable_and_discriminating(self):
        digest = signature_digest(self.SIGNATURE)
        assert digest == signature_digest(self.SIGNATURE)
        assert len(digest) == 16
        assert digest != signature_digest(("sig-format", 1000, 1, ()))
        # Length tags keep adjacent strings from gluing together.
        assert signature_digest(("ab", "c")) != signature_digest(("a", "bc"))

    def test_tuple_and_digest_keys_are_interchangeable(self):
        store = ProfileStore()
        store.observe(self.SIGNATURE, _tick(windows_run=2, window_runs=1))
        digest = signature_digest(self.SIGNATURE)
        assert digest in store
        assert store.get(digest).ticks == 1
        store.observe(digest, _tick(windows_run=2, window_runs=1))
        assert store.get(self.SIGNATURE).ticks == 2

    def test_save_load_round_trip_merges(self, tmp_path):
        path = tmp_path / "profiles.json"
        store = ProfileStore(path=path)
        store.observe(self.SIGNATURE, _tick(windows_run=8, window_runs=1))
        store.save()
        # A fresh store at the same path auto-loads...
        reloaded = ProfileStore(path=path)
        assert reloaded.get(self.SIGNATURE).windows_run == 8
        # ...and loading into a store with live measurements merges.
        reloaded.observe(self.SIGNATURE, _tick(windows_run=2, window_runs=1))
        reloaded.load()
        merged = reloaded.get(self.SIGNATURE)
        assert merged.ticks == 3
        assert merged.windows_run == 18

    def test_load_rejects_unknown_format(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": "something-else", "profiles": {}}))
        with pytest.raises(ExecutionError, match="format"):
            ProfileStore(path=path)

    def test_save_requires_a_path(self):
        with pytest.raises(ExecutionError, match="no path"):
            ProfileStore().save()


class TestEvictionKeepsProfiles:
    def test_evicted_signature_keeps_its_profile(self):
        """Regression (the PR's eviction invariant): evicting a plan whose
        signature has a live profile must not orphan the profile, and a
        recompile of that signature picks the measurements back up."""
        cache = PlanCache(capacity=2)
        for name in ("a", "b"):
            cache.store((name,), object())
        cache.profiles.observe(("a",), _tick(windows_run=6, window_runs=1))
        before = cache.profiles.get(("a",)).ticks

        cache.store(("c",), object())  # evicts ("a",), the LRU entry
        assert cache.stats.evictions == 1
        assert cache.lookup(("a",)) is None
        # The profile survived the eviction, unchanged...
        assert ("a",) in cache.profiles
        assert cache.profiles.get(("a",)).ticks == before
        # ...and did not resurrect by itself: recompiling stores a fresh
        # template while the profile keeps accumulating on the same entry.
        cache.get_or_compile(("a",), lambda: object())
        cache.profiles.observe(("a",), _tick(windows_run=2, window_runs=1))
        assert cache.profiles.get(("a",)).ticks == before + 1
        assert len(cache.profiles) == 1

    def test_cache_clear_keeps_profiles(self):
        cache = PlanCache(capacity=4)
        cache.store(("a",), object())
        cache.profiles.observe(("a",), _tick(windows_run=1, window_runs=1))
        cache.clear()
        assert len(cache) == 0
        assert cache.profiles.get(("a",)).ticks == 1


class TestRecommendBackend:
    def _plan(self, query=None):
        engine = LifeStreamEngine(window_size=WINDOW_SIZE)
        return engine.compile(
            query or _hot_query(), {"s": ReplaySource(_dense_source(2000))}
        ).plan

    def test_static_choice_returns_reason(self):
        backend, reason = recommend_backend(self._plan())
        assert isinstance(reason, str) and reason
        assert backend.name in {"serial", "batched", "vectorized"}

    def test_profiled_long_runs_pick_vectorized_with_sized_cap(self):
        profile = PlanProfile()
        for _ in range(5):
            profile.observe(_tick(windows_run=24, window_runs=1))
        backend, reason = recommend_backend(self._plan(), profile=profile)
        assert isinstance(backend, VectorizedBackend)
        assert backend.max_run_windows == profile.hints().max_run_windows
        assert "mean runs of 24.0" in reason

    def test_profiled_isolated_windows_pick_serial(self):
        profile = PlanProfile()
        for _ in range(5):
            profile.observe(_tick(windows_run=3, window_runs=3))
        backend, reason = recommend_backend(self._plan(), profile=profile)
        assert isinstance(backend, SerialBackend)
        assert "isolated" in reason

    def test_profiled_runs_without_lowering_pick_batched(self):
        # A custom window transform blocks vectorized lowering but stays
        # widening-safe, so measured runs steer to the batched twin.
        query = (
            Query.source("s", frequency_hz=500)
            .tumbling_window(200)
            .mean()
        )
        plan = self._plan(query)
        profile = PlanProfile()
        for _ in range(5):
            profile.observe(_tick(windows_run=16, window_runs=2))
        backend, reason = recommend_backend(plan, profile=profile)
        if isinstance(backend, BatchedBackend):
            assert backend.batch_windows == profile.hints().batch_windows
            assert "widened twin" in reason
        else:  # the aggregate lowers on this build: vectorized wins instead
            assert isinstance(backend, VectorizedBackend)


class TestCompileHints:
    def test_validation(self):
        with pytest.raises(CompilationError):
            CompileHints(batch_windows=0)
        with pytest.raises(CompilationError):
            CompileHints(max_run_windows=-1)
        with pytest.raises(CompilationError):
            CompileHints(max_fusion_length=1)

    def test_cache_key_excludes_reason(self):
        a = CompileHints(batch_windows=8, reason="profile says so")
        b = CompileHints(batch_windows=8, reason="different words")
        assert a.cache_key() == b.cache_key()
        assert a.cache_key() != CompileHints(batch_windows=16).cache_key()

    def test_fusion_cut_compiles_to_identical_output(self):
        sources = {"s": _dense_source(4000)}
        default = compile_plan(_hot_query(), sources=sources,
                               window_size=WINDOW_SIZE)
        cut = compile_plan(_hot_query(), sources=sources, window_size=WINDOW_SIZE,
                           hints=CompileHints(max_fusion_length=3))
        assert cut.hints.max_fusion_length == 3
        assert "compile hints" in cut.explain()
        from repro.core.runtime import execute_plan

        reference = execute_plan(default)
        candidate = execute_plan(cut)
        np.testing.assert_array_equal(reference.times, candidate.times)
        np.testing.assert_array_equal(reference.values, candidate.values)


def _pump_schedule(start=2000, stop=60000, step=2000):
    return range(start, stop + 1, step)


def _run_adaptive_pair(adaptive_kwargs=None, clients=3):
    """The same skewed cohort through a static and an adaptive service."""
    results = {}
    swapped_ids = None
    for label, kwargs in (("static", {}),
                          ("adaptive", {"adaptive": True, **(adaptive_kwargs or {})})):
        service = StreamingService(window_size=WINDOW_SIZE, **kwargs)
        with service:
            for i in range(clients):
                service.open(f"c{i}", _hot_query(),
                             {"s": ReplaySource(_dense_source())})
            swapped = []
            for watermark in _pump_schedule():
                swapped.extend(service.pump(watermark).swapped)
            service.finish()
            results[label] = service.results()
            if label == "adaptive":
                swapped_ids = swapped
                modes = {
                    cid: service.session(cid).result().stats.execution_mode
                    for cid in service.client_ids
                }
    return results["static"], results["adaptive"], swapped_ids, modes


class TestAdaptiveService:
    def test_adaptive_service_swaps_and_stays_bit_identical(self):
        static, adaptive, swapped, modes = _run_adaptive_pair()
        assert swapped, "the dense cohort never triggered a hot swap"
        for cid, reference in static.items():
            candidate = adaptive[cid]
            np.testing.assert_array_equal(reference.times, candidate.times,
                                          err_msg=cid)
            np.testing.assert_array_equal(reference.values, candidate.values,
                                          err_msg=cid)
        for cid in set(swapped):
            assert modes[cid].endswith("(recompiled)")

    def test_swap_reason_and_counters_are_recorded(self):
        service = StreamingService(window_size=WINDOW_SIZE, adaptive=True)
        with service:
            service.open("hot", _hot_query(), {"s": ReplaySource(_dense_source())})
            for watermark in _pump_schedule():
                service.pump(watermark)
            record = service._clients["hot"]
            assert record.swaps >= 1
            assert "profile over" in record.last_adapt_reason
            assert service.session("hot").recompiled

    def test_sparse_sessions_never_churn(self):
        """Isolated-window workloads profile to 'stay serial': the adaptive
        service must not recompile or swap them."""
        times = np.arange(0, 120000, 2000, dtype=np.int64)  # 1 event/2 windows
        source = ArraySource(times, np.ones(times.size), period=2)
        query = Query.source("s", frequency_hz=500).tumbling_window(200).mean()
        service = StreamingService(window_size=WINDOW_SIZE, adaptive=True)
        with service:
            service.open("sparse", query, {"s": ReplaySource(source)})
            for watermark in _pump_schedule(4000, 120000, 4000):
                report = service.pump(watermark)
                assert report.swapped == []
            assert service._clients["sparse"].swaps == 0
            assert not service.session("sparse").recompiled

    def test_static_service_never_profiles_or_swaps(self):
        service = StreamingService(window_size=WINDOW_SIZE)
        with service:
            service.open("c", _hot_query(), {"s": ReplaySource(_dense_source(4000))})
            assert service._clients["c"].profile_key is None
            report = service.pump(4000)
            assert report.swapped == []
            assert len(service.engine.plan_cache.profiles) == 0

    def test_shared_signature_profiles_merge_across_clients(self):
        service = StreamingService(window_size=WINDOW_SIZE, adaptive=True,
                                   adapt_after_ticks=10**6)
        with service:
            for i in range(3):
                service.open(f"c{i}", _hot_query(),
                             {"s": ReplaySource(_dense_source(4000))})
            keys = {r.profile_key for r in service._clients.values()}
            assert len(keys) == 1  # one signature, one shared profile
            service.pump(4000)
            service.pump(8000)
            (key,) = keys
            assert service.engine.plan_cache.profiles.get(key).ticks == 6

    def test_profile_path_persists_across_services(self, tmp_path):
        path = tmp_path / "profiles.json"
        service = StreamingService(window_size=WINDOW_SIZE, adaptive=True,
                                   profile_path=path)
        with service:
            service.open("c", _hot_query(), {"s": ReplaySource(_dense_source(4000))})
            service.pump(4000)
            key = service._clients["c"].profile_key
            service.engine.plan_cache.profiles.save()
        revived = StreamingService(window_size=WINDOW_SIZE, adaptive=True,
                                   profile_path=path)
        assert revived.engine.plan_cache.profiles.get(key).ticks == 1

    def test_adapt_after_ticks_must_be_positive(self):
        with pytest.raises(ExecutionError, match="adapt_after_ticks"):
            StreamingService(adaptive=True, adapt_after_ticks=0)


class TestColdStartCost:
    def test_cold_sessions_are_assumed_free(self):
        assert COLD_START_EXPECTED_SECONDS == 0.0
        service = StreamingService(window_size=WINDOW_SIZE)
        with service:
            service.open("cold", _hot_query(), {"s": ReplaySource(_dense_source(4000))})
            assert service._expected_cost("cold") == COLD_START_EXPECTED_SECONDS
            service.pump(4000)
            # After one real tick the estimate is measurement-based.
            assert service._expected_cost("cold") > 0.0

    def test_cold_session_is_scheduled_before_warm_ready_peers(self):
        service = StreamingService(window_size=WINDOW_SIZE)
        with service:
            service.open("warm", _hot_query(), {"s": ReplaySource(_dense_source())})
            service.pump({"warm": 4000})
            service.open("cold", _hot_query(), {"s": ReplaySource(_dense_source())})
            order = service._schedule({"warm": 8000, "cold": 8000})
            assert order[0] == "cold"


class TestAutoBackendReason:
    def test_e2e_auto_backend_reports_reason(self):
        from repro.bench.workloads import e2e_dataset
        from repro.pipelines.e2e import run_lifestream_e2e

        ecg, abp = e2e_dataset(duration_seconds=2.0, seed=0)
        run = run_lifestream_e2e(ecg, abp, backend="auto")
        assert run.extra["backend"].endswith("(auto)")
        assert run.extra["backend_reason"]
