"""Cross-tenant sub-plan sharing suite.

The contract under test: serving a cohort with
``StreamingService(subplan_sharing=True)`` is *observationally identical*
to unshared serving — bit-identical per-tenant output across serial and
vectorized backends, targeted and eager execution — while the shared
prefix executes exactly once per batch instead of once per tenant.
"""

import numpy as np
import pytest

from repro.core.query import Query
from repro.core.runtime import VectorizedBackend
from repro.core.sources import ArraySource, ReplaySource
from repro.ops import combine
from repro.serve import StreamingService
from repro.serve.subplan import (
    MIN_GROUP_SIZE,
    SharedFeedSource,
    plan_sharing,
    prefix_fingerprints,
    rewrite_tail,
)

# -- cohort fixtures --------------------------------------------------------


def _scale(v):
    return v * 2.0 + 0.25


def _keep(v):
    return v > -0.5


def _signal(n=4000, period=2, seed=7):
    rng = np.random.default_rng(seed)
    times = np.arange(n, dtype=np.int64) * period
    keep = np.ones(n, dtype=bool)
    for start in rng.integers(0, n - 400, size=3):
        keep[start : start + int(rng.integers(50, 250))] = False
    values = np.sin(np.arange(n) * 0.013) + 0.1 * rng.standard_normal(n)
    return times[keep], values[keep]


def _shared_replay(seed=7):
    times, values = _signal(seed=seed)
    return ReplaySource(ArraySource(times, values, period=2))


def _prefix():
    """The cohort's shared cleaning prefix: source -> select -> where."""
    return Query.source("s", frequency_hz=500).select(_scale).where(_keep)


def _tenant_query(i):
    """Per-tenant tail over the shared prefix (three distinct shapes)."""
    base = _prefix()
    if i % 3 == 0:
        return base.aggregate(400 + 200 * (i % 2), func="mean")
    if i % 3 == 1:
        return base.aggregate(600, func="max")
    # A join tail: reads the shared feed *and* the raw origin stream.
    return base.join(Query.source("s", frequency_hz=500), combine.sub)


WATERMARKS = (1500, 3500, 6200)

BACKENDS = {
    "serial": lambda: None,
    "vectorized": lambda: VectorizedBackend(),
}


def _serve_cohort(sharing, backend_factory, targeted, n_clients=6, pumps=WATERMARKS):
    source = _shared_replay()
    service = StreamingService(
        window_size=2000,
        targeted=targeted,
        backend=backend_factory(),
        subplan_sharing=sharing,
    )
    with service:
        for i in range(n_clients):
            service.open(f"c{i}", _tenant_query(i), {"s": source})
        reports = [service.pump(watermark) for watermark in pumps]
        reports.append(service.finish())
        results = {
            client_id: service.result(client_id) for client_id in service.client_ids
        }
        groups = service.sharing_groups
    return results, groups, reports


def _assert_identical(reference, candidate, label):
    np.testing.assert_array_equal(reference.times, candidate.times, err_msg=label)
    np.testing.assert_array_equal(reference.values, candidate.values, err_msg=label)
    np.testing.assert_array_equal(
        reference.durations, candidate.durations, err_msg=label
    )


# -- unit: fingerprints, planning, rewriting --------------------------------


class TestPrefixFingerprints:
    def test_fingerprints_cover_source_identity(self):
        same = _shared_replay(seed=7)
        other = _shared_replay(seed=7)  # identical data, different object
        query_a, query_b, query_c = _prefix(), _prefix(), _prefix()
        fps_a, _, _ = prefix_fingerprints(query_a, {"s": same})
        fps_b, _, _ = prefix_fingerprints(query_b, {"s": same})
        fps_c, _, _ = prefix_fingerprints(query_c, {"s": other})
        # Equal structure over the same source object: equal fingerprints.
        assert fps_a[id(query_a.spec)] == fps_b[id(query_b.spec)]
        # Equal structure over a *different* source object: different —
        # those prefixes compute over different data.
        assert fps_a[id(query_a.spec)] != fps_c[id(query_c.spec)]

    def test_prefixes_of_different_tails_fingerprint_equal(self):
        source = _shared_replay()
        agg, join = _tenant_query(0), _tenant_query(2)
        fps_agg, _, _ = prefix_fingerprints(agg, {"s": source})
        fps_join, _, _ = prefix_fingerprints(join, {"s": source})
        assert fps_agg[id(agg.spec.inputs[0])] == fps_join[id(join.spec.inputs[0])]

    def test_operator_counts_are_subtree_sizes(self):
        query = _prefix()
        _, counts, postorder = prefix_fingerprints(query, {"s": _shared_replay()})
        by_kind = {spec.kind: counts[id(spec)] for spec in postorder}
        assert by_kind["source"] == 0
        assert counts[id(query.spec)] == 2  # select + where


class TestPlanSharing:
    def test_groups_on_maximal_shared_prefix(self):
        source = _shared_replay()
        candidates = [
            (f"c{i}", _tenant_query(i), {"s": source}) for i in range(4)
        ]
        plans = plan_sharing(candidates)
        assert len(plans) == 1
        plan = plans[0]
        assert sorted(plan.members) == ["c0", "c1", "c2", "c3"]
        assert plan.operator_count == 2  # the full select+where prefix
        assert plan.feed_name.startswith("__shared_prefix_")

    def test_distinct_source_objects_do_not_group(self):
        candidates = [
            (f"c{i}", _tenant_query(i), {"s": _shared_replay()}) for i in range(4)
        ]
        assert plan_sharing(candidates) == []

    def test_below_min_group_size_no_plan(self):
        source = _shared_replay()
        candidates = [("only", _tenant_query(0), {"s": source})]
        assert plan_sharing(candidates) == []
        assert MIN_GROUP_SIZE == 2

    def test_whole_query_as_prefix_is_excluded(self):
        # One tenant's full query equals the others' prefix: it has no tail
        # and must not join the group for that prefix.
        source = _shared_replay()
        candidates = [
            ("bare", _prefix(), {"s": source}),
            ("t0", _tenant_query(0), {"s": source}),
            ("t1", _tenant_query(1), {"s": source}),
        ]
        plans = plan_sharing(candidates)
        assert len(plans) == 1
        assert sorted(plans[0].members) == ["t0", "t1"]


class TestRewriteTail:
    def test_prefix_replaced_by_feed_node(self):
        source = _shared_replay()
        query = _tenant_query(0)
        fingerprints, _, _ = prefix_fingerprints(query, {"s": source})
        target = fingerprints[id(query.spec.inputs[0])]
        feed_spec = Query.source("__feed", period=2).spec
        tail = rewrite_tail(query, fingerprints, target, feed_spec)
        assert tail.spec.kind == "operator"
        assert tail.spec.inputs[0] is feed_spec

    def test_untouched_subdags_reused_by_reference(self):
        source = _shared_replay()
        query = _tenant_query(2)  # join(prefix, raw source)
        fingerprints, _, postorder = prefix_fingerprints(query, {"s": source})
        where_spec = query.spec.inputs[0]
        raw_spec = query.spec.inputs[1]
        feed_spec = Query.source("__feed", period=2).spec
        tail = rewrite_tail(query, fingerprints, fingerprints[id(where_spec)], feed_spec)
        assert tail.spec.inputs[0] is feed_spec
        assert tail.spec.inputs[1] is raw_spec


class TestSharedFeedSource:
    def _feed(self):
        descriptor = _shared_replay().descriptor
        return SharedFeedSource(descriptor)

    def test_coverage_is_assigned_clipped_to_watermark(self):
        from repro.core.intervals import IntervalSet

        feed = self._feed()
        times = np.array([0, 2, 4], dtype=np.int64)
        values = np.ones(3)
        durations = np.full(3, 2, dtype=np.int64)
        feed.publish(times, values, durations, IntervalSet([(0, 100)]), complete_through=4)
        assert feed.coverage().span() == (0, 4)
        feed.publish(
            np.array([], dtype=np.int64),
            np.array([]),
            np.array([], dtype=np.int64),
            IntervalSet([(0, 100)]),
            complete_through=50,
        )
        assert feed.coverage().span() == (0, 50)

    def test_none_complete_through_keeps_watermark(self):
        from repro.core.intervals import IntervalSet

        feed = self._feed()
        times = np.array([0, 2], dtype=np.int64)
        feed.publish(
            times, np.ones(2), np.full(2, 2, dtype=np.int64),
            IntervalSet([(0, 40)]), complete_through=None,
        )
        # append() alone would have advanced the watermark to the last
        # event's end; publish pins it back when nothing is final yet.
        assert feed.coverage().span() is None or feed.coverage().span()[1] <= 0

    def test_advance_to_end_exposes_assigned_coverage(self):
        from repro.core.intervals import IntervalSet

        feed = self._feed()
        feed.publish(
            np.array([0], dtype=np.int64), np.ones(1), np.array([2], dtype=np.int64),
            IntervalSet([(0, 80)]), complete_through=2,
        )
        feed.advance_to_end()
        assert feed.coverage().span() == (0, 80)


# -- integration: the serving loop ------------------------------------------


class TestServiceSharing:
    @pytest.mark.parametrize("backend", sorted(BACKENDS))
    @pytest.mark.parametrize("targeted", [True, False], ids=["targeted", "eager"])
    def test_shared_serving_is_bit_identical_to_unshared(self, backend, targeted):
        unshared, no_groups, _ = _serve_cohort(False, BACKENDS[backend], targeted)
        shared, groups, _ = _serve_cohort(True, BACKENDS[backend], targeted)
        assert no_groups == []
        assert len(groups) == 1 and sorted(groups[0]["members"]) == sorted(unshared)
        for client_id, reference in unshared.items():
            _assert_identical(
                reference, shared[client_id], f"{client_id} [{backend}]"
            )

    def test_prefix_ticks_exactly_once_per_batch(self):
        _, groups, reports = _serve_cohort(True, BACKENDS["serial"], True)
        (group,) = groups
        # One prefix execution per pump + one for the finishing drain —
        # regardless of the number of members.
        assert group["prefix_ticks"] == len(WATERMARKS) + 1
        for report in reports:
            assert list(report.prefix_ticks) == [group["group_id"]]

    def test_distinct_sources_never_group(self):
        service = StreamingService(window_size=2000, subplan_sharing=True)
        with service:
            for i in range(4):
                service.open(f"c{i}", _tenant_query(i), {"s": _shared_replay()})
            report = service.pump(2000)
            assert service.sharing_groups == []
            assert report.prefix_ticks == {}
            service.finish()

    def test_close_member_then_group(self):
        source = _shared_replay()
        service = StreamingService(window_size=2000, subplan_sharing=True)
        with service:
            for i in range(3):
                service.open(f"c{i}", _tenant_query(i), {"s": source})
            service.pump(1500)
            assert len(service.sharing_groups) == 1
            service.close("c0")
            assert service.sharing_groups[0]["members"] == ["c1", "c2"]
            service.close("c1")
            service.close("c2")
            # Last member closed: the group is dismantled too.
            assert service.sharing_groups == []

    def test_late_client_stays_unshared_after_ticking(self):
        source = _shared_replay()
        service = StreamingService(window_size=2000, subplan_sharing=True)
        with service:
            service.open("a", _tenant_query(0), {"s": source})
            service.pump(1500)  # "a" ticks alone; no group possible yet
            service.open("b", _tenant_query(1), {"s": source})
            service.pump({"b": 1500})
            # "a" already ticked: it can never join a group; "b" alone is
            # below MIN_GROUP_SIZE, so no group forms.
            assert service.sharing_groups == []
            service.finish()

    def test_sharing_flag_off_is_inert(self):
        source = _shared_replay()
        service = StreamingService(window_size=2000)
        with service:
            service.open("a", _tenant_query(0), {"s": source})
            service.open("b", _tenant_query(3), {"s": source})
            report = service.pump(2000)
            assert service.sharing_groups == [] and report.prefix_ticks == {}
            service.finish()
