"""Serving-layer suite: plan signatures, the plan cache, and the services.

The core guarantees: (1) compiling N same-shape clients through a
plan-cache-backed engine performs exactly one compile, and every client's
results are bit-identical to an independently compiled session; (2) the
:class:`~repro.serve.StreamingService` batch tick loop is a pure
multiplexer — it never changes what any single session would have emitted;
(3) plan-cache hit/miss/eviction accounting is exact; (4) a one-shot
``run()`` racing an open service session is rejected, exactly as for a
hand-opened session.
"""

import numpy as np
import pytest

from repro.core.engine import LifeStreamEngine
from repro.core.query import Query
from repro.core.runtime import BatchedBackend
from repro.core.sources import ArraySource, ReplaySource
from repro.errors import CompilationError, ExecutionError, QueryConstructionError
from repro.serve import (
    PlanCache,
    ShardedStreamingService,
    StreamingService,
    has_bound_sources,
    plan_signature,
)


def _signal(n=6000, period=2, seed=3):
    rng = np.random.default_rng(seed)
    times = np.arange(n, dtype=np.int64) * period
    keep = np.ones(n, dtype=bool)
    for start in rng.integers(0, n - 500, size=3):
        keep[start : start + int(rng.integers(100, 400))] = False
    values = np.sin(np.arange(n) * 0.01) * 10
    return times[keep], values[keep]


def _source(seed=3):
    times, values = _signal(seed=seed)
    return ArraySource(times, values, period=2)


#: The cohort query shape every "client" of these tests runs.  Rebuilt per
#: client (fresh lambda objects), exactly as a serving deployment would.
def _cohort_query():
    return (
        Query.source("s", frequency_hz=500)
        .select(lambda v: v * 2 + 1)
        .where(lambda v: v > -5)
        .tumbling_window(100)
        .mean()
    )


def _join_query():
    return Query.source("s", frequency_hz=500).multicast(
        lambda s: s.select(lambda v: v)
        .join(s.tumbling_window(100).mean(), lambda v, m: v - m)
    )


WATERMARKS = (777, 2500, 4211, 7000, 9999, 12001)

BACKENDS = {
    "serial": lambda: None,
    "batched-4": lambda: BatchedBackend(batch_windows=4),
}


def _assert_identical(reference, candidate, label=""):
    np.testing.assert_array_equal(reference.times, candidate.times, err_msg=label)
    np.testing.assert_array_equal(reference.values, candidate.values, err_msg=label)
    np.testing.assert_array_equal(reference.durations, candidate.durations, err_msg=label)


def _independent_session_results(query_factory, seeds, backend=None, watermarks=WATERMARKS):
    """Reference path: one full compile + session per client, no cache."""
    results = {}
    for seed in seeds:
        engine = LifeStreamEngine(window_size=1000, backend=backend)
        session = engine.open_session(query_factory(), {"s": ReplaySource(_source(seed))})
        for watermark in watermarks:
            session.advance(watermark)
        session.finish()
        results[f"client-{seed}"] = session.result()
        session.close()
    return results


class TestPlanSignature:
    def test_equal_code_equal_signature(self):
        # Two structurally identical queries built from fresh lambdas must
        # share a signature — this is what makes serving cache-friendly.
        a = plan_signature(_cohort_query(), {"s": _source()}, 1000, 2)
        b = plan_signature(_cohort_query(), {"s": _source()}, 1000, 2)
        assert a == b

    def test_different_constant_different_signature(self):
        base = plan_signature(_cohort_query(), {"s": _source()}, 1000, 2)
        other_query = (
            Query.source("s", frequency_hz=500)
            .select(lambda v: v * 3 + 1)  # 3, not 2
            .where(lambda v: v > -5)
            .tumbling_window(100)
            .mean()
        )
        assert plan_signature(other_query, {"s": _source()}, 1000, 2) != base

    def test_closure_values_distinguish(self):
        def build(gain):
            return Query.source("s", frequency_hz=500).select(lambda v: v * gain)

        sources = {"s": _source()}
        assert plan_signature(build(2.0), sources, 1000, 2) == plan_signature(
            build(2.0), sources, 1000, 2
        )
        assert plan_signature(build(2.0), sources, 1000, 2) != plan_signature(
            build(3.0), sources, 1000, 2
        )

    def test_normalization_merges_shift_chains(self):
        sources = {"s": _source()}
        chained = Query.source("s", frequency_hz=500).shift(2).shift(3)
        merged = Query.source("s", frequency_hz=500).shift(5)
        assert plan_signature(chained, sources, 1000, 2) == plan_signature(
            merged, sources, 1000, 2
        )
        # Level 0 compiles the chain verbatim: two distinct plans.
        assert plan_signature(chained, sources, 1000, 0) != plan_signature(
            merged, sources, 1000, 0
        )

    def test_compile_config_distinguishes(self):
        sources = {"s": _source()}
        assert plan_signature(_cohort_query(), sources, 1000, 2) != plan_signature(
            _cohort_query(), sources, 2000, 2
        )
        assert plan_signature(_cohort_query(), sources, 1000, 2) != plan_signature(
            _cohort_query(), sources, 1000, 0
        )

    def test_source_grid_distinguishes(self):
        fast = {"s": _source()}  # period 2
        slow = {"s": ArraySource(np.arange(100, dtype=np.int64) * 4,
                                 np.zeros(100), period=4)}
        assert plan_signature(_cohort_query(), fast, 1000, 2) != plan_signature(
            _cohort_query(), slow, 1000, 2
        )

    def test_multicast_sharing_is_structural(self):
        sources = {"s": _source()}
        assert plan_signature(_join_query(), sources, 1000, 2) == plan_signature(
            _join_query(), sources, 1000, 2
        )
        assert plan_signature(_join_query(), sources, 1000, 2) != plan_signature(
            _cohort_query(), sources, 1000, 2
        )

    def test_bound_method_state_distinguishes(self):
        # Regression: Scaler(2).apply and Scaler(5).apply share bytecode;
        # fingerprinting code alone served one client the other's plan.
        class Scaler:
            def __init__(self, gain):
                self.gain = gain

            def apply(self, values):
                return values * self.gain

        sources = {"s": _source()}
        low = Query.source("s", frequency_hz=500).select(Scaler(2.0).apply)
        high = Query.source("s", frequency_hz=500).select(Scaler(5.0).apply)
        assert plan_signature(low, sources, 1000, 2) != plan_signature(
            high, sources, 1000, 2
        )
        # ...and through the engine: results must match uncached compiles.
        cached = LifeStreamEngine(window_size=1000, plan_cache=PlanCache())
        plain = LifeStreamEngine(window_size=1000)
        for query in (low, high):
            _assert_identical(
                plain.run(query, {"s": _source()}),
                cached.run(query, {"s": _source()}),
                "bound-method state",
            )

    def test_global_values_distinguish(self):
        # Regression: `lambda v: v * GAIN` under two values of a module
        # global used to fingerprint identically.
        namespace = {}
        exec("GAIN = 2.0\ndef scale(v):\n    return v * GAIN\n", namespace)
        scale_by_2 = namespace["scale"]
        namespace2 = {}
        exec("GAIN = 5.0\ndef scale(v):\n    return v * GAIN\n", namespace2)
        scale_by_5 = namespace2["scale"]
        sources = {"s": _source()}
        low = Query.source("s", frequency_hz=500).select(scale_by_2)
        high = Query.source("s", frequency_hz=500).select(scale_by_5)
        assert plan_signature(low, sources, 1000, 2) != plan_signature(
            high, sources, 1000, 2
        )

    def test_has_bound_sources(self):
        assert not has_bound_sources(_cohort_query())
        bound = Query.from_source(_source()).select(lambda v: v)
        assert has_bound_sources(bound)


class TestPlanCache:
    def test_hit_miss_eviction_accounting(self):
        engine = LifeStreamEngine(window_size=1000, plan_cache=PlanCache(capacity=2))
        shapes = [
            _cohort_query,
            _join_query,
            lambda: Query.source("s", frequency_hz=500).sliding_window(200, 100).max(),
        ]
        sources = lambda: {"s": _source()}  # noqa: E731
        for shape in shapes:
            engine.compile(shape(), sources())
        stats = engine.plan_cache.stats
        assert (stats.hits, stats.misses, stats.evictions) == (0, 3, 1)
        assert len(engine.plan_cache) == 2
        # The LRU victim was the first shape: compiling it again misses and
        # evicts the now-oldest second shape.
        engine.compile(shapes[0](), sources())
        assert engine.plan_cache.stats.misses == 4
        assert engine.plan_cache.stats.evictions == 2
        # The third and first shapes are resident.
        engine.compile(shapes[2](), sources())
        engine.compile(shapes[0](), sources())
        assert engine.plan_cache.stats.hits == 2
        assert engine.plan_cache.stats.hit_rate == pytest.approx(2 / 6)

    def test_clear_drops_entries_keeps_counters(self):
        cache = PlanCache(capacity=4)
        engine = LifeStreamEngine(window_size=1000, plan_cache=cache)
        engine.compile(_cohort_query(), {"s": _source()})
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.misses == 1
        engine.compile(_cohort_query(), {"s": _source()})
        assert cache.stats.misses == 2

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ExecutionError):
            PlanCache(capacity=0)


class TestEngineCachePlumbing:
    @pytest.mark.parametrize("targeted", [True, False])
    def test_cached_compiles_run_bit_identical(self, targeted):
        cached = LifeStreamEngine(window_size=1000, plan_cache=PlanCache())
        plain = LifeStreamEngine(window_size=1000)
        for seed in range(4):
            source = _source(seed)
            reference = plain.run(_cohort_query(), {"s": source}, targeted=targeted)
            candidate = cached.run(_cohort_query(), {"s": source}, targeted=targeted)
            _assert_identical(reference, candidate, f"seed={seed} targeted={targeted}")
        assert cached.plan_cache.stats.misses == 1
        assert cached.plan_cache.stats.hits == 3

    def test_cache_hit_still_requires_all_sources(self):
        engine = LifeStreamEngine(window_size=1000, plan_cache=PlanCache())
        engine.compile(_cohort_query(), {"s": _source()})
        with pytest.raises(QueryConstructionError, match="no such"):
            engine.compile(_cohort_query(), {})

    def test_bound_source_queries_bypass_the_cache(self):
        engine = LifeStreamEngine(window_size=1000, plan_cache=PlanCache())
        for seed in range(3):
            query = Query.from_source(_source(seed)).select(lambda v: v + 1)
            assert len(engine.run(query)) > 0
        assert engine.plan_cache.stats.lookups == 0

    def test_instantiate_rejects_mismatched_grid(self):
        engine = LifeStreamEngine(window_size=1000)
        template = engine.compile(_cohort_query(), {"s": _source()}).plan
        wrong_grid = ArraySource(
            np.arange(100, dtype=np.int64) * 4, np.zeros(100), period=4
        )
        with pytest.raises(CompilationError, match="descriptor"):
            template.instantiate({"s": wrong_grid})

    def test_instantiate_rejects_unknown_source_name(self):
        engine = LifeStreamEngine(window_size=1000)
        template = engine.compile(_cohort_query(), {"s": _source()}).plan
        with pytest.raises(CompilationError, match="no source node"):
            template.instantiate({"nope": _source()})

    def test_repeated_source_name_rebinds_every_node(self):
        # Two separate Query.source("s") spec nodes (no multicast sharing)
        # must both be rebound on a cache hit — regression: the second node
        # used to keep the template client's stream, leaking one client's
        # data into another's results.
        def query():
            left = Query.source("s", frequency_hz=500).select(lambda v: v * 2)
            right = Query.source("s", frequency_hz=500).tumbling_window(100).mean()
            return left.join(right, lambda lv, rv: lv - rv)

        cached = LifeStreamEngine(window_size=1000, plan_cache=PlanCache())
        plain = LifeStreamEngine(window_size=1000)
        for seed in (1, 2):
            reference = plain.run(query(), {"s": _source(seed)})
            candidate = cached.run(query(), {"s": _source(seed)})
            _assert_identical(reference, candidate, f"repeated source name, seed={seed}")
        assert cached.plan_cache.stats.hits == 1

    def test_extra_sources_tolerated_like_direct_compiles(self):
        # build_plan ignores sources the query does not reference; the
        # cached path (both the miss and the hit branch) must match.
        engine = LifeStreamEngine(window_size=1000, plan_cache=PlanCache())
        first = engine.run(_cohort_query(), {"s": _source(1), "unused": _source(2)})
        assert len(first) > 0
        second = engine.run(_cohort_query(), {"s": _source(2), "unused": _source(1)})
        assert len(second) > 0
        assert engine.plan_cache.stats.hits == 1

    def test_instantiated_plans_share_no_runtime_state(self):
        engine = LifeStreamEngine(window_size=1000, plan_cache=PlanCache())
        first = engine.compile(_cohort_query(), {"s": _source(1)})
        second = engine.compile(_cohort_query(), {"s": _source(2)})
        assert first.plan.sink is not second.plan.sink
        first_windows = {id(n.fwindow) for n in first.plan.sink.iter_nodes()}
        second_windows = {id(n.fwindow) for n in second.plan.sink.iter_nodes()}
        assert not first_windows & second_windows
        # ...but they do share the immutable pass output.
        assert first.plan.memory_plan is second.plan.memory_plan


class TestStreamingService:
    @pytest.mark.parametrize("backend_name", sorted(BACKENDS))
    def test_service_sessions_bit_identical_to_independent_ones(self, backend_name):
        seeds = range(4)
        reference = _independent_session_results(
            _cohort_query, seeds, BACKENDS[backend_name]()
        )
        service = StreamingService(window_size=1000, backend=BACKENDS[backend_name]())
        for seed in seeds:
            service.open(f"client-{seed}", _cohort_query(), {"s": ReplaySource(_source(seed))})
        for watermark in WATERMARKS:
            service.pump(watermark)
        service.finish()
        for client_id, expected in reference.items():
            _assert_identical(
                expected, service.result(client_id), f"{client_id} on {backend_name}"
            )
        service.close_all()

    def test_n_clients_one_compile(self):
        service = StreamingService(window_size=1000)
        for seed in range(8):
            service.open(f"client-{seed}", _cohort_query(), {"s": ReplaySource(_source(seed))})
        assert service.cache_stats.misses == 1
        assert service.cache_stats.hits == 7
        assert not service._clients["client-0"].cache_hit
        assert all(service._clients[f"client-{i}"].cache_hit for i in range(1, 8))
        service.close_all()

    def test_pump_orders_ready_before_idle(self):
        service = StreamingService(window_size=1000)
        service.open("fresh", _cohort_query(), {"s": ReplaySource(_source(1))})
        service.open("stale", _cohort_query(), {"s": ReplaySource(_source(2))})
        service.pump({"stale": 5000})
        # "stale" gets a re-announcement, "fresh" genuinely new data.
        report = service.pump({"fresh": 4000, "stale": 5000})
        assert report.order == ["fresh", "stale"]
        assert report.ticks["stale"].windows_run == 0
        assert report.ticks["fresh"].windows_run > 0
        assert report.windows_run == report.ticks["fresh"].windows_run
        service.close_all()

    def test_pump_subset_and_unknown_clients(self):
        service = StreamingService(window_size=1000)
        service.open("a", _cohort_query(), {"s": ReplaySource(_source(1))})
        service.open("b", _cohort_query(), {"s": ReplaySource(_source(2))})
        report = service.pump({"a": 3000})
        assert set(report.order) == {"a"}
        assert service.session("b").watermark < 3000
        with pytest.raises(ValueError, match="unknown client.*'c'"):
            service.pump({"c": 1000})
        service.close_all()

    def test_pump_validates_batch_up_front(self):
        # Satellite contract: unknown ids and non-int watermarks raise a
        # clear ValueError naming the offending key, before any session
        # ticks; an empty batch is a cheap no-op.
        service = StreamingService(window_size=1000)
        service.open("a", _cohort_query(), {"s": ReplaySource(_source(1))})
        with pytest.raises(ValueError, match="watermark for client 'a'.*3000.5"):
            service.pump({"a": 3000.5})
        with pytest.raises(ValueError, match="watermark for client 'a'.*str"):
            service.pump({"a": "3000"})
        with pytest.raises(ValueError, match="watermark for client 'a'.*bool"):
            service.pump({"a": True})
        with pytest.raises(ValueError, match="watermark.*must be an integer"):
            service.pump(None)
        # Nothing above ticked the session.
        assert service.session("a").ticks == []
        # numpy integers are integers.
        report = service.pump({"a": np.int64(3000)})
        assert report.order == ["a"]
        # Empty batch: no work, no error, empty report.
        empty = service.pump({})
        assert empty.order == [] and empty.ticks == {}
        service.close_all()

    def test_watermark_regression_propagates(self):
        service = StreamingService(window_size=1000)
        service.open("a", _cohort_query(), {"s": ReplaySource(_source(1))})
        service.pump(5000)
        with pytest.raises(ExecutionError, match="regression"):
            service.pump(3000)
        service.close_all()

    def test_duplicate_and_unknown_client_ids_rejected(self):
        service = StreamingService(window_size=1000)
        service.open("a", _cohort_query(), {"s": ReplaySource(_source(1))})
        with pytest.raises(ExecutionError, match="already has"):
            service.open("a", _cohort_query(), {"s": ReplaySource(_source(2))})
        with pytest.raises(ExecutionError, match="no open session"):
            service.result("zz")
        service.close_all()

    def test_one_shot_run_racing_an_open_service_session_is_rejected(self):
        service = StreamingService(window_size=1000)
        service.open("a", _cohort_query(), {"s": ReplaySource(_source(1))})
        compiled = service.compiled_query("a")
        with pytest.raises(ExecutionError, match="open StreamingSession"):
            compiled.run()
        service.pump(12001)
        service.close("a")
        # Closing the client releases the plan for one-shot use again (the
        # replay source keeps its advanced watermark).
        assert len(compiled.run()) > 0

    def test_context_manager_closes_sessions(self):
        with StreamingService(window_size=1000) as service:
            session = service.open("a", _cohort_query(), {"s": ReplaySource(_source(1))})
            service.pump(4000)
        assert session.closed

    def test_results_and_len(self):
        service = StreamingService(window_size=1000)
        service.open("a", _cohort_query(), {"s": ReplaySource(_source(1))})
        service.open("b", _cohort_query(), {"s": ReplaySource(_source(2))})
        assert len(service) == 2
        service.pump(12001)
        service.finish()
        results = service.results()
        assert set(results) == {"a", "b"}
        assert all(len(result) > 0 for result in results.values())
        service.close_all()


class TestShardedStreamingService:
    def _register_cohort(self, service, seeds):
        for seed in seeds:
            service.register(
                f"client-{seed}", _cohort_query(), {"s": ReplaySource(_source(seed))}
            )

    def test_in_process_fallback_matches_independent_sessions(self):
        seeds = range(3)
        reference = _independent_session_results(_cohort_query, seeds)
        service = ShardedStreamingService(n_workers=1, window_size=1000)
        self._register_cohort(service, seeds)
        service.start()
        assert service.execution_mode == "in-process"
        assert service.n_shards == 1
        for watermark in WATERMARKS:
            service.pump(watermark)
        service.finish()
        results = service.results()
        for client_id, expected in reference.items():
            _assert_identical(expected, results[client_id], client_id)
        service.close()

    @pytest.mark.skipif(
        not ShardedStreamingService._fork_available(), reason="fork not available"
    )
    def test_forked_shards_match_independent_sessions(self):
        seeds = range(5)
        reference = _independent_session_results(_cohort_query, seeds)
        service = ShardedStreamingService(n_workers=2, window_size=1000)
        self._register_cohort(service, seeds)
        service.start()
        assert service.execution_mode == "forked"
        assert service.n_shards == 2
        for watermark in WATERMARKS:
            report = service.pump(watermark)
            assert set(report.order) == {f"client-{seed}" for seed in seeds}
        service.finish()
        results = service.results()
        for client_id, expected in reference.items():
            _assert_identical(expected, results[client_id], client_id)
        # Every shard inherited the pre-warmed cache: one compile globally.
        for stats in service.cache_stats():
            assert stats.misses == 1
        service.close()

    @pytest.mark.skipif(
        not ShardedStreamingService._fork_available(), reason="fork not available"
    )
    def test_forked_pump_with_per_client_watermarks(self):
        seeds = range(4)
        service = ShardedStreamingService(n_workers=2, window_size=1000)
        self._register_cohort(service, seeds)
        service.start()
        report = service.pump({"client-0": 4000, "client-3": 6000})
        assert set(report.order) == {"client-0", "client-3"}
        with pytest.raises(ValueError, match="unknown client"):
            service.pump({"nope": 1000})
        service.close()

    @pytest.mark.skipif(
        not ShardedStreamingService._fork_available(), reason="fork not available"
    )
    def test_shard_errors_do_not_desync_the_protocol(self):
        # Regression: a shard error used to leave the other shards' replies
        # unread, shifting every later command's reply by one.
        seeds = range(4)
        service = ShardedStreamingService(n_workers=2, window_size=1000)
        self._register_cohort(service, seeds)
        service.start()
        service.pump(5000)
        with pytest.raises(ExecutionError, match="regression"):
            service.pump(3000)
        report = service.pump(6000)
        assert set(report.order) == {f"client-{seed}" for seed in seeds}
        service.finish()
        results = service.results()
        assert set(results) == {f"client-{seed}" for seed in seeds}
        service.close()

    @pytest.mark.skipif(
        not ShardedStreamingService._fork_available(), reason="fork not available"
    )
    def test_worker_death_is_detected_and_named(self):
        # Satellite contract: a worker dying mid-command must not leave the
        # parent blocked on the pipe — the death is detected, the remaining
        # workers are reaped, and the error names the dead shard and the
        # clients whose sessions it held.
        import os
        import signal

        seeds = range(4)
        service = ShardedStreamingService(n_workers=2, window_size=1000)
        self._register_cohort(service, seeds)
        service.start()
        assert service.execution_mode == "forked"
        service.pump(4000)
        victim = service._workers[1]
        os.kill(victim.pid, signal.SIGKILL)
        victim.join(timeout=10)
        with pytest.raises(ExecutionError, match=r"shard 1 died") as excinfo:
            service.pump(6000)
        # The error names the dead shard's clients (round-robin: 1 and 3).
        assert "client-1" in str(excinfo.value)
        assert "client-3" in str(excinfo.value)
        # Every worker was reaped, and the service is closed for good.
        assert all(not worker.is_alive() for worker in service._workers)
        with pytest.raises(ExecutionError, match="closed"):
            service.pump(8000)
        service.close()  # idempotent no-op after the failure

    def test_lifecycle_errors(self):
        service = ShardedStreamingService(n_workers=2, window_size=1000)
        with pytest.raises(ExecutionError, match="not been started"):
            service.pump(1000)
        with pytest.raises(ExecutionError, match="no clients registered"):
            service.start()
        service.register("a", _cohort_query(), {"s": ReplaySource(_source(1))})
        with pytest.raises(ExecutionError, match="already registered"):
            service.register("a", _cohort_query(), {"s": ReplaySource(_source(1))})
        service.start()
        with pytest.raises(ExecutionError, match="before start"):
            service.register("b", _cohort_query(), {"s": ReplaySource(_source(2))})
        with pytest.raises(ExecutionError, match="already started"):
            service.start()
        service.close()
        service.close()  # idempotent
        with pytest.raises(ExecutionError, match="closed"):
            service.pump(1000)
        with pytest.raises(ExecutionError):
            ShardedStreamingService(n_workers=0)
