"""Tokenizer and parser unit tests: structure, positions, and recovery.

The front-end contract under test: parsing is *total* — malformed input
becomes LS401 (lexical) / LS402 (syntax) diagnostics anchored at
``file:line:col``, never an exception — and a failed statement never hides
the statements after it.
"""

from repro.lang import tokens as T
from repro.lang.ast import (
    Arg,
    Call,
    Chain,
    LetDecl,
    NumberLit,
    Program,
    Ref,
    SinkDecl,
    SourceDecl,
    StringLit,
)
from repro.lang.parser import parse


def codes(diagnostics):
    return [d.code for d in diagnostics]


class TestTokenizer:
    def test_number_units(self):
        stream = T.tokenize("500hz 1s 20ms 2min 0.08 3e2")
        kinds = [t.kind for t in stream.tokens]
        assert kinds == [T.NUMBER] * 6 + [T.EOF]
        assert [(t.value, t.unit) for t in stream.tokens[:-1]] == [
            (500, "hz"),
            (1, "s"),
            (20, "ms"),
            (2, "min"),
            (0.08, None),
            (300.0, None),
        ]
        assert stream.diagnostics == []

    def test_int_stays_int_float_stays_float(self):
        stream = T.tokenize("5 5.0")
        five, five_oh = stream.tokens[0].value, stream.tokens[1].value
        assert isinstance(five, int) and isinstance(five_oh, float)

    def test_unknown_unit_is_ls401(self):
        stream = T.tokenize("source x rate 5khz;")
        assert codes(stream.diagnostics) == ["LS401"]
        assert "khz" in stream.diagnostics[0].message
        assert stream.diagnostics[0].anchor == "<query>:1:15"

    def test_byte_soup_reported_once_per_run(self):
        stream = T.tokenize("@@@@ $$$$")
        assert codes(stream.diagnostics) == ["LS401", "LS401"]

    def test_unterminated_string(self):
        stream = T.tokenize('sink s = f("abc\n')
        assert "LS401" in codes(stream.diagnostics)
        assert "unterminated" in stream.diagnostics[0].message

    def test_unknown_escape(self):
        stream = T.tokenize('"a\\qb"')
        assert codes(stream.diagnostics) == ["LS401"]
        assert stream.tokens[0].kind == T.STRING
        assert stream.tokens[0].value == "aqb"  # bad escape dropped, scan continues

    def test_stray_pipe(self):
        stream = T.tokenize("a | b")
        assert codes(stream.diagnostics) == ["LS401"]
        assert "|>" in stream.diagnostics[0].message

    def test_comments_and_positions(self):
        stream = T.tokenize("# header\nsource ecg rate 500hz;\n")
        first = stream.tokens[0]
        assert (first.kind, first.value, first.line, first.col) == (T.IDENT, "source", 2, 1)

    def test_string_escapes_decode(self):
        stream = T.tokenize('"a\\"b\\\\c\\nd\\te"')
        assert stream.tokens[0].value == 'a"b\\c\nd\te'


class TestParser:
    def test_full_program_structure(self):
        result = parse(
            "source ecg rate 500hz;\n"
            "let clean = ecg |> transform(window=1s, kernel=fill_mean(32));\n"
            "sink out = join(clean, ecg, combine=sub);\n"
        )
        assert result.ok and result.diagnostics == []
        assert result.program == Program(
            statements=(
                SourceDecl(name="ecg", rate=NumberLit(500, "hz")),
                LetDecl(
                    name="clean",
                    chain=Chain(
                        head=Ref("ecg"),
                        ops=(
                            Call(
                                "transform",
                                (
                                    Arg(NumberLit(1, "s"), name="window"),
                                    Arg(
                                        Chain(head=Call("fill_mean", (Arg(NumberLit(32)),))),
                                        name="kernel",
                                    ),
                                ),
                            ),
                        ),
                    ),
                ),
                SinkDecl(
                    name="out",
                    chain=Chain(
                        head=Call(
                            "join",
                            (
                                Arg(Chain(head=Ref("clean"))),
                                Arg(Chain(head=Ref("ecg"))),
                                Arg(Chain(head=Ref("sub")), name="combine"),
                            ),
                        )
                    ),
                ),
            )
        )

    def test_negative_numbers(self):
        result = parse("sink s = x |> shift(offset=-20ms);")
        assert result.ok
        (sink,) = result.program.statements
        assert sink.chain.ops[0].args[0].value == NumberLit(-20, "ms")

    def test_parenthesised_chain_flattens(self):
        plain = parse("sink s = x |> f() |> g();").program
        parens = parse("sink s = (x |> f()) |> g();").program
        assert plain == parens

    def test_syntax_error_is_ls402_with_anchor(self):
        result = parse("sink s = |> f();", filename="q.lsq")
        assert not result.ok
        assert codes(result.diagnostics) == ["LS402"]
        file, line, col = result.diagnostics[0].anchor.rsplit(":", 2)
        assert file == "q.lsq" and line == "1" and int(col) >= 1

    def test_recovery_keeps_later_statements(self):
        result = parse(
            "source ecg rate;\n"  # bad: clause without a number
            "source abp rate 125hz;\n"
            "sink s = abp;\n"
        )
        assert codes(result.diagnostics) == ["LS402"]
        kept = [type(s).__name__ for s in result.program.statements]
        assert kept == ["SourceDecl", "SinkDecl"]
        assert result.program.statements[0].name == "abp"

    def test_two_errors_both_reported(self):
        result = parse("sink a = ;\nsink b = |> f();\n")
        assert codes(result.diagnostics) == ["LS402", "LS402"]

    def test_duplicate_source_clause(self):
        result = parse("source x rate 5hz rate 6hz;")
        assert codes(result.diagnostics) == ["LS402"]
        assert "duplicate" in result.diagnostics[0].message

    def test_missing_semicolon(self):
        result = parse("sink s = x |> f()")
        assert codes(result.diagnostics) == ["LS402"]

    def test_empty_program(self):
        result = parse("")
        assert result.ok and result.program == Program()

    def test_never_raises_on_truncation(self):
        full = "sink s = join(a, b |> f(window=1s), combine=sub);"
        for cut in range(len(full)):
            parse(full[:cut])  # totality: no exception at any truncation
