"""Grammar fuzz suite (hypothesis).

Two totality properties anchor the front-end:

* **round trip** — for any well-formed AST, ``parse(format_program(ast))``
  reproduces the AST exactly (positions excluded via ``compare=False``),
  so the canonical formatter and the grammar agree on every construct;
* **byte soup** — arbitrary text *never* raises: it produces LS4xx
  diagnostics with ``file:line:col`` anchors, and when no error is
  reported the program resolved to a runnable query.

The strategies mirror the parser's canonical shapes: argument values that
are names or calls are always wrapped in a :class:`Chain` (the parser's
``value()`` does the same), chain heads are ``Ref | Call`` only, and
generated identifiers avoid the three statement keywords.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang.ast import (
    Arg,
    Call,
    Chain,
    LetDecl,
    NumberLit,
    Program,
    Ref,
    SinkDecl,
    SourceDecl,
    StringLit,
)
from repro.lang.formatter import format_program
from repro.lang.parser import parse
from repro.lang.resolver import compile_text

# -- strategies -------------------------------------------------------------

_KEYWORDS = {"source", "let", "sink"}

idents = st.from_regex(r"[a-z_][a-z0-9_]{0,7}", fullmatch=True).filter(
    lambda name: name not in _KEYWORDS
)

number_lits = st.builds(
    NumberLit,
    value=st.one_of(
        st.integers(-(10**9), 10**9),
        st.floats(-1e9, 1e9, allow_nan=False, allow_infinity=False),
    ),
    unit=st.sampled_from([None, "hz", "ms", "s", "min"]),
)

string_lits = st.builds(StringLit, value=st.text(max_size=12))

refs = st.builds(Ref, name=idents)


def calls(values):
    args = st.builds(Arg, value=values, name=st.none() | idents)
    return st.builds(Call, name=idents, args=st.lists(args, max_size=3).map(tuple))


def chains(values):
    inner = calls(values)
    return st.builds(
        Chain, head=st.one_of(refs, inner), ops=st.lists(inner, max_size=2).map(tuple)
    )


_leaves = st.one_of(number_lits, string_lits)
# Nested pipelines as argument values (how join operands embed chains).
values = st.recursive(_leaves, lambda children: chains(children), max_leaves=6)

statements = st.one_of(
    st.builds(
        SourceDecl,
        name=idents,
        rate=st.none() | number_lits,
        period=st.none() | number_lits,
        offset=st.none() | number_lits,
    ),
    st.builds(LetDecl, name=idents, chain=chains(values)),
    st.builds(SinkDecl, name=idents, chain=chains(values)),
)

programs = st.builds(Program, statements=st.lists(statements, max_size=4).map(tuple))

# Character soup biased toward LSQL-ish fragments so the fuzzer reaches
# deep parser/resolver paths, not just the tokenizer's error branch.
_lsqlish = st.text(
    alphabet=st.sampled_from(sorted(set('source let sink rate period offset join |>(),;=-."#\n\t 0123456789ehzmsin_x'))),
    max_size=80,
)


# -- properties -------------------------------------------------------------


class TestRoundTrip:
    @settings(max_examples=200, deadline=None)
    @given(programs)
    def test_format_then_parse_reproduces_ast(self, program):
        text = format_program(program)
        result = parse(text)
        assert result.diagnostics == []
        assert result.program == program

    @settings(max_examples=100, deadline=None)
    @given(programs)
    def test_formatting_is_idempotent(self, program):
        once = format_program(program)
        assert format_program(parse(once).program) == once


class TestTotality:
    @settings(max_examples=300, deadline=None)
    @given(st.one_of(st.text(max_size=60), _lsqlish))
    def test_any_text_yields_ls4xx_never_raises(self, text):
        resolved = compile_text(text, filename="fuzz.lsq")
        for d in resolved.diagnostics:
            assert d.code.startswith("LS4"), d
            assert d.check == "lang"
            assert d.severity in ("error", "warning")
            file, line, col = d.anchor.rsplit(":", 2)
            assert file == "fuzz.lsq"
            assert int(line) >= 1 and int(col) >= 1
        if resolved.ok:
            # No errors: the program resolved all the way to a query.
            assert resolved.query is not None

    @settings(max_examples=150, deadline=None)
    @given(programs)
    def test_resolver_is_total_over_well_formed_programs(self, program):
        # Structurally valid but semantically arbitrary programs (unknown
        # operators, bad units, duplicate names...) must resolve to
        # diagnostics, never exceptions.
        resolved = compile_text(format_program(program))
        assert resolved.ok == (
            not any(d.severity == "error" for d in resolved.diagnostics)
        )
