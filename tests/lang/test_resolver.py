"""Resolver tests: builder parity (plan_signature equality) and LS4xx coverage.

The headline contract: an LSQL file resolves to *the same* plan signature
as the Python builder that writes the equivalent query — so the PlanCache
shares one compiled template between the two authoring paths — and every
authoring mistake surfaces as an anchored LS4xx diagnostic, never a
traceback.
"""

from pathlib import Path

import numpy as np

from repro.core.engine import LifeStreamEngine
from repro.lang.resolver import compile_text
from repro.lang.runner import run_resolved, synthesize_sources
from repro.serve.cache import plan_signature

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def diag(resolved, code):
    found = [d for d in resolved.diagnostics if d.code == code]
    assert found, f"expected {code}, got {[d.code for d in resolved.diagnostics]}"
    return found[0]


class TestBuilderParity:
    """examples/*.lsq compile to the exact signatures of the Python builders."""

    def assert_signatures_match(self, lsq_path, builder_query):
        resolved = compile_text(lsq_path.read_text(), filename=lsq_path.name)
        assert resolved.ok, [d.render() for d in resolved.diagnostics]
        sources = synthesize_sources(resolved.descriptors, duration_seconds=2.0, seed=0)
        for level in (0, 2):
            lsql_sig = plan_signature(
                resolved.query, sources, window_size=10_000, optimization_level=level
            )
            builder_sig = plan_signature(
                builder_query, sources, window_size=10_000, optimization_level=level
            )
            assert lsql_sig == builder_sig
        return resolved

    def test_e2e_matches_lifestream_builder(self):
        from repro.pipelines.e2e import lifestream_e2e_query

        self.assert_signatures_match(EXAMPLES / "e2e.lsq", lifestream_e2e_query())

    def test_linezero_matches_builder(self):
        from repro.pipelines.linezero import linezero_query

        self.assert_signatures_match(EXAMPLES / "linezero.lsq", linezero_query())

    def test_e2e_runs_bit_identical_to_builder(self):
        from repro.pipelines.e2e import lifestream_e2e_query

        resolved = compile_text((EXAMPLES / "e2e.lsq").read_text())
        sources = synthesize_sources(resolved.descriptors, duration_seconds=2.0, seed=0)
        engine = LifeStreamEngine(window_size=10_000)
        via_lsql = engine.run(resolved.query, sources=sources)
        via_builder = engine.run(lifestream_e2e_query(), sources=sources)
        assert np.array_equal(via_lsql.times, via_builder.times)
        assert np.array_equal(via_lsql.values, via_builder.values, equal_nan=True)
        assert np.array_equal(via_lsql.durations, via_builder.durations)

    def test_run_resolved_emits(self):
        resolved = compile_text((EXAMPLES / "linezero.lsq").read_text())
        result = run_resolved(resolved, duration_seconds=2.0, window_size=10_000)
        assert result.stats.events_ingested > 0


class TestSharing:
    def test_let_is_multicast_one_spec_node(self):
        resolved = compile_text(
            "source ecg rate 500hz;\n"
            "let base = ecg |> aggregate(window=100);\n"
            "sink s = join(base, base |> shift(offset=10), combine=sub);\n"
        )
        assert resolved.ok
        join_spec = resolved.query.spec
        left, right_tail = join_spec.inputs
        # Both join operands reference the *same* aggregate node object —
        # the textual form of the builders' multicast.
        assert left is right_tail.inputs[0]

    def test_source_refs_share_one_node(self):
        resolved = compile_text(
            "source ecg rate 500hz;\n"
            "sink s = join(ecg |> shift(offset=2), ecg, combine=sub);\n"
        )
        assert resolved.ok
        left, right = resolved.query.spec.inputs
        assert left.inputs[0] is right


class TestDiagnostics:
    def test_unknown_name_ls403(self):
        resolved = compile_text("sink s = nope;", filename="q.lsq")
        d = diag(resolved, "LS403")
        assert "nope" in d.message and d.anchor == "q.lsq:1:10"
        assert resolved.query is None and not resolved.ok

    def test_unknown_operator_ls403_lists_operators(self):
        resolved = compile_text("source x rate 5hz;\nsink s = x |> frobnicate();")
        d = diag(resolved, "LS403")
        assert "frobnicate" in d.message and "transform" in d.message

    def test_unknown_kernel_ls403(self):
        resolved = compile_text(
            "source x rate 5hz;\nsink s = x |> transform(window=1s, kernel=warp());"
        )
        assert "warp" in diag(resolved, "LS403").message

    def test_bad_argument_ls404(self):
        resolved = compile_text(
            "source x rate 5hz;\nsink s = x |> transform(window=1s, krnl=zscore());"
        )
        assert "krnl" in diag(resolved, "LS404").message

    def test_missing_required_argument_ls404(self):
        resolved = compile_text("source x rate 5hz;\nsink s = x |> transform(window=1s);")
        assert "kernel" in diag(resolved, "LS404").message

    def test_duplicate_argument_ls404(self):
        resolved = compile_text(
            "source x rate 5hz;\nsink s = x |> aggregate(100, window=100);"
        )
        assert "duplicate" in diag(resolved, "LS404").message

    def test_non_integral_period_ls404(self):
        resolved = compile_text("source x rate 3hz;\nsink s = x;")
        assert diag(resolved, "LS404").severity == "error"

    def test_rate_and_period_conflict_ls404(self):
        resolved = compile_text("source x rate 5hz period 10;\nsink s = x;")
        assert "exactly one" in diag(resolved, "LS404").message

    def test_hz_used_as_duration_ls404(self):
        resolved = compile_text("source x rate 5hz;\nsink s = x |> shift(offset=5hz);")
        assert "rate unit" in diag(resolved, "LS404").message

    def test_overflowing_literal_ls404_not_crash(self):
        resolved = compile_text("source x period 1e999;\nsink s = x;")
        assert "finite" in diag(resolved, "LS404").message

    def test_out_of_range_ticks_ls404(self):
        resolved = compile_text("source x period 9e300s;\nsink s = x;")
        assert "range" in diag(resolved, "LS404").message

    def test_negative_source_offset_ls404_not_crash(self):
        resolved = compile_text("source x period 1 offset -1;\nsink s = x;")
        assert "non-negative" in diag(resolved, "LS404").message

    def test_no_sink_ls405(self):
        resolved = compile_text("source x rate 5hz;")
        assert "no sink" in diag(resolved, "LS405").message

    def test_multiple_sinks_ls405(self):
        resolved = compile_text(
            "source x rate 5hz;\nsink a = x;\nsink b = x;"
        )
        assert "multiple sinks" in diag(resolved, "LS405").message

    def test_duplicate_declaration_ls405(self):
        resolved = compile_text("source x rate 5hz;\nlet x = x;\nsink s = x;")
        assert "duplicate" in diag(resolved, "LS405").message

    def test_unused_source_ls406_warning_keeps_ok(self):
        resolved = compile_text(
            "source x rate 5hz;\nsource y rate 5hz;\nsink s = x;"
        )
        d = diag(resolved, "LS406")
        assert d.severity == "warning" and "y" in d.message
        assert resolved.ok and resolved.query is not None

    def test_unused_let_ls406_warning(self):
        resolved = compile_text(
            "source x rate 5hz;\nlet unused = x |> shift(offset=1);\nsink s = x;"
        )
        assert "unused" in diag(resolved, "LS406").message

    def test_failed_let_does_not_cascade(self):
        resolved = compile_text(
            "source x rate 5hz;\n"
            "let bad = x |> frobnicate();\n"
            "sink s = bad |> shift(offset=1);\n"
        )
        errors = [d for d in resolved.diagnostics if d.severity == "error"]
        # One LS403 for the bad let; the sink's reference to it stays silent.
        assert [d.code for d in errors] == ["LS403"]

    def test_failed_source_does_not_cascade(self):
        resolved = compile_text("source x rate 3hz;\nsink s = x |> shift(offset=1);")
        errors = [d for d in resolved.diagnostics if d.severity == "error"]
        assert [d.code for d in errors] == ["LS404"]

    def test_chain_op_at_head_ls404(self):
        resolved = compile_text("source x rate 5hz;\nsink s = transform(window=1s);")
        assert "|>" in diag(resolved, "LS404").message

    def test_unknown_combiner_ls403(self):
        resolved = compile_text(
            "source x rate 5hz;\nsink s = join(x, x, combine=bogus);"
        )
        d = diag(resolved, "LS403")
        assert "bogus" in d.message and "sub" in d.message
