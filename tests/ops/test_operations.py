"""Tests for the Table 3 operations expressed as LifeStream queries and
their Trill-baseline counterparts."""

import numpy as np
import pytest

from repro.baselines.numlib import ops as numlib_ops
from repro.baselines.trill import TrillEngine, TrillInput
from repro.core.engine import LifeStreamEngine
from repro.core.query import Query
from repro.core.sources import ArraySource
from repro.data.gaps import small_random_gaps
from repro.data.physio import generate_ecg
from repro.ops.operations import (
    OPERATION_NAMES,
    lifestream_normalize,
    lifestream_normalize_multicast,
    lifestream_operation,
    trill_operation,
)


@pytest.fixture(scope="module")
def ecg_10s():
    return generate_ecg(10.0, seed=0)


class TestLifeStreamOperations:
    def test_every_operation_builds_and_runs(self, ecg_10s):
        times, values = ecg_10s
        source = ArraySource(times, values, period=2)
        engine = LifeStreamEngine(window_size=1000)
        for name in OPERATION_NAMES:
            query = lifestream_operation(name, "ecg", frequency_hz=500, window=1000)
            result = engine.run(query, sources={"ecg": source})
            assert len(result) > 0, name

    def test_unknown_operation_rejected(self):
        with pytest.raises(ValueError):
            lifestream_operation("fourier", "ecg", frequency_hz=500)

    def test_normalize_matches_numlib(self, ecg_10s):
        times, values = ecg_10s
        source = ArraySource(times, values, period=2)
        engine = LifeStreamEngine(window_size=1000)
        query = lifestream_normalize(Query.source("ecg", frequency_hz=500), window=1000)
        result = engine.run(query, sources={"ecg": source})
        expected = numlib_ops.normalize(values, window_samples=500)
        np.testing.assert_allclose(result.values, expected, atol=1e-9)

    def test_normalize_multicast_formulation_is_close(self, ecg_10s):
        # The pure-temporal-primitive formulation (multicast + aggregates)
        # computes the same standard scores as the transform-based one.
        times, values = ecg_10s
        source = ArraySource(times, values, period=2)
        engine = LifeStreamEngine(window_size=1000)
        transform_based = engine.run(
            lifestream_normalize(Query.source("ecg", frequency_hz=500), window=1000),
            sources={"ecg": source},
        )
        primitive_based = engine.run(
            lifestream_normalize_multicast(Query.source("ecg", frequency_hz=500), window=1000),
            sources={"ecg": source},
        )
        assert len(transform_based) == len(primitive_based)
        np.testing.assert_allclose(transform_based.values, primitive_based.values, atol=1e-9)

    def test_resample_doubles_event_count(self, ecg_10s):
        # 500 Hz has a 2-tick period; the benchmark resamples to a 1-tick
        # grid, doubling the number of events.
        times, values = ecg_10s
        source = ArraySource(times, values, period=2)
        engine = LifeStreamEngine(window_size=1000)
        query = lifestream_operation("resample", "ecg", frequency_hz=500, window=1000)
        result = engine.run(query, sources={"ecg": source})
        assert len(result) == 2 * times.size

    def test_fillmean_restores_small_gaps(self, ecg_10s):
        times, values = ecg_10s
        gappy_times, gappy_values = small_random_gaps(times, values, 0.02, max_gap_events=3, seed=1)
        source = ArraySource(gappy_times, gappy_values, period=2)
        engine = LifeStreamEngine(window_size=1000)
        query = lifestream_operation("fillmean", "ecg", frequency_hz=500, window=1000)
        result = engine.run(query, sources={"ecg": source})
        assert len(result) > gappy_times.size
        assert len(result) <= times.size


class TestTrillOperations:
    def test_every_operation_builds_and_runs(self, ecg_10s):
        times, values = ecg_10s
        engine = TrillEngine(batch_size=2048)
        for name in OPERATION_NAMES:
            operators = trill_operation(name, frequency_hz=500, window=1000)
            out_times, out_values, _ = engine.run_unary(TrillInput(times, values, 2), operators)
            assert out_times.size > 0, name

    def test_unknown_operation_rejected(self):
        with pytest.raises(ValueError):
            trill_operation("wavelet", frequency_hz=500)

    def test_trill_normalize_agrees_with_lifestream(self, ecg_10s):
        times, values = ecg_10s
        trill = TrillEngine(batch_size=2048)
        _, trill_values, _ = trill.run_unary(
            TrillInput(times, values, 2), trill_operation("normalize", 500, window=1000)
        )
        source = ArraySource(times, values, period=2)
        lifestream = LifeStreamEngine(window_size=1000).run(
            lifestream_operation("normalize", "ecg", 500, window=1000), sources={"ecg": source}
        )
        np.testing.assert_allclose(trill_values, lifestream.values, atol=1e-9)
