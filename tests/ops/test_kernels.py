"""Tests for the shared numeric kernels behind the Table 3 operations."""

import numpy as np
import pytest

from repro.ops.kernels import (
    clamp_kernel,
    fill_const_kernel,
    fill_mean_kernel,
    fir_filter_kernel,
    interpolate_gaps_kernel,
    zscore_kernel,
)


def mask_with_gap(n: int, gap: slice) -> np.ndarray:
    mask = np.ones(n, dtype=bool)
    mask[gap] = False
    return mask


class TestZscore:
    def test_standardises_present_values(self):
        kernel = zscore_kernel()
        values = np.arange(100.0)
        result, mask = kernel(values, np.ones(100, dtype=bool))
        assert result.mean() == pytest.approx(0.0, abs=1e-12)
        assert result.std() == pytest.approx(1.0)
        assert mask.all()

    def test_ignores_absent_slots_in_statistics(self):
        kernel = zscore_kernel()
        values = np.array([0.0, 1000.0, 2.0, 4.0])
        mask = np.array([True, False, True, True])
        result, _ = kernel(values, mask)
        present = result[mask]
        assert present.mean() == pytest.approx(0.0, abs=1e-12)

    def test_constant_values_give_zero(self):
        kernel = zscore_kernel()
        result, _ = kernel(np.full(10, 7.0), np.ones(10, dtype=bool))
        np.testing.assert_allclose(result, 0.0)

    def test_all_absent_passthrough(self):
        kernel = zscore_kernel()
        values = np.arange(5.0)
        result, mask = kernel(values, np.zeros(5, dtype=bool))
        np.testing.assert_allclose(result, values)
        assert not mask.any()


class TestFillKernels:
    def test_fill_const_fills_short_gap(self):
        kernel = fill_const_kernel(max_gap_samples=3, constant=-1.0)
        values = np.arange(10.0)
        mask = mask_with_gap(10, slice(4, 6))
        new_values, new_mask = kernel(values, mask)
        assert new_mask.all()
        np.testing.assert_allclose(new_values[4:6], -1.0)

    def test_fill_const_leaves_long_gap(self):
        kernel = fill_const_kernel(max_gap_samples=3, constant=-1.0)
        mask = mask_with_gap(20, slice(5, 15))
        _, new_mask = kernel(np.arange(20.0), mask)
        assert not new_mask[5:15].any()

    def test_fill_mean_uses_neighbours(self):
        kernel = fill_mean_kernel(max_gap_samples=4)
        values = np.array([2.0, 2.0, 0.0, 0.0, 6.0, 6.0])
        mask = np.array([True, True, False, False, True, True])
        new_values, new_mask = kernel(values, mask)
        assert new_mask.all()
        np.testing.assert_allclose(new_values[2:4], 4.0)

    def test_leading_and_trailing_gaps_not_filled(self):
        kernel = fill_mean_kernel(max_gap_samples=10)
        mask = np.array([False, True, True, False])
        _, new_mask = kernel(np.arange(4.0), mask)
        assert not new_mask[0]
        assert not new_mask[3]

    def test_interpolation_kernel_is_linear(self):
        kernel = interpolate_gaps_kernel(max_gap_samples=5)
        values = np.array([0.0, 0.0, 0.0, 0.0, 8.0])
        mask = np.array([True, False, False, False, True])
        new_values, new_mask = kernel(values, mask)
        assert new_mask.all()
        np.testing.assert_allclose(new_values, [0.0, 2.0, 4.0, 6.0, 8.0])

    def test_full_mask_is_identity(self):
        kernel = fill_mean_kernel(max_gap_samples=3)
        values = np.arange(6.0)
        new_values, new_mask = kernel(values, np.ones(6, dtype=bool))
        np.testing.assert_allclose(new_values, values)
        assert new_mask.all()


class TestFirFilterKernel:
    def test_preserves_mask(self):
        kernel = fir_filter_kernel(numtaps=31, cutoff_hz=40, sample_rate_hz=500)
        mask = mask_with_gap(200, slice(50, 60))
        _, new_mask = kernel(np.random.default_rng(0).random(200), mask)
        np.testing.assert_array_equal(new_mask, mask)

    def test_dc_signal_passes_low_pass(self):
        kernel = fir_filter_kernel(numtaps=31, cutoff_hz=40, sample_rate_hz=500)
        values = np.full(500, 3.0)
        filtered, _ = kernel(values, np.ones(500, dtype=bool))
        # After the filter warm-up the DC level is preserved.
        np.testing.assert_allclose(filtered[100:], 3.0, atol=1e-6)


class TestClampKernel:
    def test_masks_out_of_range_values(self):
        kernel = clamp_kernel(-1.0, 1.0)
        values = np.array([-2.0, -0.5, 0.0, 0.5, 2.0])
        _, mask = kernel(values, np.ones(5, dtype=bool))
        np.testing.assert_array_equal(mask, [False, True, True, True, False])

    def test_respects_existing_mask(self):
        kernel = clamp_kernel(-1.0, 1.0)
        values = np.zeros(3)
        _, mask = kernel(values, np.array([True, False, True]))
        np.testing.assert_array_equal(mask, [True, False, True])


def _random_rows(seed, n_rows=24, samples=60, gap_fraction=0.25):
    """Rows with a realistic mix: dense, gappy, constant and empty rows."""
    rng = np.random.default_rng(seed)
    values = rng.standard_normal((n_rows, samples))
    mask = rng.random((n_rows, samples)) >= gap_fraction
    mask[0] = True  # fully present
    mask[1] = False  # fully absent
    values[2] = 7.5  # constant row (zscore's std == 0 branch)
    mask[2] = True
    mask[3, samples // 2 :] = False  # long trailing gap (> any fill limit)
    return values, mask


def _rowwise(kernel, values, mask):
    new_values = np.empty_like(values)
    new_mask = np.empty_like(mask)
    for row in range(values.shape[0]):
        result = kernel(values[row], mask[row])
        new_values[row], new_mask[row] = result
    return new_values, new_mask


class TestBatchedKernels:
    """The ``batched`` variants must be bit-identical to calling the scalar
    kernel row by row — the contract the vectorized backend's whole-run
    Transform lowering relies on."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_zscore_batched_matches_rowwise(self, seed):
        kernel = zscore_kernel()
        values, mask = _random_rows(seed)
        ref_values, ref_mask = _rowwise(kernel, values, mask)
        new_values, new_mask = kernel.batched(values, mask)
        np.testing.assert_array_equal(new_values, ref_values)
        np.testing.assert_array_equal(new_mask, ref_mask)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("max_gap", [1, 4, 16])
    def test_fill_mean_batched_matches_rowwise(self, seed, max_gap):
        kernel = fill_mean_kernel(max_gap)
        values, mask = _random_rows(seed)
        ref_values, ref_mask = _rowwise(kernel, values, mask)
        new_values, new_mask = kernel.batched(values, mask)
        np.testing.assert_array_equal(new_values, ref_values)
        np.testing.assert_array_equal(new_mask, ref_mask)

    def test_fill_const_batched_matches_rowwise(self):
        kernel = fill_const_kernel(4, constant=-3.0)
        values, mask = _random_rows(5)
        ref_values, ref_mask = _rowwise(kernel, values, mask)
        new_values, new_mask = kernel.batched(values, mask)
        np.testing.assert_array_equal(new_values, ref_values)
        np.testing.assert_array_equal(new_mask, ref_mask)

    def test_batched_out_parameter_writes_in_place(self):
        for kernel in (zscore_kernel(), fill_mean_kernel(4)):
            values, mask = _random_rows(3)
            ref_values, ref_mask = _rowwise(kernel, values, mask)
            out = np.empty_like(values)
            new_values, new_mask = kernel.batched(values, mask, out=out)
            # Either the kernel filled `out` or it had nothing to change and
            # returned its input unchanged; both must match the reference.
            np.testing.assert_array_equal(new_values, ref_values)
            np.testing.assert_array_equal(new_mask, ref_mask)
            if new_values is out:
                np.testing.assert_array_equal(out, ref_values)

    def test_fill_batched_dense_rows_alias_inputs(self):
        # Nothing to fill: the batched fill may return its inputs unchanged
        # (callers copy), and must not write to `out`.
        kernel = fill_mean_kernel(4)
        values = np.random.default_rng(0).standard_normal((4, 20))
        mask = np.ones((4, 20), dtype=bool)
        out = np.full_like(values, np.nan)
        new_values, new_mask = kernel.batched(values, mask, out=out)
        np.testing.assert_array_equal(new_values, values)
        np.testing.assert_array_equal(new_mask, mask)
        assert np.isnan(out).all()

    def test_clamp_is_its_own_batched_form(self):
        kernel = clamp_kernel(-1.0, 1.0)
        values, mask = _random_rows(4)
        ref_values, ref_mask = _rowwise(kernel, values, mask)
        new_values, new_mask = kernel.batched(values, mask)
        np.testing.assert_array_equal(new_values, ref_values)
        np.testing.assert_array_equal(new_mask, ref_mask)
