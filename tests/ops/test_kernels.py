"""Tests for the shared numeric kernels behind the Table 3 operations."""

import numpy as np
import pytest

from repro.ops.kernels import (
    clamp_kernel,
    fill_const_kernel,
    fill_mean_kernel,
    fir_filter_kernel,
    interpolate_gaps_kernel,
    zscore_kernel,
)


def mask_with_gap(n: int, gap: slice) -> np.ndarray:
    mask = np.ones(n, dtype=bool)
    mask[gap] = False
    return mask


class TestZscore:
    def test_standardises_present_values(self):
        kernel = zscore_kernel()
        values = np.arange(100.0)
        result, mask = kernel(values, np.ones(100, dtype=bool))
        assert result.mean() == pytest.approx(0.0, abs=1e-12)
        assert result.std() == pytest.approx(1.0)
        assert mask.all()

    def test_ignores_absent_slots_in_statistics(self):
        kernel = zscore_kernel()
        values = np.array([0.0, 1000.0, 2.0, 4.0])
        mask = np.array([True, False, True, True])
        result, _ = kernel(values, mask)
        present = result[mask]
        assert present.mean() == pytest.approx(0.0, abs=1e-12)

    def test_constant_values_give_zero(self):
        kernel = zscore_kernel()
        result, _ = kernel(np.full(10, 7.0), np.ones(10, dtype=bool))
        np.testing.assert_allclose(result, 0.0)

    def test_all_absent_passthrough(self):
        kernel = zscore_kernel()
        values = np.arange(5.0)
        result, mask = kernel(values, np.zeros(5, dtype=bool))
        np.testing.assert_allclose(result, values)
        assert not mask.any()


class TestFillKernels:
    def test_fill_const_fills_short_gap(self):
        kernel = fill_const_kernel(max_gap_samples=3, constant=-1.0)
        values = np.arange(10.0)
        mask = mask_with_gap(10, slice(4, 6))
        new_values, new_mask = kernel(values, mask)
        assert new_mask.all()
        np.testing.assert_allclose(new_values[4:6], -1.0)

    def test_fill_const_leaves_long_gap(self):
        kernel = fill_const_kernel(max_gap_samples=3, constant=-1.0)
        mask = mask_with_gap(20, slice(5, 15))
        _, new_mask = kernel(np.arange(20.0), mask)
        assert not new_mask[5:15].any()

    def test_fill_mean_uses_neighbours(self):
        kernel = fill_mean_kernel(max_gap_samples=4)
        values = np.array([2.0, 2.0, 0.0, 0.0, 6.0, 6.0])
        mask = np.array([True, True, False, False, True, True])
        new_values, new_mask = kernel(values, mask)
        assert new_mask.all()
        np.testing.assert_allclose(new_values[2:4], 4.0)

    def test_leading_and_trailing_gaps_not_filled(self):
        kernel = fill_mean_kernel(max_gap_samples=10)
        mask = np.array([False, True, True, False])
        _, new_mask = kernel(np.arange(4.0), mask)
        assert not new_mask[0]
        assert not new_mask[3]

    def test_interpolation_kernel_is_linear(self):
        kernel = interpolate_gaps_kernel(max_gap_samples=5)
        values = np.array([0.0, 0.0, 0.0, 0.0, 8.0])
        mask = np.array([True, False, False, False, True])
        new_values, new_mask = kernel(values, mask)
        assert new_mask.all()
        np.testing.assert_allclose(new_values, [0.0, 2.0, 4.0, 6.0, 8.0])

    def test_full_mask_is_identity(self):
        kernel = fill_mean_kernel(max_gap_samples=3)
        values = np.arange(6.0)
        new_values, new_mask = kernel(values, np.ones(6, dtype=bool))
        np.testing.assert_allclose(new_values, values)
        assert new_mask.all()


class TestFirFilterKernel:
    def test_preserves_mask(self):
        kernel = fir_filter_kernel(numtaps=31, cutoff_hz=40, sample_rate_hz=500)
        mask = mask_with_gap(200, slice(50, 60))
        _, new_mask = kernel(np.random.default_rng(0).random(200), mask)
        np.testing.assert_array_equal(new_mask, mask)

    def test_dc_signal_passes_low_pass(self):
        kernel = fir_filter_kernel(numtaps=31, cutoff_hz=40, sample_rate_hz=500)
        values = np.full(500, 3.0)
        filtered, _ = kernel(values, np.ones(500, dtype=bool))
        # After the filter warm-up the DC level is preserved.
        np.testing.assert_allclose(filtered[100:], 3.0, atol=1e-6)


class TestClampKernel:
    def test_masks_out_of_range_values(self):
        kernel = clamp_kernel(-1.0, 1.0)
        values = np.array([-2.0, -0.5, 0.0, 0.5, 2.0])
        _, mask = kernel(values, np.ones(5, dtype=bool))
        np.testing.assert_array_equal(mask, [False, True, True, True, False])

    def test_respects_existing_mask(self):
        kernel = clamp_kernel(-1.0, 1.0)
        values = np.zeros(3)
        _, mask = kernel(values, np.array([True, False, True]))
        np.testing.assert_array_equal(mask, [True, False, True])
