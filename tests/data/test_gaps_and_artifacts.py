"""Tests for gap injection, overlap control and artifact injection."""

import numpy as np
import pytest

from repro.core.intervals import IntervalSet
from repro.data.artifacts import detection_accuracy, inject_line_zero, line_zero_template
from repro.data.gaps import (
    apply_coverage,
    inject_burst_gaps,
    make_overlapping_pair,
    overlap_fraction,
    small_random_gaps,
)
from repro.data.synthetic import generate_events
from repro.errors import DataGenerationError


class TestBurstGaps:
    def test_removes_requested_fraction(self):
        times, values = generate_events(10_000, frequency_hz=1000)
        new_times, new_values = inject_burst_gaps(times, values, gap_fraction=0.3, seed=1)
        removed = 1 - new_times.size / times.size
        assert removed == pytest.approx(0.3, abs=0.05)
        assert new_times.size == new_values.size

    def test_gaps_are_bursty_not_scattered(self):
        times, values = generate_events(10_000, frequency_hz=1000)
        new_times, _ = inject_burst_gaps(times, values, gap_fraction=0.3, n_bursts=5, seed=2)
        coverage = IntervalSet.from_timestamps(new_times, period=1)
        # 30% removed in ~5 bursts leaves only a handful of contiguous runs,
        # not hundreds of tiny fragments (the Figure 2 gap structure).
        assert len(coverage) <= 15

    def test_zero_fraction_is_identity(self):
        times, values = generate_events(1000)
        new_times, new_values = inject_burst_gaps(times, values, 0.0)
        np.testing.assert_array_equal(new_times, times)

    def test_invalid_fraction_rejected(self):
        times, values = generate_events(100)
        with pytest.raises(DataGenerationError):
            inject_burst_gaps(times, values, 1.5)


class TestSmallGaps:
    def test_small_gaps_removed_events(self):
        times, values = generate_events(5000)
        new_times, _ = small_random_gaps(times, values, gap_probability=0.05, seed=0)
        assert new_times.size < times.size

    def test_zero_probability_is_identity(self):
        times, values = generate_events(500)
        new_times, _ = small_random_gaps(times, values, 0.0)
        assert new_times.size == times.size


class TestOverlapControl:
    @pytest.mark.parametrize("target", [0.25, 0.5, 0.9, 1.0])
    def test_overlap_fraction_is_controlled(self, target):
        left = generate_events(20_000, frequency_hz=500, seed=0)
        right = generate_events(5_000, frequency_hz=125, seed=1)
        new_left, new_right = make_overlapping_pair(
            left, right, overlap=target, left_period=2, right_period=8
        )
        measured = overlap_fraction(new_left[0], new_right[0], 2, 8)
        assert measured == pytest.approx(target, abs=0.05)

    def test_apply_coverage_filters_by_interval(self):
        times, values = generate_events(100, frequency_hz=1000)
        kept_times, _ = apply_coverage(times, values, IntervalSet([(10, 20)]))
        assert np.all((kept_times >= 10) & (kept_times < 20))

    def test_invalid_overlap_rejected(self):
        left = generate_events(100)
        right = generate_events(100)
        with pytest.raises(DataGenerationError):
            make_overlapping_pair(left, right, overlap=0.0, left_period=1, right_period=1)


class TestLineZeroArtifacts:
    def test_template_shape(self):
        template = line_zero_template(250)
        assert template.size == 250
        # The spike dominates and the plateau sits near zero, like Figure 7.
        assert template.max() > 100
        assert np.median(template) < 10

    def test_injection_records_ground_truth(self):
        values = np.full(10_000, 80.0)
        corrupted, artifacts = inject_line_zero(values, n_artifacts=4, seed=0)
        assert len(artifacts) == 4
        for artifact in artifacts:
            segment = corrupted[artifact.start_index : artifact.end_index]
            assert np.median(segment) < 10  # collapsed towards zero

    def test_injection_does_not_modify_input(self):
        values = np.full(5_000, 80.0)
        _, _ = inject_line_zero(values, n_artifacts=2, seed=0)
        assert np.all(values == 80.0)

    def test_artifacts_do_not_overlap(self):
        values = np.full(50_000, 80.0)
        _, artifacts = inject_line_zero(values, n_artifacts=10, seed=3)
        spans = sorted((a.start_index, a.end_index) for a in artifacts)
        for (_s1, e1), (s2, _e2) in zip(spans, spans[1:]):
            assert e1 <= s2

    def test_zero_artifacts(self):
        values = np.full(1000, 80.0)
        corrupted, artifacts = inject_line_zero(values, n_artifacts=0)
        assert artifacts == []
        np.testing.assert_array_equal(corrupted, values)

    def test_too_short_signal_rejected(self):
        with pytest.raises(DataGenerationError):
            inject_line_zero(np.zeros(100), n_artifacts=1, artifact_samples=250)


class TestDetectionAccuracy:
    def test_perfect_detection(self):
        from repro.data.artifacts import InjectedArtifact

        artifacts = [InjectedArtifact(100, 350), InjectedArtifact(1000, 1250)]
        detected = [(90, 360), (1010, 1200)]
        scores = detection_accuracy(detected, artifacts, n_samples=10_000)
        assert scores["false_negatives"] == 0
        assert scores["false_positives"] == 0

    def test_missed_artifact_counts_as_false_negative(self):
        from repro.data.artifacts import InjectedArtifact

        artifacts = [InjectedArtifact(100, 350), InjectedArtifact(1000, 1250)]
        scores = detection_accuracy([(90, 360)], artifacts, n_samples=10_000)
        assert scores["false_negatives"] == 1
        assert scores["false_negative_rate"] == pytest.approx(0.5)

    def test_spurious_detection_counts_as_false_positive(self):
        from repro.data.artifacts import InjectedArtifact

        artifacts = [InjectedArtifact(100, 350)]
        scores = detection_accuracy([(90, 360), (5000, 5250)], artifacts, n_samples=10_000)
        assert scores["false_positives"] == 1
        assert 0 < scores["false_positive_rate"] < 0.1
