"""Tests for the synthetic physiological waveform generators."""

import numpy as np
import pytest

from repro.data.physio import (
    ABP_FREQUENCY_HZ,
    ECG_FREQUENCY_HZ,
    generate_abp,
    generate_ecg,
    heart_rate_from_ecg,
)
from repro.errors import DataGenerationError


class TestEcg:
    def test_sampling_rate_and_length(self):
        times, values = generate_ecg(10.0)
        assert times.size == values.size == 10 * 500
        assert np.all(np.diff(times) == 2)

    def test_heart_rate_is_respected(self):
        _, values = generate_ecg(30.0, heart_rate_bpm=120, noise=0.01, seed=1)
        estimated = heart_rate_from_ecg(values, ECG_FREQUENCY_HZ)
        assert estimated == pytest.approx(120, rel=0.15)

    def test_deterministic_for_fixed_seed(self):
        a = generate_ecg(5.0, seed=7)
        b = generate_ecg(5.0, seed=7)
        np.testing.assert_array_equal(a[0], b[0])
        np.testing.assert_allclose(a[1], b[1])

    def test_different_seeds_differ(self):
        a = generate_ecg(5.0, seed=1)
        b = generate_ecg(5.0, seed=2)
        assert not np.allclose(a[1], b[1])

    def test_r_peaks_dominate(self):
        _, values = generate_ecg(10.0, noise=0.0, baseline_wander=0.0)
        assert values.max() == pytest.approx(1.0, abs=0.2)

    def test_invalid_duration_rejected(self):
        with pytest.raises(DataGenerationError):
            generate_ecg(0.0)


class TestAbp:
    def test_sampling_rate(self):
        times, values = generate_abp(10.0)
        assert times.size == 10 * 125
        assert np.all(np.diff(times) == 8)

    def test_pressure_range_is_physiological(self):
        _, values = generate_abp(30.0, systolic_mmhg=110, diastolic_mmhg=65, noise=0.0)
        assert values.min() >= 40
        assert values.max() <= 130
        assert 60 <= values.mean() <= 100

    def test_pulsatility(self):
        _, values = generate_abp(10.0, noise=0.0)
        assert values.max() - values.min() > 20

    def test_rejects_inverted_pressures(self):
        with pytest.raises(DataGenerationError):
            generate_abp(10.0, systolic_mmhg=60, diastolic_mmhg=80)

    def test_custom_frequency(self):
        times, _ = generate_abp(4.0, frequency_hz=62.5)
        assert np.all(np.diff(times) == 16)


class TestHeartRateEstimator:
    def test_requires_enough_data(self):
        with pytest.raises(DataGenerationError):
            heart_rate_from_ecg(np.zeros(10), ECG_FREQUENCY_HZ)

    def test_frequencies_are_defaults_from_the_paper(self):
        assert ECG_FREQUENCY_HZ == 500.0
        assert ABP_FREQUENCY_HZ == 125.0
