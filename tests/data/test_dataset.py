"""Tests for patient records, cohorts and the synthetic dataset module."""

import numpy as np
import pytest

from repro.core.sources import ArraySource
from repro.data.dataset import (
    CAP_SIGNALS,
    Signal,
    make_cap_patient,
    make_cohort,
    make_overlap_patient,
    make_patient,
)
from repro.data.gaps import overlap_fraction
from repro.data.synthetic import generate_events, generate_synthetic, sine_wave
from repro.errors import DataGenerationError


class TestSynthetic:
    def test_generate_synthetic_is_continuous(self):
        times, values = generate_synthetic(frequency_hz=1000, duration_minutes=1)
        assert times.size == 60_000
        assert np.all(np.diff(times) == 1)
        assert values.min() >= 0.0 and values.max() < 1.0

    def test_generate_events_exact_count(self):
        times, values = generate_events(12_345, frequency_hz=500)
        assert times.size == 12_345
        assert np.all(np.diff(times) == 2)

    def test_sine_wave_frequency(self):
        times, values = sine_wave(frequency_hz=1000, duration_seconds=2, wave_hz=5)
        # 5 Hz over 2 seconds -> 10 zero crossings going upward.
        upward = np.sum((values[:-1] < 0) & (values[1:] >= 0))
        assert upward == pytest.approx(10, abs=1)

    def test_invalid_durations_rejected(self):
        with pytest.raises(DataGenerationError):
            generate_synthetic(duration_minutes=0)
        with pytest.raises(DataGenerationError):
            generate_events(0)


class TestSignal:
    def test_signal_to_source(self):
        times, values = generate_events(100, frequency_hz=500)
        signal = Signal("ecg", 500.0, times, values)
        source = signal.to_source()
        assert isinstance(source, ArraySource)
        assert source.descriptor.period == 2
        assert signal.event_count == 100

    def test_signal_to_csv_round_trip(self, tmp_path):
        from repro.core.sources import CsvSource

        times, values = generate_events(50, frequency_hz=500)
        signal = Signal("ecg", 500.0, times, values)
        path = signal.to_csv(tmp_path / "ecg.csv")
        loaded = CsvSource(path, period=2)
        assert loaded.event_count() == 50


class TestPatient:
    def test_patient_has_ecg_and_abp(self):
        record = make_patient(duration_seconds=10.0)
        assert "ecg" in record and "abp" in record
        assert record["ecg"].frequency_hz == 500.0
        assert record["abp"].frequency_hz == 125.0

    def test_gap_fractions_reduce_event_counts(self):
        clean = make_patient(duration_seconds=10.0, ecg_gap_fraction=0.0, abp_gap_fraction=0.0)
        gappy = make_patient(duration_seconds=10.0, ecg_gap_fraction=0.3, abp_gap_fraction=0.3)
        assert gappy.total_events() < clean.total_events()

    def test_sources_dictionary(self):
        record = make_patient(duration_seconds=5.0)
        sources = record.sources()
        assert set(sources) == {"ecg", "abp"}

    def test_overlap_patient_controls_overlap(self):
        record = make_overlap_patient(overlap=0.4, duration_seconds=60.0)
        measured = overlap_fraction(
            record["ecg"].times, record["abp"].times, record["ecg"].period, record["abp"].period
        )
        assert measured == pytest.approx(0.4, abs=0.05)

    def test_cohort_size_and_independence(self):
        cohort = make_cohort(3, duration_seconds=5.0)
        assert len(cohort) == 3
        assert len({record.patient_id for record in cohort}) == 3
        first_values = cohort[0]["ecg"].values
        second_values = cohort[1]["ecg"].values
        assert not np.allclose(first_values[: min(100, second_values.size)], second_values[:100])

    def test_cohort_rejects_bad_size(self):
        with pytest.raises(DataGenerationError):
            make_cohort(0)


class TestCapPatient:
    def test_cap_patient_has_six_signals(self):
        record = make_cap_patient(duration_seconds=5.0)
        assert len(record.signals) == len(CAP_SIGNALS) == 6

    def test_cap_signal_frequencies(self):
        record = make_cap_patient(duration_seconds=5.0)
        for name, frequency in CAP_SIGNALS:
            assert record[name].frequency_hz == frequency

    def test_cap_patient_total_events(self):
        record = make_cap_patient(duration_seconds=5.0, gap_fraction=0.0)
        expected = sum(int(5.0 * frequency) for _, frequency in CAP_SIGNALS)
        assert record.total_events() == pytest.approx(expected, abs=12)
