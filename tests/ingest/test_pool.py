"""Worker-pool suite: dynamic placement, rebalance, and the wire protocol.

Failover under a killed worker has its own module (``test_failover.py``);
this one covers the pool's ordinary life: catalog validation, join-after-
start placement, push/tick round trips, graceful retirement, and parity
with a one-shot run.
"""

import numpy as np
import pytest

from repro.core.engine import LifeStreamEngine
from repro.core.query import Query
from repro.core.sources import ArraySource
from repro.errors import ExecutionError, StreamDefinitionError
from repro.ingest import IngestWorkerPool, QueryShape, StreamSpec

PERIOD = 2


def _query():
    return (
        Query.source("s", frequency_hz=500)
        .select(lambda v: v * 2 + 1)
        .where(lambda v: v > -5)
        .tumbling_window(100)
        .mean()
    )


CATALOG = {"cohort": QueryShape(_query, {"s": StreamSpec(PERIOD)})}


def _signal(n=6000, seed=3):
    rng = np.random.default_rng(seed)
    times = np.arange(n, dtype=np.int64) * PERIOD
    keep = np.ones(n, dtype=bool)
    if n > 600:
        for start in rng.integers(0, n - 500, size=3):
            keep[start : start + int(rng.integers(100, 400))] = False
    values = np.sin(np.arange(n) * 0.01) * 10
    return times[keep], values[keep]


def _one_shot_reference(times, values):
    engine = LifeStreamEngine(window_size=1000)
    return engine.run(_query(), sources={"s": ArraySource(times, values, period=PERIOD)})


def _assert_identical(reference, candidate, label=""):
    np.testing.assert_array_equal(reference.times, candidate.times, err_msg=label)
    np.testing.assert_array_equal(reference.values, candidate.values, err_msg=label)
    np.testing.assert_array_equal(
        reference.durations, candidate.durations, err_msg=label
    )


class TestPoolLifecycle:
    def test_catalog_is_validated(self):
        with pytest.raises(ExecutionError, match="at least one query"):
            IngestWorkerPool({}, n_workers=1)
        with pytest.raises(ExecutionError, match="n_workers"):
            IngestWorkerPool(CATALOG, n_workers=0)
        with pytest.raises(ExecutionError, match="checkpoint_every_ticks"):
            IngestWorkerPool(CATALOG, n_workers=1, checkpoint_every_ticks=0)

    def test_connect_places_and_rejects_unknowns(self):
        with IngestWorkerPool(CATALOG, n_workers=2) as pool:
            placements = [pool.connect(f"c{i}", "cohort") for i in range(4)]
            # Least-loaded placement spreads clients across both workers.
            assert sorted(set(placements)) == pool.worker_ids
            assert len(pool.client_ids) == 4
            with pytest.raises(ExecutionError, match="already connected"):
                pool.connect("c0", "cohort")
            with pytest.raises(ExecutionError, match="not in the pool's catalog"):
                pool.connect("c9", "nope")

    def test_push_validates_at_the_parent(self):
        with IngestWorkerPool(CATALOG, n_workers=1) as pool:
            pool.connect("c0", "cohort")
            with pytest.raises(ExecutionError, match="no stream 'nope'"):
                pool.push("c0", "nope", [0], [1.0])
            with pytest.raises(StreamDefinitionError, match="periodic grid"):
                pool.push("c0", "s", [3], [1.0])
            pool.push("c0", "s", [0, 2], [1.0, 2.0])
            with pytest.raises(StreamDefinitionError, match="time order"):
                pool.push("c0", "s", [0], [9.0])
            with pytest.raises(ExecutionError, match="no connected client"):
                pool.push("ghost", "s", [0], [1.0])

    def test_join_after_others_are_mid_stream(self):
        times, values = _signal(n=3000)
        with IngestWorkerPool(CATALOG, n_workers=2) as pool:
            pool.connect("early", "cohort")
            pool.push("early", "s", times[:800], values[:800])
            pool.tick()
            # A dynamic join, mid-stream — impossible on the sharded service.
            pool.connect("late", "cohort")
            pool.push("early", "s", times[800:], values[800:])
            pool.push("late", "s", times, values)
            pool.tick()
            pool.finish()
            results = pool.results()
        reference = _one_shot_reference(times, values)
        _assert_identical(reference, results["early"], "early joiner")
        _assert_identical(reference, results["late"], "late joiner")

    def test_add_and_retire_worker_rebalances(self):
        times, values = _signal(n=3000)
        with IngestWorkerPool(CATALOG, n_workers=1) as pool:
            for i in range(3):
                pool.connect(f"c{i}", "cohort")
                pool.push(f"c{i}", "s", times[:900], values[:900])
            pool.tick()
            new_worker = pool.add_worker()
            assert new_worker in pool.worker_ids
            victim = next(wid for wid in pool.worker_ids if wid != new_worker)
            moved = pool.retire_worker(victim)
            assert sorted(moved) == ["c0", "c1", "c2"]
            assert victim not in pool.worker_ids
            for i in range(3):
                assert pool._clients[f"c{i}"].worker_id == new_worker
                pool.push(f"c{i}", "s", times[900:], values[900:])
            pool.tick()
            pool.finish()
            results = pool.results()
        reference = _one_shot_reference(times, values)
        for i in range(3):
            _assert_identical(reference, results[f"c{i}"], f"rebalanced client c{i}")

    def test_pool_parity_with_one_shot(self):
        times, values = _signal()
        with IngestWorkerPool(CATALOG, n_workers=2, checkpoint_every_ticks=2) as pool:
            for seed_id in ("a", "b", "c"):
                pool.connect(seed_id, "cohort")
            for start in range(0, len(times), 700):
                for seed_id in ("a", "b", "c"):
                    pool.push(
                        seed_id,
                        "s",
                        times[start : start + 700],
                        values[start : start + 700],
                    )
                pool.tick()
            pool.finish()
            results = pool.results()
        reference = _one_shot_reference(times, values)
        for seed_id in ("a", "b", "c"):
            _assert_identical(reference, results[seed_id], f"client {seed_id}")

    def test_checkpoints_piggyback_and_truncate_replay(self):
        times, values = _signal()
        with IngestWorkerPool(
            CATALOG, n_workers=1, checkpoint_every_ticks=1, retention_ticks=2000
        ) as pool:
            pool.connect("c0", "cohort")
            for start in range(0, len(times), 500):
                pool.push("c0", "s", times[start : start + 500], values[start : start + 500])
                pool.tick()
            client = pool._clients["c0"]
            assert client.checkpoint is not None, "no cadence checkpoint arrived"
            assert client.checkpoint["format"] == "lifestream-session-checkpoint/v1"
            assert client.checkpoint_watermark is not None
            # The replay log was truncated: it no longer reaches back to the
            # beginning of the stream, only within the retention horizon.
            horizon = client.checkpoint_watermark - pool.retention_ticks
            assert all(entry[4] > horizon for entry in client.replay)
            assert len(client.replay) < len(range(0, len(times), 500))

    def test_heartbeat_is_quiet_when_healthy(self):
        with IngestWorkerPool(CATALOG, n_workers=2) as pool:
            pool.connect("c0", "cohort")
            assert pool.heartbeat() == []
            assert pool.recoveries == []

    def test_closed_pool_rejects_everything(self):
        pool = IngestWorkerPool(CATALOG, n_workers=1)
        pool.connect("c0", "cohort")
        pool.close()
        pool.close()  # idempotent
        with pytest.raises(ExecutionError, match="closed"):
            pool.connect("c1", "cohort")
        with pytest.raises(ExecutionError, match="closed"):
            pool.push("c0", "s", [0], [1.0])
