"""Ingest gateway suite: push semantics, backpressure, delivery, parity.

The load-bearing guarantee is the last test class: a session fed
incrementally through the async gateway emits the bit-identical stream a
one-shot engine run produces over the same data — the gateway is pure
plumbing, never semantics.
"""

import asyncio

import numpy as np
import pytest

from repro.core.engine import LifeStreamEngine
from repro.core.query import Query
from repro.core.sources import ArraySource
from repro.errors import ExecutionError, StreamDefinitionError
from repro.ingest import (
    IngestGateway,
    PushStatus,
    StreamSpec,
)

PERIOD = 2  # 500 Hz


def _query():
    return (
        Query.source("s", frequency_hz=500)
        .select(lambda v: v * 2 + 1)
        .where(lambda v: v > -5)
        .tumbling_window(100)
        .mean()
    )


def _signal(n=6000, seed=3):
    rng = np.random.default_rng(seed)
    times = np.arange(n, dtype=np.int64) * PERIOD
    keep = np.ones(n, dtype=bool)
    if n > 600:  # punch burst gaps into long signals only
        for start in rng.integers(0, n - 500, size=3):
            keep[start : start + int(rng.integers(100, 400))] = False
    values = np.sin(np.arange(n) * 0.01) * 10
    return times[keep], values[keep]


def _one_shot_reference(times, values):
    engine = LifeStreamEngine(window_size=1000)
    return engine.run(_query(), sources={"s": ArraySource(times, values, period=PERIOD)})


def _chunks(times, values, size):
    for start in range(0, len(times), size):
        yield times[start : start + size], values[start : start + size]


class TestConnectAndValidation:
    async def test_connect_assigns_ids_and_rejects_duplicates(self):
        async with IngestGateway(window_size=1000) as gateway:
            first = await gateway.connect(_query(), {"s": StreamSpec(PERIOD)})
            second = await gateway.connect(_query(), {"s": PERIOD})
            assert first != second
            assert set(gateway.client_ids) == {first, second}
            named = await gateway.connect(_query(), {"s": PERIOD}, client_id="pat-9")
            assert named == "pat-9"
            with pytest.raises(ExecutionError, match="already connected"):
                await gateway.connect(_query(), {"s": PERIOD}, client_id="pat-9")

    async def test_push_validates_eagerly_at_the_producer(self):
        async with IngestGateway(window_size=1000) as gateway:
            cid = await gateway.connect(_query(), {"s": PERIOD})
            with pytest.raises(ExecutionError, match="no stream 'nope'"):
                await gateway.push(cid, "nope", [0], [1.0])
            with pytest.raises(StreamDefinitionError, match="periodic grid"):
                await gateway.push(cid, "s", [3], [1.0])
            with pytest.raises(StreamDefinitionError, match="strictly increasing"):
                await gateway.push(cid, "s", [4, 2], [1.0, 2.0])
            with pytest.raises(StreamDefinitionError, match="same shape"):
                await gateway.push(cid, "s", [2, 4], [1.0])
            await gateway.push(cid, "s", [0, 2], [1.0, 2.0])
            with pytest.raises(StreamDefinitionError, match="time order"):
                await gateway.push(cid, "s", [2], [9.0])
            # Nothing malformed reached the dispatch loop: flush stays clean.
            await gateway.flush()

    async def test_unknown_client_and_closed_gateway(self):
        gateway = IngestGateway(window_size=1000)
        with pytest.raises(ExecutionError, match="no connected client"):
            await gateway.push("ghost", "s", [0], [1.0])
        await gateway.aclose()
        with pytest.raises(ExecutionError, match="closed"):
            await gateway.connect(_query(), {"s": PERIOD})

    async def test_watermark_bounds_rejected(self):
        with pytest.raises(ExecutionError, match="low < high"):
            IngestGateway(window_size=1000, high_watermark=10, low_watermark=10)
        with pytest.raises(ExecutionError, match="subscriber_depth"):
            IngestGateway(window_size=1000, subscriber_depth=0)


class TestBackpressure:
    async def test_busy_when_over_high_watermark_without_wait(self):
        async with IngestGateway(
            window_size=1000, high_watermark=100, low_watermark=10
        ) as gateway:
            cid = await gateway.connect(_query(), {"s": PERIOD})
            times, values = _signal(n=400)
            # Stuff the backlog without letting the dispatch loop run (no
            # awaits that yield to it between pushes).
            accepted = await gateway.push(cid, "s", times[:150], values[:150], wait=False)
            assert accepted.status is PushStatus.ACCEPTED
            busy = await gateway.push(cid, "s", times[150:300], values[150:300], wait=False)
            assert busy.status is PushStatus.BUSY
            assert not busy
            assert gateway.stats.busy_rejections == 1
            # Once the dispatcher drains the backlog the push goes through.
            await gateway.flush()
            retry = await gateway.push(
                cid, "s", times[150:300], values[150:300], wait=False
            )
            assert retry.status is PushStatus.ACCEPTED

    async def test_waiting_push_throttles_until_drained(self):
        async with IngestGateway(
            window_size=1000,
            high_watermark=100,
            low_watermark=10,
            subscriber_depth=1,
        ) as gateway:
            cid = await gateway.connect(_query(), {"s": PERIOD})
            subscription = gateway.subscribe(cid)
            times = np.arange(1500, dtype=np.int64) * PERIOD
            values = np.ones(1500)
            # Two windows' worth of samples: the second delivery blocks on
            # the full depth-1 queue, wedging the dispatch loop mid-pass.
            await gateway.push(cid, "s", times[:600], values[:600])
            for _ in range(20):
                await asyncio.sleep(0)
            await gateway.push(cid, "s", times[600:1200], values[600:1200])
            for _ in range(20):
                await asyncio.sleep(0)
            # The dispatcher is stalled delivering; pile the backlog over
            # the high watermark, then start a waiting push.
            await gateway.push(cid, "s", times[1200:1350], values[1200:1350], wait=False)
            assert gateway.backlog(cid) >= 100
            push_task = asyncio.ensure_future(
                gateway.push(cid, "s", times[1350:1500], values[1350:1500])
            )
            for _ in range(20):
                await asyncio.sleep(0)
            assert not push_task.done(), "push did not block on the high watermark"
            assert gateway.stats.throttled_pushes == 1
            # Draining the subscriber lets the dispatcher finish its pass,
            # apply the backlog and resume the throttled producer.
            drained = []

            async def consume():
                async for batch in subscription:
                    drained.append(batch)

            consumer = asyncio.ensure_future(consume())
            result = await asyncio.wait_for(push_task, timeout=10)
            assert result.status is PushStatus.ACCEPTED
            await gateway.disconnect(cid)
            await asyncio.wait_for(consumer, timeout=10)
            assert drained


class TestDeliveryAndSubscribers:
    async def test_subscriber_receives_all_emitted_events(self):
        times, values = _signal()
        reference = _one_shot_reference(times, values)
        async with IngestGateway(window_size=1000) as gateway:
            cid = await gateway.connect(_query(), {"s": PERIOD})
            subscription = gateway.subscribe(cid)
            received = []

            async def consume():
                async for batch in subscription:
                    assert batch.client_id == cid
                    received.append(batch)

            consumer = asyncio.ensure_future(consume())
            for chunk_times, chunk_values in _chunks(times, values, 700):
                await gateway.push(cid, "s", chunk_times, chunk_values)
            await gateway.disconnect(cid)
            await asyncio.wait_for(consumer, timeout=10)
        got_times = np.concatenate([b.times for b in received])
        got_values = np.concatenate([b.values for b in received])
        got_durations = np.concatenate([b.durations for b in received])
        np.testing.assert_array_equal(got_times, reference.times)
        np.testing.assert_array_equal(got_values, reference.values)
        np.testing.assert_array_equal(got_durations, reference.durations)
        assert gateway.stats.events_delivered == len(reference.times)

    async def test_slow_subscriber_stalls_dispatch_and_throttles_producers(self):
        async with IngestGateway(
            window_size=1000,
            high_watermark=300,
            low_watermark=50,
            subscriber_depth=1,
        ) as gateway:
            cid = await gateway.connect(_query(), {"s": PERIOD})
            subscription = gateway.subscribe(cid)
            times, values = _signal(n=4000)
            pushed = 0
            busy_seen = False
            for chunk_times, chunk_values in _chunks(times, values, 250):
                result = await gateway.push(
                    cid, "s", chunk_times, chunk_values, wait=False
                )
                if result.status is PushStatus.BUSY:
                    busy_seen = True
                    break
                pushed += len(chunk_times)
                # Yield so the dispatcher runs and fills the depth-1 queue.
                for _ in range(20):
                    await asyncio.sleep(0)
            assert busy_seen, "a depth-1 subscriber never pushed back on producers"
            # Draining the subscriber un-wedges everything.
            drained = []

            async def consume():
                async for batch in subscription:
                    drained.append(batch)

            consumer = asyncio.ensure_future(consume())
            await gateway.disconnect(cid)
            await asyncio.wait_for(consumer, timeout=10)
            assert drained

    async def test_multiple_subscribers_see_the_same_stream(self):
        times, values = _signal(n=3000)
        async with IngestGateway(window_size=1000) as gateway:
            cid = await gateway.connect(_query(), {"s": PERIOD})
            subscriptions = [gateway.subscribe(cid) for _ in range(3)]
            collected = [[] for _ in subscriptions]

            async def consume(sub, into):
                async for batch in sub:
                    into.append(batch)

            consumers = [
                asyncio.ensure_future(consume(sub, into))
                for sub, into in zip(subscriptions, collected)
            ]
            for chunk_times, chunk_values in _chunks(times, values, 500):
                await gateway.push(cid, "s", chunk_times, chunk_values)
            await gateway.disconnect(cid)
            await asyncio.wait_for(asyncio.gather(*consumers), timeout=10)
        streams = [
            np.concatenate([b.values for b in into]) if into else np.empty(0)
            for into in collected
        ]
        for other in streams[1:]:
            np.testing.assert_array_equal(streams[0], other)


class TestHeartbeatAndStats:
    async def test_advance_flushes_windows_over_silence(self):
        async with IngestGateway(window_size=1000) as gateway:
            cid = await gateway.connect(_query(), {"s": PERIOD})
            n = 75  # covers [0, 150); the output window needs data through 1000
            times = np.arange(n, dtype=np.int64) * PERIOD
            await gateway.push(cid, "s", times, np.ones(n))
            await gateway.flush()
            session = gateway.service.session(cid)
            assert session.result().times.size == 0
            # Heartbeat: silence through 1200 closes the first output window,
            # emitting the two tumbling means the pushed data covers.
            await gateway.advance(cid, "s", 1200)
            await gateway.flush()
            assert session.result().times.size == 2
            with pytest.raises(ExecutionError, match="behind its pushed data"):
                await gateway.advance(cid, "s", 100)

    async def test_stats_count_pushes_passes_and_latency(self):
        times, values = _signal(n=2000)
        async with IngestGateway(window_size=1000) as gateway:
            cid = await gateway.connect(_query(), {"s": PERIOD})
            for chunk_times, chunk_values in _chunks(times, values, 400):
                await gateway.push(cid, "s", chunk_times, chunk_values)
            await gateway.flush()
            stats = gateway.stats
            assert stats.pushes == -(-len(times) // 400)
            assert stats.samples == len(times)
            assert stats.ticks >= 1
            assert stats.passes >= 1
            assert stats.p99_tick_seconds >= 0.0
            assert stats.mean_tick_seconds >= 0.0


class TestGatewayParity:
    """The gateway never changes what a session emits — only how it is fed."""

    @pytest.mark.parametrize("chunk", [173, 700, 2500])
    async def test_pushed_stream_matches_one_shot(self, chunk):
        times, values = _signal()
        reference = _one_shot_reference(times, values)
        async with IngestGateway(window_size=1000) as gateway:
            cid = await gateway.connect(_query(), {"s": PERIOD})
            for chunk_times, chunk_values in _chunks(times, values, chunk):
                await gateway.push(cid, "s", chunk_times, chunk_values)
            await gateway.flush()
            session = gateway.service.session(cid)
            session.finish()
            result = session.result()
            np.testing.assert_array_equal(result.times, reference.times)
            np.testing.assert_array_equal(result.values, reference.values)
            np.testing.assert_array_equal(result.durations, reference.durations)

    async def test_many_clients_interleaved_pushes_stay_isolated(self):
        async with IngestGateway(window_size=1000) as gateway:
            streams = {}
            for seed in range(4):
                times, values = _signal(n=3000, seed=seed)
                cid = await gateway.connect(_query(), {"s": PERIOD})
                streams[cid] = (times, values)
            # Interleave chunk pushes across all clients.
            offsets = {cid: 0 for cid in streams}
            pending = set(streams)
            while pending:
                for cid in list(pending):
                    times, values = streams[cid]
                    start = offsets[cid]
                    if start >= len(times):
                        pending.discard(cid)
                        continue
                    await gateway.push(
                        cid, "s", times[start : start + 613], values[start : start + 613]
                    )
                    offsets[cid] = start + 613
            await gateway.flush()
            for cid, (times, values) in streams.items():
                session = gateway.service.session(cid)
                session.finish()
                result = session.result()
                reference = _one_shot_reference(times, values)
                np.testing.assert_array_equal(result.times, reference.times)
                np.testing.assert_array_equal(result.values, reference.values)
