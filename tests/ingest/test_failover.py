"""Failover parity: kill a worker, restore on a peer, lose nothing.

The acceptance bar of the ingest subsystem: after SIGKILLing a worker
mid-stream, every displaced session is restored on a surviving peer from
its latest cadence checkpoint plus the replayed post-checkpoint pushes,
and the emitted event stream is *bit-identical* to an undisturbed run —
zero lost events, zero duplicated events.  Checked across the serial and
vectorized execution backends.
"""

import numpy as np
import pytest

from repro.core.engine import LifeStreamEngine
from repro.core.query import Query
from repro.core.runtime.backends import fork_available
from repro.core.sources import ArraySource
from repro.ingest import IngestWorkerPool, QueryShape, StreamSpec
from repro.pipelines.common import backend_from_name

PERIOD = 2
CHUNK = 600
N_CLIENTS = 6


def _query():
    return (
        Query.source("s", frequency_hz=500)
        .select(lambda v: v * 2 + 1)
        .where(lambda v: v > -5)
        .tumbling_window(100)
        .mean()
    )


CATALOG = {"cohort": QueryShape(_query, {"s": StreamSpec(PERIOD)})}

BACKENDS = ("serial", "vectorized")


def _signal(n=6000, seed=3):
    rng = np.random.default_rng(seed)
    times = np.arange(n, dtype=np.int64) * PERIOD
    keep = np.ones(n, dtype=bool)
    for start in rng.integers(0, n - 500, size=3):
        keep[start : start + int(rng.integers(100, 400))] = False
    values = np.sin(np.arange(n) * 0.01) * 10
    return times[keep], values[keep]


def _backend(name):
    return None if name == "serial" else backend_from_name(name)


def _reference_results(streams, backend_name):
    results = {}
    for client_id, (times, values) in streams.items():
        engine = LifeStreamEngine(window_size=1000, backend=_backend(backend_name))
        results[client_id] = engine.run(
            _query(), sources={"s": ArraySource(times, values, period=PERIOD)}
        )
    return results


def _streams():
    return {
        f"patient-{i}": _signal(seed=10 + i) for i in range(N_CLIENTS)
    }


def _assert_identical(reference, candidate, label):
    np.testing.assert_array_equal(reference.times, candidate.times, err_msg=label)
    np.testing.assert_array_equal(reference.values, candidate.values, err_msg=label)
    np.testing.assert_array_equal(
        reference.durations, candidate.durations, err_msg=label
    )


def _run_with_failure(streams, backend_name, kill_after_round, detect="heartbeat"):
    """Stream everything through a 2-worker pool, killing one mid-flight."""
    pool = IngestWorkerPool(
        CATALOG,
        n_workers=2,
        checkpoint_every_ticks=2,
        window_size=1000,
        backend=_backend(backend_name),
    )
    try:
        for client_id in streams:
            pool.connect(client_id, "cohort")
        victim = pool.worker_ids[0]
        displaced = pool.clients_of(victim)
        assert displaced, "the victim worker must host someone for the test to bite"
        rounds = max(
            (len(times) + CHUNK - 1) // CHUNK for times, _ in streams.values()
        )
        for round_index in range(rounds):
            start = round_index * CHUNK
            for client_id, (times, values) in streams.items():
                pool.push(
                    client_id,
                    "s",
                    times[start : start + CHUNK],
                    values[start : start + CHUNK],
                )
            if round_index == kill_after_round:
                pool.kill_worker(victim)
                if detect == "heartbeat":
                    recovered = pool.heartbeat()
                    assert recovered == [victim]
                # detect == "tick": the tick below hits the dead pipe and
                # recovers inline — nothing else to do here.
            pool.tick()
        pool.finish()
        results = pool.results()
        record = pool.recoveries
        assert len(record) == 1 and record[0]["worker_id"] == victim
        assert sorted(record[0]["clients"]) == sorted(displaced)
        assert victim not in pool.worker_ids
        return results
    finally:
        pool.close()


@pytest.mark.skipif(not fork_available(), reason="needs fork for real worker death")
class TestKilledWorkerFailover:
    @pytest.mark.parametrize("backend_name", BACKENDS)
    def test_bit_identical_recovery_after_heartbeat_detection(self, backend_name):
        streams = _streams()
        reference = _reference_results(streams, backend_name)
        results = _run_with_failure(streams, backend_name, kill_after_round=3)
        assert sorted(results) == sorted(streams)
        for client_id in streams:
            _assert_identical(
                reference[client_id],
                results[client_id],
                f"{backend_name}: client {client_id} after failover",
            )

    @pytest.mark.parametrize("backend_name", BACKENDS)
    def test_mid_tick_death_is_recovered_inline(self, backend_name):
        streams = _streams()
        reference = _reference_results(streams, backend_name)
        results = _run_with_failure(
            streams, backend_name, kill_after_round=1, detect="tick"
        )
        for client_id in streams:
            _assert_identical(
                reference[client_id],
                results[client_id],
                f"{backend_name}: client {client_id} after mid-tick death",
            )

    def test_death_before_any_checkpoint_replays_from_scratch(self):
        streams = _streams()
        reference = _reference_results(streams, "serial")
        # Killing during round 0 means no cadence checkpoint exists yet:
        # recovery must rebuild the sessions purely from the replay log.
        results = _run_with_failure(streams, "serial", kill_after_round=0)
        for client_id in streams:
            _assert_identical(
                reference[client_id],
                results[client_id],
                f"client {client_id} restored with no checkpoint",
            )

    def test_every_worker_dead_spawns_a_replacement(self):
        streams = {"solo": _signal(seed=42)}
        pool = IngestWorkerPool(
            CATALOG, n_workers=1, checkpoint_every_ticks=2, window_size=1000
        )
        try:
            pool.connect("solo", "cohort")
            times, values = streams["solo"]
            pool.push("solo", "s", times[:2000], values[:2000])
            pool.tick()
            only_worker = pool.worker_ids[0]
            pool.kill_worker(only_worker)
            assert pool.heartbeat() == [only_worker]
            assert pool.worker_ids, "a replacement worker should have spawned"
            pool.push("solo", "s", times[2000:], values[2000:])
            pool.tick()
            pool.finish()
            results = pool.results()
        finally:
            pool.close()
        reference = _reference_results(streams, "serial")
        _assert_identical(reference["solo"], results["solo"], "sole client")


class TestLocalWorkerFailover:
    """The in-process fallback loses state on kill() exactly like a dead
    process, so failover is testable without fork."""

    def test_local_kill_and_restore(self, monkeypatch):
        import repro.ingest.pool as pool_module

        monkeypatch.setattr(pool_module, "fork_available", lambda: False)
        streams = {"p0": _signal(seed=1), "p1": _signal(seed=2)}
        reference = _reference_results(streams, "serial")
        pool = IngestWorkerPool(
            CATALOG, n_workers=2, checkpoint_every_ticks=2, window_size=1000
        )
        try:
            assert pool.execution_mode == "in-process"
            for client_id in streams:
                pool.connect(client_id, "cohort")
            victim = pool.worker_ids[0]
            for client_id, (times, values) in streams.items():
                pool.push(client_id, "s", times[:3000], values[:3000])
            pool.tick()
            pool.kill_worker(victim)
            assert pool.heartbeat() == [victim]
            for client_id, (times, values) in streams.items():
                pool.push(client_id, "s", times[3000:], values[3000:])
            pool.tick()
            pool.finish()
            results = pool.results()
        finally:
            pool.close()
        for client_id in streams:
            _assert_identical(
                reference[client_id], results[client_id], f"local {client_id}"
            )
