"""Tests for the multi-core and multi-machine scaling substrates."""

import pytest

from repro.data.dataset import make_cohort, make_patient
from repro.scaling import (
    CLUSTER_THREADS,
    ClusterModel,
    ScalingModel,
    measure_single_worker_throughput,
    run_data_parallel,
)


class TestScalingModel:
    def test_lifestream_scales_to_machine_cores(self):
        model = ScalingModel.for_engine("lifestream", single_worker_throughput=1e6)
        assert model.throughput(32).throughput_events_per_second > model.throughput(
            8
        ).throughput_events_per_second

    def test_throughput_monotone_until_saturation(self):
        model = ScalingModel.for_engine("numlib", single_worker_throughput=1e6)
        curve = model.curve([1, 2, 4, 8, 16, 24, 32, 48])
        throughputs = [p.throughput_events_per_second for p in curve.points]
        assert all(b >= a for a, b in zip(throughputs, throughputs[1:]))
        # NumLib saturates at 24 workers (Section 8.6).
        assert curve.points[-1].throughput_events_per_second == pytest.approx(
            model.throughput(24).throughput_events_per_second
        )

    def test_trill_fails_beyond_its_memory_limit(self):
        model = ScalingModel.for_engine("trill", single_worker_throughput=1e6)
        limit = model.max_workers_before_oom()
        assert limit == 12
        assert not model.throughput(limit).failed
        assert model.throughput(limit + 1).failed
        assert model.throughput(limit + 1).throughput_events_per_second == 0.0

    def test_lifestream_peak_exceeds_baselines(self):
        lifestream = ScalingModel.for_engine("lifestream", 1e6).curve([1, 8, 16, 32])
        trill = ScalingModel.for_engine("trill", 1e6).curve([1, 8, 16, 32])
        numlib = ScalingModel.for_engine("numlib", 1e6).curve([1, 8, 16, 32])
        assert lifestream.peak_throughput() > trill.peak_throughput()
        assert lifestream.peak_throughput() > numlib.peak_throughput()

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            ScalingModel.for_engine("beam", 1e6)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ScalingModel.for_engine("trill", 0.0)
        model = ScalingModel.for_engine("trill", 1e6)
        with pytest.raises(ValueError):
            model.throughput(0)


class TestClusterModel:
    def test_per_machine_thread_counts_match_paper(self):
        assert CLUSTER_THREADS == {"trill": 12, "numlib": 24, "lifestream": 32}

    def test_cluster_scales_nearly_linearly(self):
        model = ClusterModel("lifestream", single_worker_throughput=1e6)
        one = model.throughput(1).throughput_events_per_second
        sixteen = model.throughput(16).throughput_events_per_second
        assert sixteen == pytest.approx(16 * one, rel=0.25)
        assert sixteen > 12 * one

    def test_lifestream_cluster_peak_exceeds_trill(self):
        lifestream = ClusterModel("lifestream", 1e6).throughput(16)
        trill = ClusterModel("trill", 1e6).throughput(16)
        assert lifestream.throughput_events_per_second > trill.throughput_events_per_second

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            ClusterModel("storm", 1e6)

    def test_invalid_machine_count_rejected(self):
        with pytest.raises(ValueError):
            ClusterModel("trill", 1e6).throughput(0)


class TestRealDataParallelExecution:
    def test_measure_single_worker_throughput(self):
        patient = make_patient(duration_seconds=10.0, seed=0)
        throughput = measure_single_worker_throughput("lifestream", patient)
        assert throughput > 0

    def test_single_worker_run(self):
        cohort = make_cohort(2, duration_seconds=5.0, seed=1)
        point = run_data_parallel("lifestream", cohort, n_workers=1)
        assert point.workers == 1
        assert point.throughput_events_per_second > 0

    def test_rejects_bad_worker_count(self):
        cohort = make_cohort(1, duration_seconds=2.0)
        with pytest.raises(ValueError):
            run_data_parallel("lifestream", cohort, n_workers=0)

    @pytest.mark.slow
    def test_two_workers_process_whole_cohort(self):
        cohort = make_cohort(4, duration_seconds=5.0, seed=2)
        point = run_data_parallel("lifestream", cohort, n_workers=2)
        assert point.throughput_events_per_second > 0
