"""Integration tests: retrospective (CSV) and simulated-live (replay) execution.

Section 2 of the paper: analysts develop against retrospective data stored
on disk and then deploy the same pipeline on live streams.  These tests run
the same query over a CSV-backed source and over a replayed "live" source
and check the results agree.
"""

import numpy as np

from repro.core.engine import LifeStreamEngine
from repro.core.query import Query
from repro.core.sources import ArraySource, CsvSource, ReplaySource, write_csv
from repro.data.physio import generate_ecg
from repro.ops.operations import lifestream_normalize


def normalized_query():
    return lifestream_normalize(Query.source("ecg", frequency_hz=500), window=1000)


class TestRetrospectiveCsvExecution:
    def test_csv_backed_pipeline_matches_in_memory(self, tmp_path):
        times, values = generate_ecg(20.0, seed=0)
        path = write_csv(tmp_path / "ecg.csv", times, values)

        engine = LifeStreamEngine(window_size=5_000)
        from_memory = engine.run(
            normalized_query(), sources={"ecg": ArraySource(times, values, period=2)}
        )
        from_csv = engine.run(normalized_query(), sources={"ecg": CsvSource(path, period=2)})

        np.testing.assert_array_equal(from_memory.times, from_csv.times)
        np.testing.assert_allclose(from_memory.values, from_csv.values, atol=1e-9)


class TestLiveReplayExecution:
    def test_incremental_replay_converges_to_retrospective_result(self):
        times, values = generate_ecg(20.0, seed=1)
        source = ArraySource(times, values, period=2)
        engine = LifeStreamEngine(window_size=5_000)

        retrospective = engine.run(normalized_query(), sources={"ecg": source})

        # Simulate live deployment: expose the stream in four chunks and run
        # the same (unchanged) query once the watermark has reached the end.
        replay = ReplaySource(source)
        for watermark in (5_000, 10_000, 20_000, 40_000):
            replay.advance(watermark)
            partial = engine.run(normalized_query(), sources={"ecg": replay})
            assert len(partial) <= len(retrospective)

        replay.advance_to_end()
        live = engine.run(normalized_query(), sources={"ecg": replay})
        np.testing.assert_array_equal(live.times, retrospective.times)
        np.testing.assert_allclose(live.values, retrospective.values, atol=1e-9)

    def test_partial_replay_only_sees_data_before_watermark(self):
        times, values = generate_ecg(10.0, seed=2)
        replay = ReplaySource(ArraySource(times, values, period=2), watermark=4_000)
        engine = LifeStreamEngine(window_size=1_000)
        result = engine.run(normalized_query(), sources={"ecg": replay})
        assert result.times.max() < 4_000
