"""Integration tests: clinically meaningful derived variables as queries.

Section 2 of the paper motivates derived variables such as heart rate
measured from ECG and systolic/diastolic pressure extracted from ABP.
These tests express those derivations in the temporal query language and
check them against the known parameters of the waveform generators — they
double as end-to-end correctness checks of aggregate/join/where over
realistic signals.
"""

import numpy as np
import pytest

from repro.core.engine import LifeStreamEngine
from repro.core.query import Query
from repro.core.sources import ArraySource
from repro.core.timeutil import TICKS_PER_SECOND
from repro.data.physio import generate_abp, generate_ecg


class TestHeartRateFromEcg:
    @pytest.fixture(scope="class")
    def ecg_source(self):
        times, values = generate_ecg(
            60.0, heart_rate_bpm=120, variability=0.0, noise=0.01, baseline_wander=0.0, seed=3
        )
        return ArraySource(times, values, period=2)

    def test_beats_per_10s_window_matches_generator(self, ecg_source):
        # Count R peaks per 10-second window: threshold the signal, then
        # count rising edges by joining with a 2 ms-shifted copy of itself.
        base = Query.source("ecg", frequency_hz=500)
        above = base.select(lambda v: (v > 0.5).astype(float))
        rising = above.multicast(
            lambda s: s.join(s.shift(2), lambda now, before: now * (1.0 - before))
        )
        beats_per_window = rising.tumbling_window(10 * TICKS_PER_SECOND).sum()

        engine = LifeStreamEngine()
        result = engine.run(beats_per_window, sources={"ecg": ecg_source})
        # 120 bpm -> 20 beats per 10 s window; allow one beat of slack at the
        # window boundaries.
        interior = result.values[1:-1]
        assert np.all(np.abs(interior - 20) <= 1)

    def test_heart_rate_in_bpm(self, ecg_source):
        base = Query.source("ecg", frequency_hz=500)
        above = base.select(lambda v: (v > 0.5).astype(float))
        rising = above.multicast(
            lambda s: s.join(s.shift(2), lambda now, before: now * (1.0 - before))
        )
        bpm = rising.tumbling_window(60 * TICKS_PER_SECOND).sum()
        engine = LifeStreamEngine()
        result = engine.run(bpm, sources={"ecg": ecg_source})
        assert len(result) == 1
        assert result.values[0] == pytest.approx(120, abs=3)


class TestBloodPressureVariables:
    @pytest.fixture(scope="class")
    def abp_source(self):
        times, values = generate_abp(
            120.0, systolic_mmhg=110.0, diastolic_mmhg=65.0, variability=0.0, noise=0.0, seed=4
        )
        return ArraySource(times, values, period=8)

    def test_systolic_pressure_per_window(self, abp_source):
        query = Query.source("abp", frequency_hz=125).tumbling_window(5 * TICKS_PER_SECOND).max()
        result = LifeStreamEngine().run(query, sources={"abp": abp_source})
        # The per-window maximum approximates the systolic pressure.
        assert np.all(result.values > 90)
        assert np.all(result.values <= 115)

    def test_diastolic_pressure_per_window(self, abp_source):
        query = Query.source("abp", frequency_hz=125).tumbling_window(5 * TICKS_PER_SECOND).min()
        result = LifeStreamEngine().run(query, sources={"abp": abp_source})
        assert np.all(result.values >= 55)
        assert np.all(result.values < 80)

    def test_pulse_pressure_via_multicast_join(self, abp_source):
        base = Query.source("abp", frequency_hz=125)
        window = 5 * TICKS_PER_SECOND
        pulse_pressure = base.multicast(
            lambda s: s.tumbling_window(window).max().join(
                s.tumbling_window(window).min(), lambda systolic, diastolic: systolic - diastolic
            )
        )
        result = LifeStreamEngine().run(pulse_pressure, sources={"abp": abp_source})
        # Pulse pressure of a 110/65 waveform is ~45 mmHg; the synthetic
        # generator's dicrotic notch and decay narrow it somewhat.
        assert np.all(result.values > 20)
        assert np.all(result.values < 60)

    def test_hypotension_alert_query(self, abp_source):
        # A simple alerting query: windows whose mean pressure drops below a
        # threshold.  On this healthy synthetic record it must fire never.
        query = (
            Query.source("abp", frequency_hz=125)
            .tumbling_window(5 * TICKS_PER_SECOND)
            .mean()
            .where(lambda mean_pressure: mean_pressure < 50)
        )
        result = LifeStreamEngine().run(query, sources={"abp": abp_source})
        assert len(result) == 0


class TestTemporalCorrelation:
    def test_ecg_abp_window_correlation_query(self):
        # The "temporal correlation of different signals" use case from
        # Section 2: join per-window z-scored aggregates of two signals.
        ecg_times, ecg_values = generate_ecg(30.0, seed=5)
        abp_times, abp_values = generate_abp(30.0, seed=6)
        ecg = ArraySource(ecg_times, ecg_values, period=2)
        abp = ArraySource(abp_times, abp_values, period=8)

        window = TICKS_PER_SECOND
        ecg_energy = Query.source("ecg", frequency_hz=500).select(lambda v: v * v).tumbling_window(window).mean()
        abp_level = Query.source("abp", frequency_hz=125).tumbling_window(window).mean()
        joined = ecg_energy.join(abp_level, lambda e, a: e / a)

        result = LifeStreamEngine().run(joined, sources={"ecg": ecg, "abp": abp})
        assert len(result) == 30
        assert np.all(np.isfinite(result.values))
        assert np.all(result.values > 0)
