"""Integration tests: the three engines agree on shared workloads.

These are the correctness checks that make the benchmark comparisons
meaningful — if the engines computed different things, comparing their
execution times would be pointless.
"""

import numpy as np
import pytest

from repro.baselines.microbatch import MicroBatchEngine
from repro.baselines.numlib import pure_python_inner_join
from repro.baselines.trill import TrillEngine, TrillInput, TrillJoin, TrillTumblingAggregate
from repro.core.engine import LifeStreamEngine
from repro.core.query import Query
from repro.core.sources import ArraySource
from repro.data.gaps import inject_burst_gaps
from repro.data.synthetic import generate_events


@pytest.fixture(scope="module")
def join_workload():
    left_times, left_values = generate_events(20_000, frequency_hz=500, seed=0)
    right_times, right_values = generate_events(5_000, frequency_hz=125, seed=1)
    left_times, left_values = inject_burst_gaps(left_times, left_values, 0.2, seed=2)
    right_times, right_values = inject_burst_gaps(right_times, right_values, 0.3, seed=3)
    return (left_times, left_values), (right_times, right_values)


class TestTemporalJoinAgreement:
    def test_lifestream_matches_trill(self, join_workload):
        (lt, lv), (rt, rv) = join_workload
        engine = LifeStreamEngine(window_size=10_000)
        lifestream = engine.run(
            Query.source("l", frequency_hz=500).join(
                Query.source("r", frequency_hz=125), lambda a, b: a + b
            ),
            sources={"l": ArraySource(lt, lv, period=2), "r": ArraySource(rt, rv, period=8)},
        )
        trill = TrillEngine(batch_size=1024)
        trill_times, trill_values, _ = trill.run_join(
            TrillInput(lt, lv, 2), TrillInput(rt, rv, 8), [], [], TrillJoin(lambda a, b: a + b)
        )
        np.testing.assert_array_equal(lifestream.times, trill_times)
        np.testing.assert_allclose(lifestream.values, trill_values)

    def test_lifestream_matches_pure_python_join(self, join_workload):
        (lt, lv), (rt, rv) = join_workload
        engine = LifeStreamEngine(window_size=10_000)
        lifestream = engine.run(
            Query.source("l", frequency_hz=500).join(
                Query.source("r", frequency_hz=125), lambda a, b: b
            ),
            sources={"l": ArraySource(lt, lv, period=2), "r": ArraySource(rt, rv, period=8)},
        )
        numlib_times, _, numlib_right = pure_python_inner_join(lt, lv, rt, rv, right_duration=8)
        np.testing.assert_array_equal(lifestream.times, numlib_times)
        np.testing.assert_allclose(lifestream.values, numlib_right)

    def test_microbatch_engines_match_lifestream(self, join_workload):
        (lt, lv), (rt, rv) = join_workload
        engine = LifeStreamEngine(window_size=10_000)
        lifestream = engine.run(
            Query.source("l", frequency_hz=500).join(
                Query.source("r", frequency_hz=125), lambda a, b: b
            ),
            sources={"l": ArraySource(lt, lv, period=2), "r": ArraySource(rt, rv, period=8)},
        )
        spark = MicroBatchEngine.from_name("spark")
        results, _ = spark.temporal_join(lt, lv, rt, rv, right_duration=8)
        assert len(results) == len(lifestream)
        np.testing.assert_allclose([r[2] for r in results[:100]], lifestream.values[:100])


class TestAggregateAgreement:
    def test_lifestream_matches_trill_tumbling_mean(self):
        times, values = generate_events(30_000, frequency_hz=1000, seed=4)
        engine = LifeStreamEngine(window_size=6_000)
        lifestream = engine.run(
            Query.source("s", frequency_hz=1000).tumbling_window(100).mean(),
            sources={"s": ArraySource(times, values, period=1)},
        )
        trill = TrillEngine(batch_size=512)
        trill_times, trill_values, _ = trill.run_unary(
            TrillInput(times, values, 1), [TrillTumblingAggregate(window=100, func="mean")]
        )
        np.testing.assert_array_equal(lifestream.times, trill_times)
        np.testing.assert_allclose(lifestream.values, trill_values)


class TestListingOneEndToEnd:
    def test_running_example_compiles_and_runs_on_misaligned_rates(self):
        # Listing 1 exactly: 500 Hz and 200 Hz signals (misaligned periods of
        # 2 and 5 ticks) joined after mean subtraction.
        sig500_times, sig500_values = generate_events(25_000, frequency_hz=500, seed=5)
        sig200_times, sig200_values = generate_events(10_000, frequency_hz=200, seed=6)
        sig500 = Query.source("sig500", frequency_hz=500)
        sig200 = Query.source("sig200", frequency_hz=200)
        left = sig500.multicast(
            lambda s: s.select(lambda v: v).join(
                s.tumbling_window(100).mean(), lambda value, mean: value - mean
            )
        )
        output = left.join(sig200.select(lambda v: v), lambda l, r: l + r)

        engine = LifeStreamEngine(window_size=10_000)
        compiled = engine.compile(
            output,
            sources={
                "sig500": ArraySource(sig500_times, sig500_values, period=2),
                "sig200": ArraySource(sig200_times, sig200_values, period=5),
            },
        )
        result = compiled.run()
        assert len(result) == 25_000
        # Output events live on the finer (500 Hz) grid.
        assert np.all(np.diff(result.times) == 2)
        # Locality tracing gave every node the same dimension (Figure 6).
        dimensions = {node.dimension for node in compiled.plan.sink.iter_nodes()}
        assert len(dimensions) == 1
