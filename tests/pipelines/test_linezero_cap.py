"""Tests for the LineZero artifact-detection and CAP preprocessing pipelines."""

import pytest

from repro.data.artifacts import inject_line_zero
from repro.data.dataset import make_cap_patient
from repro.data.physio import generate_abp
from repro.pipelines.cap import cap_query, run_lifestream_cap, run_trill_cap
from repro.pipelines.linezero import (
    evaluate_linezero_accuracy,
    linezero_query,
    run_lifestream_linezero,
    run_trill_linezero,
)


@pytest.fixture(scope="module")
def abp_with_artifacts():
    times, values = generate_abp(90.0, seed=11)
    corrupted, artifacts = inject_line_zero(values, n_artifacts=4, seed=12)
    return times, corrupted, artifacts


class TestLineZero:
    def test_query_structure(self):
        query = linezero_query()
        assert query.source_names() == {"abp"}
        assert query.operator_count() == 1

    def test_lifestream_detects_every_artifact(self, abp_with_artifacts):
        times, values, artifacts = abp_with_artifacts
        regions, run = run_lifestream_linezero(times, values)
        scores = evaluate_linezero_accuracy(regions, artifacts, values.size)
        # Section 6.1 reports 0% false negatives and 0.2% false positives.
        assert scores["false_negative_rate"] == 0.0
        assert scores["false_positive_rate"] <= 0.02
        assert run.events_ingested == times.size

    def test_trill_detects_every_artifact(self, abp_with_artifacts):
        times, values, artifacts = abp_with_artifacts
        regions, _ = run_trill_linezero(times, values)
        scores = evaluate_linezero_accuracy(regions, artifacts, values.size)
        assert scores["false_negative_rate"] == 0.0

    def test_clean_signal_produces_no_detections(self):
        times, values = generate_abp(60.0, seed=13)
        regions, _ = run_lifestream_linezero(times, values)
        assert regions == []

    def test_engines_agree_on_detected_regions(self, abp_with_artifacts):
        times, values, artifacts = abp_with_artifacts
        lifestream_regions, _ = run_lifestream_linezero(times, values)
        trill_regions, _ = run_trill_linezero(times, values)
        assert len(lifestream_regions) == len(trill_regions) == len(artifacts)


class TestCap:
    @pytest.fixture(scope="class")
    def patient(self):
        return make_cap_patient(duration_seconds=20.0, seed=5)

    def test_query_joins_all_signals(self, patient):
        signals = [(name, signal.frequency_hz) for name, signal in patient.signals.items()]
        query = cap_query(signals)
        assert query.source_names() == set(patient.signals)
        # 4 preprocessing stages per signal + 5 joins.
        assert query.operator_count() == 4 * len(signals) + (len(signals) - 1)

    def test_query_requires_at_least_two_signals(self):
        with pytest.raises(ValueError):
            cap_query([("ecg", 500.0)])

    def test_lifestream_cap_runs(self, patient):
        run = run_lifestream_cap(patient)
        assert run.events_emitted > 0
        assert run.extra["signals"] == 6
        assert run.events_ingested == patient.total_events()

    def test_trill_cap_runs(self, patient):
        run = run_trill_cap(patient)
        assert run.events_emitted > 0

    def test_engines_emit_similar_event_counts(self, patient):
        lifestream = run_lifestream_cap(patient)
        trill = run_trill_cap(patient)
        assert trill.events_emitted == pytest.approx(lifestream.events_emitted, rel=0.1)

    def test_output_bounded_by_target_grid(self, patient):
        # The combined stream lives on the 125 Hz grid, so it cannot emit
        # more events than the patient's time span divided by 8 ticks.
        run = run_lifestream_cap(patient)
        max_events = 20_000 // 8 + 1
        assert run.events_emitted <= max_events
