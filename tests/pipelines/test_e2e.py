"""Tests for the Figure 3 end-to-end pipeline on all three engines."""

import pytest

from repro.data.gaps import inject_burst_gaps
from repro.data.physio import generate_abp, generate_ecg
from repro.errors import TrillOutOfMemoryError
from repro.pipelines.e2e import (
    E2E_ENGINES,
    lifestream_e2e_query,
    run_e2e,
    run_lifestream_e2e,
    run_numlib_e2e,
    run_trill_e2e,
)


@pytest.fixture(scope="module")
def dataset():
    ecg = generate_ecg(30.0, seed=0)
    abp = generate_abp(30.0, seed=1)
    ecg = inject_burst_gaps(*ecg, 0.1, seed=2)
    abp = inject_burst_gaps(*abp, 0.2, seed=3)
    return ecg, abp


class TestQueryStructure:
    def test_query_references_both_signals(self):
        query = lifestream_e2e_query()
        assert query.source_names() == {"ecg", "abp"}

    def test_query_has_the_figure3_stages(self):
        # ECG: fill + normalize; ABP: fill + resample + normalize; then join.
        assert lifestream_e2e_query().operator_count() == 6


class TestEngines:
    def test_lifestream_produces_joined_events(self, dataset):
        ecg, abp = dataset
        run = run_lifestream_e2e(ecg, abp)
        assert run.engine == "lifestream"
        assert run.events_emitted > 0
        assert run.events_ingested == ecg[0].size + abp[0].size
        assert run.throughput_events_per_second > 0

    def test_trill_produces_joined_events(self, dataset):
        ecg, abp = dataset
        run = run_trill_e2e(ecg, abp)
        assert run.events_emitted > 0
        assert run.extra["peak_state_bytes"] > 0

    def test_numlib_produces_joined_events(self, dataset):
        ecg, abp = dataset
        run = run_numlib_e2e(ecg, abp)
        assert run.events_emitted > 0

    def test_dispatch_by_name(self, dataset):
        ecg, abp = dataset
        for engine in E2E_ENGINES:
            assert run_e2e(engine, ecg, abp).events_emitted > 0
        with pytest.raises(ValueError):
            run_e2e("spark", ecg, abp)

    def test_engines_emit_similar_event_counts(self, dataset):
        # The three implementations share the same pipeline semantics, so the
        # number of joined events should be in the same ballpark (the NumLib
        # version interpolates across gaps and therefore emits somewhat more).
        ecg, abp = dataset
        lifestream = run_lifestream_e2e(ecg, abp).events_emitted
        trill = run_trill_e2e(ecg, abp).events_emitted
        assert trill == pytest.approx(lifestream, rel=0.15)

    def test_targeted_beats_eager_on_window_count(self, dataset):
        ecg, abp = dataset
        targeted = run_lifestream_e2e(ecg, abp, targeted=True)
        eager = run_lifestream_e2e(ecg, abp, targeted=False)
        assert targeted.extra["windows_computed"] <= eager.extra["windows_computed"]

    def test_trill_out_of_memory_on_divergent_data(self):
        # ECG present for the full span, ABP only at the very end: the join
        # has to buffer nearly all transformed ECG events and exceeds a small
        # memory budget (the Section 8.3 behaviour).
        ecg = generate_ecg(60.0, seed=0)
        abp_times, abp_values = generate_abp(60.0, seed=1)
        keep = abp_times >= abp_times[-1] - 1000
        abp = (abp_times[keep], abp_values[keep])
        with pytest.raises(TrillOutOfMemoryError):
            run_trill_e2e(ecg, abp, memory_budget_bytes=200_000)

    def test_speedup_helper(self, dataset):
        ecg, abp = dataset
        lifestream = run_lifestream_e2e(ecg, abp)
        numlib = run_numlib_e2e(ecg, abp)
        assert lifestream.speedup_over(numlib) == pytest.approx(
            numlib.elapsed_seconds / lifestream.elapsed_seconds
        )
