"""Hot-swap parity suite: mid-stream plan replacement is invisible.

:meth:`~repro.core.runtime.session.StreamingSession.swap_plan` replaces a
live session's compiled plan at a tick boundary — the mechanism behind the
adaptive service's profile-guided recompilation.  The contract under test:
a session that swaps plans mid-stream (same config, different backend,
different targeted mode, different fusion cuts) emits exactly the events a
never-swapped session does, across every backend x mode combination; a
swap that cannot preserve the stream (misaligned window grid, mismatched
operator state) is refused with the original session left intact.
"""

import numpy as np
import pytest

from repro.core.compiler import CompileHints
from repro.core.engine import LifeStreamEngine
from repro.core.query import Query
from repro.core.runtime import BatchedBackend, VectorizedBackend
from repro.core.sources import ArraySource, ReplaySource
from repro.errors import ExecutionError

WINDOW_SIZE = 1000
WATERMARKS = (777, 2500, 4211, 7000, 9999, 12001)

#: Backend factories for the swap matrix (fresh objects per test: backends
#: cache twins/executors on plans).
BACKENDS = {
    "serial": lambda: None,
    "batched-4": lambda: BatchedBackend(batch_windows=4),
    "vectorized": lambda: VectorizedBackend(),
}


def _signal(n=6000, period=2, seed=3):
    rng = np.random.default_rng(seed)
    times = np.arange(n, dtype=np.int64) * period
    keep = np.ones(n, dtype=bool)
    for start in rng.integers(0, n - 500, size=3):
        keep[start : start + int(rng.integers(100, 400))] = False
    values = np.sin(np.arange(n) * 0.01) * 10
    return times[keep], values[keep]


def _source(seed=3):
    times, values = _signal(seed=seed)
    return ArraySource(times, values, period=2)


def _query():
    """Element-wise chain with a stateful stage (shift carries values across
    window boundaries) feeding a tumbling aggregate — the state-transfer
    worst case the swap protocol must carry exactly."""
    return (
        Query.source("s", frequency_hz=500)
        .select(lambda v: v * 2 + 1)
        .shift(2)
        .where(lambda v: v > -50)
        .tumbling_window(100)
        .mean()
    )


def _assert_identical(reference, candidate, label=""):
    np.testing.assert_array_equal(reference.times, candidate.times, err_msg=label)
    np.testing.assert_array_equal(reference.values, candidate.values, err_msg=label)
    np.testing.assert_array_equal(
        reference.durations, candidate.durations, err_msg=label
    )


def _engine(targeted=True, backend=None):
    return LifeStreamEngine(
        window_size=WINDOW_SIZE, targeted=targeted, backend=backend
    )


def _reference_result(targeted=True, backend=None, seed=3):
    """A never-swapped session over the full watermark schedule."""
    session = _engine(targeted, backend).open_session(
        _query(), {"s": ReplaySource(_source(seed))}
    )
    for watermark in WATERMARKS:
        session.advance(watermark)
    session.finish()
    result = session.result()
    session.close()
    return result


def _run_with_swap(swap_at, old_backend, new_backend=None, targeted=True, seed=3):
    """Advance through WATERMARKS, swapping to a fresh compile after the
    *swap_at*-th boundary.  Returns (final session, result)."""
    sources = {"s": ReplaySource(_source(seed))}
    session = _engine(targeted, old_backend).open_session(_query(), sources)
    for watermark in WATERMARKS[:swap_at]:
        session.advance(watermark)
    replacement = _engine(targeted, new_backend).compile(_query(), sources)
    session = session.swap_plan(replacement, targeted=targeted, backend=new_backend)
    for watermark in WATERMARKS[swap_at:]:
        session.advance(watermark)
    session.finish()
    return session, session.result()


class TestSwapParityMatrix:
    @pytest.mark.parametrize("targeted", [True, False], ids=["targeted", "eager"])
    @pytest.mark.parametrize("backend_name", sorted(BACKENDS))
    @pytest.mark.parametrize("swap_at", [1, 3, 5])
    def test_same_config_swap_is_bit_identical(self, backend_name, targeted, swap_at):
        """Recompile-and-swap with an unchanged configuration at several
        different tick boundaries: pure no-op for the output stream."""
        factory = BACKENDS[backend_name]
        reference = _reference_result(targeted, factory())
        session, result = _run_with_swap(
            swap_at, factory(), factory(), targeted=targeted
        )
        _assert_identical(reference, result, f"{backend_name}/swap@{swap_at}")
        assert session.recompiled
        session.close()

    @pytest.mark.parametrize(
        "old_name, new_name",
        [
            ("serial", "vectorized"),
            ("vectorized", "serial"),
            ("batched-4", "serial"),
            ("vectorized", "batched-4"),
        ],
    )
    def test_cross_backend_swap_is_bit_identical(self, old_name, new_name):
        """Swapping between execution backends mid-stream preserves output.

        Swapping *off* a batched twin is always grid-aligned (the twin's
        boundaries are a subset of the base grid); swapping *onto* one is
        covered separately because it can be refused."""
        reference = _reference_result()
        session, result = _run_with_swap(
            3, BACKENDS[old_name](), BACKENDS[new_name]()
        )
        _assert_identical(reference, result, f"{old_name}->{new_name}")
        assert session.recompiled
        session.close()

    def test_swap_label_reports_recompiled(self):
        session, result = _run_with_swap(2, None, VectorizedBackend())
        assert result.stats.execution_mode == "vectorized (recompiled)"
        assert session.backend_name == "vectorized"
        session.close()
        session, result = _run_with_swap(2, None, None)
        assert result.stats.execution_mode == "serial (recompiled)"
        session.close()


class TestSwapOntoBatchedGrid:
    def test_aligned_swap_onto_twin_succeeds_eventually(self):
        """Serial -> batched is only legal at every batch_windows-th window
        boundary; a pump loop that retries on misalignment lands one."""
        reference = _reference_result()
        sources = {"s": ReplaySource(_source())}
        session = _engine().open_session(_query(), sources)
        swapped = False
        for watermark in WATERMARKS:
            session.advance(watermark)
            if not swapped:
                backend = BatchedBackend(batch_windows=4)
                replacement = _engine(backend=backend).compile(_query(), sources)
                try:
                    session = session.swap_plan(replacement, backend=backend)
                    swapped = True
                except ExecutionError:
                    continue  # misaligned boundary: retry at the next tick
        assert swapped, "no aligned boundary found across the whole schedule"
        session.finish()
        _assert_identical(reference, session.result(), "serial->batched")
        assert session.result().stats.execution_mode == "batched (recompiled)"
        session.close()

    def test_misaligned_swap_raises_and_leaves_session_intact(self):
        reference = _reference_result()
        sources = {"s": ReplaySource(_source())}
        session = _engine().open_session(_query(), sources)
        misaligned = 0
        dimension = session._plan.sink.dimension
        offset = session._plan.sink.descriptor.offset
        for watermark in WATERMARKS:
            session.advance(watermark)
            frontier = session.frontier
            if frontier is None:
                continue
            # A 3-window twin triples the sink dimension; only try the
            # boundaries that are provably NOT on the twin's widened grid.
            emitted_through = frontier + dimension
            if (emitted_through - offset) % (3 * dimension) == 0:
                continue
            backend = BatchedBackend(batch_windows=3)
            replacement = _engine(backend=backend).compile(_query(), sources)
            with pytest.raises(ExecutionError, match="misaligned"):
                session.swap_plan(replacement, backend=backend)
            misaligned += 1
        assert misaligned > 0, "every boundary happened to align; broaden the data"
        # The refused swaps left the original session fully functional.
        session.finish()
        _assert_identical(reference, session.result(), "after refused swaps")
        assert not session.recompiled
        session.close()


class TestSwapStateTransfer:
    def test_fusion_cut_swap_transfers_flattened_state(self):
        """Swapping between plans with different fusion cut points regroups
        per-stage carries (the shift's FIFO) without losing an event."""
        reference = _reference_result()
        sources = {"s": ReplaySource(_source())}
        session = _engine().open_session(_query(), sources)
        for watermark in WATERMARKS[:3]:
            session.advance(watermark)
        cut = _engine().compile(
            _query(), sources, hints=CompileHints(max_fusion_length=2)
        )
        assert cut.plan.hints.max_fusion_length == 2
        session = session.swap_plan(cut)
        for watermark in WATERMARKS[3:]:
            session.advance(watermark)
        session.finish()
        _assert_identical(reference, session.result(), "fusion-cut swap")
        session.close()

    def test_unfused_to_fused_swap(self):
        """Level-0 (no fusion, no normalization) and level-2 plans have
        different node structure; the flattened protocol still lines the
        per-operator states up when the stage sequences agree."""
        query = (
            Query.source("s", frequency_hz=500)
            .select(lambda v: v + 1.0)
            .where(lambda v: v > -100)
            .tumbling_window(100)
            .mean()
        )
        sources = {"s": ReplaySource(_source())}
        reference_session = _engine().open_session(query, sources={"s": ReplaySource(_source())})
        for watermark in WATERMARKS:
            reference_session.advance(watermark)
        reference_session.finish()
        reference = reference_session.result()
        reference_session.close()

        unfused_engine = LifeStreamEngine(window_size=WINDOW_SIZE, optimization_level=0)
        session = unfused_engine.open_session(query, sources)
        for watermark in WATERMARKS[:2]:
            session.advance(watermark)
        fused = _engine().compile(query, sources)
        session = session.swap_plan(fused)
        for watermark in WATERMARKS[2:]:
            session.advance(watermark)
        session.finish()
        _assert_identical(reference, session.result(), "unfused->fused")
        session.close()

    def test_mismatched_query_swap_is_refused(self):
        sources = {"s": ReplaySource(_source())}
        session = _engine().open_session(_query(), sources)
        session.advance(2500)
        # Same shift (so the window grids agree) but the select/where stages
        # are gone: alignment passes, the state transplant must refuse.
        other = _engine().compile(
            Query.source("s", frequency_hz=500).shift(2).tumbling_window(100).mean(),
            sources,
        )
        with pytest.raises(ExecutionError, match="state mismatch"):
            session.swap_plan(other)
        # Refusal must not have corrupted the original session.
        session.advance(4211)
        session.close()

    def test_swap_closes_old_session_and_frees_plan(self):
        sources = {"s": ReplaySource(_source())}
        compiled_old = _engine().compile(_query(), sources)
        session = compiled_old.open_session()
        session.advance(2500)
        compiled_new = _engine().compile(_query(), sources)
        new_session = session.swap_plan(compiled_new)
        assert session.closed
        # The old compiled query is released for one-shot runs again.
        compiled_old.run()
        new_session.close()


class TestCheckpointAcrossSwap:
    def test_checkpoint_restore_after_swap(self):
        """A checkpoint taken after a hot swap restores onto a fresh compile
        of the swapped-to configuration and finishes bit-identically."""
        reference = _reference_result(backend=VectorizedBackend())
        sources = {"s": ReplaySource(_source())}
        session = _engine().open_session(_query(), sources)
        for watermark in WATERMARKS[:3]:
            session.advance(watermark)
        backend = VectorizedBackend()
        replacement = _engine(backend=backend).compile(_query(), sources)
        session = session.swap_plan(replacement, backend=backend)
        session.advance(WATERMARKS[3])
        checkpoint = session.checkpoint()
        session.close()

        # Reference continues on sessions driven by the same backend from
        # the start; only times/values/durations must agree, and do.
        restored = _engine(backend=VectorizedBackend()).compile(
            _query(), {"s": ReplaySource(_source())}
        ).open_session(checkpoint=checkpoint)
        for watermark in WATERMARKS[4:]:
            restored.advance(watermark)
        restored.finish()
        _assert_identical(reference, restored.result(), "checkpoint across swap")
        restored.close()
