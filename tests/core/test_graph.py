"""Unit tests for the plan-graph utilities (nodes, traversal, plan dumps)."""

import numpy as np
import pytest

from repro.core.compiler import build_plan, compile_plan
from repro.core.graph import (
    OperatorNode,
    SourceNode,
    describe_plan,
    operator_nodes,
    plan_fragmentation,
    source_nodes,
    topological_order,
    total_preallocated_bytes,
)
from repro.core.operators import Join, Select
from repro.core.query import Query
from repro.errors import CompilationError, ExecutionError

from tests.conftest import make_source


@pytest.fixture
def compiled_join_plan(ramp_500hz, ramp_125hz):
    query = Query.source("a", frequency_hz=500).select(lambda v: v).join(
        Query.source("b", frequency_hz=125)
    )
    return compile_plan(query, {"a": ramp_500hz, "b": ramp_125hz}, window_size=1000)


class TestTraversal:
    def test_topological_order_puts_sources_first(self, compiled_join_plan):
        order = topological_order(compiled_join_plan.sink)
        kinds = [type(node).__name__ for node in order]
        # Both sources appear before the join (the last node).
        assert kinds[-1] == "OperatorNode"
        assert kinds.count("SourceNode") == 2
        first_operator = next(i for i, k in enumerate(kinds) if k == "OperatorNode")
        assert all(k == "SourceNode" for k in kinds[: first_operator - 0] if k == "SourceNode")

    def test_inputs_precede_consumers(self, compiled_join_plan):
        order = topological_order(compiled_join_plan.sink)
        positions = {id(node): index for index, node in enumerate(order)}
        for node in order:
            for upstream in node.inputs:
                assert positions[id(upstream)] < positions[id(node)]

    def test_shared_multicast_node_appears_once(self, ramp_500hz):
        query = Query.source("s", frequency_hz=500).multicast(
            lambda s: s.join(s.tumbling_window(100).mean(), lambda v, m: v - m)
        )
        sink = build_plan(query, {"s": ramp_500hz})
        assert len(source_nodes(sink)) == 1
        assert len(topological_order(sink)) == 3  # source + aggregate + join

    def test_source_and_operator_helpers(self, compiled_join_plan):
        sink = compiled_join_plan.sink
        assert len(source_nodes(sink)) == 2
        names = {type(op.operator).__name__ for op in operator_nodes(sink)}
        assert names == {"Select", "Join"}


class TestNodeBehaviour:
    def test_operator_node_checks_arity(self, ramp_500hz):
        source_node = SourceNode("s", ramp_500hz)
        with pytest.raises(CompilationError):
            OperatorNode("bad", Join(), [source_node])
        with pytest.raises(CompilationError):
            OperatorNode("bad", Select(lambda v: v), [source_node, source_node])

    def test_fill_before_compilation_is_an_error(self, ramp_500hz):
        node = SourceNode("s", ramp_500hz)
        with pytest.raises(ExecutionError):
            node.fill(0)

    def test_fill_is_cached_per_sync_time(self, ramp_500hz):
        query = Query.source("s", frequency_hz=500).select(lambda v: v)
        plan = compile_plan(query, {"s": ramp_500hz}, window_size=1000)
        sink = plan.sink
        for node in topological_order(sink):
            node.reset()
        sink.fill(0)
        sink.fill(0)  # second call must not recompute
        assert sink.windows_computed == 1

    def test_reset_clears_counters_and_state(self, compiled_join_plan):
        sink = compiled_join_plan.sink
        for node in topological_order(sink):
            node.reset()
        sink.fill(0)
        assert sink.windows_computed == 1
        for node in topological_order(sink):
            node.reset()
        assert all(node.windows_computed == 0 for node in topological_order(sink))


class TestPlanDescriptions:
    def test_describe_plan_lists_every_node(self, compiled_join_plan):
        text = describe_plan(compiled_join_plan.sink)
        assert len(text.splitlines()) == len(topological_order(compiled_join_plan.sink))
        assert "<-" in text

    def test_total_preallocated_bytes_matches_memory_plan(self, compiled_join_plan):
        assert (
            total_preallocated_bytes(compiled_join_plan.sink)
            == compiled_join_plan.memory_plan.total_bytes
        )

    def test_plan_fragmentation_is_zero_on_dense_data(self, compiled_join_plan):
        sink = compiled_join_plan.sink
        for node in topological_order(sink):
            node.reset()
        sink.fill(0)
        assert plan_fragmentation(sink) == 0.0

    def test_plan_fragmentation_sees_interior_holes(self):
        # A stream with a single missing event inside the window.
        times = np.array([0, 2, 6, 8], dtype=np.int64)
        source = make_source(4, period=2)
        from repro.core.sources import ArraySource

        gappy = ArraySource(times, np.ones(4), period=2)
        query = Query.source("s", frequency_hz=500).select(lambda v: v)
        plan = compile_plan(query, {"s": gappy}, window_size=10)
        sink = plan.sink
        for node in topological_order(sink):
            node.reset()
        sink.fill(0)
        assert plan_fragmentation(sink) > 0.0
        assert source.event_count() == 4  # the helper fixture stays untouched
