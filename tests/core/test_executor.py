"""Unit tests for plan execution: targeted vs eager, stats, repeatability."""

import numpy as np
import pytest

from repro.core.engine import LifeStreamEngine
from repro.core.query import Query
from repro.core.runtime.result import StreamResult
from repro.core.sources import ArraySource
from repro.errors import ExecutionError


def e2e_like_query() -> Query:
    ecg = Query.source("ecg", frequency_hz=500).select(lambda v: v * 2)
    abp = Query.source("abp", frequency_hz=125).alter_period(2, mode="hold")
    return ecg.join(abp, lambda left, right: left + right)


class TestTargetedVersusEager:
    @pytest.fixture
    def gappy_pair(self):
        # ECG missing in the middle, ABP missing at the end: the mutually
        # overlapping region is only the first quarter of the span.
        n = 8000
        ecg_times = np.arange(n, dtype=np.int64) * 2
        ecg_keep = np.ones(n, dtype=bool)
        ecg_keep[2000:6000] = False
        abp_times = np.arange(n // 4, dtype=np.int64) * 8
        abp_keep = np.ones(n // 4, dtype=bool)
        abp_keep[1000:] = False
        ecg = ArraySource(ecg_times[ecg_keep], np.arange(n, dtype=float)[ecg_keep], period=2)
        abp = ArraySource(
            abp_times[abp_keep], np.arange(n // 4, dtype=float)[abp_keep], period=8
        )
        return ecg, abp

    def test_results_identical(self, gappy_pair):
        ecg, abp = gappy_pair
        engine = LifeStreamEngine(window_size=1000)
        targeted = engine.run(e2e_like_query(), sources={"ecg": ecg, "abp": abp}, targeted=True)
        eager = engine.run(e2e_like_query(), sources={"ecg": ecg, "abp": abp}, targeted=False)
        np.testing.assert_array_equal(targeted.times, eager.times)
        np.testing.assert_allclose(targeted.values, eager.values)

    def test_targeted_computes_fewer_windows(self, gappy_pair):
        ecg, abp = gappy_pair
        engine = LifeStreamEngine(window_size=1000)
        targeted = engine.run(e2e_like_query(), sources={"ecg": ecg, "abp": abp}, targeted=True)
        eager = engine.run(e2e_like_query(), sources={"ecg": ecg, "abp": abp}, targeted=False)
        assert targeted.stats.windows_computed < eager.stats.windows_computed
        assert targeted.stats.windows_skipped > 0
        assert eager.stats.windows_skipped == 0

    def test_skipped_windows_match_coverage_gap(self, gappy_pair):
        ecg, abp = gappy_pair
        engine = LifeStreamEngine(window_size=1000)
        compiled = engine.compile(e2e_like_query(), sources={"ecg": ecg, "abp": abp})
        targeted = compiled.run(targeted=True)
        # The joinable region is [0, 4000) out of a [0, 16000) span.
        assert targeted.stats.output_windows == 4

    def test_stats_record_targeted_flag(self, gappy_pair):
        ecg, abp = gappy_pair
        engine = LifeStreamEngine(window_size=1000)
        result = engine.run(e2e_like_query(), sources={"ecg": ecg, "abp": abp}, targeted=False)
        assert result.stats.targeted is False


class TestExecutionStats:
    def test_events_ingested_counts_all_sources(self, engine, ramp_500hz, ramp_125hz):
        query = Query.source("ecg", frequency_hz=500).join(Query.source("abp", frequency_hz=125))
        result = engine.run(query, sources={"ecg": ramp_500hz, "abp": ramp_125hz})
        assert result.stats.events_ingested == ramp_500hz.event_count() + ramp_125hz.event_count()

    def test_events_emitted_matches_result_length(self, engine, ramp_500hz):
        query = Query.source("s", frequency_hz=500).where(lambda v: v < 50)
        result = engine.run(query, sources={"s": ramp_500hz})
        assert result.stats.events_emitted == len(result)

    def test_per_node_window_counts(self, engine, ramp_500hz):
        query = Query.source("s", frequency_hz=500).select(lambda v: v)
        result = engine.run(query, sources={"s": ramp_500hz})
        counts = set(result.stats.per_node_windows.values())
        assert counts == {result.stats.output_windows}

    def test_preallocated_bytes_reported(self, engine, ramp_500hz):
        query = Query.source("s", frequency_hz=500).select(lambda v: v)
        result = engine.run(query, sources={"s": ramp_500hz})
        assert result.stats.preallocated_bytes > 0

    def test_throughput_property(self):
        from repro.core.runtime.result import ExecutionStats

        stats = ExecutionStats(events_ingested=1000, elapsed_seconds=0.5)
        assert stats.throughput_events_per_second == 2000
        assert ExecutionStats().throughput_events_per_second == 0.0

    def test_collect_false_still_counts_windows(self, engine, ramp_500hz):
        query = Query.source("s", frequency_hz=500).select(lambda v: v)
        compiled = engine.compile(query, sources={"s": ramp_500hz})
        result = compiled.run(collect=False)
        assert len(result) == 0
        assert result.stats.output_windows > 0


class TestRepeatability:
    def test_compiled_query_can_run_twice(self, engine, ramp_500hz):
        query = Query.source("s", frequency_hz=500).tumbling_window(100).mean()
        compiled = engine.compile(query, sources={"s": ramp_500hz})
        first = compiled.run()
        second = compiled.run()
        np.testing.assert_array_equal(first.times, second.times)
        np.testing.assert_allclose(first.values, second.values)

    def test_stateful_operators_reset_between_runs(self, engine, ramp_500hz, ramp_125hz):
        query = Query.source("a", frequency_hz=500).join(
            Query.source("b", frequency_hz=125), lambda l, r: l + r
        )
        compiled = engine.compile(query, sources={"a": ramp_500hz, "b": ramp_125hz})
        first = compiled.run()
        second = compiled.run()
        np.testing.assert_allclose(first.values, second.values)

    def test_empty_source_produces_empty_result(self, engine):
        empty = ArraySource(np.empty(0, dtype=np.int64), np.empty(0), period=2)
        query = Query.source("s", frequency_hz=500).select(lambda v: v)
        result = engine.run(query, sources={"s": empty})
        assert len(result) == 0
        assert result.stats.output_windows == 0


class TestStreamResult:
    def test_iteration_yields_events(self, engine, ramp_500hz):
        query = Query.source("s", frequency_hz=500).where(lambda v: v < 3)
        result = engine.run(query, sources={"s": ramp_500hz})
        events = list(result)
        assert [event.value for event in events] == [0.0, 1.0, 2.0]
        assert events == result.to_events()

    def test_value_at(self, engine, ramp_500hz):
        query = Query.source("s", frequency_hz=500).select(lambda v: v * 2)
        result = engine.run(query, sources={"s": ramp_500hz})
        assert result.value_at(10) == 10.0
        with pytest.raises(KeyError):
            result.value_at(11)

    def test_time_span(self, engine, ramp_500hz):
        query = Query.source("s", frequency_hz=500).select(lambda v: v)
        result = engine.run(query, sources={"s": ramp_500hz})
        assert result.time_span() == (0, 10_000)

    def test_empty_result_helpers(self):
        empty = StreamResult.empty()
        assert len(empty) == 0
        assert empty.time_span() == (0, 0)
        assert empty.to_events() == []

    def test_window_size_must_be_positive(self):
        with pytest.raises(ExecutionError):
            LifeStreamEngine(window_size=0)
