"""Streaming-session suite: incremental parity, checkpointing, lifecycle.

The core guarantee of :class:`~repro.core.runtime.session.StreamingSession`
is that tick-by-tick execution over an advancing watermark emits exactly
the events a one-shot batch run over the same final coverage emits —
bit-identical times, values and durations — including when a session is
checkpointed mid-stream and restored onto a freshly compiled plan.
"""

import numpy as np
import pytest

from repro.core.engine import LifeStreamEngine
from repro.core.query import Query
from repro.core.runtime import BatchedBackend, MultiprocessBackend, SerialBackend
from repro.core.sources import ArraySource, ReplaySource
from repro.errors import ExecutionError


def _signal(n=6000, period=2, seed=3):
    rng = np.random.default_rng(seed)
    times = np.arange(n, dtype=np.int64) * period
    keep = np.ones(n, dtype=bool)
    for start in rng.integers(0, n - 500, size=3):
        keep[start : start + int(rng.integers(100, 400))] = False
    values = np.sin(np.arange(n) * 0.01) * 10
    return times[keep], values[keep]


def _source(period=2, seed=3):
    times, values = _signal(period=period, seed=seed)
    return ArraySource(times, values, period=period)


#: Queries covering every kind of cross-tick carry state: element-wise
#: chains (fusion), Shift FIFOs, sliding-aggregate tails, join carries over
#: multicast fan-out, chop carries, and a non-batch-safe interpolation (the
#: batched backend's serial session fallback).
SESSION_QUERIES = {
    "elementwise": lambda: (
        Query.source("s", frequency_hz=500)
        .select(lambda v: v * 2 + 1)
        .where(lambda v: v > -5)
    ),
    "shift-chain": lambda: (
        Query.source("s", frequency_hz=500)
        .select(lambda v: v + 0.5)
        .shift(1000)
        .where(lambda v: np.abs(v) < 9)
    ),
    "sliding": lambda: (
        Query.source("s", frequency_hz=500).sliding_window(200, 100).max()
    ),
    "multicast-join": lambda: Query.source("s", frequency_hz=500).multicast(
        lambda s: s.select(lambda v: v)
        .join(s.tumbling_window(100).mean(), lambda v, m: v - m)
    ),
    "chop": lambda: (
        Query.source("s", frequency_hz=500).tumbling_window(500).mean().chop(10)
    ),
    "resample-interpolate": lambda: (
        Query.source("s", frequency_hz=500).resample(period=1, mode="interpolate")
    ),
}

SESSION_BACKENDS = {
    "serial": lambda: None,
    "batched-4": lambda: BatchedBackend(batch_windows=4),
}

#: Irregular watermark schedule: > 3 advances, not window-aligned, with a
#: no-new-data repeat in the middle.
WATERMARKS = (777, 2500, 2500, 4211, 7000, 9999, 11000)


def _assert_identical(reference, candidate, label=""):
    np.testing.assert_array_equal(reference.times, candidate.times, err_msg=label)
    np.testing.assert_array_equal(reference.values, candidate.values, err_msg=label)
    np.testing.assert_array_equal(reference.durations, candidate.durations, err_msg=label)


def _run_session(query, targeted, backend, watermarks=WATERMARKS, checkpoint_at=None,
                 checkpoint_path=None):
    """Drive a session over *watermarks*; optionally checkpoint/restore mid-way."""
    engine = LifeStreamEngine(window_size=1000, backend=backend)
    session = engine.open_session(
        query(), {"s": ReplaySource(_source())}, targeted=targeted
    )
    for index, watermark in enumerate(watermarks):
        session.advance(watermark)
        if checkpoint_at is not None and index == checkpoint_at:
            session.checkpoint(checkpoint_path)
            session.close()
            # Simulate a crash: fresh compile, fresh replay source, restore.
            session = engine.open_session(
                query(),
                {"s": ReplaySource(_source())},
                targeted=targeted,
                checkpoint=checkpoint_path,
            )
    session.finish()
    result = session.result()
    session.close()
    return result, session


class TestSessionParity:
    @pytest.mark.parametrize("query_name", sorted(SESSION_QUERIES))
    @pytest.mark.parametrize("backend_name", sorted(SESSION_BACKENDS))
    @pytest.mark.parametrize("targeted", [True, False])
    def test_incremental_matches_one_shot(self, query_name, backend_name, targeted):
        reference = LifeStreamEngine(window_size=1000).run(
            SESSION_QUERIES[query_name](), {"s": _source()}, targeted=targeted
        )
        result, _ = _run_session(
            SESSION_QUERIES[query_name], targeted, SESSION_BACKENDS[backend_name]()
        )
        _assert_identical(
            reference, result, f"{query_name} on {backend_name} targeted={targeted}"
        )

    def test_single_big_advance_matches_many_small_ones(self):
        query = SESSION_QUERIES["multicast-join"]
        coarse, _ = _run_session(query, True, None, watermarks=(30000,))
        fine, _ = _run_session(query, True, None, watermarks=tuple(range(500, 30000, 500)))
        _assert_identical(coarse, fine)

    def test_windows_straddling_watermark_are_deferred(self):
        engine = LifeStreamEngine(window_size=1000)
        session = engine.open_session(
            SESSION_QUERIES["elementwise"](), {"s": ReplaySource(_source())}
        )
        tick = session.advance(1500)  # half of the second window visible
        assert tick.windows_run == 1
        assert tick.windows_deferred >= 1
        assert session.frontier == 0
        tick = session.advance(2000)
        assert tick.windows_run == 1
        assert session.frontier == 1000
        session.close()

    def test_tick_instrumentation(self):
        result, session = _run_session(SESSION_QUERIES["sliding"], True, None)
        ticks = session.ticks
        assert len(ticks) == len(WATERMARKS) + 1  # one per advance + finish
        assert [t.index for t in ticks] == list(range(1, len(ticks) + 1))
        assert ticks[-1].cumulative_events == len(result)
        assert ticks[-1].cumulative_windows == result.stats.output_windows
        assert all(t.plan_seconds >= 0 and t.execute_seconds >= 0 for t in ticks)
        assert all(t.backend == "serial" for t in ticks)
        # The no-new-data repeat advance must run nothing.
        assert ticks[2].windows_run == 0

    def test_static_sources_drain_on_first_poll(self):
        engine = LifeStreamEngine(window_size=1000)
        session = engine.open_session(SESSION_QUERIES["elementwise"](), {"s": _source()})
        session.poll()
        session.finish()
        reference = LifeStreamEngine(window_size=1000).run(
            SESSION_QUERIES["elementwise"](), {"s": _source()}
        )
        _assert_identical(reference, session.result())
        session.close()


class TestTwoSourceSessions:
    """Joins over two replayed streams whose watermarks advance independently."""

    @staticmethod
    def _two_source_query():
        left = Query.source("left", frequency_hz=500).select(lambda v: v * 2)
        right = Query.source("right", period=8).tumbling_window(400).mean()
        return left.join(right, lambda lv, rv: lv - rv)

    def _sources(self, replay):
        left_times, left_values = _signal(period=2, seed=11)
        right_times, right_values = _signal(n=1500, period=8, seed=12)
        left = ArraySource(left_times, left_values, period=2)
        right = ArraySource(right_times, right_values, period=8)
        if replay:
            return {"left": ReplaySource(left), "right": ReplaySource(right)}
        return {"left": left, "right": right}

    def test_uneven_watermarks_match_one_shot(self):
        reference = LifeStreamEngine(window_size=1000).run(
            self._two_source_query(), self._sources(replay=False)
        )
        engine = LifeStreamEngine(window_size=1000)
        sources = self._sources(replay=True)
        session = engine.open_session(self._two_source_query(), sources)
        # The two ingestion clocks drift apart and leapfrog each other; the
        # session may only emit windows both streams fully cover.
        schedule = [(1000, 300), (2500, 2600), (2600, 5000), (7000, 7000), (9000, 12000)]
        for left_watermark, right_watermark in schedule:
            sources["left"].advance(left_watermark)
            sources["right"].advance(right_watermark)
            tick = session.poll()
            lagging = min(left_watermark, right_watermark)
            assert tick.watermark == lagging
            if session.frontier is not None:
                # No emitted window may reach past the lagging stream's clock.
                assert session.frontier + 1000 <= lagging
        session.finish()
        _assert_identical(reference, session.result(), "uneven two-source watermarks")
        session.close()


class TestSessionCheckpoint:
    @pytest.mark.parametrize("query_name", sorted(SESSION_QUERIES))
    def test_checkpoint_restore_round_trip(self, query_name, tmp_path):
        """Kill/checkpoint/restore mid-stream reproduces the one-shot output."""
        reference = LifeStreamEngine(window_size=1000).run(
            SESSION_QUERIES[query_name](), {"s": _source()}
        )
        result, _ = _run_session(
            SESSION_QUERIES[query_name],
            True,
            None,
            checkpoint_at=3,
            checkpoint_path=tmp_path / "session.ckpt",
        )
        _assert_identical(reference, result, f"{query_name} checkpoint round trip")

    def test_checkpoint_restore_batched(self, tmp_path):
        reference = LifeStreamEngine(window_size=1000).run(
            SESSION_QUERIES["shift-chain"](), {"s": _source()}
        )
        result, _ = _run_session(
            SESSION_QUERIES["shift-chain"],
            True,
            BatchedBackend(batch_windows=4),
            checkpoint_at=3,
            checkpoint_path=tmp_path / "session.ckpt",
        )
        _assert_identical(reference, result, "batched checkpoint round trip")

    def test_checkpoint_dict_round_trip_without_disk(self):
        engine = LifeStreamEngine(window_size=1000)
        session = engine.open_session(
            SESSION_QUERIES["sliding"](), {"s": ReplaySource(_source())}
        )
        session.advance(5000)
        state = session.checkpoint()
        session.close()
        restored = engine.open_session(
            SESSION_QUERIES["sliding"](),
            {"s": ReplaySource(_source())},
            checkpoint=state,
        )
        restored.finish()
        reference = LifeStreamEngine(window_size=1000).run(
            SESSION_QUERIES["sliding"](), {"s": _source()}
        )
        _assert_identical(reference, restored.result())
        restored.close()

    def test_mismatched_geometry_rejected(self):
        engine = LifeStreamEngine(window_size=1000)
        session = engine.open_session(
            SESSION_QUERIES["elementwise"](), {"s": ReplaySource(_source())}
        )
        session.advance(3000)
        state = session.checkpoint()
        session.close()
        other = LifeStreamEngine(window_size=2000)
        with pytest.raises(ExecutionError, match="window_size"):
            other.open_session(
                SESSION_QUERIES["elementwise"](),
                {"s": ReplaySource(_source())},
                checkpoint=state,
            )

    def test_mismatched_query_rejected(self):
        engine = LifeStreamEngine(window_size=1000)
        session = engine.open_session(
            SESSION_QUERIES["elementwise"](), {"s": ReplaySource(_source())}
        )
        session.advance(3000)
        state = session.checkpoint()
        session.close()
        with pytest.raises(ExecutionError, match="operator"):
            engine.open_session(
                SESSION_QUERIES["sliding"](),
                {"s": ReplaySource(_source())},
                checkpoint=state,
            )

    def test_unrecognised_format_rejected(self):
        engine = LifeStreamEngine(window_size=1000)
        with pytest.raises(ExecutionError, match="format"):
            engine.open_session(
                SESSION_QUERIES["elementwise"](),
                {"s": ReplaySource(_source())},
                checkpoint={"format": "something-else"},
            )


class TestCheckpointDurability:
    """Crash-safety of the on-disk checkpoint path (failover depends on it)."""

    def _open(self, engine, **kwargs):
        return engine.open_session(
            SESSION_QUERIES["sliding"](), {"s": ReplaySource(_source())}, **kwargs
        )

    def test_truncated_checkpoint_raises_a_clear_error(self, tmp_path):
        engine = LifeStreamEngine(window_size=1000)
        session = self._open(engine)
        session.advance(5000)
        path = tmp_path / "session.ckpt"
        session.checkpoint(path)
        session.close()
        # Truncate the file to simulate a torn write from a non-atomic writer.
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(ExecutionError, match="truncated or corrupt"):
            self._open(engine, checkpoint=path)
        # A file that unpickles to a non-dict is equally rejected.
        import pickle

        path.write_bytes(pickle.dumps([1, 2, 3]))
        with pytest.raises(ExecutionError, match="does not hold a checkpoint"):
            self._open(engine, checkpoint=path)

    def test_atomic_write_survives_injected_crash(self, tmp_path, monkeypatch):
        engine = LifeStreamEngine(window_size=1000)
        session = self._open(engine)
        session.advance(4000)
        path = tmp_path / "session.ckpt"
        session.checkpoint(path)
        good = path.read_bytes()
        session.advance(7000)

        import pickle as pickle_module

        real_dump = pickle_module.dump

        def torn_dump(obj, handle, *args, **kwargs):
            # Write garbage bytes, then die mid-checkpoint.
            handle.write(b"partial checkpoint bytes")
            raise OSError("injected crash mid-checkpoint")

        monkeypatch.setattr("repro.core.runtime.session.pickle.dump", torn_dump)
        with pytest.raises(OSError, match="injected crash"):
            session.checkpoint(path)
        monkeypatch.setattr("repro.core.runtime.session.pickle.dump", real_dump)
        # The previous checkpoint is untouched: same bytes, still restorable,
        # and no temp-file debris is left next to it.
        assert path.read_bytes() == good
        assert [p.name for p in tmp_path.iterdir()] == ["session.ckpt"]
        session.close()
        restored = self._open(engine, checkpoint=path)
        assert restored.watermark == 4000
        restored.close()

    def test_checkpoint_hook_fires_on_cadence(self):
        engine = LifeStreamEngine(window_size=1000)
        session = self._open(engine)
        seen = []
        session.set_checkpoint_hook(seen.append, every_ticks=2)
        for watermark in (2000, 4000, 6000, 8000, 9000):
            session.advance(watermark)
        # 5 ticks at cadence 2 -> checkpoints after ticks 2 and 4.
        assert len(seen) == 2
        assert all(state["format"] == "lifestream-session-checkpoint/v1" for state in seen)
        assert seen[0]["watermarks"]["s"] == 4000
        assert seen[1]["watermarks"]["s"] == 8000
        # finish() drains in one more tick -> the 6th tick completes cadence 3.
        session.finish()
        assert len(seen) == 3 and seen[2]["watermarks"]["s"] >= 9000
        session.close()

    def test_checkpoint_hook_state_restores_bit_identically(self):
        reference, _ = _run_session(SESSION_QUERIES["sliding"], True, None)
        engine = LifeStreamEngine(window_size=1000)
        session = self._open(engine, targeted=True)
        states = []
        session.set_checkpoint_hook(states.append, every_ticks=1)
        for watermark in WATERMARKS[:4]:
            session.advance(watermark)
        session.close()
        # Restore from the cadence hook's latest snapshot and keep going.
        restored = self._open(engine, targeted=True, checkpoint=states[-1])
        for watermark in WATERMARKS[4:]:
            restored.advance(watermark)
        restored.finish()
        _assert_identical(reference, restored.result(), "cadence-hook restore")
        restored.close()

    def test_checkpoint_hook_rejects_bad_cadence(self):
        engine = LifeStreamEngine(window_size=1000)
        session = self._open(engine)
        with pytest.raises(ExecutionError, match="cadence"):
            session.set_checkpoint_hook(lambda state: None, every_ticks=0)
        # Uninstalling is allowed regardless of the cadence argument.
        session.set_checkpoint_hook(None, every_ticks=0)
        session.close()


class TestSessionLifecycle:
    def test_one_shot_run_rejected_while_session_open(self):
        engine = LifeStreamEngine(window_size=1000)
        compiled = engine.compile(SESSION_QUERIES["elementwise"](), {"s": _source()})
        session = compiled.open_session()
        with pytest.raises(ExecutionError, match="open StreamingSession"):
            compiled.run()
        session.close()
        assert len(compiled.run()) > 0

    def test_only_one_session_per_compiled_query(self):
        engine = LifeStreamEngine(window_size=1000)
        compiled = engine.compile(SESSION_QUERIES["elementwise"](), {"s": _source()})
        session = compiled.open_session()
        with pytest.raises(ExecutionError, match="already has"):
            compiled.open_session()
        session.close()

    def test_failed_second_open_does_not_corrupt_live_session(self):
        # Regression: the rejected open used to reset the shared plan's
        # operator carries before the exclusivity check fired.
        reference = LifeStreamEngine(window_size=1000).run(
            SESSION_QUERIES["shift-chain"](), {"s": _source()}
        )
        engine = LifeStreamEngine(window_size=1000)
        compiled = engine.compile(
            SESSION_QUERIES["shift-chain"](), {"s": ReplaySource(_source())}
        )
        session = compiled.open_session()
        session.advance(5000)
        with pytest.raises(ExecutionError, match="already has"):
            compiled.open_session()
        session.finish()
        _assert_identical(reference, session.result(), "after rejected second open")
        session.close()

    def test_failed_checkpoint_restore_releases_the_plan(self):
        engine = LifeStreamEngine(window_size=1000)
        compiled = engine.compile(
            SESSION_QUERIES["elementwise"](), {"s": ReplaySource(_source())}
        )
        with pytest.raises(ExecutionError, match="format"):
            compiled.open_session(checkpoint={"format": "bogus"})
        # The failed constructor must not leave a dangling owner behind.
        session = compiled.open_session()
        session.finish()
        session.close()

    def test_watermark_regression_rejected(self):
        # Regression: a watermark behind a source's clock used to be silently
        # ignored; it must raise, while re-announcing the current watermark
        # stays an idempotent no-op tick.
        engine = LifeStreamEngine(window_size=1000)
        session = engine.open_session(
            SESSION_QUERIES["elementwise"](), {"s": ReplaySource(_source())}
        )
        first = session.advance(5000)
        assert first.windows_run > 0
        with pytest.raises(ExecutionError, match="regression"):
            session.advance(3000)
        # The failed advance must not have moved any source.
        assert session.watermark == 5000
        repeat = session.advance(5000)
        assert repeat.windows_run == 0
        assert repeat.events_emitted == 0
        session.finish()
        reference = LifeStreamEngine(window_size=1000).run(
            SESSION_QUERIES["elementwise"](), {"s": _source()}
        )
        _assert_identical(reference, session.result(), "after rejected regression")
        session.close()

    def test_advance_after_finish_rejected(self):
        engine = LifeStreamEngine(window_size=1000)
        session = engine.open_session(
            SESSION_QUERIES["elementwise"](), {"s": ReplaySource(_source())}
        )
        session.finish()
        with pytest.raises(ExecutionError, match="finished"):
            session.advance(99999)
        # finish is idempotent and runs nothing further.
        assert session.finish().windows_run == 0
        session.close()

    def test_closed_session_rejects_everything(self):
        engine = LifeStreamEngine(window_size=1000)
        session = engine.open_session(
            SESSION_QUERIES["elementwise"](), {"s": ReplaySource(_source())}
        )
        session.close()
        for call in (session.poll, session.finish, session.checkpoint,
                     lambda: session.advance(1000)):
            with pytest.raises(ExecutionError, match="closed"):
                call()

    def test_multiprocess_backend_rejected(self):
        engine = LifeStreamEngine(window_size=1000, backend=MultiprocessBackend(n_workers=2))
        with pytest.raises(NotImplementedError, match="multiprocess"):
            engine.open_session(
                SESSION_QUERIES["elementwise"](), {"s": ReplaySource(_source())}
            )

    def test_serial_backend_object_accepted(self):
        engine = LifeStreamEngine(window_size=1000, backend=SerialBackend())
        session = engine.open_session(
            SESSION_QUERIES["elementwise"](), {"s": ReplaySource(_source())}
        )
        assert session.backend_name == "serial"
        session.finish()
        session.close()
