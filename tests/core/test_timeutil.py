"""Unit tests for time arithmetic and linear time maps."""

from fractions import Fraction

import pytest

from repro.core.timeutil import (
    LinearTimeMap,
    align_down,
    align_up,
    hz_from_period,
    is_aligned,
    lcm,
    lcm_all,
    period_from_hz,
)
from repro.errors import StreamDefinitionError


class TestPeriodConversion:
    def test_500hz_has_period_2(self):
        assert period_from_hz(500) == 2

    def test_125hz_has_period_8(self):
        assert period_from_hz(125) == 8

    def test_1000hz_has_period_1(self):
        assert period_from_hz(1000) == 1

    def test_62_5hz_has_period_16(self):
        assert period_from_hz(62.5) == 16

    def test_non_integer_period_rejected(self):
        with pytest.raises(StreamDefinitionError):
            period_from_hz(333)

    def test_non_positive_frequency_rejected(self):
        with pytest.raises(StreamDefinitionError):
            period_from_hz(0)

    def test_round_trip(self):
        assert hz_from_period(period_from_hz(250)) == pytest.approx(250)

    def test_hz_from_invalid_period(self):
        with pytest.raises(StreamDefinitionError):
            hz_from_period(0)


class TestLcm:
    def test_basic(self):
        assert lcm(2, 5) == 10

    def test_identical(self):
        assert lcm(8, 8) == 8

    def test_multiple(self):
        assert lcm(2, 8) == 8

    def test_lcm_all(self):
        assert lcm_all([2, 5, 8]) == 40

    def test_lcm_all_empty_is_one(self):
        assert lcm_all([]) == 1

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            lcm(0, 3)


class TestGridAlignment:
    def test_align_down(self):
        assert align_down(17, 5) == 15

    def test_align_down_with_offset(self):
        assert align_down(17, 5, offset=2) == 17

    def test_align_down_exact(self):
        assert align_down(15, 5) == 15

    def test_align_up(self):
        assert align_up(17, 5) == 20

    def test_align_up_exact(self):
        assert align_up(20, 5) == 20

    def test_align_negative(self):
        assert align_down(-3, 5) == -5
        assert align_up(-3, 5) == 0

    def test_is_aligned(self):
        assert is_aligned(10, 5)
        assert not is_aligned(11, 5)
        assert is_aligned(12, 5, offset=2)

    def test_align_rejects_bad_step(self):
        with pytest.raises(ValueError):
            align_down(10, 0)


class TestLinearTimeMap:
    def test_identity(self):
        time_map = LinearTimeMap.identity()
        assert time_map.apply(1234) == 1234
        assert time_map.is_identity()

    def test_shift(self):
        time_map = LinearTimeMap.shifted(100)
        assert time_map.apply(50) == 150
        assert not time_map.is_identity()

    def test_scale(self):
        time_map = LinearTimeMap.scaled(1, 4)
        assert time_map.apply(8) == 2

    def test_invert_shift(self):
        time_map = LinearTimeMap.shifted(100)
        assert time_map.invert().apply(150) == 50

    def test_invert_scale(self):
        time_map = LinearTimeMap.scaled(3)
        assert time_map.invert().apply(9) == 3

    def test_compose(self):
        shift = LinearTimeMap.shifted(10)
        scale = LinearTimeMap.scaled(2)
        composed = scale.compose(shift)  # scale after shift
        assert composed.apply(5) == (5 + 10) * 2

    def test_compose_then_invert_round_trips(self):
        composed = LinearTimeMap.scaled(2).compose(LinearTimeMap.shifted(7))
        inverse = composed.invert()
        for value in (0, 3, 11, 100):
            assert inverse.apply(composed.apply(value)) == value

    def test_apply_interval(self):
        time_map = LinearTimeMap.shifted(10)
        assert time_map.apply_interval((0, 5)) == (10, 15)

    def test_non_integer_result_rejected(self):
        time_map = LinearTimeMap(Fraction(1, 3))
        with pytest.raises(ValueError):
            time_map.apply(1)

    def test_zero_scale_cannot_invert(self):
        with pytest.raises(ValueError):
            LinearTimeMap(Fraction(0)).invert()
