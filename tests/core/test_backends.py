"""Parity suite for the execution backends and operator fusion.

Asserts that fused vs. unfused plans, and all four execution backends
(serial, batched, multiprocess, vectorized), produce bit-identical
StreamResults across operator-chain queries in both targeted and eager
modes."""

import numpy as np
import pytest

from repro.core.engine import LifeStreamEngine
from repro.core.query import Query
from repro.core.runtime import (
    BatchedBackend,
    MultiprocessBackend,
    SerialBackend,
    VectorizedBackend,
    plan_batch_safe,
    plan_warmup_windows,
)
from repro.core.sources import ArraySource
from repro.errors import ExecutionError

from tests.conftest import make_source


def _gappy_source(n=12000, period=2, seed=7):
    rng = np.random.default_rng(seed)
    times = np.arange(n, dtype=np.int64) * period
    keep = np.ones(n, dtype=bool)
    # A few bursty gaps so coverage is fragmented.
    for start in rng.integers(0, n - 500, size=4):
        keep[start : start + int(rng.integers(100, 400))] = False
    values = np.sin(np.arange(n) * 0.01) * 10
    return ArraySource(times[keep], values[keep], period=period)


#: Name -> query builder.  Each covers a different operator mix: pure
#: element-wise chains (fusable), stateful shifts, windowed aggregates,
#: joins over multicast fan-out, and re-gridding.
CHAIN_QUERIES = {
    "elementwise": lambda: (
        Query.source("s", frequency_hz=500)
        .select(lambda v: v * 2 + 1)
        .where(lambda v: v > -5)
        .alter_duration(4)
    ),
    "shift-chain": lambda: (
        Query.source("s", frequency_hz=500)
        .select(lambda v: v + 0.5)
        .shift(1000)
        .where(lambda v: np.abs(v) < 9)
    ),
    "aggregate": lambda: (
        Query.source("s", frequency_hz=500)
        .select(lambda v: v * 3)
        .tumbling_window(100)
        .mean()
    ),
    "sliding": lambda: (
        Query.source("s", frequency_hz=500).sliding_window(200, 100).max()
    ),
    "multicast-join": lambda: Query.source("s", frequency_hz=500).multicast(
        lambda s: s.select(lambda v: v)
        .join(s.tumbling_window(100).mean(), lambda v, m: v - m)
    ),
    "regrid-hold": lambda: (
        Query.source("s", frequency_hz=500)
        .alter_period(1, mode="hold")
        .where(lambda v: v > 0)
    ),
}

BACKENDS = {
    "serial": lambda: SerialBackend(),
    "batched-4": lambda: BatchedBackend(batch_windows=4),
    "batched-16": lambda: BatchedBackend(batch_windows=16),
    "multiprocess-2": lambda: MultiprocessBackend(n_workers=2),
    "multiprocess-3": lambda: MultiprocessBackend(n_workers=3),
    "vectorized": lambda: VectorizedBackend(),
    # Tiny run cap: every run is split, exercising run-boundary state carry.
    "vectorized-small-runs": lambda: VectorizedBackend(max_run_windows=3),
}


def _assert_identical(reference, candidate, label):
    np.testing.assert_array_equal(reference.times, candidate.times, err_msg=label)
    np.testing.assert_array_equal(
        reference.values, candidate.values, err_msg=label
    )
    np.testing.assert_array_equal(reference.durations, candidate.durations, err_msg=label)


class TestFusionParity:
    @pytest.mark.parametrize("name", sorted(CHAIN_QUERIES))
    @pytest.mark.parametrize("targeted", [True, False])
    def test_fused_matches_unfused(self, name, targeted):
        source = _gappy_source()
        unfused = LifeStreamEngine(window_size=1000, optimization_level=0)
        fused = LifeStreamEngine(window_size=1000, optimization_level=2)
        reference = unfused.run(CHAIN_QUERIES[name](), {"s": source}, targeted=targeted)
        candidate = fused.run(CHAIN_QUERIES[name](), {"s": source}, targeted=targeted)
        _assert_identical(reference, candidate, f"{name} targeted={targeted}")


class TestBackendParity:
    @pytest.mark.parametrize("backend_name", sorted(BACKENDS))
    @pytest.mark.parametrize("query_name", sorted(CHAIN_QUERIES))
    @pytest.mark.parametrize("targeted", [True, False])
    def test_backends_bit_identical(self, backend_name, query_name, targeted):
        source = _gappy_source()
        reference = LifeStreamEngine(window_size=1000, optimization_level=0).run(
            CHAIN_QUERIES[query_name](), {"s": source}, targeted=targeted
        )
        engine = LifeStreamEngine(window_size=1000, backend=BACKENDS[backend_name]())
        candidate = engine.run(CHAIN_QUERIES[query_name](), {"s": source}, targeted=targeted)
        _assert_identical(
            reference, candidate, f"{query_name} on {backend_name} targeted={targeted}"
        )

    def test_backend_override_per_run(self):
        source = _gappy_source()
        engine = LifeStreamEngine(window_size=1000)
        compiled = engine.compile(CHAIN_QUERIES["elementwise"](), {"s": source})
        serial = compiled.run()
        batched = compiled.run(backend=BatchedBackend(8))
        _assert_identical(serial, batched, "per-run backend override")

    def test_batched_twin_cached_on_plan(self):
        source = _gappy_source()
        backend = BatchedBackend(batch_windows=8)
        engine = LifeStreamEngine(window_size=1000, backend=backend)
        compiled = engine.compile(CHAIN_QUERIES["elementwise"](), {"s": source})
        compiled.run()
        twins = compiled.plan.__dict__["_batched_twins"]
        twin = twins[8]
        compiled.run()
        assert twins[8] is twin
        # A different backend instance reuses the plan-attached twin too.
        BatchedBackend(batch_windows=8).execute(compiled.plan)
        assert compiled.plan.__dict__["_batched_twins"][8] is twin

    def test_long_shift_emits_at_shifted_times(self):
        # A shift spanning several windows must delay events by exactly the
        # offset (regression: the carry used to clamp to one window).
        n = 40
        times = np.arange(n, dtype=np.int64) * 10
        values = np.arange(n, dtype=np.float64)
        source = ArraySource(times, values, period=10)
        for offset in (80, 120):
            query = Query.source("s", period=10).shift(offset)
            for opt in (0, 2):
                engine = LifeStreamEngine(window_size=40, optimization_level=opt)
                result = engine.run(query, {"s": source})
                np.testing.assert_array_equal(result.times, times + offset)
                np.testing.assert_array_equal(result.values, values)
            # Fused chains use the same FIFO.
            chained = Query.source("s", period=10).select(lambda v: v).shift(offset)
            result = LifeStreamEngine(window_size=40, optimization_level=2).run(
                chained, {"s": source}
            )
            np.testing.assert_array_equal(result.times, times + offset)
            np.testing.assert_array_equal(result.values, values)

    def test_batched_falls_back_on_unsafe_plans(self):
        source = _gappy_source()
        query = (
            Query.source("s", frequency_hz=500)
            .alter_period(1, mode="interpolate")
            .where(lambda v: v > 0)
        )
        engine = LifeStreamEngine(window_size=1000, backend=BatchedBackend(16))
        compiled = engine.compile(query, {"s": source})
        assert not plan_batch_safe(compiled.plan)
        reference = compiled.run(backend=SerialBackend())
        candidate = compiled.run()
        _assert_identical(reference, candidate, "unsafe plan fallback")

    def test_multiprocess_warmup_covers_long_shifts(self):
        # A shift longer than one window needs several warm-up windows.
        source = make_source(8000, period=2)
        query = Query.source("s", frequency_hz=500).select(lambda v: v).shift(3000)
        engine = LifeStreamEngine(window_size=1000)
        compiled = engine.compile(query, {"s": source})
        assert plan_warmup_windows(compiled.plan) == 3
        reference = compiled.run()
        candidate = compiled.run(backend=MultiprocessBackend(n_workers=3))
        _assert_identical(reference, candidate, "long-shift sharding")

    def test_multiprocess_single_worker_is_serial(self):
        source = _gappy_source()
        engine = LifeStreamEngine(window_size=1000, backend=MultiprocessBackend(n_workers=1))
        reference = LifeStreamEngine(window_size=1000).run(
            CHAIN_QUERIES["elementwise"](), {"s": source}
        )
        candidate = engine.run(CHAIN_QUERIES["elementwise"](), {"s": source})
        _assert_identical(reference, candidate, "single-worker multiprocess")

    def test_invalid_backend_parameters_rejected(self):
        with pytest.raises(ExecutionError):
            BatchedBackend(batch_windows=0)
        with pytest.raises(ExecutionError):
            MultiprocessBackend(n_workers=0)
        with pytest.raises(ExecutionError):
            VectorizedBackend(max_run_windows=0)

    def test_collect_false_supported_by_all_backends(self):
        source = _gappy_source()
        for factory in BACKENDS.values():
            engine = LifeStreamEngine(window_size=1000, backend=factory())
            result = engine.run(CHAIN_QUERIES["aggregate"](), {"s": source}, collect=False)
            assert len(result) == 0
            assert result.stats.output_windows > 0


class TestExecutionStatsAcrossBackends:
    def test_windows_skipped_matches_eager_arithmetic(self):
        # The arithmetic windows_skipped must agree with what an eager run
        # actually visits.
        source = _gappy_source()
        engine = LifeStreamEngine(window_size=1000)
        compiled = engine.compile(CHAIN_QUERIES["elementwise"](), {"s": source})
        targeted = compiled.run(targeted=True)
        eager = compiled.run(targeted=False)
        assert (
            targeted.stats.windows_skipped
            == eager.stats.output_windows - targeted.stats.output_windows
        )
        assert eager.stats.windows_skipped == 0

    def test_batched_stats_reported_in_original_geometry(self):
        # Stats from a batched run must be commensurate with serial ones:
        # window counts in original-window units, not twin units.
        source = _gappy_source()
        engine = LifeStreamEngine(window_size=1000)
        compiled = engine.compile(CHAIN_QUERIES["elementwise"](), {"s": source})
        serial_eager = compiled.run(targeted=False)
        batched_eager = compiled.run(targeted=False, backend=BatchedBackend(8))
        assert batched_eager.stats.output_windows == serial_eager.stats.output_windows
        serial = compiled.run(targeted=True)
        batched = compiled.run(targeted=True, backend=BatchedBackend(8))
        # Batched computes the coverage holes inside each run, so it covers
        # at least what serial did, bounded by the eager total.
        assert batched.stats.output_windows >= serial.stats.output_windows
        assert batched.stats.windows_skipped <= serial.stats.windows_skipped
        assert (
            batched.stats.output_windows + batched.stats.windows_skipped
            == serial.stats.output_windows + serial.stats.windows_skipped
        )

    def test_multiprocess_stats_aggregate_worker_counts(self):
        source = _gappy_source()
        engine = LifeStreamEngine(window_size=1000, backend=MultiprocessBackend(n_workers=2))
        result = engine.run(CHAIN_QUERIES["aggregate"](), {"s": source})
        assert result.stats.windows_computed > 0
        assert result.stats.events_ingested == source.event_count()


class TestExecutionModeHonesty:
    """Regression: silent backend fallbacks used to report the requested
    backend in the stats; they must report the mode that actually ran."""

    def test_serial_backend_reports_serial(self):
        engine = LifeStreamEngine(window_size=1000, backend=SerialBackend())
        result = engine.run(CHAIN_QUERIES["elementwise"](), {"s": _gappy_source()})
        assert result.stats.execution_mode == "serial"

    def test_default_backend_reports_serial(self):
        result = LifeStreamEngine(window_size=1000).run(
            CHAIN_QUERIES["elementwise"](), {"s": _gappy_source()}
        )
        assert result.stats.execution_mode == "serial"

    def test_batched_reports_batched_when_widened(self):
        engine = LifeStreamEngine(window_size=1000, backend=BatchedBackend(8))
        result = engine.run(CHAIN_QUERIES["elementwise"](), {"s": _gappy_source()})
        assert result.stats.execution_mode == "batched"

    def test_batched_fallback_reports_serial(self):
        # Non-batch-safe plan: the batched backend runs the original plan.
        query = (
            Query.source("s", frequency_hz=500)
            .alter_period(1, mode="interpolate")
            .where(lambda v: v > 0)
        )
        engine = LifeStreamEngine(window_size=1000, backend=BatchedBackend(16))
        result = engine.run(query, {"s": _gappy_source()})
        assert result.stats.execution_mode == "serial"
        # batch_windows=1 never widens either.
        result = LifeStreamEngine(window_size=1000, backend=BatchedBackend(1)).run(
            CHAIN_QUERIES["elementwise"](), {"s": _gappy_source()}
        )
        assert result.stats.execution_mode == "serial"

    def test_multiprocess_reports_multiprocess_when_sharded(self):
        engine = LifeStreamEngine(window_size=1000, backend=MultiprocessBackend(n_workers=2))
        result = engine.run(CHAIN_QUERIES["elementwise"](), {"s": _gappy_source()})
        assert result.stats.execution_mode == "multiprocess"

    def test_multiprocess_single_worker_reports_serial(self):
        engine = LifeStreamEngine(window_size=1000, backend=MultiprocessBackend(n_workers=1))
        result = engine.run(CHAIN_QUERIES["elementwise"](), {"s": _gappy_source()})
        assert result.stats.execution_mode == "serial"

    def test_multiprocess_too_few_windows_reports_serial(self):
        # 4 windows < 2 * 3 workers: the shard split would be all warm-up.
        source = make_source(2000, period=2)
        engine = LifeStreamEngine(window_size=1000, backend=MultiprocessBackend(n_workers=3))
        result = engine.run(CHAIN_QUERIES["elementwise"](), {"s": source})
        assert result.stats.execution_mode == "serial"

    def test_multiprocess_without_fork_reports_serial(self, monkeypatch):
        monkeypatch.setattr(MultiprocessBackend, "_fork_available", staticmethod(lambda: False))
        engine = LifeStreamEngine(window_size=1000, backend=MultiprocessBackend(n_workers=2))
        result = engine.run(CHAIN_QUERIES["elementwise"](), {"s": _gappy_source()})
        assert result.stats.execution_mode == "serial"

    def test_session_reports_widened_and_fallback_modes(self):
        from repro.core.sources import ReplaySource

        engine = LifeStreamEngine(window_size=1000, backend=BatchedBackend(4))
        session = engine.open_session(
            CHAIN_QUERIES["elementwise"](), {"s": ReplaySource(_gappy_source())}
        )
        session.finish()
        assert session.result().stats.execution_mode == "batched"
        session.close()
        # Non-batch-safe plan: the session drives the original plan serially.
        query = Query.source("s", frequency_hz=500).alter_period(1, mode="interpolate")
        session = engine.open_session(query, {"s": ReplaySource(_gappy_source())})
        session.finish()
        assert session.result().stats.execution_mode == "serial"
        session.close()

    def test_vectorized_reports_vectorized_when_fully_lowered(self):
        engine = LifeStreamEngine(window_size=1000, backend=VectorizedBackend())
        result = engine.run(CHAIN_QUERIES["elementwise"](), {"s": _gappy_source()})
        assert result.stats.execution_mode == "vectorized"

    def test_vectorized_partial_fallback_reports_mixed_mode(self):
        # ClipJoin has no whole-run kernel, but the Select/Where stages do:
        # the run executor lowers what it can and drops only the join node
        # to window-by-window execution, and the stats must say so.
        query = Query.source("s", frequency_hz=500).multicast(
            lambda s: s.select(lambda v: v * 2).clip_join(
                s.where(lambda v: v > 0), lambda a, b: a + b
            )
        )
        engine = LifeStreamEngine(window_size=1000, backend=VectorizedBackend())
        result = engine.run(query, {"s": _gappy_source()})
        assert result.stats.execution_mode == "vectorized+serial-fallback"
        reference = LifeStreamEngine(window_size=1000).run(query, {"s": _gappy_source()})
        _assert_identical(reference, result, "partial fallback parity")

    def test_vectorized_worthless_plan_reports_serial(self):
        # Every operator refuses to lower: run execution would be pure
        # overhead, so the backend runs (and reports) serial.
        query = Query.source("s", frequency_hz=500).multicast(
            lambda s: s.clip_join(s, lambda a, b: a + b)
        )
        engine = LifeStreamEngine(window_size=1000, backend=VectorizedBackend())
        result = engine.run(query, {"s": _gappy_source()})
        assert result.stats.execution_mode == "serial"

    def test_vectorized_with_tracer_reports_serial(self):
        from repro.memsim.tracer import AccessTracer

        tracer = AccessTracer()
        engine = LifeStreamEngine(
            window_size=1000, backend=VectorizedBackend(), tracer=tracer
        )
        result = engine.run(CHAIN_QUERIES["elementwise"](), {"s": _gappy_source()})
        assert result.stats.execution_mode == "serial"

    def test_vectorized_session_reports_mode(self):
        from repro.core.sources import ReplaySource

        engine = LifeStreamEngine(window_size=1000, backend=VectorizedBackend())
        session = engine.open_session(
            CHAIN_QUERIES["elementwise"](), {"s": ReplaySource(_gappy_source())}
        )
        session.finish()
        assert session.result().stats.execution_mode == "vectorized"
        session.close()
        # A plan with nothing to lower runs its session ticks serially.
        query = Query.source("s", frequency_hz=500).multicast(
            lambda s: s.clip_join(s, lambda a, b: a + b)
        )
        session = engine.open_session(query, {"s": ReplaySource(_gappy_source())})
        session.finish()
        assert session.result().stats.execution_mode == "serial"
        session.close()
