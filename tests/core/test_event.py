"""Unit tests for the periodic stream data model (StreamDescriptor, Event)."""

import pytest

from repro.core.event import Event, StreamDescriptor
from repro.errors import StreamDefinitionError


class TestStreamDescriptor:
    def test_from_frequency(self):
        descriptor = StreamDescriptor.from_frequency(500)
        assert descriptor.period == 2
        assert descriptor.offset == 0

    def test_frequency_round_trip(self):
        descriptor = StreamDescriptor(offset=0, period=8)
        assert descriptor.frequency_hz == pytest.approx(125.0)

    def test_rejects_non_positive_period(self):
        with pytest.raises(StreamDefinitionError):
            StreamDescriptor(offset=0, period=0)

    def test_rejects_negative_offset(self):
        with pytest.raises(StreamDefinitionError):
            StreamDescriptor(offset=-1, period=2)

    def test_grid_index_and_time_round_trip(self):
        descriptor = StreamDescriptor(offset=4, period=8)
        for index in (0, 1, 5, 100):
            assert descriptor.grid_index(descriptor.grid_time(index)) == index

    def test_grid_index_rejects_off_grid_time(self):
        descriptor = StreamDescriptor(offset=0, period=8)
        with pytest.raises(StreamDefinitionError):
            descriptor.grid_index(5)

    def test_is_on_grid(self):
        descriptor = StreamDescriptor(offset=2, period=8)
        assert descriptor.is_on_grid(2)
        assert descriptor.is_on_grid(10)
        assert not descriptor.is_on_grid(8)

    def test_align_down(self):
        descriptor = StreamDescriptor(offset=2, period=8)
        assert descriptor.align_down(17) == 10

    def test_events_per_bounded_memory_property(self):
        descriptor = StreamDescriptor(offset=0, period=2)
        # The bounded-footprint property: at most d / p events per interval.
        assert descriptor.events_per(1000) == 500

    def test_events_per_rejects_misaligned_duration(self):
        descriptor = StreamDescriptor(offset=0, period=8)
        with pytest.raises(StreamDefinitionError):
            descriptor.events_per(1001)

    def test_with_offset_and_period(self):
        descriptor = StreamDescriptor(offset=0, period=2)
        assert descriptor.with_offset(4).offset == 4
        assert descriptor.with_period(8).period == 8

    def test_str_matches_paper_notation(self):
        assert str(StreamDescriptor(offset=0, period=2)) == "(0,2)"


class TestEvent:
    def test_end_time(self):
        event = Event(sync_time=10, duration=5, value=1.0)
        assert event.end_time == 15

    def test_is_active_at(self):
        event = Event(sync_time=10, duration=5, value=1.0)
        assert event.is_active_at(10)
        assert event.is_active_at(14)
        assert not event.is_active_at(15)
        assert not event.is_active_at(9)

    def test_overlaps(self):
        a = Event(sync_time=0, duration=10, value=0.0)
        b = Event(sync_time=5, duration=10, value=0.0)
        c = Event(sync_time=10, duration=10, value=0.0)
        assert a.overlaps(b)
        assert b.overlaps(a)
        assert not a.overlaps(c)

    def test_rejects_non_positive_duration(self):
        with pytest.raises(StreamDefinitionError):
            Event(sync_time=0, duration=0, value=1.0)
