"""Unit tests for the IntervalSet coverage structure."""

import numpy as np
import pytest

from repro.core.intervals import IntervalSet


class TestConstruction:
    def test_empty(self):
        assert IntervalSet.empty().is_empty()
        assert len(IntervalSet.empty()) == 0
        assert not IntervalSet.empty()

    def test_single(self):
        interval_set = IntervalSet.single(0, 10)
        assert interval_set.intervals == ((0, 10),)

    def test_drops_empty_intervals(self):
        assert IntervalSet([(5, 5), (7, 3)]).is_empty()

    def test_merges_overlapping(self):
        interval_set = IntervalSet([(0, 5), (3, 10)])
        assert interval_set.intervals == ((0, 10),)

    def test_merges_adjacent(self):
        interval_set = IntervalSet([(0, 5), (5, 10)])
        assert interval_set.intervals == ((0, 10),)

    def test_keeps_disjoint_sorted(self):
        interval_set = IntervalSet([(20, 30), (0, 10)])
        assert interval_set.intervals == ((0, 10), (20, 30))

    def test_from_timestamps_continuous(self):
        times = np.arange(0, 100, 2)
        interval_set = IntervalSet.from_timestamps(times, period=2)
        assert interval_set.intervals == ((0, 100),)

    def test_from_timestamps_with_gap(self):
        times = np.array([0, 2, 4, 20, 22])
        interval_set = IntervalSet.from_timestamps(times, period=2)
        assert interval_set.intervals == ((0, 6), (20, 24))

    def test_from_timestamps_empty(self):
        assert IntervalSet.from_timestamps(np.array([]), period=2).is_empty()

    def test_equality_and_hash(self):
        a = IntervalSet([(0, 5), (10, 20)])
        b = IntervalSet([(10, 20), (0, 5)])
        assert a == b
        assert hash(a) == hash(b)


class TestQueries:
    def test_total_length(self):
        assert IntervalSet([(0, 5), (10, 20)]).total_length() == 15

    def test_span(self):
        assert IntervalSet([(5, 10), (30, 40)]).span() == (5, 40)

    def test_span_empty(self):
        assert IntervalSet.empty().span() == (0, 0)

    def test_contains(self):
        interval_set = IntervalSet([(0, 5), (10, 20)])
        assert interval_set.contains(0)
        assert interval_set.contains(4)
        assert not interval_set.contains(5)
        assert interval_set.contains(15)
        assert not interval_set.contains(25)

    def test_overlaps(self):
        interval_set = IntervalSet([(10, 20)])
        assert interval_set.overlaps(0, 11)
        assert interval_set.overlaps(19, 30)
        assert not interval_set.overlaps(0, 10)
        assert not interval_set.overlaps(20, 30)


class TestAlgebra:
    def test_union(self):
        a = IntervalSet([(0, 5)])
        b = IntervalSet([(3, 10), (20, 30)])
        assert a.union(b).intervals == ((0, 10), (20, 30))

    def test_intersect(self):
        a = IntervalSet([(0, 10), (20, 30)])
        b = IntervalSet([(5, 25)])
        assert a.intersect(b).intervals == ((5, 10), (20, 25))

    def test_intersect_disjoint(self):
        a = IntervalSet([(0, 10)])
        b = IntervalSet([(10, 20)])
        assert a.intersect(b).is_empty()

    def test_difference(self):
        a = IntervalSet([(0, 10)])
        b = IntervalSet([(3, 6)])
        assert a.difference(b).intervals == ((0, 3), (6, 10))

    def test_difference_removes_everything(self):
        a = IntervalSet([(0, 10)])
        assert a.difference(IntervalSet([(0, 10)])).is_empty()

    def test_intersection_commutes(self):
        a = IntervalSet([(0, 7), (9, 15)])
        b = IntervalSet([(5, 11)])
        assert a.intersect(b) == b.intersect(a)


class TestTransformations:
    def test_shift(self):
        assert IntervalSet([(0, 5)]).shift(10).intervals == ((10, 15),)

    def test_dilate(self):
        assert IntervalSet([(10, 20)]).dilate(2, 3).intervals == ((8, 23),)

    def test_align_to_grid(self):
        assert IntervalSet([(3, 17)]).align_to_grid(10).intervals == ((0, 20),)

    def test_align_to_grid_with_offset(self):
        assert IntervalSet([(6, 17)]).align_to_grid(10, offset=5).intervals == ((5, 25),)

    def test_clip(self):
        assert IntervalSet([(0, 100)]).clip(10, 20).intervals == ((10, 20),)


class TestWindowIteration:
    def test_iter_windows_single_interval(self):
        interval_set = IntervalSet([(0, 100)])
        assert list(interval_set.iter_windows(25)) == [0, 25, 50, 75]

    def test_iter_windows_partial_last(self):
        interval_set = IntervalSet([(0, 90)])
        assert list(interval_set.iter_windows(25)) == [0, 25, 50, 75]

    def test_iter_windows_skips_gap(self):
        interval_set = IntervalSet([(0, 10), (100, 110)])
        assert list(interval_set.iter_windows(25)) == [0, 100]

    def test_iter_windows_no_duplicates_on_touching_intervals(self):
        interval_set = IntervalSet([(0, 30), (40, 45)])
        windows = list(interval_set.iter_windows(25))
        assert windows == sorted(set(windows))
        assert windows == [0, 25]

    def test_iter_windows_respects_offset(self):
        interval_set = IntervalSet([(12, 40)])
        assert list(interval_set.iter_windows(20, offset=2)) == [2, 22]

    def test_count_windows(self):
        interval_set = IntervalSet([(0, 100)])
        assert interval_set.count_windows(10) == 10

    def test_iter_windows_rejects_bad_window(self):
        with pytest.raises(ValueError):
            list(IntervalSet([(0, 10)]).iter_windows(0))
