"""Regression tests for the shared operator helpers in ``operators.base``.

``sample_active`` and ``masked_reduce`` grew vectorized fast paths (pure
index arithmetic on one-period-per-event windows; no-``np.where`` dense
reductions).  These tests pin both against straightforward reference
implementations — the outputs must be bit-identical on every geometry,
fast path or not.
"""

import numpy as np
import pytest

from repro.core.event import StreamDescriptor
from repro.core.fwindow import FWindow
from repro.core.operators.base import masked_reduce, sample_active


def reference_sample_active(out_times, source, carry):
    """The pre-optimisation sampling semantics, concatenates and all."""
    out_times = np.asarray(out_times, dtype=np.int64)
    times = source.present_times()
    values = source.present_values()
    durations = source.present_durations()
    if carry is not None:
        carry_time, carry_value, carry_duration = carry
        if carry_time + carry_duration > source.sync_time and (
            times.size == 0 or carry_time < times[0]
        ):
            times = np.concatenate([[carry_time], times])
            values = np.concatenate([[carry_value], values])
            durations = np.concatenate([[carry_duration], durations])
    if times.size == 0:
        return np.zeros(out_times.shape, dtype=bool), np.zeros(out_times.shape), carry
    indices = np.searchsorted(times, out_times, side="right") - 1
    clipped = np.clip(indices, 0, times.size - 1)
    active = (indices >= 0) & (times[clipped] + durations[clipped] > out_times)
    sampled = values[clipped]
    new_carry = (int(times[-1]), float(values[-1]), int(durations[-1]))
    return active, sampled, new_carry


def _window(period, capacity_ticks, sync_time, events):
    window = FWindow(
        StreamDescriptor(offset=0, period=period),
        capacity_ticks,
        name="test",
        monotonic=False,
    )
    window.slide_to(sync_time)
    if events:
        times, values, durations = map(np.asarray, zip(*events))
        window.set_events(
            times.astype(np.int64),
            values.astype(np.float64),
            durations.astype(np.int64),
        )
    return window


def _assert_matches_reference(out_times, window, carry):
    active, sampled, new_carry = sample_active(out_times, window, carry)
    ref_active, ref_sampled, ref_carry = reference_sample_active(
        out_times, window, carry
    )
    np.testing.assert_array_equal(active, ref_active)
    # Slots without an active event hold unspecified payloads; only the
    # active ones are part of the contract.
    np.testing.assert_array_equal(sampled[active], ref_sampled[ref_active])
    assert new_carry == ref_carry


class TestSampleActive:
    def test_uniform_durations_fast_path(self):
        # Every event lives exactly one period: the arithmetic fast path.
        events = [(1000 + 10 * k, float(k), 10) for k in range(10) if k not in (3, 7)]
        window = _window(10, 100, 1000, events)
        out_times = np.arange(1000, 1100, 10)
        _assert_matches_reference(out_times, window, None)

    def test_fast_path_with_live_carry(self):
        events = [(1000 + 10 * k, float(k), 10) for k in range(2, 10)]
        window = _window(10, 100, 1000, events)
        # Sampling grid reaches before the window; the carried event (still
        # alive, duration 40 from t=990) covers those slots.
        out_times = np.arange(980, 1100, 10)
        _assert_matches_reference(out_times, window, (990, 42.0, 40))

    def test_fast_path_with_dead_carry(self):
        events = [(1000 + 10 * k, float(k), 10) for k in range(10)]
        window = _window(10, 100, 1000, events)
        out_times = np.arange(980, 1100, 10)
        _assert_matches_reference(out_times, window, (900, 13.0, 20))

    def test_extended_durations_slow_path(self):
        # Hold-style events outliving their period take the search path.
        events = [(1000, 1.0, 35), (1040, 2.0, 10), (1070, 3.0, 30)]
        window = _window(10, 100, 1000, events)
        out_times = np.arange(1000, 1100, 5)
        _assert_matches_reference(out_times, window, None)

    def test_slow_path_with_carry(self):
        events = [(1050, 5.0, 50)]
        window = _window(10, 100, 1000, events)
        out_times = np.arange(990, 1100, 10)
        _assert_matches_reference(out_times, window, (960, 9.0, 70))

    def test_empty_window_keeps_carry(self):
        window = _window(10, 100, 1000, [])
        out_times = np.arange(1000, 1100, 10)
        for carry in (None, (990, 3.0, 25)):
            _assert_matches_reference(out_times, window, carry)

    def test_randomised_geometries_match_reference(self):
        rng = np.random.default_rng(42)
        for trial in range(50):
            period = int(rng.choice([2, 5, 10]))
            capacity = 40 * period
            sync = int(rng.integers(0, 5)) * capacity
            slots = np.flatnonzero(rng.random(40) < 0.7)
            extend = bool(rng.random() < 0.5)
            events = [
                (
                    sync + int(s) * period,
                    float(rng.standard_normal()),
                    period if not extend else int(rng.integers(1, 4)) * period,
                )
                for s in slots
            ]
            window = _window(period, capacity, sync, events)
            out_times = sync + np.sort(
                rng.choice(np.arange(-3 * period, capacity + period), 30, replace=False)
            )
            carry = None
            if rng.random() < 0.6:
                carry = (
                    sync - int(rng.integers(1, 4)) * period,
                    float(rng.standard_normal()),
                    int(rng.integers(1, 6)) * period,
                )
            _assert_matches_reference(out_times, window, carry)


def reference_masked_reduce(values, mask, how):
    """Row-by-row reduction over only the present samples of each row."""
    results = np.zeros(values.shape[0])
    present = mask.any(axis=1)
    for row in range(values.shape[0]):
        observed = values[row][mask[row]]
        if observed.size == 0:
            continue
        if how == "count":
            results[row] = observed.size
        elif how == "sum":
            results[row] = observed.sum()
        elif how == "mean":
            results[row] = observed.sum() / observed.size
        elif how == "max":
            results[row] = observed.max()
        elif how == "min":
            results[row] = observed.min()
        elif how == "first":
            results[row] = observed[0]
        elif how == "last":
            results[row] = observed[-1]
    return results, present


HOWS = ("count", "sum", "mean", "max", "min", "first", "last")


class TestMaskedReduce:
    @pytest.mark.parametrize("how", HOWS)
    def test_dense_fast_path_matches_rowwise_reference(self, how):
        rng = np.random.default_rng(7)
        values = rng.standard_normal((12, 50))
        mask = np.ones((12, 50), dtype=bool)
        result, present = masked_reduce(values, mask, how)
        ref_result, ref_present = reference_masked_reduce(values, mask, how)
        np.testing.assert_array_equal(present, ref_present)
        np.testing.assert_allclose(result, ref_result, rtol=1e-12)

    @pytest.mark.parametrize("how", HOWS)
    def test_gappy_rows_match_rowwise_reference(self, how):
        rng = np.random.default_rng(8)
        values = rng.standard_normal((12, 50))
        mask = rng.random((12, 50)) < 0.6
        mask[3] = False  # one fully-absent row
        result, present = masked_reduce(values, mask, how)
        ref_result, ref_present = reference_masked_reduce(values, mask, how)
        np.testing.assert_array_equal(present, ref_present)
        np.testing.assert_allclose(
            result[present], ref_result[ref_present], rtol=1e-12
        )

    def test_dense_sum_bit_identical_to_masked_expression(self):
        # The dense shortcut skips np.where; its operand order must equal
        # the masked expression's exactly (bit-identity, not approximation).
        rng = np.random.default_rng(9)
        values = rng.standard_normal((8, 33))
        mask = np.ones((8, 33), dtype=bool)
        dense, _ = masked_reduce(values, mask, "sum")
        np.testing.assert_array_equal(dense, np.where(mask, values, 0.0).sum(axis=1))
