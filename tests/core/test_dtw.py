"""Unit tests for constrained DTW and shape matching."""

import numpy as np
import pytest

from repro.core.dtw import constrained_dtw, dtw_profile, match_shape


class TestConstrainedDtw:
    def test_identical_sequences_have_zero_distance(self):
        sequence = np.sin(np.linspace(0, 3, 50))
        assert constrained_dtw(sequence, sequence) == pytest.approx(0.0, abs=1e-12)

    def test_distance_is_symmetric_enough_for_matching(self):
        a = np.sin(np.linspace(0, 3, 40))
        b = a + 0.1
        forward = constrained_dtw(a, b)
        backward = constrained_dtw(b, a)
        assert forward == pytest.approx(backward, rel=0.2)

    def test_constant_offset_gives_proportional_distance(self):
        a = np.zeros(20)
        b = np.full(20, 2.0)
        # Every aligned pair differs by 2; normalised by path length.
        assert constrained_dtw(a, b) == pytest.approx(2.0 * 20 / 40, rel=0.2)

    def test_time_warped_copy_is_close(self):
        base = np.sin(np.linspace(0, 2 * np.pi, 60))
        warped = np.sin(np.linspace(0, 2 * np.pi, 72))  # same shape, stretched
        different = np.cos(np.linspace(0, 6 * np.pi, 60)) * 3
        assert constrained_dtw(warped, base, band_fraction=0.3) < constrained_dtw(
            different, base, band_fraction=0.3
        )

    def test_empty_sequence_is_infinite(self):
        assert constrained_dtw(np.array([]), np.ones(5)) == float("inf")

    def test_unnormalized_distance_scales_with_length(self):
        a = np.zeros(10)
        b = np.ones(10)
        short = constrained_dtw(a, b, normalize=False)
        long = constrained_dtw(np.zeros(20), np.ones(20), normalize=False)
        assert long > short


class TestDtwProfile:
    def test_profile_minimum_at_embedded_shape(self):
        rng = np.random.default_rng(0)
        shape = np.concatenate([np.zeros(10), np.ones(20), np.zeros(10)])
        signal = rng.normal(0, 0.2, 400)
        signal[200:240] = shape + rng.normal(0, 0.02, 40)
        starts, distances = dtw_profile(signal, shape, stride=5)
        best_start = starts[np.argmin(distances)]
        assert abs(best_start - 200) <= 10

    def test_profile_empty_for_short_signal(self):
        starts, distances = dtw_profile(np.zeros(5), np.zeros(10))
        assert starts.size == 0
        assert distances.size == 0

    def test_profile_stride_controls_candidates(self):
        signal = np.zeros(100)
        shape = np.zeros(10)
        dense, _ = dtw_profile(signal, shape, stride=1)
        sparse, _ = dtw_profile(signal, shape, stride=10)
        assert dense.size > sparse.size


class TestMatchShape:
    def test_finds_single_region(self):
        signal = np.zeros(300)
        shape = np.concatenate([np.linspace(0, 5, 15), np.linspace(5, 0, 15)])
        signal[100:130] = shape
        regions = match_shape(signal, shape, threshold=0.2, stride=5)
        assert len(regions) == 1
        start, end = regions[0]
        assert start <= 100 < end

    def test_no_match_above_threshold(self):
        signal = np.zeros(300)
        shape = np.full(30, 10.0)
        regions = match_shape(signal, shape, threshold=0.5, stride=5)
        assert regions == []

    def test_overlapping_matches_merge(self):
        shape = np.ones(20)
        signal = np.concatenate([np.zeros(50), np.ones(60), np.zeros(50)])
        regions = match_shape(signal, shape, threshold=0.05, stride=5)
        assert len(regions) == 1
