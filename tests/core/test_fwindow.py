"""Unit tests for the FWindow columnar buffer."""

import numpy as np
import pytest

from repro.core.event import StreamDescriptor
from repro.core.fwindow import FWindow
from repro.errors import MemoryPlanError, NonMonotonicProgressError, StreamDefinitionError


@pytest.fixture
def window() -> FWindow:
    return FWindow(StreamDescriptor(offset=0, period=2), dimension=100)


class TestGeometry:
    def test_capacity_is_dimension_over_period(self, window):
        assert window.capacity == 50

    def test_dimension_must_be_multiple_of_period(self):
        with pytest.raises(MemoryPlanError):
            FWindow(StreamDescriptor(offset=0, period=8), dimension=100)

    def test_dimension_must_be_positive(self):
        with pytest.raises(MemoryPlanError):
            FWindow(StreamDescriptor(offset=0, period=2), dimension=0)

    def test_sync_times_are_arithmetic(self, window):
        times = window.sync_times()
        assert times[0] == 0
        assert times[-1] == 98
        assert np.all(np.diff(times) == 2)

    def test_index_of(self, window):
        assert window.index_of(0) == 0
        assert window.index_of(42) == 21

    def test_index_of_outside_window_rejected(self, window):
        with pytest.raises(StreamDefinitionError):
            window.index_of(100)

    def test_index_of_off_grid_rejected(self, window):
        with pytest.raises(StreamDefinitionError):
            window.index_of(3)

    def test_contains_time(self, window):
        assert window.contains_time(0)
        assert window.contains_time(99)
        assert not window.contains_time(100)

    def test_memory_bytes_matches_bounded_footprint(self, window):
        # 50 slots * (8 bytes value + 8 bytes duration + 1 byte bitvector).
        assert window.memory_bytes() == 50 * 17


class TestSliding:
    def test_slide_forward_clears_contents(self, window):
        window.set_event(10, 3.5)
        window.slide_to(100)
        assert window.sync_time == 100
        assert window.count() == 0

    def test_slide_backward_rejected(self, window):
        window.slide_to(200)
        with pytest.raises(NonMonotonicProgressError):
            window.slide_to(100)

    def test_slide_off_grid_rejected(self, window):
        with pytest.raises(StreamDefinitionError):
            window.slide_to(101)

    def test_reset_returns_to_offset(self, window):
        window.slide_to(400)
        window.reset()
        assert window.sync_time == 0

    def test_buffers_are_not_reallocated_on_slide(self, window):
        values_before = window.values
        window.slide_to(200)
        window.slide_to(400)
        # Static memory allocation: the same buffer object is reused.
        assert window.values is values_before


class TestEventAccess:
    def test_set_and_read_single_event(self, window):
        window.set_event(10, 3.5, duration=4)
        assert window.count() == 1
        assert window.present_times().tolist() == [10]
        assert window.present_values().tolist() == [3.5]
        assert window.present_durations().tolist() == [4]

    def test_set_events_bulk(self, window):
        times = np.array([0, 4, 8])
        values = np.array([1.0, 2.0, 3.0])
        window.set_events(times, values)
        assert window.count() == 3
        np.testing.assert_array_equal(window.present_times(), times)
        np.testing.assert_array_equal(window.present_values(), values)

    def test_set_events_ignores_out_of_window_times(self, window):
        times = np.array([0, 200, 400])
        values = np.array([1.0, 2.0, 3.0])
        window.set_events(times, values)
        assert window.count() == 1
        assert window.present_times().tolist() == [0]

    def test_set_events_default_duration_is_period(self, window):
        window.set_events(np.array([0]), np.array([1.0]))
        assert window.present_durations().tolist() == [2]

    def test_to_events(self, window):
        window.set_event(4, 7.0)
        events = window.to_events()
        assert len(events) == 1
        assert events[0].sync_time == 4
        assert events[0].value == 7.0

    def test_clear(self, window):
        window.set_event(0, 1.0)
        window.clear()
        assert window.count() == 0


class TestStatistics:
    def test_occupancy(self, window):
        window.set_events(np.arange(0, 50, 2), np.ones(25))
        assert window.occupancy() == pytest.approx(0.5)

    def test_fragmentation_zero_for_contiguous_data(self, window):
        window.set_events(np.arange(0, 60, 2), np.ones(30))
        assert window.fragmentation() == 0.0

    def test_fragmentation_zero_for_leading_trailing_gaps(self, window):
        # Data only in the middle: not fragmentation, just a shorter region.
        window.set_events(np.arange(20, 60, 2), np.ones(20))
        assert window.fragmentation() == 0.0

    def test_fragmentation_counts_interior_holes(self, window):
        times = np.array([0, 2, 6, 8])  # hole at t=4
        window.set_events(times, np.ones(4))
        assert window.fragmentation() == pytest.approx(1 / 50)

    def test_fragmentation_empty_window(self, window):
        assert window.fragmentation() == 0.0
