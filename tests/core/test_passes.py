"""Unit tests for the pass-based compilation pipeline.

Covers pass ordering and timing in the PassManager, the normalize pass's
spec rewrites, the fuse_elementwise pass's graph rewrites, and the
optimization-level gating."""

import numpy as np
import pytest

from repro.core.compiler import (
    FuseElementwisePass,
    LineagePass,
    LocalityPass,
    MemoryPass,
    NormalizePass,
    PassContext,
    PassManager,
    VerifyPass,
    build_plan,
    compile_plan,
    fuse_elementwise,
)
from repro.core.graph import operator_nodes
from repro.core.operators import AlterDuration, FusedElementwise, Select, Shift
from repro.core.query import Query, normalize_spec
from repro.errors import CompilationError

from tests.conftest import make_source


def chain_query() -> Query:
    return (
        Query.source("s", frequency_hz=500)
        .select(lambda v: v * 2)
        .where(lambda v: v > 0)
        .shift(10)
        .alter_duration(4)
    )


class TestPassManager:
    def test_default_pipeline_order(self):
        manager = PassManager.default_pipeline()
        assert manager.pass_names == [
            "normalize",
            "lineage",
            "locality",
            "fuse_elementwise",
            "vectorize",
            "memory",
            "verify",
        ]

    def test_every_pass_is_timed(self, ramp_500hz):
        plan = compile_plan(chain_query(), {"s": ramp_500hz}, window_size=1000)
        assert [t.name for t in plan.pass_timings] == PassManager.default_pipeline().pass_names
        assert all(t.seconds >= 0 for t in plan.pass_timings)

    def test_explain_reports_pass_timeline(self, ramp_500hz):
        plan = compile_plan(chain_query(), {"s": ramp_500hz}, window_size=1000)
        text = plan.explain()
        assert "pass timeline:" in text
        for name in PassManager.default_pipeline().pass_names:
            assert name in text

    def test_passes_are_individually_runnable(self, ramp_500hz):
        ctx = PassContext(query=chain_query(), sources={"s": ramp_500hz}, window_size=1000)
        NormalizePass().run(ctx)
        assert ctx.sink is not None
        LineagePass().run(ctx)
        assert ctx.coverage is not None
        LocalityPass().run(ctx)
        assert all(n.dimension is not None for n in ctx.sink.iter_nodes())
        FuseElementwisePass().run(ctx)
        assert "fused" in ctx.metadata["fusion"]
        MemoryPass().run(ctx)
        assert ctx.memory_plan is not None
        VerifyPass().run(ctx)
        assert ctx.metadata["verify"] == "clean"
        assert ctx.diagnostics == []

    def test_pass_requiring_plan_rejects_empty_context(self, ramp_500hz):
        ctx = PassContext(query=chain_query(), sources={"s": ramp_500hz}, window_size=1000)
        with pytest.raises(CompilationError):
            LineagePass().run(ctx)

    def test_custom_pipeline_must_allocate_memory(self, ramp_500hz):
        manager = PassManager([NormalizePass(), LineagePass(), LocalityPass()])
        with pytest.raises(CompilationError):
            compile_plan(chain_query(), {"s": ramp_500hz}, pass_manager=manager)

    def test_duplicate_pass_names_rejected(self):
        with pytest.raises(CompilationError):
            PassManager([NormalizePass(), NormalizePass()])

    def test_empty_pipeline_rejected(self):
        with pytest.raises(CompilationError):
            PassManager([])

    def test_invalid_optimization_level_rejected(self, ramp_500hz):
        with pytest.raises(CompilationError):
            compile_plan(chain_query(), {"s": ramp_500hz}, optimization_level=7)


class TestNormalize:
    def test_adjacent_shifts_merge(self):
        query = Query.source("s", frequency_hz=500).shift(100).shift(23)
        spec = normalize_spec(query.spec)
        assert isinstance(spec.operator, Shift)
        assert spec.operator.offset == 123
        assert spec.inputs[0].kind == "source"

    def test_zero_shift_removed(self):
        query = Query.source("s", frequency_hz=500).shift(0)
        spec = normalize_spec(query.spec)
        assert spec.kind == "source"

    def test_opposite_shifts_cancel(self):
        query = Query.source("s", frequency_hz=500).shift(50).shift(-50)
        spec = normalize_spec(query.spec)
        assert spec.kind == "source"

    def test_shadowed_alter_duration_elided(self):
        query = Query.source("s", frequency_hz=500).alter_duration(10).alter_duration(20)
        spec = normalize_spec(query.spec)
        assert isinstance(spec.operator, AlterDuration)
        assert spec.operator.duration == 20
        assert spec.inputs[0].kind == "source"

    def test_multicast_shared_nodes_not_rewritten(self):
        shifted = Query.source("s", frequency_hz=500).shift(10)
        query = shifted.multicast(lambda s: s.shift(20).join(s, lambda a, b: a + b))
        spec = normalize_spec(query.spec)
        # shift(20) over the shared shift(10) must NOT merge: the other join
        # branch still consumes the shift(10) node.
        left = spec.inputs[0]
        assert isinstance(left.operator, Shift)
        assert left.operator.offset == 20
        assert left.inputs[0] is spec.inputs[1]

    def test_normalized_query_produces_identical_results(self, ramp_500hz):
        query = Query.source("s", frequency_hz=500).shift(100).shift(-60).select(lambda v: v + 1)
        engine_raw = compile_plan(query, {"s": ramp_500hz}, optimization_level=0)
        engine_norm = compile_plan(query, {"s": ramp_500hz}, optimization_level=1)
        from repro.core.runtime.executor import execute_plan

        raw = execute_plan(engine_raw)
        norm = execute_plan(engine_norm)
        np.testing.assert_array_equal(raw.times, norm.times)
        np.testing.assert_array_equal(raw.values, norm.values)


class TestFusion:
    def test_chain_collapses_to_single_node(self, ramp_500hz):
        plan = compile_plan(chain_query(), {"s": ramp_500hz}, window_size=1000)
        ops = operator_nodes(plan.sink)
        assert len(ops) == 1
        assert isinstance(ops[0].operator, FusedElementwise)

    def test_optimization_level_gates_fusion(self, ramp_500hz):
        unfused = compile_plan(chain_query(), {"s": ramp_500hz}, optimization_level=1)
        assert len(operator_nodes(unfused.sink)) == 4
        assert unfused.pass_metadata["fusion"] == "disabled"

    def test_single_operator_not_fused(self, ramp_500hz):
        query = Query.source("s", frequency_hz=500).select(lambda v: v)
        plan = compile_plan(query, {"s": ramp_500hz}, window_size=1000)
        ops = operator_nodes(plan.sink)
        assert len(ops) == 1
        assert not isinstance(ops[0].operator, FusedElementwise)

    def test_multicast_fanout_not_absorbed(self):
        source = make_source(4000, period=2)
        query = (
            Query.source("s", frequency_hz=500)
            .select(lambda v: v * 2)
            .multicast(lambda s: s.select(lambda v: v + 1).join(s, lambda a, b: a - b))
        )
        plan = compile_plan(query, {"s": source}, window_size=1000)
        # The multicast point (select *2) feeds two consumers; it must stay a
        # standalone shared node, so nothing in this plan can fuse.
        join_node = plan.sink
        assert not any(
            isinstance(n.operator, FusedElementwise) for n in operator_nodes(plan.sink)
        )
        assert join_node.inputs[0].inputs[0] is join_node.inputs[1]

    def test_fusion_preserves_descriptor_dimension_coverage(self, gappy_500hz):
        query = Query.source("s", frequency_hz=500).select(lambda v: v).where(lambda v: v > 0)
        fused_plan = compile_plan(query, {"s": gappy_500hz}, window_size=1000)
        unfused_plan = compile_plan(
            query, {"s": gappy_500hz}, window_size=1000, optimization_level=1
        )
        assert fused_plan.sink.descriptor == unfused_plan.sink.descriptor
        assert fused_plan.sink.dimension == unfused_plan.sink.dimension
        assert fused_plan.output_coverage == unfused_plan.output_coverage

    def test_direct_fusion_rewrite_reports_counts(self, ramp_500hz):
        sink = build_plan(chain_query().normalized(), {"s": ramp_500hz})
        from repro.core.compiler import assign_dimensions, propagate_coverage

        propagate_coverage(sink)
        assign_dimensions(sink, 1000)
        report = fuse_elementwise(sink)
        assert report.chains_fused == 1
        assert report.nodes_eliminated == 4

    def test_fused_operator_rejects_short_chains(self):
        with pytest.raises(CompilationError):
            FusedElementwise([(Select(lambda v: v), None)])

    def test_fused_operator_rejects_unfusable_stage(self):
        from repro.core.event import StreamDescriptor
        from repro.core.operators import Transform

        descriptor = StreamDescriptor(offset=0, period=2)
        with pytest.raises(CompilationError):
            FusedElementwise(
                [
                    (Select(lambda v: v), descriptor),
                    (Transform(100, lambda v, m: v), descriptor),
                ]
            )
