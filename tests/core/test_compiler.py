"""Unit tests for the compiler passes: locality tracing, static memory
allocation and lineage/coverage propagation."""

import pytest

from repro.core.compiler import (
    backward_time_map,
    build_plan,
    compile_plan,
    estimate_footprint,
    forward_time_map,
    propagate_coverage,
    redundant_source_coverage,
    trace_dimensions,
    uniform_dimension,
)
from repro.core.compiler.locality import assign_dimensions
from repro.core.compiler.memory import allocate
from repro.core.graph import describe_plan, source_nodes, total_preallocated_bytes
from repro.core.intervals import IntervalSet
from repro.core.query import Query
from repro.core.timeutil import TICKS_PER_MINUTE
from repro.errors import LocalityTracingError, MemoryPlanError

from tests.conftest import make_source


def listing1_query() -> Query:
    """The paper's running example (Listing 1): 500 Hz joined with 200 Hz."""
    sig500 = Query.source("sig500", frequency_hz=500)
    sig200 = Query.source("sig200", frequency_hz=200)
    left = sig500.multicast(
        lambda s: s.select(lambda v: v).join(
            s.tumbling_window(100).mean(), lambda value, mean: value - mean
        )
    )
    return left.join(sig200.select(lambda v: v), lambda l, r: l + r)


def listing1_sources():
    sig500 = make_source(5000, period=2)
    sig200 = make_source(2000, period=5)
    return {"sig500": sig500, "sig200": sig200}


class TestLocalityTracing:
    def test_figure6_dimensions_converge_to_lcm(self):
        # Figure 6: the example query's dimensions converge to 100 (the LCM
        # of the 2-tick and 5-tick periods and the 100-tick window).
        sink = build_plan(listing1_query(), listing1_sources())
        dims = trace_dimensions(sink, window_size=1)
        assert set(dims.values()) == {100}

    def test_dimensions_scale_up_to_window_size(self):
        sink = build_plan(listing1_query(), listing1_sources())
        dims = trace_dimensions(sink, window_size=TICKS_PER_MINUTE)
        assert set(dims.values()) == {60_000}

    def test_every_dimension_is_multiple_of_its_period(self):
        sink = build_plan(listing1_query(), listing1_sources())
        assign_dimensions(sink, window_size=1234)
        for node in sink.iter_nodes():
            assert node.dimension % node.descriptor.period == 0

    def test_uniform_dimension_after_tracing(self):
        sink = build_plan(listing1_query(), listing1_sources())
        assign_dimensions(sink, window_size=1000)
        assert uniform_dimension(sink) % 100 == 0

    def test_plain_select_keeps_period_dimension_before_scaling(self, ramp_500hz):
        query = Query.source("s", frequency_hz=500).select(lambda v: v)
        sink = build_plan(query, {"s": ramp_500hz})
        dims = trace_dimensions(sink, window_size=1)
        assert set(dims.values()) == {2}

    def test_rejects_invalid_window_size(self, ramp_500hz):
        query = Query.source("s", frequency_hz=500).select(lambda v: v)
        sink = build_plan(query, {"s": ramp_500hz})
        with pytest.raises(LocalityTracingError):
            trace_dimensions(sink, window_size=0)

    def test_describe_plan_uses_paper_notation(self, ramp_500hz):
        query = Query.source("s", frequency_hz=500).select(lambda v: v)
        sink = build_plan(query, {"s": ramp_500hz})
        assign_dimensions(sink, window_size=1000)
        description = describe_plan(sink)
        assert "(0,2)[1000]" in description


class TestStaticMemoryAllocation:
    def test_footprint_estimate_matches_allocation(self):
        sink = build_plan(listing1_query(), listing1_sources())
        assign_dimensions(sink, window_size=1000)
        estimate = estimate_footprint(sink)
        plan = allocate(sink)
        assert plan.total_bytes == estimate
        assert plan.total_bytes == total_preallocated_bytes(sink)

    def test_footprint_is_bounded_by_dimension_not_data_size(self):
        # The bounded-memory property: buffers depend on the window size, not
        # on how much data will stream through them.
        small_sources = {"sig500": make_source(1000, period=2), "sig200": make_source(400, period=5)}
        large_sources = {"sig500": make_source(100_000, period=2), "sig200": make_source(40_000, period=5)}
        small_plan = compile_plan(listing1_query(), small_sources, window_size=1000)
        large_plan = compile_plan(listing1_query(), large_sources, window_size=1000)
        assert small_plan.memory_plan.total_bytes == large_plan.memory_plan.total_bytes

    def test_allocation_requires_dimensions(self):
        sink = build_plan(listing1_query(), listing1_sources())
        with pytest.raises(MemoryPlanError):
            allocate(sink)

    def test_per_node_breakdown_covers_every_node(self):
        sink = build_plan(listing1_query(), listing1_sources())
        assign_dimensions(sink, window_size=1000)
        plan = allocate(sink)
        assert len(plan.per_node_bytes) == len(list(sink.iter_nodes()))

    def test_memory_plan_str(self):
        sink = build_plan(listing1_query(), listing1_sources())
        assign_dimensions(sink, window_size=1000)
        plan = allocate(sink)
        assert "FWindows" in str(plan)


class TestLineageAndCoverage:
    def test_source_coverage_propagates_through_elementwise_ops(self, gappy_500hz):
        query = Query.source("s", frequency_hz=500).select(lambda v: v).where(lambda v: v > 0)
        plan = compile_plan(query, {"s": gappy_500hz}, window_size=1000)
        assert plan.output_coverage == gappy_500hz.coverage()

    def test_inner_join_intersects_coverage(self):
        left = make_source(1000, period=2)  # covers [0, 2000)
        right = make_source(1000, period=2, offset=1000)  # covers [1000, 3000)
        query = Query.source("a", frequency_hz=500).join(Query.source("b", frequency_hz=500))
        plan = compile_plan(query, {"a": left, "b": right}, window_size=500)
        assert plan.output_coverage == IntervalSet([(1000, 2000)])

    def test_shift_translates_coverage(self, ramp_500hz):
        query = Query.source("s", frequency_hz=500).shift(500)
        plan = compile_plan(query, {"s": ramp_500hz}, window_size=1000)
        start, end = plan.output_coverage.span()
        assert end == 10_000 + 500
        assert start <= 500

    def test_forward_and_backward_time_maps_compose(self, ramp_500hz):
        query = Query.source("s", frequency_hz=500).shift(100).shift(23)
        plan = compile_plan(query, {"s": ramp_500hz}, window_size=1000)
        source = source_nodes(plan.sink)[0]
        forward = forward_time_map(plan.sink, source)
        backward = backward_time_map(plan.sink, source)
        assert forward.apply(0) == 123
        assert backward.apply(forward.apply(4200)) == 4200

    def test_redundant_source_coverage_identifies_skippable_data(self):
        # ECG exists everywhere, ABP only in the first half: half of the ECG
        # can never reach the output of an inner join.
        ecg = make_source(2000, period=2)  # [0, 4000)
        abp = make_source(250, period=8)  # [0, 2000)
        query = Query.source("ecg", frequency_hz=500).join(Query.source("abp", frequency_hz=125))
        plan = compile_plan(query, {"ecg": ecg, "abp": abp}, window_size=1000)
        propagate_coverage(plan.sink)
        skipped = redundant_source_coverage(plan.sink)
        ecg_node = next(n for n in source_nodes(plan.sink) if n.source is ecg)
        assert skipped[ecg_node.name].total_length() == 2000

    def test_compiled_plan_explain_mentions_coverage_and_memory(self, ramp_500hz):
        query = Query.source("s", frequency_hz=500).select(lambda v: v)
        plan = compile_plan(query, {"s": ramp_500hz}, window_size=1000)
        text = plan.explain()
        assert "pre-allocated" in text
        assert "coverage" in text
