"""Unit tests for the generic Transform operator and ShapeWhere."""

import numpy as np
import pytest

from repro.core.query import Query
from repro.data.artifacts import inject_line_zero, line_zero_template
from repro.data.physio import generate_abp
from repro.errors import QueryConstructionError


class TestTransform:
    def test_values_only_transform(self, engine, ramp_500hz):
        query = Query.source("s", frequency_hz=500).transform(100, lambda v, m: v * 2)
        result = engine.run(query, sources={"s": ramp_500hz})
        np.testing.assert_allclose(result.values, ramp_500hz.values * 2)

    def test_transform_preserves_presence_by_default(self, engine, gappy_500hz):
        query = Query.source("s", frequency_hz=500).transform(100, lambda v, m: v + 1)
        result = engine.run(query, sources={"s": gappy_500hz})
        assert len(result) == gappy_500hz.event_count()

    def test_transform_can_change_presence(self, engine, gappy_500hz):
        def materialise_everything(values, mask):
            return np.zeros_like(values), np.ones_like(mask)

        query = Query.source("s", frequency_hz=500).transform(1000, materialise_everything)
        # Under targeted execution only windows with source data are computed,
        # so the materialised events appear there and nowhere else.
        targeted = engine.run(query, sources={"s": gappy_500hz})
        assert len(targeted) == gappy_500hz.event_count()
        # Eager execution processes the gap windows too, so the transform
        # materialises events across the whole span (5,000 grid slots).
        eager = engine.run(query, sources={"s": gappy_500hz}, targeted=False)
        assert len(eager) == 5000

    def test_transform_window_receives_exact_chunk(self, engine, ramp_500hz):
        seen_lengths = []

        def probe(values, mask):
            seen_lengths.append(values.size)
            return values

        query = Query.source("s", frequency_hz=500).transform(200, probe)
        engine.run(query, sources={"s": ramp_500hz})
        assert set(seen_lengths) == {100}  # 200 ticks / period 2

    def test_per_window_statistics_are_local(self, engine, ramp_500hz):
        def center(values, mask):
            return values - values[mask].mean() if mask.any() else values

        query = Query.source("s", frequency_hz=500).transform(100, center)
        result = engine.run(query, sources={"s": ramp_500hz})
        # Every 50-sample chunk is centred on its own mean.
        np.testing.assert_allclose(result.values[:50], np.arange(50) - 24.5)

    def test_window_must_be_multiple_of_period(self, engine, ramp_125hz):
        query = Query.source("s", frequency_hz=125).transform(100, lambda v, m: v)
        with pytest.raises(QueryConstructionError):
            engine.run(query, sources={"s": ramp_125hz})

    def test_rejects_non_positive_window(self):
        with pytest.raises(QueryConstructionError):
            Query.source("s", frequency_hz=500).transform(0, lambda v, m: v)

    def test_rejects_non_callable(self):
        with pytest.raises(QueryConstructionError):
            Query.source("s", frequency_hz=500).transform(100, "nope")


class TestShapeWhere:
    @pytest.fixture
    def abp_with_artifacts(self):
        times, values = generate_abp(90.0, seed=3)
        corrupted, artifacts = inject_line_zero(values, n_artifacts=3, seed=4)
        return times, corrupted, artifacts

    def test_keep_mode_returns_only_matching_regions(self, abp_with_artifacts):
        from repro.core.engine import LifeStreamEngine

        times, values, artifacts = abp_with_artifacts
        from repro.core.sources import ArraySource

        source = ArraySource(times, values, period=8)
        query = Query.source("abp", frequency_hz=125).where_shape(
            line_zero_template(), threshold=0.05, mode="keep"
        )
        result = LifeStreamEngine(window_size=60_000).run(query, sources={"abp": source})
        detected_indices = set((result.times // 8).tolist())
        for artifact in artifacts:
            overlap = detected_indices & set(range(artifact.start_index, artifact.end_index))
            assert overlap, f"artifact at {artifact.start_index} was not detected"

    def test_remove_mode_drops_matching_regions(self, abp_with_artifacts):
        from repro.core.engine import LifeStreamEngine
        from repro.core.sources import ArraySource

        times, values, artifacts = abp_with_artifacts
        source = ArraySource(times, values, period=8)
        query = Query.source("abp", frequency_hz=125).where_shape(
            line_zero_template(), threshold=0.05, mode="remove"
        )
        result = LifeStreamEngine(window_size=60_000).run(query, sources={"abp": source})
        assert len(result) < times.size
        removed = times.size - len(result)
        total_artifact_samples = sum(a.length for a in artifacts)
        # Everything removed should be in the vicinity of injected artifacts.
        assert removed <= 3 * total_artifact_samples

    def test_keep_plus_remove_partition_the_stream(self, abp_with_artifacts):
        from repro.core.engine import LifeStreamEngine
        from repro.core.sources import ArraySource

        times, values, _ = abp_with_artifacts
        source = ArraySource(times, values, period=8)
        engine = LifeStreamEngine(window_size=60_000)
        kept = engine.run(
            Query.source("abp", frequency_hz=125).where_shape(
                line_zero_template(), threshold=0.05, mode="keep"
            ),
            sources={"abp": source},
        )
        removed = engine.run(
            Query.source("abp", frequency_hz=125).where_shape(
                line_zero_template(), threshold=0.05, mode="remove"
            ),
            sources={"abp": source},
        )
        assert len(kept) + len(removed) == times.size

    def test_mark_mode_emits_indicator_payload(self, abp_with_artifacts):
        from repro.core.engine import LifeStreamEngine
        from repro.core.sources import ArraySource

        times, values, _ = abp_with_artifacts
        source = ArraySource(times, values, period=8)
        query = Query.source("abp", frequency_hz=125).where_shape(
            line_zero_template(), threshold=0.05, mode="mark"
        )
        result = LifeStreamEngine(window_size=60_000).run(query, sources={"abp": source})
        assert set(np.unique(result.values)) <= {0.0, 1.0}
        assert len(result) == times.size

    def test_invalid_parameters_rejected(self):
        with pytest.raises(QueryConstructionError):
            Query.source("s", frequency_hz=125).where_shape(np.array([1.0]), threshold=0.1)
        with pytest.raises(QueryConstructionError):
            Query.source("s", frequency_hz=125).where_shape(
                line_zero_template(), threshold=-1.0
            )
        with pytest.raises(QueryConstructionError):
            Query.source("s", frequency_hz=125).where_shape(
                line_zero_template(), threshold=0.1, mode="explode"
            )
