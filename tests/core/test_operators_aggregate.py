"""Unit tests for windowed aggregation (tumbling and sliding)."""

import numpy as np
import pytest

from repro.core.query import Query
from repro.errors import QueryConstructionError

from tests.conftest import make_source


class TestTumblingAggregates:
    def test_mean_over_tumbling_windows(self, engine, ramp_500hz):
        query = Query.source("s", frequency_hz=500).tumbling_window(100).mean()
        result = engine.run(query, sources={"s": ramp_500hz})
        # 5000 events at period 2 cover 10,000 ticks -> 100 windows of 100 ticks.
        assert len(result) == 100
        # Window k holds values 50k .. 50k+49, whose mean is 50k + 24.5.
        expected = 50 * np.arange(100) + 24.5
        np.testing.assert_allclose(result.values, expected)

    def test_output_period_equals_stride(self, engine, ramp_500hz):
        query = Query.source("s", frequency_hz=500).tumbling_window(100).mean()
        result = engine.run(query, sources={"s": ramp_500hz})
        assert np.all(np.diff(result.times) == 100)

    def test_output_duration_equals_window(self, engine, ramp_500hz):
        query = Query.source("s", frequency_hz=500).tumbling_window(100).mean()
        result = engine.run(query, sources={"s": ramp_500hz})
        assert np.all(result.durations == 100)

    def test_sum(self, engine, ramp_500hz):
        query = Query.source("s", frequency_hz=500).tumbling_window(100).sum()
        result = engine.run(query, sources={"s": ramp_500hz})
        expected = np.array([np.arange(50 * k, 50 * k + 50).sum() for k in range(100)])
        np.testing.assert_allclose(result.values, expected)

    def test_max_and_min(self, engine, ramp_500hz):
        max_query = Query.source("s", frequency_hz=500).tumbling_window(100).max()
        min_query = Query.source("s", frequency_hz=500).tumbling_window(100).min()
        max_result = engine.run(max_query, sources={"s": ramp_500hz})
        min_result = engine.run(min_query, sources={"s": ramp_500hz})
        np.testing.assert_allclose(max_result.values, 50 * np.arange(100) + 49)
        np.testing.assert_allclose(min_result.values, 50 * np.arange(100))

    def test_count(self, engine, ramp_500hz):
        query = Query.source("s", frequency_hz=500).tumbling_window(100).count()
        result = engine.run(query, sources={"s": ramp_500hz})
        assert np.all(result.values == 50)

    def test_std(self, engine):
        source = make_source(1000, period=2, value_fn=lambda i: float(i % 2))
        query = Query.source("s", frequency_hz=500).tumbling_window(100).std()
        result = engine.run(query, sources={"s": source})
        np.testing.assert_allclose(result.values, 0.5)

    def test_first_and_last(self, engine, ramp_500hz):
        first = engine.run(
            Query.source("s", frequency_hz=500).tumbling_window(100).first(),
            sources={"s": ramp_500hz},
        )
        last = engine.run(
            Query.source("s", frequency_hz=500).tumbling_window(100).last(),
            sources={"s": ramp_500hz},
        )
        np.testing.assert_allclose(first.values, 50 * np.arange(100))
        np.testing.assert_allclose(last.values, 50 * np.arange(100) + 49)

    def test_custom_aggregate_function(self, engine, ramp_500hz):
        def value_range(values, mask):
            lo = np.where(mask, values, np.inf).min(axis=1)
            hi = np.where(mask, values, -np.inf).max(axis=1)
            return hi - lo

        query = Query.source("s", frequency_hz=500).tumbling_window(100).apply(value_range)
        result = engine.run(query, sources={"s": ramp_500hz})
        np.testing.assert_allclose(result.values, 49.0)

    def test_gap_window_produces_no_event(self, engine, gappy_500hz):
        query = Query.source("s", frequency_hz=500).tumbling_window(100).mean()
        result = engine.run(query, sources={"s": gappy_500hz})
        # Events 1000..2999 are missing, i.e. ticks [2000, 6000) have no data,
        # so windows 20..59 must be absent from the output.
        window_ids = result.times // 100
        assert not np.any((window_ids >= 20) & (window_ids < 60))

    def test_unknown_aggregate_rejected(self, engine, ramp_500hz):
        query = Query.source("s", frequency_hz=500).aggregate(100, func="median-of-medians")
        with pytest.raises(QueryConstructionError):
            engine.run(query, sources={"s": ramp_500hz})


class TestSlidingAggregates:
    def test_rolling_mean_matches_trailing_window(self, engine, ramp_500hz):
        query = Query.source("s", frequency_hz=500).sliding_window(100, 20).mean()
        result = engine.run(query, sources={"s": ramp_500hz})
        # Output at time t aggregates input events in (t + 20 - 100, t + 20].
        values = ramp_500hz.values
        for output_time, output_value in list(zip(result.times, result.values))[10:50]:
            end_index = (output_time + 20) // 2
            start_index = max(0, end_index - 50)
            expected = values[start_index:end_index].mean()
            assert output_value == pytest.approx(expected)

    def test_sliding_output_period_is_stride(self, engine, ramp_500hz):
        query = Query.source("s", frequency_hz=500).sliding_window(100, 20).mean()
        result = engine.run(query, sources={"s": ramp_500hz})
        assert np.all(np.diff(result.times) == 20)

    def test_sliding_equivalent_to_tumbling_when_stride_equals_window(self, engine, ramp_500hz):
        tumbling = engine.run(
            Query.source("s", frequency_hz=500).tumbling_window(100).mean(),
            sources={"s": ramp_500hz},
        )
        sliding = engine.run(
            Query.source("s", frequency_hz=500).sliding_window(100, 100).mean(),
            sources={"s": ramp_500hz},
        )
        np.testing.assert_array_equal(tumbling.times, sliding.times)
        np.testing.assert_allclose(tumbling.values, sliding.values)

    def test_switching_tumbling_to_sliding_is_one_line(self, engine, ramp_500hz):
        # The programmability claim from Section 3: changing a tumbling mean
        # into a rolling mean is a single query change, not a redesign.
        tumbling = Query.source("s", frequency_hz=500).tumbling_window(100).mean()
        sliding = Query.source("s", frequency_hz=500).sliding_window(100, 20).mean()
        assert engine.run(tumbling, sources={"s": ramp_500hz}).stats.events_emitted == 100
        # The rolling mean also emits trailing partial windows past the end of
        # the data (504 outputs instead of exactly 500).
        assert engine.run(sliding, sources={"s": ramp_500hz}).stats.events_emitted == 504

    def test_window_must_be_at_least_stride(self):
        with pytest.raises(QueryConstructionError):
            Query.source("s", frequency_hz=500).aggregate(20, stride=100)

    def test_window_must_be_multiple_of_period(self, engine, ramp_125hz):
        query = Query.source("s", frequency_hz=125).aggregate(100, stride=100)
        with pytest.raises(QueryConstructionError):
            engine.run(query, sources={"s": ramp_125hz})


class TestAggregateJoinPattern:
    def test_listing1_mean_subtraction(self, engine, ramp_500hz):
        # The running example of the paper: subtract the tumbling-window mean
        # from every event of the stream.
        base = Query.source("s", frequency_hz=500)
        query = base.multicast(
            lambda s: s.join(s.tumbling_window(100).mean(), lambda value, mean: value - mean)
        )
        result = engine.run(query, sources={"s": ramp_500hz})
        assert len(result) == ramp_500hz.event_count()
        window_means = 50 * (ramp_500hz.times // 100) + 24.5
        np.testing.assert_allclose(result.values, ramp_500hz.values - window_means)
