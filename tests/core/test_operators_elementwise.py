"""Unit tests for Select, Where, Shift and AlterDuration via the query API."""

import numpy as np
import pytest

from repro.core.query import Query
from repro.errors import QueryConstructionError

from tests.conftest import make_source


class TestSelect:
    def test_projection_applied_to_every_event(self, engine, ramp_500hz):
        query = Query.source("s", frequency_hz=500).select(lambda v: v * 3 + 1)
        result = engine.run(query, sources={"s": ramp_500hz})
        assert len(result) == ramp_500hz.event_count()
        np.testing.assert_allclose(result.values, ramp_500hz.values * 3 + 1)

    def test_times_are_preserved(self, engine, ramp_500hz):
        query = Query.source("s", frequency_hz=500).select(lambda v: v)
        result = engine.run(query, sources={"s": ramp_500hz})
        np.testing.assert_array_equal(result.times, ramp_500hz.times)

    def test_non_vectorized_projection(self, engine):
        source = make_source(100, period=2)
        query = Query.source("s", frequency_hz=500).select(lambda v: v + 1, vectorized=False)
        result = engine.run(query, sources={"s": source})
        np.testing.assert_allclose(result.values, source.values + 1)

    def test_chained_selects_compose(self, engine, ramp_500hz):
        query = (
            Query.source("s", frequency_hz=500)
            .select(lambda v: v * 2)
            .select(lambda v: v - 1)
        )
        result = engine.run(query, sources={"s": ramp_500hz})
        np.testing.assert_allclose(result.values, ramp_500hz.values * 2 - 1)

    def test_rejects_non_callable(self):
        with pytest.raises(QueryConstructionError):
            Query.source("s", frequency_hz=500).select("not callable")


class TestWhere:
    def test_filters_by_predicate(self, engine, ramp_500hz):
        query = Query.source("s", frequency_hz=500).where(lambda v: v < 100)
        result = engine.run(query, sources={"s": ramp_500hz})
        assert len(result) == 100
        assert result.values.max() < 100

    def test_keeps_everything_with_true_predicate(self, engine, ramp_500hz):
        query = Query.source("s", frequency_hz=500).where(lambda v: v >= 0)
        result = engine.run(query, sources={"s": ramp_500hz})
        assert len(result) == ramp_500hz.event_count()

    def test_empty_result_with_false_predicate(self, engine, ramp_500hz):
        query = Query.source("s", frequency_hz=500).where(lambda v: v < 0)
        result = engine.run(query, sources={"s": ramp_500hz})
        assert len(result) == 0

    def test_filtered_events_keep_original_payload(self, engine, ramp_500hz):
        query = Query.source("s", frequency_hz=500).where(lambda v: (v % 2) == 0)
        result = engine.run(query, sources={"s": ramp_500hz})
        assert np.all(result.values % 2 == 0)

    def test_where_then_select(self, engine, ramp_500hz):
        query = (
            Query.source("s", frequency_hz=500)
            .where(lambda v: v < 10)
            .select(lambda v: v * 10)
        )
        result = engine.run(query, sources={"s": ramp_500hz})
        np.testing.assert_allclose(result.values, np.arange(10.0) * 10)


class TestShift:
    def test_shift_moves_sync_times(self, engine, ramp_500hz):
        query = Query.source("s", frequency_hz=500).shift(100)
        result = engine.run(query, sources={"s": ramp_500hz})
        np.testing.assert_array_equal(result.times, ramp_500hz.times + 100)
        np.testing.assert_allclose(result.values, ramp_500hz.values)

    def test_shift_by_non_multiple_of_period(self, engine, ramp_500hz):
        query = Query.source("s", frequency_hz=500).shift(3)
        result = engine.run(query, sources={"s": ramp_500hz})
        np.testing.assert_array_equal(result.times, ramp_500hz.times + 3)

    def test_shift_composes_with_select(self, engine, ramp_500hz):
        query = Query.source("s", frequency_hz=500).shift(10).select(lambda v: v + 1)
        result = engine.run(query, sources={"s": ramp_500hz})
        np.testing.assert_array_equal(result.times, ramp_500hz.times + 10)
        np.testing.assert_allclose(result.values, ramp_500hz.values + 1)

    def test_shift_join_with_unshifted_self(self, engine):
        # Joining a stream with a shifted copy of itself pairs each event
        # with the value one period earlier (a common derived-variable trick).
        source = make_source(1000, period=2)
        base = Query.source("s", frequency_hz=500)
        query = base.multicast(
            lambda s: s.join(s.shift(2), lambda current, previous: current - previous)
        )
        result = engine.run(query, sources={"s": source})
        # The first slot has no shifted predecessor, so the inner join drops it.
        assert len(result) == 999
        assert np.all(result.values == 1.0)


class TestAlterDuration:
    def test_durations_are_replaced(self, engine, ramp_500hz):
        query = Query.source("s", frequency_hz=500).alter_duration(10)
        result = engine.run(query, sources={"s": ramp_500hz})
        assert np.all(result.durations == 10)

    def test_values_unchanged(self, engine, ramp_500hz):
        query = Query.source("s", frequency_hz=500).alter_duration(10)
        result = engine.run(query, sources={"s": ramp_500hz})
        np.testing.assert_allclose(result.values, ramp_500hz.values)

    def test_rejects_non_positive_duration(self):
        with pytest.raises(ValueError):
            Query.source("s", frequency_hz=500).alter_duration(0)
