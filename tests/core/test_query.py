"""Unit tests for the query builder (construction only, no execution)."""

import pytest

from repro.core.query import Query
from repro.errors import QueryConstructionError


class TestSourceDeclaration:
    def test_source_by_frequency(self):
        query = Query.source("ecg", frequency_hz=500)
        assert query.spec.declared_descriptor.period == 2

    def test_source_by_period(self):
        query = Query.source("ecg", period=8)
        assert query.spec.declared_descriptor.period == 8

    def test_source_without_declaration(self):
        query = Query.source("ecg")
        assert query.spec.declared_descriptor is None

    def test_source_rejects_both_frequency_and_period(self):
        with pytest.raises(QueryConstructionError):
            Query.source("ecg", frequency_hz=500, period=2)

    def test_from_source_binds_object(self, ramp_500hz):
        query = Query.from_source(ramp_500hz, name="bound")
        assert query.spec.bound_source is ramp_500hz
        assert query.source_names() == set()

    def test_source_names_collects_all_named_sources(self):
        query = Query.source("a", frequency_hz=500).join(Query.source("b", frequency_hz=125))
        assert query.source_names() == {"a", "b"}


class TestComposition:
    def test_queries_are_immutable_building_blocks(self):
        base = Query.source("s", frequency_hz=500)
        derived = base.select(lambda v: v + 1)
        assert base.spec is not derived.spec
        assert base.operator_count() == 0
        assert derived.operator_count() == 1

    def test_operator_count_grows_with_chain(self):
        query = (
            Query.source("s", frequency_hz=500)
            .select(lambda v: v)
            .where(lambda v: v > 0)
            .tumbling_window(100)
            .mean()
        )
        assert query.operator_count() == 3

    def test_multicast_shares_the_forked_node(self):
        base = Query.source("s", frequency_hz=500)
        query = base.multicast(
            lambda s: s.join(s.tumbling_window(100).mean(), lambda v, m: v - m)
        )
        # select/aggregate/join reference the same underlying source spec, so
        # the join's two branches share a node rather than duplicating it.
        assert query.operator_count() == 2  # aggregate + join

    def test_multicast_requires_callable(self):
        with pytest.raises(QueryConstructionError):
            Query.source("s", frequency_hz=500).multicast("not callable")

    def test_multicast_must_return_query(self):
        with pytest.raises(QueryConstructionError):
            Query.source("s", frequency_hz=500).multicast(lambda s: 42)

    def test_windowed_builder_exposes_standard_aggregates(self):
        windowed = Query.source("s", frequency_hz=500).tumbling_window(100)
        for method in ("mean", "sum", "max", "min", "std", "count", "first", "last"):
            query = getattr(windowed, method)()
            assert query.operator_count() == 1

    def test_repr_mentions_sources(self):
        query = Query.source("ecg", frequency_hz=500).select(lambda v: v)
        assert "ecg" in repr(query)


class TestValidationAtCompileTime:
    def test_missing_source_detected(self, engine):
        query = Query.source("ecg", frequency_hz=500).select(lambda v: v)
        with pytest.raises(QueryConstructionError, match="ecg"):
            engine.compile(query, sources={})

    def test_mismatched_declared_period_detected(self, engine, ramp_125hz):
        query = Query.source("ecg", frequency_hz=500).select(lambda v: v)
        with pytest.raises(QueryConstructionError, match="period"):
            engine.compile(query, sources={"ecg": ramp_125hz})

    def test_bound_source_needs_no_mapping(self, engine, ramp_500hz):
        query = Query.from_source(ramp_500hz).select(lambda v: v * 2)
        result = engine.run(query)
        assert len(result) == ramp_500hz.event_count()


class TestConcurrentNaming:
    def test_node_names_unique_across_threads(self):
        """The itertools.count-based allocator never hands out duplicate names."""
        import threading

        names: list[str] = []
        lock = threading.Lock()

        def build(count: int) -> None:
            local = [
                Query.source("s", frequency_hz=500).select(lambda v: v).spec.name
                for _ in range(count)
            ]
            with lock:
                names.extend(local)

        threads = [threading.Thread(target=build, args=(200,)) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(names) == len(set(names)) == 1600
