"""Unit tests for AlterPeriod (resampling) and Chop."""

import numpy as np
import pytest

from repro.core.query import Query
from repro.errors import QueryConstructionError


class TestAlterPeriodUpsample:
    def test_hold_upsampling_repeats_values(self, engine, ramp_125hz):
        query = Query.source("s", frequency_hz=125).alter_period(2, mode="hold")
        result = engine.run(query, sources={"s": ramp_125hz})
        assert len(result) == ramp_125hz.event_count() * 4
        np.testing.assert_array_equal(result.values[:8], [0, 0, 0, 0, 1, 1, 1, 1])

    def test_upsampled_times_are_on_new_grid(self, engine, ramp_125hz):
        query = Query.source("s", frequency_hz=125).alter_period(2, mode="hold")
        result = engine.run(query, sources={"s": ramp_125hz})
        assert np.all(np.diff(result.times) == 2)

    def test_interpolated_upsampling_is_linear(self, engine, ramp_125hz):
        query = Query.source("s", frequency_hz=125).resample(frequency_hz=500)
        result = engine.run(query, sources={"s": ramp_125hz})
        # Values ramp 0, 1, 2, ... at 8-tick spacing; interpolating to 2-tick
        # spacing gives increments of 0.25 inside each original interval.
        np.testing.assert_allclose(result.values[:9], np.arange(9) * 0.25)

    def test_durations_become_new_period(self, engine, ramp_125hz):
        query = Query.source("s", frequency_hz=125).alter_period(2, mode="hold")
        result = engine.run(query, sources={"s": ramp_125hz})
        assert np.all(result.durations == 2)

    def test_same_period_is_identity(self, engine, ramp_500hz):
        query = Query.source("s", frequency_hz=500).alter_period(2)
        result = engine.run(query, sources={"s": ramp_500hz})
        np.testing.assert_array_equal(result.times, ramp_500hz.times)
        np.testing.assert_allclose(result.values, ramp_500hz.values)


class TestAlterPeriodDownsample:
    def test_downsampling_keeps_every_nth_event(self, engine, ramp_500hz):
        query = Query.source("s", frequency_hz=500).alter_period(8)
        result = engine.run(query, sources={"s": ramp_500hz})
        assert len(result) == ramp_500hz.event_count() // 4
        np.testing.assert_allclose(result.values, ramp_500hz.values[::4])

    def test_downsampled_times_are_on_new_grid(self, engine, ramp_500hz):
        query = Query.source("s", frequency_hz=500).alter_period(8)
        result = engine.run(query, sources={"s": ramp_500hz})
        assert np.all(result.times % 8 == 0)

    def test_non_divisible_periods_fall_back_to_sampling(self, engine, ramp_500hz):
        # 2 -> 5 ticks is neither an integer up- nor down-sampling factor.
        query = Query.source("s", frequency_hz=500).alter_period(5)
        result = engine.run(query, sources={"s": ramp_500hz})
        assert np.all(result.times % 5 == 0)
        assert len(result) > 0


class TestResampleValidation:
    def test_resample_requires_exactly_one_target(self):
        with pytest.raises(QueryConstructionError):
            Query.source("s", frequency_hz=500).resample()
        with pytest.raises(QueryConstructionError):
            Query.source("s", frequency_hz=500).resample(period=2, frequency_hz=500)

    def test_invalid_mode_rejected(self):
        with pytest.raises(QueryConstructionError):
            Query.source("s", frequency_hz=500).alter_period(4, mode="cubic")

    def test_non_positive_period_rejected(self):
        with pytest.raises(QueryConstructionError):
            Query.source("s", frequency_hz=500).alter_period(0)


class TestChop:
    def test_chop_splits_long_duration_events(self, engine, ramp_500hz):
        # Aggregate to 100-tick events (duration 100), then chop back to the
        # original 2-tick grid: every aggregate value appears 50 times.
        query = Query.source("s", frequency_hz=500).tumbling_window(100).mean().chop(2)
        result = engine.run(query, sources={"s": ramp_500hz})
        assert len(result) == ramp_500hz.event_count()
        np.testing.assert_allclose(result.values[:50], 24.5)
        np.testing.assert_allclose(result.values[50:100], 74.5)

    def test_chop_durations_equal_chop_period(self, engine, ramp_500hz):
        query = Query.source("s", frequency_hz=500).tumbling_window(100).mean().chop(2)
        result = engine.run(query, sources={"s": ramp_500hz})
        assert np.all(result.durations == 2)

    def test_chop_same_period_is_identity_on_values(self, engine, ramp_500hz):
        query = Query.source("s", frequency_hz=500).chop(2)
        result = engine.run(query, sources={"s": ramp_500hz})
        np.testing.assert_allclose(result.values, ramp_500hz.values)

    def test_chop_rejects_bad_period(self):
        with pytest.raises(QueryConstructionError):
            Query.source("s", frequency_hz=500).chop(-1)
