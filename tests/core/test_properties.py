"""Property-based tests (hypothesis) for the engine's core invariants.

These check the structural properties the paper's optimisations rely on:
the linearity of temporal operators, the bounded memory footprint, interval
algebra laws, and the equivalence of targeted and eager execution.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.compiler import compile_plan
from repro.core.engine import LifeStreamEngine
from repro.core.intervals import IntervalSet
from repro.core.query import Query
from repro.core.sources import ArraySource
from repro.core.timeutil import LinearTimeMap

# -- strategies -------------------------------------------------------------

intervals_strategy = st.lists(
    st.tuples(st.integers(0, 500), st.integers(0, 500)).map(lambda p: (min(p), max(p))),
    max_size=8,
)

periods = st.sampled_from([1, 2, 4, 5, 8, 10])


def gappy_stream(draw, period: int, max_events: int = 400):
    """Draw a sorted, gappy periodic stream as (times, values)."""
    present = draw(
        st.lists(st.booleans(), min_size=1, max_size=max_events).filter(lambda bits: any(bits))
    )
    indices = np.flatnonzero(np.asarray(present, dtype=bool))
    times = indices.astype(np.int64) * period
    values = np.asarray(draw(
        st.lists(
            st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False),
            min_size=len(indices),
            max_size=len(indices),
        )
    ), dtype=np.float64)
    return times, values


@st.composite
def periodic_stream(draw, period=None):
    chosen_period = period if period is not None else draw(periods)
    times, values = gappy_stream(draw, chosen_period)
    return chosen_period, times, values


# -- interval algebra -------------------------------------------------------


class TestIntervalSetProperties:
    @given(intervals_strategy, intervals_strategy)
    def test_intersection_is_subset_of_both(self, a, b):
        left, right = IntervalSet(a), IntervalSet(b)
        intersection = left.intersect(right)
        assert intersection.total_length() <= left.total_length()
        assert intersection.total_length() <= right.total_length()
        assert intersection.intersect(left) == intersection
        assert intersection.intersect(right) == intersection

    @given(intervals_strategy, intervals_strategy)
    def test_union_length_inclusion_exclusion(self, a, b):
        left, right = IntervalSet(a), IntervalSet(b)
        union = left.union(right)
        intersection = left.intersect(right)
        assert (
            union.total_length()
            == left.total_length() + right.total_length() - intersection.total_length()
        )

    @given(intervals_strategy, intervals_strategy)
    def test_difference_disjoint_from_subtrahend(self, a, b):
        left, right = IntervalSet(a), IntervalSet(b)
        difference = left.difference(right)
        assert difference.intersect(right).is_empty()
        assert difference.union(left.intersect(right)) == left

    @given(intervals_strategy, st.integers(-1000, 1000))
    def test_shift_preserves_length(self, a, offset):
        interval_set = IntervalSet(a)
        assert interval_set.shift(offset).total_length() == interval_set.total_length()

    @given(intervals_strategy, st.integers(1, 50))
    def test_window_iteration_covers_every_interval(self, a, window):
        interval_set = IntervalSet(a)
        starts = list(interval_set.iter_windows(window))
        assert starts == sorted(set(starts))
        for start, end in interval_set:
            for t in range(start, end):
                assert any(w <= t < w + window for w in starts)


# -- linear time maps --------------------------------------------------------


class TestLinearTimeMapProperties:
    @given(st.integers(-10_000, 10_000), st.integers(-500, 500), st.integers(-500, 500))
    def test_shift_composition_is_additive(self, t, a, b):
        composed = LinearTimeMap.shifted(a).compose(LinearTimeMap.shifted(b))
        assert composed.apply(t) == t + a + b

    @given(st.integers(-10_000, 10_000), st.integers(1, 20), st.integers(-500, 500))
    def test_invert_round_trips(self, t, scale, shift):
        time_map = LinearTimeMap.scaled(scale).compose(LinearTimeMap.shifted(shift))
        assert time_map.invert().apply(time_map.apply(t)) == t


# -- engine-level invariants ---------------------------------------------------


class TestEngineProperties:
    @settings(max_examples=25, deadline=None)
    @given(periodic_stream(period=2))
    def test_select_preserves_event_count_and_times(self, stream):
        period, times, values = stream
        source = ArraySource(times, values, period=period)
        engine = LifeStreamEngine(window_size=64)
        result = engine.run(
            Query.source("s", period=period).select(lambda v: v * 2), sources={"s": source}
        )
        np.testing.assert_array_equal(result.times, times)
        np.testing.assert_allclose(result.values, values * 2)

    @settings(max_examples=25, deadline=None)
    @given(periodic_stream())
    def test_where_output_is_subset(self, stream):
        period, times, values = stream
        source = ArraySource(times, values, period=period)
        engine = LifeStreamEngine(window_size=80)
        result = engine.run(
            Query.source("s", period=period).where(lambda v: v > 0), sources={"s": source}
        )
        assert set(result.times.tolist()) <= set(times.tolist())
        assert np.all(result.values > 0)

    @settings(max_examples=20, deadline=None)
    @given(periodic_stream(period=2), periodic_stream(period=8))
    def test_targeted_and_eager_execution_agree(self, fine, coarse):
        _, fine_times, fine_values = fine
        _, coarse_times, coarse_values = coarse
        ecg = ArraySource(fine_times, fine_values, period=2)
        abp = ArraySource(coarse_times, coarse_values, period=8)
        query = Query.source("ecg", period=2).join(
            Query.source("abp", period=8), lambda l, r: l + r
        )
        engine = LifeStreamEngine(window_size=128)
        targeted = engine.run(query, sources={"ecg": ecg, "abp": abp}, targeted=True)
        eager = engine.run(query, sources={"ecg": ecg, "abp": abp}, targeted=False)
        np.testing.assert_array_equal(targeted.times, eager.times)
        np.testing.assert_allclose(targeted.values, eager.values)

    @settings(max_examples=20, deadline=None)
    @given(periodic_stream(period=2), periodic_stream(period=8))
    def test_inner_join_output_bounded_by_left_input(self, fine, coarse):
        _, fine_times, fine_values = fine
        _, coarse_times, coarse_values = coarse
        ecg = ArraySource(fine_times, fine_values, period=2)
        abp = ArraySource(coarse_times, coarse_values, period=8)
        query = Query.source("ecg", period=2).join(Query.source("abp", period=8))
        engine = LifeStreamEngine(window_size=128)
        result = engine.run(query, sources={"ecg": ecg, "abp": abp})
        # The bounded-footprint property: the join cannot invent events.
        assert len(result) <= fine_times.size
        assert set(result.times.tolist()) <= set(fine_times.tolist())

    @settings(max_examples=15, deadline=None)
    @given(periodic_stream(period=2), st.integers(1, 8))
    def test_memory_plan_independent_of_data_volume(self, stream, repetitions):
        period, times, values = stream
        short = ArraySource(times, values, period=period)
        long_times = np.concatenate(
            [times + k * (int(times[-1]) + period) for k in range(repetitions)]
        )
        long_values = np.tile(values, repetitions)
        long = ArraySource(long_times, long_values, period=period)
        query = Query.source("s", period=period).tumbling_window(16).mean()
        short_plan = compile_plan(query, {"s": short}, window_size=64)
        long_plan = compile_plan(query, {"s": long}, window_size=64)
        assert short_plan.memory_plan.total_bytes == long_plan.memory_plan.total_bytes
