"""Unit and property tests for run-lowered (vectorized) execution.

Covers the coverage → run conversion (maximal, disjoint, exactly tiling the
targeted window starts), the zero-copy run-buffer subwindow views, the plan
analysis that gates lowering, and the streaming-session parity guarantee
(tick-by-tick vectorized execution is bit-identical to a one-shot serial
run over the same data).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import LifeStreamEngine
from repro.core.event import StreamDescriptor
from repro.core.fwindow import FWindow
from repro.core.intervals import IntervalSet
from repro.core.query import Query
from repro.core.runtime import SerialBackend, VectorizedBackend
from repro.core.runtime.vectorized import (
    plan_vector_info,
    runs_for_coverage,
    runs_for_starts,
)
from repro.core.sources import ArraySource, ReplaySource
from repro.errors import ExecutionError, MemoryPlanError

# -- strategies -------------------------------------------------------------

intervals_strategy = st.lists(
    st.tuples(st.integers(0, 2000), st.integers(1, 200)).map(
        lambda p: (p[0], p[0] + p[1])
    ),
    max_size=10,
)

windows = st.sampled_from([1, 3, 10, 64, 100])
offsets = st.integers(-50, 50)
caps = st.one_of(st.none(), st.integers(1, 7))


# -- coverage -> runs -------------------------------------------------------


class TestRunsForCoverage:
    @given(intervals_strategy, windows, offsets, caps)
    @settings(max_examples=200)
    def test_runs_tile_exactly_the_targeted_starts(self, pairs, window, offset, cap):
        coverage = IntervalSet(pairs)
        runs = runs_for_coverage(coverage, window, offset, cap)
        tiled = [
            start + k * window for start, count in runs for k in range(count)
        ]
        assert tiled == list(coverage.iter_windows(window, offset))

    @given(intervals_strategy, windows, offsets)
    @settings(max_examples=200)
    def test_runs_are_maximal_and_disjoint(self, pairs, window, offset):
        coverage = IntervalSet(pairs)
        runs = runs_for_coverage(coverage, window, offset)
        for (start, count), (next_start, _) in zip(runs, runs[1:]):
            # Disjoint and ordered: the next run starts after this one ends.
            assert next_start >= start + count * window
            # Maximal: adjacent runs are never contiguous (a contiguous pair
            # would have been one run).
            assert next_start != start + count * window

    @given(intervals_strategy, windows, offsets, st.integers(1, 7))
    @settings(max_examples=200)
    def test_capped_runs_respect_the_cap(self, pairs, window, offset, cap):
        coverage = IntervalSet(pairs)
        runs = runs_for_coverage(coverage, window, offset, cap)
        assert all(1 <= count <= cap for _, count in runs)
        # Only cap-length runs may be followed contiguously (the split).
        for (start, count), (next_start, _) in zip(runs, runs[1:]):
            if next_start == start + count * window:
                assert count == cap

    def test_empty_coverage_yields_no_runs(self):
        assert runs_for_coverage(IntervalSet(), 100) == []

    def test_known_grouping(self):
        starts = [0, 100, 200, 500, 600, 900]
        assert runs_for_starts(starts, 100) == [(0, 3), (500, 2), (900, 1)]
        assert runs_for_starts(starts, 100, max_run_windows=2) == [
            (0, 2),
            (200, 1),
            (500, 2),
            (900, 1),
        ]

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ExecutionError):
            runs_for_starts([0], 0)
        with pytest.raises(ExecutionError):
            runs_for_starts([0], 100, max_run_windows=0)


# -- run-buffer subwindow views ---------------------------------------------


class TestSubwindowViews:
    def _run_buffer(self, count=4, dim=100, period=10):
        window = FWindow(
            StreamDescriptor(offset=0, period=period),
            dim * count,
            name="run",
            monotonic=False,
        )
        window.slide_to(1000)
        return window

    def test_views_alias_the_run_buffer(self):
        run = self._run_buffer()
        view = run.subwindow(1, 4)
        assert view.capacity == run.capacity // 4
        assert view.sync_time == run.sync_time + 100
        view.values[:] = 7.0
        view.bitvector[:] = True
        lo = view.capacity
        assert np.all(run.values[lo : 2 * lo] == 7.0)
        assert np.all(run.bitvector[lo : 2 * lo])
        # Slots outside the view are untouched.
        assert not run.bitvector[:lo].any()

    def test_views_cover_the_buffer_without_overlap(self):
        run = self._run_buffer(count=5)
        for index in range(5):
            view = run.subwindow(index, 5)
            view.values[:] = float(index)
        assert np.array_equal(
            run.values.reshape(5, -1)[:, 0], np.arange(5, dtype=float)
        )

    def test_invalid_splits_rejected(self):
        run = self._run_buffer(count=4)
        with pytest.raises(MemoryPlanError):
            run.subwindow(0, 0)
        with pytest.raises(MemoryPlanError):
            run.subwindow(4, 4)
        with pytest.raises(MemoryPlanError):
            run.subwindow(0, 3)  # does not divide capacity


# -- plan analysis ----------------------------------------------------------


def _gappy_source(n=12000, period=2, seed=7):
    rng = np.random.default_rng(seed)
    times = np.arange(n, dtype=np.int64) * period
    keep = np.ones(n, dtype=bool)
    for start in rng.integers(0, n - 500, size=4):
        keep[start : start + int(rng.integers(100, 400))] = False
    values = np.sin(np.arange(n) * 0.01) * 10
    return ArraySource(times[keep], values[keep], period=period)


class TestPlanAnalysis:
    def test_elementwise_plan_fully_lowers(self):
        engine = LifeStreamEngine(window_size=1000)
        compiled = engine.compile(
            Query.source("s", frequency_hz=500).select(lambda v: v * 2),
            {"s": _gappy_source()},
        )
        info = plan_vector_info(compiled.plan)
        assert info.runnable
        assert info.worthwhile
        assert info.lowered_operators == info.operator_nodes > 0

    def test_clipjoin_only_plan_is_not_worthwhile(self):
        engine = LifeStreamEngine(window_size=1000)
        compiled = engine.compile(
            Query.source("s", frequency_hz=500).multicast(
                lambda s: s.clip_join(s, lambda a, b: a + b)
            ),
            {"s": _gappy_source()},
        )
        info = plan_vector_info(compiled.plan)
        assert info.runnable
        assert info.lowered_operators == 0
        assert not info.worthwhile


# -- session parity ---------------------------------------------------------


class TestSessionParity:
    @pytest.mark.parametrize("tick", [1000, 1700])
    def test_tickwise_vectorized_matches_oneshot_serial(self, tick):
        """Advancing a vectorized session tick-by-tick must reproduce the
        one-shot serial run bit for bit, carries included."""
        query = (
            Query.source("s", frequency_hz=500)
            .select(lambda v: v + 0.5)
            .shift(1000)
            .where(lambda v: np.abs(v) < 9)
        )
        reference = LifeStreamEngine(window_size=1000, backend=SerialBackend()).run(
            query, {"s": _gappy_source()}
        )

        engine = LifeStreamEngine(window_size=1000, backend=VectorizedBackend())
        session = engine.open_session(query, {"s": ReplaySource(_gappy_source())})
        end = 12000 * 2
        for watermark in range(tick, end + tick, tick):
            session.advance(watermark)
        session.finish()
        live = session.result()
        assert live.stats.execution_mode == "vectorized"
        session.close()

        np.testing.assert_array_equal(reference.times, live.times)
        np.testing.assert_array_equal(reference.values, live.values)
        np.testing.assert_array_equal(reference.durations, live.durations)

    def test_small_run_cap_sessions_stay_bit_identical(self):
        query = Query.source("s", frequency_hz=500).sliding_window(200, 100).max()
        reference = LifeStreamEngine(window_size=1000).run(query, {"s": _gappy_source()})
        engine = LifeStreamEngine(
            window_size=1000, backend=VectorizedBackend(max_run_windows=2)
        )
        session = engine.open_session(query, {"s": ReplaySource(_gappy_source())})
        session.finish()
        live = session.result()
        session.close()
        np.testing.assert_array_equal(reference.times, live.times)
        np.testing.assert_array_equal(reference.values, live.values)
        np.testing.assert_array_equal(reference.durations, live.durations)
