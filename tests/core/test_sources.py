"""Unit tests for stream sources (array, CSV, replay)."""

import numpy as np
import pytest

from repro.core.intervals import IntervalSet
from repro.core.sources import ArraySource, CsvSource, ReplaySource, write_csv
from repro.errors import StreamDefinitionError


class TestArraySource:
    def test_descriptor_from_period(self):
        source = ArraySource(np.array([0, 2, 4]), np.array([1.0, 2.0, 3.0]), period=2)
        assert source.descriptor.period == 2
        assert source.descriptor.offset == 0

    def test_offset_inferred_from_first_timestamp(self):
        source = ArraySource(np.array([6, 8, 10]), np.zeros(3), period=2)
        assert source.descriptor.offset == 0  # 6 % 2 == 0

        source = ArraySource(np.array([5, 13]), np.zeros(2), period=8)
        assert source.descriptor.offset == 5

    def test_misaligned_timestamps_rejected(self):
        with pytest.raises(StreamDefinitionError):
            ArraySource(np.array([0, 3]), np.zeros(2), period=2)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(StreamDefinitionError):
            ArraySource(np.array([0, 2]), np.zeros(3), period=2)

    def test_unsorted_input_is_sorted(self):
        source = ArraySource(np.array([4, 0, 2]), np.array([3.0, 1.0, 2.0]), period=2)
        np.testing.assert_array_equal(source.times, [0, 2, 4])
        np.testing.assert_array_equal(source.values, [1.0, 2.0, 3.0])

    def test_read_half_open_interval(self):
        source = ArraySource(np.arange(0, 20, 2), np.arange(10.0), period=2)
        times, values, durations = source.read(4, 10)
        np.testing.assert_array_equal(times, [4, 6, 8])
        np.testing.assert_array_equal(values, [2.0, 3.0, 4.0])
        assert np.all(durations == 2)

    def test_read_empty_region(self):
        source = ArraySource(np.arange(0, 20, 2), np.arange(10.0), period=2)
        times, _, _ = source.read(100, 200)
        assert times.size == 0

    def test_coverage_reflects_gaps(self):
        times = np.array([0, 2, 4, 100, 102])
        source = ArraySource(times, np.zeros(5), period=2)
        assert source.coverage() == IntervalSet([(0, 6), (100, 104)])

    def test_event_count(self):
        source = ArraySource(np.arange(0, 20, 2), np.zeros(10), period=2)
        assert source.event_count() == 10

    def test_from_frequency(self):
        source = ArraySource.from_frequency(np.array([0, 2]), np.zeros(2), frequency_hz=500)
        assert source.descriptor.period == 2


class TestCsvSource:
    def test_round_trip(self, tmp_path):
        times = np.arange(0, 100, 2)
        values = np.linspace(0.0, 1.0, 50)
        path = write_csv(tmp_path / "signal.csv", times, values)
        source = CsvSource(path, period=2)
        assert source.event_count() == 50
        read_times, read_values, _ = source.read(0, 100)
        np.testing.assert_array_equal(read_times, times)
        np.testing.assert_allclose(read_values, values)

    def test_coverage(self, tmp_path):
        times = np.array([0, 2, 4, 50, 52])
        path = write_csv(tmp_path / "gappy.csv", times, np.zeros(5))
        source = CsvSource(path, period=2)
        assert source.coverage() == IntervalSet([(0, 6), (50, 54)])


class TestReplaySource:
    def test_initial_watermark_hides_everything(self):
        inner = ArraySource(np.arange(0, 100, 2), np.arange(50.0), period=2)
        replay = ReplaySource(inner)
        assert replay.coverage().total_length() == 0

    def test_advance_exposes_prefix(self):
        inner = ArraySource(np.arange(0, 100, 2), np.arange(50.0), period=2)
        replay = ReplaySource(inner)
        replay.advance(50)
        times, _, _ = replay.read(0, 100)
        assert times.max() < 50
        assert replay.coverage().span() == (0, 50)

    def test_advance_to_end(self):
        inner = ArraySource(np.arange(0, 100, 2), np.arange(50.0), period=2)
        replay = ReplaySource(inner)
        replay.advance_to_end()
        times, _, _ = replay.read(0, 100)
        assert times.size == 50

    def test_watermark_cannot_move_backwards(self):
        inner = ArraySource(np.arange(0, 100, 2), np.arange(50.0), period=2)
        replay = ReplaySource(inner, watermark=50)
        with pytest.raises(StreamDefinitionError):
            replay.advance(10)
