"""Unit tests for stream sources (array, CSV, replay)."""

import numpy as np
import pytest

from repro.core.intervals import IntervalSet
from repro.core.sources import (
    ArraySource,
    CsvSource,
    PushSource,
    ReplaySource,
    write_csv,
)
from repro.errors import StreamDefinitionError


class TestArraySource:
    def test_descriptor_from_period(self):
        source = ArraySource(np.array([0, 2, 4]), np.array([1.0, 2.0, 3.0]), period=2)
        assert source.descriptor.period == 2
        assert source.descriptor.offset == 0

    def test_offset_inferred_from_first_timestamp(self):
        source = ArraySource(np.array([6, 8, 10]), np.zeros(3), period=2)
        assert source.descriptor.offset == 0  # 6 % 2 == 0

        source = ArraySource(np.array([5, 13]), np.zeros(2), period=8)
        assert source.descriptor.offset == 5

    def test_misaligned_timestamps_rejected(self):
        with pytest.raises(StreamDefinitionError):
            ArraySource(np.array([0, 3]), np.zeros(2), period=2)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(StreamDefinitionError):
            ArraySource(np.array([0, 2]), np.zeros(3), period=2)

    def test_unsorted_input_is_sorted(self):
        source = ArraySource(np.array([4, 0, 2]), np.array([3.0, 1.0, 2.0]), period=2)
        np.testing.assert_array_equal(source.times, [0, 2, 4])
        np.testing.assert_array_equal(source.values, [1.0, 2.0, 3.0])

    def test_read_half_open_interval(self):
        source = ArraySource(np.arange(0, 20, 2), np.arange(10.0), period=2)
        times, values, durations = source.read(4, 10)
        np.testing.assert_array_equal(times, [4, 6, 8])
        np.testing.assert_array_equal(values, [2.0, 3.0, 4.0])
        assert np.all(durations == 2)

    def test_read_empty_region(self):
        source = ArraySource(np.arange(0, 20, 2), np.arange(10.0), period=2)
        times, _, _ = source.read(100, 200)
        assert times.size == 0

    def test_coverage_reflects_gaps(self):
        times = np.array([0, 2, 4, 100, 102])
        source = ArraySource(times, np.zeros(5), period=2)
        assert source.coverage() == IntervalSet([(0, 6), (100, 104)])

    def test_event_count(self):
        source = ArraySource(np.arange(0, 20, 2), np.zeros(10), period=2)
        assert source.event_count() == 10

    def test_duplicate_timestamps_rejected(self):
        # Regression: duplicates used to be silently kept, leaving two events
        # fighting over one FWindow grid slot.
        with pytest.raises(StreamDefinitionError, match="duplicate timestamp 10"):
            ArraySource(np.array([0, 10, 10, 20]), np.arange(4.0), period=10)

    def test_duplicate_timestamps_dedupe_last(self):
        source = ArraySource(
            np.array([0, 10, 10, 20]), np.array([1.0, 2.0, 3.0, 4.0]),
            period=10, dedupe="last",
        )
        np.testing.assert_array_equal(source.times, [0, 10, 20])
        np.testing.assert_array_equal(source.values, [1.0, 3.0, 4.0])

    def test_duplicate_timestamps_dedupe_first(self):
        # Stable sort: "first"/"last" refer to the order events were supplied,
        # even when the input is unsorted.
        source = ArraySource(
            np.array([20, 10, 10, 0]), np.array([1.0, 2.0, 3.0, 4.0]),
            period=10, dedupe="first",
        )
        np.testing.assert_array_equal(source.times, [0, 10, 20])
        np.testing.assert_array_equal(source.values, [4.0, 2.0, 1.0])

    def test_duplicate_timestamps_kept_without_validation(self):
        source = ArraySource(
            np.array([0, 10, 10, 20]), np.arange(4.0), period=10, validate=False
        )
        assert source.event_count() == 4

    def test_unknown_dedupe_policy_rejected(self):
        with pytest.raises(StreamDefinitionError, match="dedupe"):
            ArraySource(np.array([0, 10]), np.zeros(2), period=10, dedupe="mean")

    def test_dedupe_applies_to_durations(self):
        source = ArraySource(
            np.array([0, 10, 10]), np.array([1.0, 2.0, 3.0]), period=10,
            durations=np.array([10, 5, 7]), dedupe="last",
        )
        times, _, durations = source.read(0, 100)
        np.testing.assert_array_equal(times, [0, 10])
        np.testing.assert_array_equal(durations, [10, 7])

    def test_nonpositive_durations_rejected(self):
        # Regression: durations=[10, -5] used to be silently swallowed and
        # produced nonsense coverage.
        with pytest.raises(StreamDefinitionError, match="duration -5.*timestamp 10"):
            ArraySource(
                np.array([0, 10]), np.zeros(2), period=10,
                durations=np.array([10, -5]),
            )
        with pytest.raises(StreamDefinitionError, match="duration 0"):
            ArraySource(
                np.array([0, 10]), np.zeros(2), period=10,
                durations=np.array([0, 10]),
            )

    def test_nonpositive_durations_allowed_without_validation(self):
        source = ArraySource(
            np.array([0, 10]), np.zeros(2), period=10,
            durations=np.array([10, -5]), validate=False,
        )
        assert source.event_count() == 2

    def test_durations_shape_mismatch_rejected(self):
        with pytest.raises(StreamDefinitionError, match="durations"):
            ArraySource(
                np.array([0, 10]), np.zeros(2), period=10,
                durations=np.array([10, 10, 10]),
            )

    def test_from_frequency(self):
        source = ArraySource.from_frequency(np.array([0, 2]), np.zeros(2), frequency_hz=500)
        assert source.descriptor.period == 2


class TestCsvSource:
    def test_round_trip(self, tmp_path):
        times = np.arange(0, 100, 2)
        values = np.linspace(0.0, 1.0, 50)
        path = write_csv(tmp_path / "signal.csv", times, values)
        source = CsvSource(path, period=2)
        assert source.event_count() == 50
        read_times, read_values, _ = source.read(0, 100)
        np.testing.assert_array_equal(read_times, times)
        np.testing.assert_allclose(read_values, values)

    def test_coverage(self, tmp_path):
        times = np.array([0, 2, 4, 50, 52])
        path = write_csv(tmp_path / "gappy.csv", times, np.zeros(5))
        source = CsvSource(path, period=2)
        assert source.coverage() == IntervalSet([(0, 6), (50, 54)])

    @staticmethod
    def _write(tmp_path, text, name="signal.csv"):
        path = tmp_path / name
        path.write_text(text)
        return path

    def test_float_formatted_timestamps_accepted(self, tmp_path):
        # Regression: "10.0" (a pandas/Excel export artifact) used to crash
        # with a bare ValueError from int().
        path = self._write(tmp_path, "timestamp,value\n0.0,1.5\n10.0,2.5\n")
        source = CsvSource(path, period=10)
        times, values, _ = source.read(0, 100)
        np.testing.assert_array_equal(times, [0, 10])
        np.testing.assert_allclose(values, [1.5, 2.5])

    def test_non_integral_timestamp_names_offending_row(self, tmp_path):
        path = self._write(tmp_path, "timestamp,value\n0,1.0\n10.5,2.0\n")
        with pytest.raises(StreamDefinitionError, match=r"row 3.*'10\.5'"):
            CsvSource(path, period=10)

    def test_garbage_timestamp_names_offending_row(self, tmp_path):
        path = self._write(tmp_path, "timestamp,value\noops,1.0\n")
        with pytest.raises(StreamDefinitionError, match="row 2.*'oops'"):
            CsvSource(path, period=10)

    def test_garbage_value_names_offending_row(self, tmp_path):
        path = self._write(tmp_path, "timestamp,value\n0,1.0\n10,n/a\n")
        with pytest.raises(StreamDefinitionError, match="row 3.*'n/a'"):
            CsvSource(path, period=10)

    def test_blank_value_cells_skipped_and_counted(self, tmp_path):
        # Regression: a blank value cell used to crash with float("").
        path = self._write(
            tmp_path, "timestamp,value\n0,1.0\n10,\n20,3.0\n30\n,4.0\n"
        )
        source = CsvSource(path, period=10)
        assert source.skipped_rows == 3
        times, values, _ = source.read(0, 100)
        np.testing.assert_array_equal(times, [0, 20])
        np.testing.assert_allclose(values, [1.0, 3.0])

    def test_fully_blank_rows_ignored(self, tmp_path):
        path = self._write(tmp_path, "timestamp,value\n0,1.0\n,\n\n10,2.0\n")
        source = CsvSource(path, period=10)
        assert source.event_count() == 2
        assert source.skipped_rows == 0

    def test_dedupe_passthrough(self, tmp_path):
        path = self._write(tmp_path, "timestamp,value\n0,1.0\n10,2.0\n10,3.0\n")
        with pytest.raises(StreamDefinitionError, match="duplicate timestamp"):
            CsvSource(path, period=10)
        source = CsvSource(path, period=10, dedupe="last")
        np.testing.assert_allclose(source.read(0, 100)[1], [1.0, 3.0])


class TestReplaySource:
    def test_initial_watermark_hides_everything(self):
        inner = ArraySource(np.arange(0, 100, 2), np.arange(50.0), period=2)
        replay = ReplaySource(inner)
        assert replay.coverage().total_length() == 0

    def test_advance_exposes_prefix(self):
        inner = ArraySource(np.arange(0, 100, 2), np.arange(50.0), period=2)
        replay = ReplaySource(inner)
        replay.advance(50)
        times, _, _ = replay.read(0, 100)
        assert times.max() < 50
        assert replay.coverage().span() == (0, 50)

    def test_advance_to_end(self):
        inner = ArraySource(np.arange(0, 100, 2), np.arange(50.0), period=2)
        replay = ReplaySource(inner)
        replay.advance_to_end()
        times, _, _ = replay.read(0, 100)
        assert times.size == 50

    def test_watermark_cannot_move_backwards(self):
        inner = ArraySource(np.arange(0, 100, 2), np.arange(50.0), period=2)
        replay = ReplaySource(inner, watermark=50)
        with pytest.raises(StreamDefinitionError):
            replay.advance(10)


class TestPushSource:
    def test_starts_empty_and_grows_with_appends(self):
        push = PushSource(period=2)
        assert push.event_count() == 0
        assert push.coverage().is_empty()
        assert push.watermark == 0
        watermark = push.append(np.arange(0, 10, 2), np.arange(5.0))
        assert watermark == 10 and push.watermark == 10
        watermark = push.append(np.arange(10, 20, 2), np.arange(5.0, 10.0))
        assert watermark == 20
        assert push.event_count() == 10
        times, values, durations = push.read(0, 100)
        np.testing.assert_array_equal(times, np.arange(0, 20, 2))
        np.testing.assert_array_equal(values, np.arange(10.0))
        assert set(durations.tolist()) == {2}
        assert push.coverage().span() == (0, 20)

    def test_is_a_replay_source(self):
        # Sessions gate readiness on isinstance(source, ReplaySource); the
        # push path plugs in through that exact contract.
        assert isinstance(PushSource(period=2), ReplaySource)

    def test_read_never_exposes_beyond_watermark(self):
        push = PushSource(period=2)
        push.append(np.arange(0, 20, 2), np.arange(10.0))
        push._watermark = 10  # pretend only part is announced
        times, _, _ = push.read(0, 100)
        assert times.max() < 10

    def test_heartbeat_advance_without_data(self):
        push = PushSource(period=2)
        push.append(np.arange(0, 10, 2), np.arange(5.0))
        push.advance(600)  # "no data through 600"
        assert push.watermark == 600
        with pytest.raises(StreamDefinitionError, match="forward"):
            push.advance(10)
        # Appending later data after a silence is fine.
        push.append(np.asarray([600]), np.asarray([1.0]))
        assert push.watermark == 602

    def test_rejects_out_of_order_and_overlapping_batches(self):
        push = PushSource(period=2)
        push.append(np.arange(0, 10, 2), np.arange(5.0))
        with pytest.raises(StreamDefinitionError, match="time order"):
            push.append(np.asarray([4]), np.asarray([9.0]))
        with pytest.raises(StreamDefinitionError, match="time order"):
            push.append(np.asarray([8]), np.asarray([9.0]))  # duplicate of last
        with pytest.raises(StreamDefinitionError, match="strictly increasing"):
            push.append(np.asarray([20, 20]), np.asarray([1.0, 2.0]))

    def test_rejects_off_grid_and_bad_shapes(self):
        push = PushSource(period=2, offset=0)
        with pytest.raises(StreamDefinitionError, match="grid"):
            push.append(np.asarray([3]), np.asarray([1.0]))
        with pytest.raises(StreamDefinitionError, match="same shape"):
            push.append(np.asarray([2, 4]), np.asarray([1.0]))
        with pytest.raises(StreamDefinitionError, match="positive"):
            push.append(np.asarray([2]), np.asarray([1.0]), durations=np.asarray([0]))
        with pytest.raises(StreamDefinitionError, match="period must be positive"):
            PushSource(period=0)

    def test_empty_append_is_a_noop(self):
        push = PushSource(period=2)
        push.append(np.arange(0, 10, 2), np.arange(5.0))
        assert push.append(np.empty(0, dtype=np.int64), np.empty(0)) == 10
        assert push.event_count() == 5

    def test_explicit_durations_extend_coverage_and_watermark(self):
        push = PushSource(period=4)
        push.append(np.asarray([0, 4]), np.asarray([1.0, 2.0]), durations=np.asarray([4, 12]))
        assert push.watermark == 16
        assert push.coverage().span() == (0, 16)

    def test_buffer_growth_preserves_history(self):
        push = PushSource(period=1)
        total = 5000  # forces several capacity doublings past the 1024 floor
        for start in range(0, total, 7):
            times = np.arange(start, min(start + 7, total), dtype=np.int64)
            push.append(times, times.astype(np.float64))
        times, values, _ = push.read(0, total)
        np.testing.assert_array_equal(times, np.arange(total))
        np.testing.assert_array_equal(values, np.arange(total, dtype=np.float64))

    def test_session_over_pushed_stream_matches_one_shot(self):
        # The core push-path guarantee: a session fed by incremental appends
        # emits bit-identically to a one-shot run over the same data.
        from repro.core.engine import LifeStreamEngine
        from repro.core.query import Query

        def query():
            return (
                Query.source("s", frequency_hz=500)
                .select(lambda v: v * 2 + 1)
                .sliding_window(200, 100)
                .mean()
            )

        n = 4000
        times = np.arange(n, dtype=np.int64) * 2
        values = np.sin(np.arange(n) * 0.01) * 10
        engine = LifeStreamEngine(window_size=1000)
        reference = engine.run(query(), {"s": ArraySource(times, values, period=2)})

        push = PushSource(period=2)
        session = engine.open_session(query(), {"s": push})
        for start in range(0, n, 333):
            stop = min(start + 333, n)
            push.append(times[start:stop], values[start:stop])
            session.poll()
        session.finish()
        result = session.result()
        np.testing.assert_array_equal(reference.times, result.times)
        np.testing.assert_array_equal(reference.values, result.values)
        np.testing.assert_array_equal(reference.durations, result.durations)
        session.close()
