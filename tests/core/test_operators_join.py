"""Unit tests for temporal Join and ClipJoin."""

import numpy as np
import pytest

from repro.core.engine import LifeStreamEngine
from repro.core.query import Query
from repro.errors import QueryConstructionError

from tests.conftest import make_source


class TestInnerJoin:
    def test_equal_rate_join_pairs_every_event(self, engine, ramp_500hz):
        other = make_source(5000, period=2, value_fn=lambda i: float(-i))
        query = Query.source("a", frequency_hz=500).join(
            Query.source("b", frequency_hz=500), lambda left, right: left + right
        )
        result = engine.run(query, sources={"a": ramp_500hz, "b": other})
        assert len(result) == 5000
        np.testing.assert_allclose(result.values, 0.0)

    def test_mixed_rate_join_uses_finer_grid(self, engine, ramp_500hz, ramp_125hz):
        query = Query.source("a", frequency_hz=500).join(
            Query.source("b", frequency_hz=125), lambda left, right: right
        )
        result = engine.run(query, sources={"a": ramp_500hz, "b": ramp_125hz})
        # Output events land on the 500 Hz grid (the finer one, Figure 5(c)).
        assert np.all(np.diff(result.times) == 2)
        # Each 125 Hz value is active for 8 ticks and therefore pairs with
        # four consecutive 500 Hz events.
        np.testing.assert_array_equal(result.values[:8], [0, 0, 0, 0, 1, 1, 1, 1])

    def test_figure5c_event_lineage(self, engine):
        # Reproduces Figure 5(c): left (0,1), right (0,2); output on (0,1)
        # pairing L_i with the right event active at its sync time.
        left = make_source(10, period=1)
        right = make_source(5, period=2, value_fn=lambda i: float(i * 10))
        query = Query.source("left", period=1).join(
            Query.source("right", period=2), lambda l, r: l * 100 + r
        )
        result = engine.run(query, sources={"left": left, "right": right})
        assert len(result) == 10
        expected_right = np.repeat(np.arange(5) * 10.0, 2)
        np.testing.assert_allclose(result.values, np.arange(10) * 100.0 + expected_right)

    def test_no_overlap_produces_empty_result(self, engine):
        left = make_source(100, period=2)
        right = make_source(100, period=2, offset=10_000)
        query = Query.source("a", frequency_hz=500).join(Query.source("b", frequency_hz=500))
        result = engine.run(query, sources={"a": left, "b": right})
        assert len(result) == 0

    def test_partial_overlap_only_joins_shared_region(self, engine, gappy_500hz, ramp_500hz):
        query = Query.source("a", frequency_hz=500).join(
            Query.source("b", frequency_hz=500), lambda left, right: left - right
        )
        result = engine.run(query, sources={"a": gappy_500hz, "b": ramp_500hz})
        assert len(result) == gappy_500hz.event_count()
        np.testing.assert_allclose(result.values, 0.0)

    def test_default_combiner_keeps_left_payload(self, engine, ramp_500hz, ramp_125hz):
        query = Query.source("a", frequency_hz=500).join(Query.source("b", frequency_hz=125))
        result = engine.run(query, sources={"a": ramp_500hz, "b": ramp_125hz})
        np.testing.assert_allclose(result.values, ramp_500hz.values[: len(result)])

    def test_long_duration_right_event_spans_fwindow_boundary(self):
        # Figure 8: an event whose duration crosses the FWindow boundary must
        # still join with left events in the next window (stateful join).
        engine = LifeStreamEngine(window_size=100)
        left = make_source(200, period=2)
        right_times = np.array([0, 90])
        right_values = np.array([1.0, 2.0])
        right_durations = np.array([10, 60])  # second event spans [90, 150)
        from repro.core.sources import ArraySource

        right = ArraySource(right_times, right_values, period=2, durations=right_durations)
        query = Query.source("a", frequency_hz=500).join(
            Query.source("b", frequency_hz=500), lambda l, r: r
        )
        result = engine.run(query, sources={"a": left, "b": right})
        # Left events at ticks 100..148 fall inside the second right event's
        # lifetime even though its sync time is in the previous window.
        in_second_window = result.times[(result.times >= 100) & (result.times < 150)]
        assert in_second_window.size == 25

    def test_unknown_join_kind_rejected(self):
        with pytest.raises(QueryConstructionError):
            Query.source("a", frequency_hz=500).join(
                Query.source("b", frequency_hz=500), how="cross"
            )

    def test_join_requires_query_argument(self):
        with pytest.raises(QueryConstructionError):
            Query.source("a", frequency_hz=500).join("not a query")


class TestLeftAndOuterJoin:
    def test_left_join_keeps_unmatched_left_events(self, engine, ramp_500hz):
        right = make_source(100, period=2)  # only covers the first 200 ticks
        query = Query.source("a", frequency_hz=500).left_join(
            Query.source("b", frequency_hz=500), lambda left, right: right, fill_value=-1.0
        )
        result = engine.run(query, sources={"a": ramp_500hz, "b": right})
        assert len(result) == ramp_500hz.event_count()
        assert np.all(result.values[100:] == -1.0)

    def test_outer_join_covers_union(self, engine):
        left = make_source(100, period=2)
        right = make_source(100, period=2, offset=400)
        query = Query.source("a", frequency_hz=500).outer_join(
            Query.source("b", frequency_hz=500), lambda l, r: np.where(np.isnan(l), r, l)
        )
        result = engine.run(query, sources={"a": left, "b": right})
        assert len(result) == 200

    def test_inner_join_is_subset_of_left_join(self, engine, gappy_500hz, ramp_500hz):
        inner = engine.run(
            Query.source("a", frequency_hz=500).join(Query.source("b", frequency_hz=500)),
            sources={"a": ramp_500hz, "b": gappy_500hz},
        )
        left = engine.run(
            Query.source("a", frequency_hz=500).left_join(Query.source("b", frequency_hz=500)),
            sources={"a": ramp_500hz, "b": gappy_500hz},
        )
        assert set(inner.times.tolist()) <= set(left.times.tolist())
        assert len(left) == ramp_500hz.event_count()


class TestClipJoin:
    def test_pairs_with_immediately_succeeding_event(self, engine):
        left = make_source(10, period=100)
        right = make_source(10, period=100, offset=50, value_fn=lambda i: float(i * 10))
        query = Query.source("a", period=100).clip_join(
            Query.source("b", period=100, offset=50), lambda l, r: r
        )
        result = engine.run(query, sources={"a": left, "b": right})
        # Left event at time 100*i is followed by right event at 100*i + 50
        # carrying value 10*i.
        assert len(result) >= 9
        np.testing.assert_allclose(result.values[: len(result)], 10.0 * np.arange(len(result)))

    def test_output_keeps_left_grid(self, engine):
        left = make_source(20, period=100)
        right = make_source(40, period=50, offset=0)
        query = Query.source("a", period=100).clip_join(Query.source("b", period=50))
        result = engine.run(query, sources={"a": left, "b": right})
        assert np.all(result.times % 100 == 0)

    def test_clip_join_requires_query_argument(self):
        with pytest.raises(QueryConstructionError):
            Query.source("a", frequency_hz=500).clip_join(42)
