"""Shared fixtures for the test suite.

The fixtures build small, deterministic streams so individual tests stay
fast; the larger, realistic workloads live in ``benchmarks/``.
"""

from __future__ import annotations

import asyncio
import inspect

import numpy as np
import pytest

from repro.core.engine import LifeStreamEngine
from repro.core.sources import ArraySource


@pytest.hookimpl(tryfirst=True)
def pytest_pyfunc_call(pyfuncitem):
    """Run ``async def`` tests on a fresh event loop.

    The environment has no pytest-asyncio, so this in-repo hook provides
    the equivalent: any coroutine test function is executed to completion
    via :func:`asyncio.run` (one new loop per test — no state leaks
    between tests), with its fixtures passed through unchanged.
    """
    if inspect.iscoroutinefunction(pyfuncitem.obj):
        kwargs = {
            name: pyfuncitem.funcargs[name]
            for name in pyfuncitem._fixtureinfo.argnames
        }
        asyncio.run(pyfuncitem.obj(**kwargs))
        return True
    return None


@pytest.fixture
def engine() -> LifeStreamEngine:
    """A LifeStream engine with a small window so tests exercise several windows."""
    return LifeStreamEngine(window_size=1000)


@pytest.fixture
def ramp_500hz() -> ArraySource:
    """A 500 Hz (period 2) stream of 5,000 events whose value equals its index."""
    n = 5000
    times = np.arange(n, dtype=np.int64) * 2
    values = np.arange(n, dtype=np.float64)
    return ArraySource(times, values, period=2)


@pytest.fixture
def sine_500hz() -> ArraySource:
    """A 500 Hz stream of 5,000 sine-wave samples."""
    n = 5000
    times = np.arange(n, dtype=np.int64) * 2
    values = np.sin(np.arange(n) * 0.01)
    return ArraySource(times, values, period=2)


@pytest.fixture
def ramp_125hz() -> ArraySource:
    """A 125 Hz (period 8) stream of 1,250 events whose value equals its index."""
    n = 1250
    times = np.arange(n, dtype=np.int64) * 8
    values = np.arange(n, dtype=np.float64)
    return ArraySource(times, values, period=8)


@pytest.fixture
def gappy_500hz() -> ArraySource:
    """A 500 Hz stream with a large burst gap in the middle (events 1000..2999 missing)."""
    n = 5000
    times = np.arange(n, dtype=np.int64) * 2
    values = np.arange(n, dtype=np.float64)
    keep = np.ones(n, dtype=bool)
    keep[1000:3000] = False
    return ArraySource(times[keep], values[keep], period=2)


def make_source(n: int, period: int, value_fn=None, offset: int = 0) -> ArraySource:
    """Helper used by tests that need custom stream shapes."""
    times = offset + np.arange(n, dtype=np.int64) * period
    if value_fn is None:
        values = np.arange(n, dtype=np.float64)
    else:
        values = np.asarray([value_fn(i) for i in range(n)], dtype=np.float64)
    return ArraySource(times, values, period=period, offset=offset)
