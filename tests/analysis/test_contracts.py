"""Operator-contract conformance: the built-in registry and a known liar."""

from repro.analysis.contracts import (
    OperatorCase,
    _apply,
    builtin_cases,
    check_contracts,
    check_operator_case,
    discover_operator_classes,
)
from repro.analysis.diagnostics import has_errors

from tests.analysis.conftest import LyingTail


class TestBuiltinRegistry:
    def test_every_registered_operator_conforms(self):
        # Acceptance criterion: the contract analyzer passes on every
        # in-repo operator — no over-claimed batch safety, no run-parity
        # violations, no snapshot/restore or warmup gaps.
        diagnostics = check_contracts()
        assert not has_errors(diagnostics), [d.render() for d in diagnostics]

    def test_every_discovered_operator_class_has_a_case(self):
        covered = {case.operator_cls for case in builtin_cases()}
        uncovered = [
            cls for cls in discover_operator_classes() if cls not in covered
        ]
        assert uncovered == [], (
            "operators without a conformance case (add an OperatorCase to "
            f"builtin_cases): {[c.__name__ for c in uncovered]}"
        )

    def test_uncovered_operators_would_be_reported_ls207(self):
        # Drop one case and the analyzer must flag the now-uncovered class.
        cases = [c for c in builtin_cases() if c.name != "Select"]
        diagnostics = check_contracts(cases)
        ls207 = [d for d in diagnostics if d.code == "LS207"]
        assert any(d.anchor == "Select" for d in ls207)


class TestLyingOperatorIsCaught:
    def test_batch_safe_over_claim_detected(self):
        case = OperatorCase(
            name="LyingTail",
            operator_cls=LyingTail,
            build=_apply(lambda q: q._apply(LyingTail())),
        )
        diagnostics = check_operator_case(case)
        ls201 = [d for d in diagnostics if d.code == "LS201"]
        assert len(ls201) == 1, [d.render() for d in diagnostics]
        assert ls201[0].severity == "error"
        assert ls201[0].anchor == "LyingTail"
        assert "batch_safe" in ls201[0].message
        # The lie is the only contract violation this operator commits.
        assert not [
            d for d in diagnostics if d.severity == "error" and d.code != "LS201"
        ], [d.render() for d in diagnostics]
