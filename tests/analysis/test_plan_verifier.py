"""Plan-verifier findings, the verify pass, and strict compilation."""

import pytest

from repro.analysis.plan_verifier import verify_compiled_plan
from repro.core.compiler import (
    FuseElementwisePass,
    LineagePass,
    LocalityPass,
    MemoryPass,
    NormalizePass,
    PassManager,
    VectorizePass,
    compile_plan,
)
from repro.core.query import Query
from repro.core.sources import ArraySource, ReplaySource
from repro.errors import PlanVerificationError

from tests.analysis.conftest import stretch_query_and_sources
from tests.conftest import make_source


class TestTimeScaling:
    def test_non_unit_scale_is_an_ls102_error_naming_the_node(self):
        query, sources = stretch_query_and_sources()
        plan = compile_plan(query, sources, window_size=96)
        findings = [d for d in plan.diagnostics if d.code == "LS102"]
        assert len(findings) == 1
        assert findings[0].severity == "error"
        # The anchor names the exact plan node, not just the operator class.
        node_names = {n.name for n in plan.sink.iter_nodes()}
        assert findings[0].anchor in node_names
        assert "scales time" in findings[0].message

    def test_strict_compile_raises_with_the_findings_attached(self):
        query, sources = stretch_query_and_sources()
        with pytest.raises(PlanVerificationError, match="LS102") as exc:
            compile_plan(query, sources, window_size=96, strict=True)
        assert any(d.code == "LS102" for d in exc.value.diagnostics)

    def test_strict_verifies_even_without_a_verify_pass(self):
        # A custom pipeline that omits the verify pass must not be a strict
        # bypass: compile_plan runs verification itself.
        manager = PassManager(
            [
                NormalizePass(),
                LineagePass(),
                LocalityPass(),
                FuseElementwisePass(),
                VectorizePass(),
                MemoryPass(),
            ]
        )
        query, sources = stretch_query_and_sources()
        with pytest.raises(PlanVerificationError, match="LS102"):
            compile_plan(query, sources, window_size=96, pass_manager=manager, strict=True)

    def test_explain_renders_the_diagnostics(self):
        query, sources = stretch_query_and_sources()
        plan = compile_plan(query, sources, window_size=96)
        text = plan.explain()
        assert "diagnostics:" in text
        assert "LS102" in text


class TestGridAndLiveness:
    def test_misaligned_join_grids_warn_ls103(self):
        query = Query.source("a", period=2).join(
            Query.source("b", period=2, offset=1), lambda a, b: a + b
        )
        sources = {
            "a": make_source(400, period=2),
            "b": make_source(400, period=2, offset=1),
        }
        plan = compile_plan(query, sources, window_size=96)
        findings = [d for d in plan.diagnostics if d.code == "LS103"]
        assert len(findings) == 1
        assert findings[0].severity == "warning"
        assert "never share a sync" in findings[0].message

    def test_aligned_join_grids_are_clean(self):
        query = Query.source("a", period=2).join(
            Query.source("b", period=4), lambda a, b: a + b
        )
        sources = {
            "a": make_source(400, period=2),
            "b": make_source(200, period=4),
        }
        plan = compile_plan(query, sources, window_size=96)
        assert not [d for d in plan.diagnostics if d.code == "LS103"]

    def test_mixed_live_and_static_sources_warn_ls107(self):
        live = ReplaySource(make_source(400, period=2), watermark=0)
        query = Query.source("a", period=2).join(
            Query.source("b", period=2), lambda a, b: a + b
        )
        plan = compile_plan(query, {"a": live, "b": make_source(400, period=2)}, window_size=96)
        findings = [d for d in plan.diagnostics if d.code == "LS107"]
        assert len(findings) == 1
        assert findings[0].severity == "warning"
        assert "b" in findings[0].anchor


class TestVerifyIsPure:
    def test_reverification_matches_the_pass_output(self):
        query, sources = stretch_query_and_sources()
        plan = compile_plan(query, sources, window_size=96)
        assert verify_compiled_plan(plan) == plan.diagnostics

    def test_verification_does_not_mutate_the_plan(self):
        query, sources = stretch_query_and_sources()
        plan = compile_plan(query, sources, window_size=96)
        before = plan.explain()
        verify_compiled_plan(plan)
        assert plan.explain() == before


class TestExamplePipelines:
    def test_fig9c_e2e_pipeline_is_strict_clean(self):
        # Acceptance criterion: the end-to-end pipeline compiles with zero
        # error-level diagnostics under strict=True.
        from repro.bench.workloads import e2e_dataset
        from repro.core.timeutil import period_from_hz
        from repro.pipelines.e2e import ABP_HZ, ECG_HZ, lifestream_e2e_query

        ecg, abp = e2e_dataset(duration_seconds=5.0, seed=0)
        sources = {
            "ecg": ArraySource(ecg[0], ecg[1], period=period_from_hz(ECG_HZ)),
            "abp": ArraySource(abp[0], abp[1], period=period_from_hz(ABP_HZ)),
        }
        plan = compile_plan(lifestream_e2e_query(), sources, strict=True)
        assert not [d for d in plan.diagnostics if d.severity == "error"]

    def test_clean_plan_reports_no_diagnostics(self):
        query = Query.source("s", period=2).select(lambda v: v * 2)
        plan = compile_plan(query, {"s": make_source(400, period=2)}, window_size=96)
        assert plan.diagnostics == []
        assert plan.pass_metadata["verify"] == "clean"


class TestInstantiateCarriesDiagnostics:
    def test_clone_shares_the_template_findings(self):
        query, sources = stretch_query_and_sources()
        plan = compile_plan(query, sources, window_size=96)
        clone = plan.instantiate({"s": make_source(512, period=2)})
        assert clone.diagnostics == plan.diagnostics
        assert any(d.code == "LS102" for d in clone.diagnostics)
