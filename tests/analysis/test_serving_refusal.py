"""Unsound plans never reach serving: cache, service, and strict engine."""

import pytest

from repro.core.compiler import compile_plan
from repro.core.engine import LifeStreamEngine
from repro.core.query import Query
from repro.errors import ExecutionError, PlanVerificationError
from repro.serve import PlanCache, StreamingService

from tests.analysis.conftest import stretch_query_and_sources
from tests.conftest import make_source


class TestPlanCacheRefusal:
    def test_error_diagnostic_template_is_refused(self):
        query, sources = stretch_query_and_sources()
        template = compile_plan(query, sources, window_size=96)
        assert any(d.severity == "error" for d in template.diagnostics)
        cache = PlanCache(capacity=4)
        cache.store(("key",), template)
        assert len(cache) == 0
        assert cache.stats.rejected == 1
        assert cache.lookup(("key",)) is None

    def test_clean_template_is_cached(self):
        query = Query.source("s", period=2).select(lambda v: v + 1)
        template = compile_plan(query, {"s": make_source(400, period=2)}, window_size=96)
        cache = PlanCache(capacity=4)
        cache.store(("key",), template)
        assert len(cache) == 1
        assert cache.stats.rejected == 0
        assert cache.lookup(("key",)) is template


class TestServiceRefusal:
    def test_open_refuses_plans_with_error_diagnostics(self):
        service = StreamingService(window_size=96)
        query, sources = stretch_query_and_sources()
        with pytest.raises(ExecutionError, match="refusing to serve.*LS102"):
            service.open("client-1", query, sources)
        # The refused client holds no session and can retry a fixed query.
        assert service.client_ids == []

    def test_open_serves_clean_plans(self):
        service = StreamingService(window_size=96)
        query = Query.source("s", period=2).select(lambda v: v + 1)
        session = service.open("client-1", query, {"s": make_source(400, period=2)})
        assert session is not None
        service.close("client-1")


class TestStrictEngine:
    def test_strict_engine_raises_at_compile_time(self):
        engine = LifeStreamEngine(window_size=96, strict=True)
        query, sources = stretch_query_and_sources()
        with pytest.raises(PlanVerificationError, match="LS102"):
            engine.compile(query, sources)

    def test_default_engine_compiles_but_carries_the_findings(self):
        engine = LifeStreamEngine(window_size=96)
        query, sources = stretch_query_and_sources()
        compiled = engine.compile(query, sources)
        assert any(d.code == "LS102" for d in compiled.plan.diagnostics)
