"""Async-safety linter: blocking calls, unawaited coroutines, unbounded queues."""

import textwrap

from repro.analysis.async_lint import lint_async_paths, lint_async_source
from repro.analysis.diagnostics import has_errors


def lint(snippet: str):
    return lint_async_source(textwrap.dedent(snippet), path="snippet.py")


def codes(snippet: str) -> list[str]:
    return [d.code for d in lint(snippet)]


class TestBlockingCalls:
    def test_time_sleep_in_async_def_is_ls301(self):
        findings = lint(
            """
            import time

            async def tick():
                time.sleep(1)
            """
        )
        assert [d.code for d in findings] == ["LS301"]
        assert findings[0].severity == "error"
        assert findings[0].anchor == "snippet.py:5"

    def test_open_builtin_in_async_def_is_ls301(self):
        assert codes(
            """
            async def load():
                with open("data.bin") as f:
                    return f.read()
            """
        ) == ["LS301"]

    def test_sync_pipe_recv_in_async_def_is_ls301(self):
        assert codes(
            """
            async def pull(conn):
                return conn.recv()
            """
        ) == ["LS301"]

    def test_time_sleep_in_sync_def_is_fine(self):
        assert codes(
            """
            import time

            def tick():
                time.sleep(1)
            """
        ) == []

    def test_nested_sync_def_inside_async_def_is_fine(self):
        # The nested function runs wherever it is called (e.g. an executor);
        # only the lexically-async body blocks the loop.
        assert codes(
            """
            import time

            async def outer():
                def worker():
                    time.sleep(1)
                return worker
            """
        ) == []


class TestUnawaitedCoroutines:
    def test_bare_asyncio_sleep_statement_is_ls302(self):
        assert codes(
            """
            import asyncio

            async def tick():
                asyncio.sleep(1)
            """
        ) == ["LS302"]

    def test_bare_call_to_module_local_async_def_is_ls302(self):
        assert codes(
            """
            async def drain():
                pass

            async def tick():
                drain()
            """
        ) == ["LS302"]

    def test_bare_self_call_to_async_method_is_ls302(self):
        assert codes(
            """
            class Gateway:
                async def drain(self):
                    pass

                async def tick(self):
                    self.drain()
            """
        ) == ["LS302"]

    def test_awaited_coroutine_is_fine(self):
        assert codes(
            """
            import asyncio

            async def tick():
                await asyncio.sleep(1)
            """
        ) == []

    def test_sync_method_sharing_an_async_name_is_fine(self):
        # source.advance is synchronous even though the module defines an
        # async def advance elsewhere; only self.advance() may be assumed
        # to hit the coroutine.
        assert codes(
            """
            async def advance():
                pass

            async def tick(source):
                source.advance(10)
            """
        ) == []


class TestUnboundedQueues:
    def test_unbounded_asyncio_queue_is_ls303(self):
        findings = lint(
            """
            import asyncio

            queue = asyncio.Queue()
            """
        )
        assert [d.code for d in findings] == ["LS303"]
        assert findings[0].severity == "warning"

    def test_explicit_zero_maxsize_is_still_unbounded(self):
        assert codes("import asyncio\nqueue = asyncio.Queue(maxsize=0)\n") == ["LS303"]

    def test_bounded_queue_is_fine(self):
        assert codes("import asyncio\nqueue = asyncio.Queue(maxsize=64)\n") == []

    def test_unbounded_deque_is_ls303(self):
        assert codes("from collections import deque\nbuf = deque()\n") == ["LS303"]

    def test_bounded_deque_is_fine(self):
        assert codes("from collections import deque\nbuf = deque(maxlen=8)\n") == []


class TestIngestTier:
    def test_repo_ingest_tier_has_no_error_findings(self):
        assert not has_errors(lint_async_paths())
