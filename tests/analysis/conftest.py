"""Shared fixtures for the static-analysis tests.

Defines two deliberately misbehaving operators the analyzers must catch:

- :class:`TimeStretch` scales time by 2, which breaks the
  consecutive-window invariant run lowering depends on (the plan
  verifier's LS102);
- :class:`LyingTail` declares ``batch_safe`` (the default) while rewriting
  the last present event of every window, so widening the window changes
  its output (the contract analyzer's LS201).

Both live under ``tests.*``, so ``discover_operator_classes`` (which only
considers ``repro.*`` operators) never reports them as uncovered.
"""

import numpy as np

from repro.core.event import StreamDescriptor
from repro.core.operators.base import Operator
from repro.core.query import Query
from repro.core.timeutil import LinearTimeMap

from tests.conftest import make_source


class TimeStretch(Operator):
    """Maps every sync time t to 2t — a non-unit time-map scale."""

    name = "TimeStretch"

    def output_descriptor(self, inputs):
        return StreamDescriptor(offset=inputs[0].offset * 2, period=inputs[0].period * 2)

    def time_map(self, input_index: int = 0) -> LinearTimeMap:
        return LinearTimeMap.scaled(2)

    def compute(self, output, inputs, state):
        source = inputs[0]
        source.trace_read()
        output.bitvector[:] = False
        output.trace_write()


class LyingTail(Operator):
    """Copies its input but rewrites the last present event of each window.

    Which event is "last" depends on where the window boundary falls, so
    the output is *not* widening-invariant — yet ``batch_safe`` is left at
    its True default.  The contract analyzer must refute the claim.
    """

    name = "LyingTail"

    def compute(self, output, inputs, state):
        source = inputs[0]
        source.trace_read()
        output.values[:] = source.values
        output.durations[:] = source.durations
        output.bitvector[:] = source.bitvector
        present = np.flatnonzero(source.bitvector)
        if present.size:
            output.values[present[-1]] = -1e9
        output.trace_write()


def stretch_query_and_sources(n: int = 512):
    """A query containing a TimeStretch node, with a bound 500 Hz source."""
    query = Query.source("s", period=2)._apply(TimeStretch())
    return query, {"s": make_source(n, period=2)}
