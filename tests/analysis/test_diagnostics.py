"""The diagnostic vocabulary: code stability, rendering, and counting."""

import json

import pytest

from repro.analysis.diagnostics import (
    CODES,
    SEVERITIES,
    Diagnostic,
    count_by_severity,
    has_errors,
    render_json,
    render_text,
    summarize,
)


class TestCodeStability:
    def test_released_codes_never_change(self):
        # Snapshot of every released diagnostic code.  Codes are public
        # surface (CI greps reports for them, docs reference them): adding a
        # new code extends this list; renumbering or removing one is a
        # breaking change this test is meant to veto.
        assert sorted(CODES) == [
            "LS101",
            "LS102",
            "LS103",
            "LS104",
            "LS105",
            "LS106",
            "LS107",
            "LS108",
            "LS201",
            "LS202",
            "LS203",
            "LS204",
            "LS205",
            "LS206",
            "LS207",
            "LS301",
            "LS302",
            "LS303",
            "LS401",
            "LS402",
            "LS403",
            "LS404",
            "LS405",
            "LS406",
        ]

    def test_every_code_has_a_title(self):
        assert all(CODES[code].strip() for code in CODES)

    def test_severity_order_is_most_severe_first(self):
        assert SEVERITIES == ("error", "warning", "info")


class TestDiagnostic:
    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError, match="unknown diagnostic code"):
            Diagnostic("LS999", "error", "nope")

    def test_unknown_severity_rejected(self):
        with pytest.raises(ValueError, match="unknown severity"):
            Diagnostic("LS101", "fatal", "nope")

    def test_render_includes_severity_code_and_anchor(self):
        d = Diagnostic("LS102", "error", "scales time", anchor="shift_3")
        assert d.render() == "error LS102 [shift_3]: scales time"

    def test_render_omits_empty_anchor(self):
        d = Diagnostic("LS108", "info", "no lowering")
        assert d.render() == "info LS108: no lowering"

    def test_to_dict_carries_the_code_title(self):
        d = Diagnostic("LS201", "error", "over-claim", anchor="Chop", check="contract")
        payload = d.to_dict()
        assert payload["code"] == "LS201"
        assert payload["anchor"] == "Chop"
        assert payload["check"] == "contract"
        assert payload["title"] == CODES["LS201"]


class TestReports:
    def _mixed(self):
        return [
            Diagnostic("LS108", "info", "c"),
            Diagnostic("LS101", "error", "a", anchor="n1"),
            Diagnostic("LS103", "warning", "b", anchor="n2"),
        ]

    def test_counts_and_error_detection(self):
        diagnostics = self._mixed()
        assert count_by_severity(diagnostics) == {"error": 1, "warning": 1, "info": 1}
        assert has_errors(diagnostics)
        assert not has_errors([Diagnostic("LS103", "warning", "b")])
        assert not has_errors([])

    def test_summarize(self):
        assert summarize([]) == "clean"
        assert summarize(self._mixed()) == "1 error(s), 1 warning(s), 1 info"

    def test_text_report_ranks_most_severe_first(self):
        lines = render_text(self._mixed()).splitlines()
        assert lines[0].startswith("error ")
        assert lines[1].startswith("warning ")
        assert lines[2].startswith("info ")
        assert lines[-1] == "1 error(s), 1 warning(s), 1 info"

    def test_json_report_round_trips(self):
        payload = json.loads(render_json(self._mixed(), extra={"checks": ["plan"]}))
        assert payload["counts"] == {"error": 1, "warning": 1, "info": 1}
        assert payload["checks"] == ["plan"]
        assert {d["code"] for d in payload["diagnostics"]} == {"LS101", "LS103", "LS108"}
