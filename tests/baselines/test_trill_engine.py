"""Tests for the Trill-like baseline engine (batches, operators, joins, OOM)."""

import numpy as np
import pytest

from repro.baselines.trill import (
    EventBatch,
    TrillChop,
    TrillClipJoin,
    TrillEngine,
    TrillInput,
    TrillJoin,
    TrillResample,
    TrillSelect,
    TrillShift,
    TrillTumblingAggregate,
    TrillWhere,
    TrillWindowTransform,
    batches_from_arrays,
    concatenate_batches,
)
from repro.errors import TrillOutOfMemoryError


def ramp_input(n: int, period: int, offset: int = 0) -> TrillInput:
    times = offset + np.arange(n, dtype=np.int64) * period
    values = np.arange(n, dtype=np.float64)
    return TrillInput(times, values, period)


class TestEventBatch:
    def test_batching_splits_and_preserves_order(self):
        times = np.arange(0, 100, 2)
        values = np.arange(50.0)
        batches = list(batches_from_arrays(times, values, batch_size=16, period=2))
        assert [len(batch) for batch in batches] == [16, 16, 16, 2]
        merged_times, merged_values = concatenate_batches(batches)
        np.testing.assert_array_equal(merged_times, times)
        np.testing.assert_allclose(merged_values, values)

    def test_empty_batch(self):
        batch = EventBatch.empty()
        assert batch.is_empty()
        assert batch.time_span() == (0, 0)

    def test_select_mask(self):
        batch = EventBatch(np.array([0, 2, 4]), np.array([2, 2, 2]), np.array([1.0, 2.0, 3.0]))
        filtered = batch.select(np.array([True, False, True]))
        assert len(filtered) == 2
        np.testing.assert_allclose(filtered.values, [1.0, 3.0])

    def test_concatenate_empty_list(self):
        times, values = concatenate_batches([])
        assert times.size == 0 and values.size == 0


class TestUnaryPipelines:
    def test_select(self):
        engine = TrillEngine(batch_size=64)
        times, values, stats = engine.run_unary(
            ramp_input(1000, 2), [TrillSelect(lambda v: v * 2)]
        )
        assert stats.events_ingested == 1000
        np.testing.assert_allclose(values, np.arange(1000.0) * 2)

    def test_where(self):
        engine = TrillEngine(batch_size=64)
        times, values, _ = engine.run_unary(
            ramp_input(1000, 2), [TrillWhere(lambda v: v < 100)]
        )
        assert values.max() < 100
        assert times.size == 100

    def test_shift(self):
        engine = TrillEngine(batch_size=64)
        times, _, _ = engine.run_unary(ramp_input(100, 2), [TrillShift(50)])
        np.testing.assert_array_equal(times, np.arange(100) * 2 + 50)

    def test_tumbling_aggregate_matches_numpy(self):
        engine = TrillEngine(batch_size=64)
        times, values, _ = engine.run_unary(
            ramp_input(1000, 2), [TrillTumblingAggregate(window=100, func="mean")]
        )
        assert times.size == 20
        expected = np.arange(1000.0).reshape(20, 50).mean(axis=1)
        np.testing.assert_allclose(values, expected)

    def test_aggregate_spanning_batch_boundary(self):
        # Window of 100 ticks = 50 events, batch size 16: every window spans
        # several batches and must still aggregate exactly once.
        engine = TrillEngine(batch_size=16)
        times, values, _ = engine.run_unary(
            ramp_input(500, 2), [TrillTumblingAggregate(window=100, func="sum")]
        )
        expected = np.arange(500.0).reshape(10, 50).sum(axis=1)
        np.testing.assert_allclose(values, expected)

    def test_chop_splits_durations(self):
        engine = TrillEngine(batch_size=8)
        source = TrillInput(np.array([0, 10]), np.array([1.0, 2.0]), period=10)
        times, values, _ = engine.run_unary(source, [TrillChop(2)])
        assert times.size == 10
        np.testing.assert_array_equal(times, np.arange(0, 20, 2))

    def test_resample_interpolates(self):
        engine = TrillEngine(batch_size=4096)
        times, values, _ = engine.run_unary(ramp_input(100, 8), [TrillResample(2)])
        assert np.all(np.diff(times) == 2)
        np.testing.assert_allclose(values[:5], [0.0, 0.25, 0.5, 0.75, 1.0])

    def test_window_transform(self):
        engine = TrillEngine(batch_size=64)

        def center(times, values):
            return times, values - values.mean()

        _, values, _ = engine.run_unary(ramp_input(500, 2), [TrillWindowTransform(100, center)])
        np.testing.assert_allclose(values[:50], np.arange(50.0) - 24.5)

    def test_operator_chain(self):
        engine = TrillEngine(batch_size=64)
        times, values, _ = engine.run_unary(
            ramp_input(200, 2),
            [TrillSelect(lambda v: v * 2), TrillWhere(lambda v: v % 4 == 0)],
        )
        assert np.all(values % 4 == 0)


class TestJoin:
    def test_equal_rate_join(self):
        engine = TrillEngine(batch_size=64)
        left = ramp_input(500, 2)
        right = ramp_input(500, 2)
        times, values, stats = engine.run_join(
            left, right, [], [], TrillJoin(lambda l, r: l - r)
        )
        assert times.size == 500
        np.testing.assert_allclose(values, 0.0)

    def test_mixed_rate_join_matches_lifestream_semantics(self):
        engine = TrillEngine(batch_size=64)
        left = ramp_input(400, 2)
        right = ramp_input(100, 8)
        times, values, _ = engine.run_join(left, right, [], [], TrillJoin(lambda l, r: r))
        assert times.size == 400
        np.testing.assert_array_equal(values[:8], [0, 0, 0, 0, 1, 1, 1, 1])

    def test_join_with_side_transforms(self):
        engine = TrillEngine(batch_size=64)
        left = ramp_input(400, 2)
        right = ramp_input(100, 8)
        times, values, _ = engine.run_join(
            left,
            right,
            [TrillSelect(lambda v: v * 10)],
            [TrillSelect(lambda v: v * 100)],
            TrillJoin(lambda l, r: l + r),
        )
        np.testing.assert_allclose(values[:4], [0.0, 10.0, 20.0, 30.0])

    def test_divergent_streams_grow_join_state(self):
        engine = TrillEngine(batch_size=32)
        # Left only covers the first quarter of the right stream's span, so
        # the right side keeps buffering while waiting for left progress.
        left = ramp_input(100, 2)
        right = ramp_input(4000, 2)
        join = TrillJoin()
        engine.run_join(left, right, [], [], join)
        assert join.peak_state_bytes > 0

    def test_out_of_memory_on_divergence(self):
        engine = TrillEngine(batch_size=32, memory_budget_bytes=10_000)
        left = TrillInput(np.array([0, 2]), np.array([1.0, 1.0]), period=2)
        right = ramp_input(20_000, 2)
        with pytest.raises(TrillOutOfMemoryError):
            engine.run_join(left, right, [], [], TrillJoin())

    def test_clip_join(self):
        engine = TrillEngine(batch_size=16)
        left = TrillInput(np.arange(0, 1000, 100), np.arange(10.0), period=100)
        right = TrillInput(np.arange(50, 1050, 100), np.arange(10.0) * 10, period=100)
        times, values, _ = engine.run_join(left, right, [], [], TrillClipJoin(lambda l, r: r))
        assert times.size == 10
        np.testing.assert_allclose(values, np.arange(10.0) * 10)


class TestDynamicAllocationBehaviour:
    def test_every_operator_output_is_a_fresh_allocation(self):
        from repro.memsim import AccessTracer

        tracer = AccessTracer(sample_stride=1)
        engine = TrillEngine(batch_size=64, tracer=tracer)
        engine.run_unary(ramp_input(1000, 2), [TrillSelect(lambda v: v, tracer=tracer)])
        # Ingest batches + select outputs: allocation count grows with the
        # number of batches, not with the number of buffers in the plan.
        assert tracer.allocation_count >= 2 * (1000 // 64)

    def test_throughput_property(self):
        engine = TrillEngine(batch_size=256)
        _, _, stats = engine.run_unary(ramp_input(5000, 2), [TrillSelect(lambda v: v)])
        assert stats.throughput_events_per_second > 0
