"""Tests for the distributed-style micro-batch engines (Table 1 stand-ins)."""

import numpy as np
import pytest

from repro.baselines.microbatch import ENGINE_CONFIGS, MicroBatchEngine


def small_join_workload():
    left_times = np.arange(0, 4000, 2)
    left_values = np.arange(left_times.size, dtype=np.float64)
    right_times = np.arange(0, 4000, 8)
    right_values = np.arange(right_times.size, dtype=np.float64)
    return left_times, left_values, right_times, right_values


class TestConfigs:
    def test_all_three_engines_exist(self):
        assert set(ENGINE_CONFIGS) == {"spark", "storm", "flink"}

    def test_from_name_rejects_unknown(self):
        with pytest.raises(ValueError):
            MicroBatchEngine.from_name("samza")


class TestTemporalJoin:
    @pytest.mark.parametrize("name", ["spark", "storm", "flink"])
    def test_join_output_is_correct(self, name):
        engine = MicroBatchEngine.from_name(name)
        left_times, left_values, right_times, right_values = small_join_workload()
        results, stats = engine.temporal_join(
            left_times, left_values, right_times, right_values, right_duration=8
        )
        assert len(results) == left_times.size
        # Each right value is active for 8 ticks and pairs with 4 left events.
        assert [r[2] for r in results[:8]] == [0, 0, 0, 0, 1, 1, 1, 1]
        assert stats.events_ingested == left_times.size + right_times.size

    def test_scheduling_overhead_reduces_throughput(self):
        left_times, left_values, right_times, right_values = small_join_workload()
        storm = MicroBatchEngine.from_name("storm")
        flink = MicroBatchEngine.from_name("flink")
        _, storm_stats = storm.temporal_join(
            left_times, left_values, right_times, right_values, 8
        )
        _, flink_stats = flink.temporal_join(
            left_times, left_values, right_times, right_values, 8
        )
        # Storm's record-at-a-time acking model is the slowest of the three
        # in Table 1; the reproduction preserves that ordering.
        assert storm_stats.throughput_events_per_second < flink_stats.throughput_events_per_second


class TestUpsample:
    def test_upsample_factor(self):
        engine = MicroBatchEngine.from_name("spark")
        times = np.arange(0, 400, 8)
        values = np.arange(times.size, dtype=np.float64)
        results, stats = engine.upsample(times, values, factor=4)
        assert len(results) == times.size * 4
        assert stats.events_emitted == len(results)
