"""Tests for the NumLib baseline (hand-written NumPy/SciPy operations)."""

import numpy as np
import pytest

from repro.baselines.numlib import (
    fill_const,
    fill_mean,
    normalize,
    passfilter,
    pure_python_inner_join,
    resample,
    run_e2e_pipeline,
    run_operation,
)
from repro.data.physio import generate_abp, generate_ecg


class TestNormalize:
    def test_each_window_is_standard_scored(self):
        values = np.arange(100.0)
        result = normalize(values, window_samples=50)
        first = result[:50]
        assert first.mean() == pytest.approx(0.0, abs=1e-12)
        assert first.std() == pytest.approx(1.0)

    def test_constant_window_maps_to_zero(self):
        result = normalize(np.full(20, 5.0), window_samples=10)
        np.testing.assert_allclose(result, 0.0)


class TestPassFilter:
    def test_attenuates_high_frequency(self):
        fs = 500.0
        t = np.arange(0, 4, 1 / fs)
        low = np.sin(2 * np.pi * 2 * t)
        high = 0.5 * np.sin(2 * np.pi * 120 * t)
        filtered = passfilter(low + high, numtaps=101, cutoff_hz=40, sample_rate_hz=fs)
        # After filtering, the high-frequency component should be mostly gone:
        # accounting for the FIR group delay of (numtaps - 1) / 2 samples the
        # filtered signal is close to the low-frequency component alone.
        delay = 50
        residual = np.abs(filtered[200 + delay : -200] - low[200 : -200 - delay]).mean()
        assert residual < 0.1


class TestFill:
    def test_fill_const_fills_small_gaps(self):
        times = np.array([0, 2, 4, 10, 12])
        values = np.array([1.0, 1.0, 1.0, 2.0, 2.0])
        new_times, new_values = fill_const(times, values, period=2, max_gap=10, constant=0.0)
        np.testing.assert_array_equal(new_times, [0, 2, 4, 6, 8, 10, 12])
        np.testing.assert_allclose(new_values[3:5], 0.0)

    def test_fill_mean_uses_neighbouring_values(self):
        times = np.array([0, 2, 8, 10])
        values = np.array([1.0, 1.0, 3.0, 3.0])
        _, new_values = fill_mean(times, values, period=2, max_gap=10)
        np.testing.assert_allclose(new_values, [1.0, 1.0, 2.0, 2.0, 3.0, 3.0])

    def test_large_gaps_left_alone(self):
        times = np.array([0, 2, 1000, 1002])
        values = np.array([1.0, 1.0, 2.0, 2.0])
        new_times, _ = fill_const(times, values, period=2, max_gap=10, constant=0.0)
        assert new_times.size == 4

    def test_short_input_passthrough(self):
        times = np.array([0])
        values = np.array([1.0])
        new_times, new_values = fill_mean(times, values, period=2, max_gap=10)
        np.testing.assert_array_equal(new_times, times)


class TestResample:
    def test_upsampling_factor(self):
        times = np.arange(0, 80, 8)
        values = np.arange(10.0)
        new_times, new_values = resample(times, values, new_period=2)
        assert np.all(np.diff(new_times) == 2)
        np.testing.assert_allclose(new_values[:5], [0.0, 0.25, 0.5, 0.75, 1.0])

    def test_empty_input(self):
        new_times, new_values = resample(np.array([], dtype=np.int64), np.array([]), 2)
        assert new_times.size == 0


class TestPurePythonJoin:
    def test_matches_overlapping_events(self):
        left_times = np.arange(0, 40, 2)
        left_values = np.arange(20.0)
        right_times = np.arange(0, 40, 8)
        right_values = np.arange(5.0) * 10
        times, lv, rv = pure_python_inner_join(
            left_times, left_values, right_times, right_values, right_duration=8
        )
        assert times.size == 20
        np.testing.assert_array_equal(rv[:8], [0, 0, 0, 0, 10, 10, 10, 10])

    def test_no_matches(self):
        times, lv, rv = pure_python_inner_join(
            np.array([0, 2]), np.array([1.0, 1.0]), np.array([100]), np.array([5.0]), 8
        )
        assert times.size == 0


class TestPipelines:
    def test_run_operation_dispatch(self):
        times, values = generate_ecg(10.0, seed=0)
        for name in ("normalize", "passfilter", "fillconst", "fillmean", "resample"):
            result, stats = run_operation(name, times, values, period=2)
            assert result.size > 0
            assert stats.elapsed_seconds >= 0

    def test_run_operation_unknown_name(self):
        with pytest.raises(ValueError):
            run_operation("fft", np.array([0]), np.array([1.0]), period=2)

    def test_e2e_pipeline_produces_joined_stream(self):
        ecg = generate_ecg(20.0, seed=0)
        abp = generate_abp(20.0, seed=1)
        times, values, stats = run_e2e_pipeline(ecg[0], ecg[1], abp[0], abp[1])
        assert times.size > 0
        assert stats.events_ingested == ecg[0].size + abp[0].size
        assert stats.throughput_events_per_second > 0
