"""Execution-backend comparison on the Figure 9(c) end-to-end workload.

Acceptance measurement for the pass-based compiler / pluggable-backend
refactor: ``BatchedBackend`` with the ``fuse_elementwise`` pass enabled
must be ≥ 1.3× faster than ``SerialBackend`` with rewriting passes
disabled, on the Figure 9(c) ECG+ABP dataset, with bit-identical outputs.

The pipeline runs at a one-second window (the live-monitoring
configuration, where per-window dispatch overhead is visible) and uses the
hold-mode resample variant of the Figure 3 pipeline: interpolating
resampling is window-extent-sensitive (its boundary clamping is visible in
the output), so it is exactly the case where the batched backend refuses to
widen — the hold variant is the strongest configuration where *identical
outputs* across window geometries is achievable at all.
"""

import numpy as np
import pytest

from benchmarks.conftest import get_report, timed_benchmark
from repro.bench.harness import compare_backends
from repro.bench.workloads import e2e_dataset
from repro.core.engine import LifeStreamEngine
from repro.core.runtime import BatchedBackend, VectorizedBackend
from repro.core.sources import ArraySource
from repro.core.timeutil import TICKS_PER_SECOND, period_from_hz
from repro.pipelines.e2e import ABP_HZ, ECG_HZ, lifestream_e2e_query

HEADERS = ["configuration", "seconds", "million events/s", "speedup vs serial-unfused"]

#: Batch factor: each batched dispatch covers 16 one-second windows.
BATCH_WINDOWS = 16
#: The acceptance threshold from the refactor issue.
REQUIRED_SPEEDUP = 1.3
#: The acceptance threshold for run-lowered execution: the vectorized
#: backend must beat unfused serial execution by at least this factor on
#: the same workload, with bit-identical outputs in both execution modes.
REQUIRED_VECTORIZED_SPEEDUP = 5.0


@pytest.fixture(scope="module")
def workload():
    ecg, abp = e2e_dataset(duration_seconds=240.0, seed=240)
    sources = {
        "ecg": ArraySource(ecg[0], ecg[1], period=period_from_hz(ECG_HZ)),
        "abp": ArraySource(abp[0], abp[1], period=period_from_hz(ABP_HZ)),
    }
    events = int(ecg[0].size + abp[0].size)
    return sources, events


def _compiled_queries(sources):
    query = lifestream_e2e_query(resample_mode="hold")
    serial_unfused = LifeStreamEngine(
        window_size=TICKS_PER_SECOND, optimization_level=0
    ).compile(query, sources)
    batched_fused = LifeStreamEngine(
        window_size=TICKS_PER_SECOND,
        optimization_level=2,
        backend=BatchedBackend(batch_windows=BATCH_WINDOWS),
    ).compile(query, sources)
    vectorized = LifeStreamEngine(
        window_size=TICKS_PER_SECOND,
        optimization_level=2,
        backend=VectorizedBackend(),
    ).compile(query, sources)
    return serial_unfused, batched_fused, vectorized


def test_outputs_bit_identical(benchmark, workload):
    sources, _ = workload
    serial_unfused, batched_fused, _ = _compiled_queries(sources)

    def run():
        return serial_unfused.run(), batched_fused.run()

    _, (reference, candidate) = timed_benchmark(benchmark, run)
    np.testing.assert_array_equal(reference.times, candidate.times)
    np.testing.assert_array_equal(reference.values, candidate.values)
    np.testing.assert_array_equal(reference.durations, candidate.durations)


def test_vectorized_bit_identical_targeted_and_eager(benchmark, workload):
    sources, _ = workload
    serial_unfused, _, vectorized = _compiled_queries(sources)

    def run():
        results = []
        for targeted in (True, False):
            reference = serial_unfused.run(targeted=targeted)
            candidate = vectorized.run(targeted=targeted)
            results.append((targeted, reference, candidate))
        return results

    _, results = timed_benchmark(benchmark, run)
    for targeted, reference, candidate in results:
        label = f"targeted={targeted}"
        # The whole plan must actually lower — a silent serial fallback
        # would make the parity assertion vacuous.
        assert candidate.stats.execution_mode == "vectorized", label
        np.testing.assert_array_equal(reference.times, candidate.times, err_msg=label)
        np.testing.assert_array_equal(reference.values, candidate.values, err_msg=label)
        np.testing.assert_array_equal(
            reference.durations, candidate.durations, err_msg=label
        )


def test_batched_fused_speedup(benchmark, report_registry, workload):
    sources, events = workload
    serial_unfused, batched_fused, _ = _compiled_queries(sources)
    # Warm both paths (the batched backend compiles its widened twin on
    # first use; that cost is per-compile, not per-run).
    serial_unfused.run()
    batched_fused.run()

    def measure_once(repeat):
        return compare_backends(
            "fig9c end-to-end (hold resample, 1 s windows)",
            lambda compiled: compiled.run(),
            {"serial-unfused": serial_unfused, "batched-fused": batched_fused},
            repeat=repeat,
            events=events,
        )

    _, comparison = timed_benchmark(benchmark, lambda: measure_once(5))
    speedup = comparison.speedup("batched-fused", "serial-unfused")
    if speedup < REQUIRED_SPEEDUP:
        # One retry with more trials to shed scheduler noise before failing.
        comparison = measure_once(9)
        speedup = comparison.speedup("batched-fused", "serial-unfused")

    report = get_report(
        report_registry,
        "backend_speedup",
        "Execution backends — Figure 9(c) workload, batched+fused vs serial",
        HEADERS,
    )
    for name, seconds, throughput in comparison.as_rows():
        row_speedup = comparison.speedup(name, "serial-unfused")
        report.record((name,), [name, seconds, throughput, row_speedup])
    report.note(
        f"batched({BATCH_WINDOWS})+fusion is {speedup:.2f}x serial-unfused "
        f"(required: >= {REQUIRED_SPEEDUP}x), outputs bit-identical."
    )
    assert speedup >= REQUIRED_SPEEDUP


def test_vectorized_speedup(benchmark, report_registry, workload):
    sources, events = workload
    serial_unfused, _, vectorized = _compiled_queries(sources)
    # Warm both paths (the vectorized backend builds its run schedule and
    # buffer pool on first use; that cost is per-plan, not per-run).
    serial_unfused.run()
    vectorized.run()

    def measure_once(repeat):
        return compare_backends(
            "fig9c end-to-end (hold resample, 1 s windows)",
            lambda compiled: compiled.run(),
            {"serial-unfused": serial_unfused, "vectorized": vectorized},
            repeat=repeat,
            events=events,
        )

    _, comparison = timed_benchmark(benchmark, lambda: measure_once(5))
    speedup = comparison.speedup("vectorized", "serial-unfused")
    if speedup < REQUIRED_VECTORIZED_SPEEDUP:
        # One retry with more trials to shed scheduler noise before failing.
        comparison = measure_once(9)
        speedup = comparison.speedup("vectorized", "serial-unfused")

    report = get_report(
        report_registry,
        "backend_speedup",
        "Execution backends — Figure 9(c) workload, batched+fused vs serial",
        HEADERS,
    )
    for name, seconds, throughput in comparison.as_rows():
        row_speedup = comparison.speedup(name, "serial-unfused")
        report.record((name,), [name, seconds, throughput, row_speedup])
    report.note(
        f"vectorized (run-lowered) is {speedup:.2f}x serial-unfused "
        f"(required: >= {REQUIRED_VECTORIZED_SPEEDUP}x), outputs bit-identical "
        f"in targeted and eager modes."
    )
    assert speedup >= REQUIRED_VECTORIZED_SPEEDUP
