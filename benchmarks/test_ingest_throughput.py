"""Ingest throughput at patient-level scale — the measured Figure 10(d).

The paper's scale-out claim (473.66M events/s on a 16-machine cluster)
is reproduced analytically by :mod:`repro.scaling.cluster`; this
benchmark replaces the *per-machine* leg of that argument with a real
measurement: one machine sustaining 1,000 concurrent push-based sessions
through the ingest worker pool, reporting ingested samples/s, emitted
events/s, and the p99 per-session tick latency.  A companion fast lane
runs the same workload at a smaller scale (including one mid-run worker
failover) so the measurement path is exercised on every CI run.

Results land in ``benchmarks/results/ingest_throughput.json`` via the
session report registry; CI uploads that file as a build artifact.
"""

import pytest

from benchmarks.conftest import get_report
from repro.pipelines.loadgen import run_gateway_load, run_pool_load

HEADERS = [
    "mode",
    "sessions",
    "samples/s",
    "events/s",
    "p99 tick ms",
    "mean tick ms",
    "failovers",
]

#: The headline scale: one thousand live sessions on one machine.
HEADLINE_SESSIONS = 1000
#: Fast-lane scale, small enough for the default CI lane.
SMOKE_SESSIONS = 48

#: Stream time generated per session (seconds); 500 Hz sampling.
DURATION_SECONDS = 2.0
#: Push rounds each run is chunked into (ticks per session ≈ rounds + 1).
ROUNDS = 4


def _report(registry):
    return get_report(
        registry,
        "ingest_throughput",
        "Ingest throughput — concurrent push-based sessions (measured)",
        HEADERS,
    )


def _record(report, label, result):
    report.record(
        (label, result.n_sessions),
        [
            label,
            result.n_sessions,
            round(result.samples_per_second, 1),
            round(result.events_per_second, 1),
            round(result.p99_tick_seconds * 1e3, 3),
            round(result.mean_tick_seconds * 1e3, 3),
            result.recoveries,
        ],
    )


def _check(result, n_sessions):
    assert result.n_sessions == n_sessions
    assert result.samples_pushed >= n_sessions * 500  # gappy 2 s @ 500 Hz
    # Every session's stream spans ~2 s = 8 tumbling windows; gaps can
    # empty a couple of windows but never most of them.
    assert result.events_emitted >= n_sessions * 4
    assert result.samples_per_second > 0
    assert result.tick_seconds, "no per-session tick latencies were collected"
    assert result.p99_tick_seconds >= result.mean_tick_seconds >= 0.0


def test_pool_smoke_with_failover(report_registry):
    """Fast lane: pool ingest survives a mid-run worker kill, measured."""
    result = run_pool_load(
        n_sessions=SMOKE_SESSIONS,
        n_workers=2,
        duration_seconds=DURATION_SECONDS,
        rounds=ROUNDS,
        kill_worker_round=1,
    )
    _check(result, SMOKE_SESSIONS)
    assert result.recoveries == 1
    _record(_report(report_registry), f"pool+failover ({result.execution_mode})", result)


def test_gateway_smoke(report_registry):
    """Fast lane: the asyncio gateway path, same workload shape."""
    result = run_gateway_load(
        n_sessions=SMOKE_SESSIONS,
        duration_seconds=DURATION_SECONDS,
        rounds=ROUNDS,
    )
    _check(result, SMOKE_SESSIONS)
    _record(_report(report_registry), "gateway", result)


@pytest.mark.slow
def test_pool_sustains_1k_concurrent_sessions(report_registry):
    """Headline: 1,000 concurrent sessions in worker-pool mode."""
    result = run_pool_load(
        n_sessions=HEADLINE_SESSIONS,
        n_workers=4,
        duration_seconds=DURATION_SECONDS,
        rounds=ROUNDS,
    )
    _check(result, HEADLINE_SESSIONS)
    assert result.recoveries == 0
    report = _report(report_registry)
    _record(report, f"pool ({result.execution_mode})", result)
    report.note(
        f"1k sessions: {result.samples_per_second / 1e3:.1f}k samples/s, "
        f"{result.events_per_second:.0f} events/s, "
        f"p99 tick {result.p99_tick_seconds * 1e3:.3f} ms "
        f"over {len(result.tick_seconds)} session ticks"
    )
