"""Figure 9(b) — operation benchmarks (Table 3 operations on a 500 Hz ECG).

Paper result: LifeStream is 5–11.2× faster than Trill on every operation,
within ~50% of the hand-tuned NumLib kernels, and actually beats NumLib on
Normalize (1.35×).  The reproduced claims: LifeStream beats the Trill-like
baseline on every operation and is in the same ballpark as NumLib.
"""

import pytest

from benchmarks.conftest import get_report, timed_benchmark
from repro.baselines.numlib.pipeline import run_operation as numlib_operation
from repro.baselines.trill import TrillEngine, TrillInput
from repro.bench.workloads import ecg_signal
from repro.core.engine import LifeStreamEngine
from repro.core.sources import ArraySource
from repro.ops.operations import OPERATION_NAMES, lifestream_operation, trill_operation

#: 500 Hz ECG events used for every operation (paper: 126M; scaled down).
N_EVENTS = 300_000
#: Processing window for windowed operations (one minute, as in the paper).
WINDOW = 60_000

HEADERS = ["operation", "engine", "events", "seconds", "million events/s"]


@pytest.fixture(scope="module")
def ecg():
    return ecg_signal(N_EVENTS, seed=0)


def _record(registry, key, benchmark, fn, events, rounds=1):
    report = get_report(registry, "fig9b_operations", "Figure 9(b) — operation benchmarks", HEADERS)
    seconds, _ = timed_benchmark(benchmark, fn, rounds=rounds)
    report.record(key, [key[0], key[1], events, seconds, events / seconds / 1e6])


@pytest.mark.parametrize("operation", OPERATION_NAMES)
def test_operation_lifestream(benchmark, report_registry, ecg, operation):
    times, values = ecg
    source = ArraySource(times, values, period=2)
    query = lifestream_operation(operation, "ecg", frequency_hz=500, window=WINDOW)
    engine = LifeStreamEngine(window_size=60_000)

    def run():
        return engine.run(query, sources={"ecg": source}, collect=False)

    _record(report_registry, (operation, "lifestream"), benchmark, run, times.size)


@pytest.mark.parametrize("operation", OPERATION_NAMES)
def test_operation_trill(benchmark, report_registry, ecg, operation):
    times, values = ecg

    def run():
        engine = TrillEngine(batch_size=4096)
        return engine.run_unary(
            TrillInput(times, values, 2),
            trill_operation(operation, frequency_hz=500, window=WINDOW),
        )

    _record(report_registry, (operation, "trill"), benchmark, run, times.size)


@pytest.mark.parametrize("operation", OPERATION_NAMES)
def test_operation_numlib(benchmark, report_registry, ecg, operation):
    times, values = ecg

    def run():
        return numlib_operation(operation, times, values, period=2)

    _record(report_registry, (operation, "numlib"), benchmark, run, times.size)
