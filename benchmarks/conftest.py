"""Shared infrastructure for the benchmark suite.

Every benchmark module reproduces one table or figure of the paper.  The
individual cells are measured with ``pytest-benchmark``; in addition each
module accumulates its cells into an :class:`ExperimentReport` that, when
the module finishes, prints the same rows/series the paper reports and
persists them as JSON under ``benchmarks/results/`` (these JSON files are
the source of the numbers quoted in EXPERIMENTS.md).

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import pytest

from repro.bench.reporting import format_table, save_results


@dataclass
class ExperimentReport:
    """Accumulates one experiment's measured cells and prints them at teardown."""

    name: str
    title: str
    headers: list[str]
    rows: dict[tuple, list] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def record(self, key: tuple, row: list) -> None:
        """Record one row of the experiment's table."""
        self.rows[key] = row

    def note(self, text: str) -> None:
        """Attach a free-form note (e.g. an OOM observation) to the report."""
        self.notes.append(text)

    def finalise(self) -> None:
        """Print the assembled table and persist it as JSON."""
        if not self.rows and not self.notes:
            return
        ordered = [self.rows[key] for key in sorted(self.rows)]
        table = format_table(self.headers, ordered, title=self.title)
        print("\n\n" + table)
        for note in self.notes:
            print(f"note: {note}")
        save_results(
            self.name,
            {
                "title": self.title,
                "headers": self.headers,
                "rows": ordered,
                "notes": self.notes,
            },
        )


def timed_benchmark(benchmark, fn, rounds: int = 1):
    """Run *fn* under pytest-benchmark and also return its best wall-clock time.

    The benchmark fixture handles the statistics pytest-benchmark reports;
    the explicit timing collected here feeds the experiment report tables so
    they can be assembled without depending on plugin internals.
    """
    durations: list[float] = []
    results: list = []

    def instrumented():
        began = time.perf_counter()
        results.append(fn())
        durations.append(time.perf_counter() - began)

    benchmark.pedantic(instrumented, rounds=rounds, iterations=1)
    return min(durations), results[-1]


@pytest.fixture(scope="session")
def report_registry():
    """Session-wide registry of experiment reports (finalised at session end)."""
    registry: dict[str, ExperimentReport] = {}
    yield registry
    for report in registry.values():
        report.finalise()


def get_report(registry: dict, name: str, title: str, headers: list[str]) -> ExperimentReport:
    """Fetch or create the report for one experiment."""
    if name not in registry:
        registry[name] = ExperimentReport(name=name, title=title, headers=headers)
    return registry[name]
