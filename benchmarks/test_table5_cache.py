"""Table 5 — last-level-cache misses of the Normalize query vs batch size.

Paper result (LLC misses, millions, measured with Intel vTune):

===========  =====  =====  =====
Batch size   1e5    1e6    1e7
===========  =====  =====  =====
Trill        2.43   4.11   6.73
LifeStream   0.79   0.82   0.96
===========  =====  =====  =====

Hardware counters are not available here, so the reproduction drives both
engines through the cache model in :mod:`repro.memsim` (a 20 MiB
set-associative LRU LLC, the paper's Xeon E5-2660 geometry).  The claim
reproduced is the *shape*: the Trill baseline's misses grow with the input
size because every operator allocates fresh batches, while LifeStream's
stay nearly flat because locality tracing plus static allocation keep the
working set to a handful of reused FWindows.
"""

import pytest

from benchmarks.conftest import get_report, timed_benchmark
from repro.baselines.trill import TrillEngine, TrillInput
from repro.bench.workloads import synthetic_signal
from repro.core.engine import LifeStreamEngine
from repro.core.sources import ArraySource
from repro.memsim import AccessTracer, CacheSimulator
from repro.ops.operations import lifestream_operation, trill_operation

#: Input sizes swept (the paper uses 1e5 / 1e6 / 1e7; the largest is scaled
#: down to keep the pure-Python cache model fast).
BATCH_SIZES = (100_000, 300_000, 1_000_000)
WINDOW = 10_000

HEADERS = ["events", "engine", "llc misses (millions)", "allocations", "seconds"]


def _make_tracer() -> AccessTracer:
    return AccessTracer(CacheSimulator(), sample_stride=8)


def _record(registry, key, benchmark, fn, events):
    report = get_report(
        registry, "table5_cache", "Table 5 — LLC misses on the Normalize query", HEADERS
    )
    seconds, tracer = timed_benchmark(benchmark, fn)
    report.record(
        key,
        [events, key[1], tracer.stats().misses / 1e6, tracer.allocation_count, seconds],
    )
    return tracer


@pytest.mark.parametrize("n_events", BATCH_SIZES)
def test_cache_lifestream(benchmark, report_registry, n_events):
    times, values = synthetic_signal(n_events, frequency_hz=1000.0, seed=0)
    source = ArraySource(times, values, period=1)
    query = lifestream_operation("normalize", "s", frequency_hz=1000, window=WINDOW)

    def run():
        tracer = _make_tracer()
        engine = LifeStreamEngine(window_size=60_000, tracer=tracer)
        engine.run(query, sources={"s": source}, collect=False)
        return tracer

    _record(report_registry, (n_events, "lifestream"), benchmark, run, n_events)


@pytest.mark.parametrize("n_events", BATCH_SIZES)
def test_cache_trill(benchmark, report_registry, n_events):
    times, values = synthetic_signal(n_events, frequency_hz=1000.0, seed=0)

    def run():
        tracer = _make_tracer()
        engine = TrillEngine(batch_size=4096, tracer=tracer)
        engine.run_unary(
            TrillInput(times, values, 1),
            trill_operation("normalize", frequency_hz=1000, window=WINDOW, tracer=tracer),
        )
        return tracer

    _record(report_registry, (n_events, "trill"), benchmark, run, n_events)


def test_lifestream_misses_stay_flat_while_trill_grows(benchmark, report_registry):
    """Direct check of the Table 5 shape on the smallest vs largest input."""

    def misses_for(engine_name: str, n_events: int) -> int:
        times, values = synthetic_signal(n_events, frequency_hz=1000.0, seed=1)
        tracer = _make_tracer()
        if engine_name == "lifestream":
            engine = LifeStreamEngine(window_size=60_000, tracer=tracer)
            query = lifestream_operation("normalize", "s", frequency_hz=1000, window=WINDOW)
            engine.run(query, sources={"s": ArraySource(times, values, period=1)}, collect=False)
        else:
            engine = TrillEngine(batch_size=4096, tracer=tracer)
            engine.run_unary(
                TrillInput(times, values, 1),
                trill_operation("normalize", frequency_hz=1000, window=WINDOW, tracer=tracer),
            )
        return tracer.stats().misses

    def run():
        small, large = BATCH_SIZES[0], BATCH_SIZES[-1]
        return {
            "lifestream_growth": misses_for("lifestream", large) / max(1, misses_for("lifestream", small)),
            "trill_growth": misses_for("trill", large) / max(1, misses_for("trill", small)),
        }

    _, growth = timed_benchmark(benchmark, run)
    # Trill's misses scale roughly with the data size (10x more events ->
    # several times more misses); LifeStream's stay within a small factor.
    assert growth["trill_growth"] > 4.0
    assert growth["lifestream_growth"] < 3.0
    report = get_report(
        report_registry, "table5_cache", "Table 5 — LLC misses on the Normalize query", HEADERS
    )
    report.note(
        f"miss growth from {BATCH_SIZES[0]:,} to {BATCH_SIZES[-1]:,} events: "
        f"LifeStream {growth['lifestream_growth']:.2f}x, Trill {growth['trill_growth']:.2f}x"
    )
