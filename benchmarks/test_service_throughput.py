"""Multi-tenant serving throughput: shared plan cache vs recompile-per-client.

Acceptance measurement for the serving subsystem: before
:class:`~repro.serve.StreamingService` existed, every client connecting
with the same query shape cost a full ``engine.open_session()`` — the
whole pass pipeline (normalize, lineage, locality, fusion, memory) re-run
per client even though none of it depends on the client's data.  The
service compiles each distinct plan signature once and hands every further
client an ``instantiate()`` clone (fresh buffers and carries over the
shared immutable pass output).

The workload is patient-level data parallelism at the paper's Figure
10(c)/(d) granularity: N patients, one deep derived-signal chain (a
48-stage feature-extraction pipeline that fusion collapses into one
kernel), short live ticks.  Both paths drive identical per-session tick
loops; the only difference is compile-once vs compile-per-client.  The
benchmark asserts per-client bit-identical results, exactly one compile
across all N service clients, and a >=2x end-to-end speedup.
"""

import time

import numpy as np
import pytest

from benchmarks.conftest import get_report, timed_benchmark
from repro.core.engine import LifeStreamEngine
from repro.core.query import Query
from repro.core.sources import ArraySource, ReplaySource
from repro.serve import StreamingService

HEADERS = ["mode", "clients", "compiles", "total seconds", "ms / client", "speedup"]

#: Cohort size (same query shape for every client).
N_CLIENTS = 32
#: Stages of the derived-signal chain (fused into one kernel at runtime).
CHAIN_DEPTH = 48
#: FWindow size and the single live-tick watermark the sessions see.
WINDOW_SIZE = 400
WATERMARKS = (601,)
#: The service must beat recompile-per-client end-to-end.
REQUIRED_SPEEDUP = 2.0
#: Measurement rounds per mode (interleaved best-of, to shed scheduler noise).
ROUNDS = 3


def cohort_query():
    """A deep per-patient feature chain: scale/offset stages with guards."""
    query = Query.source("s", frequency_hz=500)
    for index in range(CHAIN_DEPTH):
        gain = 1.0 + index / CHAIN_DEPTH
        query = query.select(lambda v, g=gain: v * g - (g - 1.0))
        if index % 4 == 3:
            query = query.where(lambda v: np.abs(v) < 1e6)
    return query.tumbling_window(100).mean()


def patient_source(seed, n=300):
    rng = np.random.default_rng(seed)
    times = np.arange(n, dtype=np.int64) * 2
    keep = np.ones(n, dtype=bool)
    for start in rng.integers(0, n - 100, size=2):
        keep[start : start + 50] = False
    values = np.sin(np.arange(n) * 0.01) * 10
    return ArraySource(times[keep], values[keep], period=2)


def run_naive():
    """Recompile-per-client: N full compiles, N independent sessions."""
    results = {}
    for seed in range(N_CLIENTS):
        engine = LifeStreamEngine(window_size=WINDOW_SIZE)
        session = engine.open_session(
            cohort_query(), {"s": ReplaySource(patient_source(seed))}
        )
        for watermark in WATERMARKS:
            session.advance(watermark)
        session.finish()
        results[f"patient-{seed}"] = session.result()
        session.close()
    return results


def run_service():
    """Shared-plan-cache path: one compile, N instantiated sessions."""
    service = StreamingService(window_size=WINDOW_SIZE)
    for seed in range(N_CLIENTS):
        service.open(
            f"patient-{seed}", cohort_query(), {"s": ReplaySource(patient_source(seed))}
        )
    for watermark in WATERMARKS:
        service.pump(watermark)
    service.finish()
    results = service.results()
    stats = service.cache_stats
    service.close_all()
    return results, stats


def _assert_identical(reference, candidate, label):
    np.testing.assert_array_equal(reference.times, candidate.times, err_msg=label)
    np.testing.assert_array_equal(reference.values, candidate.values, err_msg=label)
    np.testing.assert_array_equal(reference.durations, candidate.durations, err_msg=label)


def test_service_throughput(benchmark, report_registry):
    report = get_report(
        report_registry,
        "service_throughput",
        f"Serving {N_CLIENTS} same-shape clients: shared plan cache vs "
        f"recompile-per-client ({CHAIN_DEPTH}-stage chain)",
        HEADERS,
    )

    # The two paths' rounds are interleaved so a slow patch of the host
    # (GC, a noisy neighbour) penalises both alike, and each takes its
    # best-of-ROUNDS — the standard way to measure a ratio under noise.
    naive_seconds = float("inf")
    naive_results = None
    service_rounds: list[float] = []
    service_results = cache_stats = None
    for _ in range(ROUNDS):
        began = time.perf_counter()
        naive_results = run_naive()
        naive_seconds = min(naive_seconds, time.perf_counter() - began)
        began = time.perf_counter()
        service_results, cache_stats = run_service()
        service_rounds.append(time.perf_counter() - began)

    # One extra measured round under pytest-benchmark for its report.
    bench_seconds, _ = timed_benchmark(benchmark, run_service, rounds=1)
    service_seconds = min(*service_rounds, bench_seconds)

    # Correctness first: every client's serving result is bit-identical to
    # its independently compiled session.
    assert set(service_results) == set(naive_results)
    for client_id, expected in naive_results.items():
        _assert_identical(expected, service_results[client_id], client_id)

    # Exactly one compile for N same-shape clients.
    assert cache_stats.misses == 1
    assert cache_stats.hits == N_CLIENTS - 1

    speedup = naive_seconds / service_seconds if service_seconds > 0 else float("inf")
    report.record(
        (0,),
        [
            "shared plan cache",
            N_CLIENTS,
            cache_stats.misses,
            round(service_seconds, 4),
            round(1e3 * service_seconds / N_CLIENTS, 3),
            round(speedup, 2),
        ],
    )
    report.record(
        (1,),
        [
            "recompile per client",
            N_CLIENTS,
            N_CLIENTS,
            round(naive_seconds, 4),
            round(1e3 * naive_seconds / N_CLIENTS, 3),
            1.0,
        ],
    )
    assert speedup >= REQUIRED_SPEEDUP, (
        f"the serving path was only {speedup:.2f}x faster than "
        f"recompile-per-client (required {REQUIRED_SPEEDUP}x): "
        f"{service_seconds:.4f}s vs {naive_seconds:.4f}s"
    )


@pytest.mark.benchmark(group="service")
def test_service_scales_with_cohort_size(benchmark, report_registry):
    """Doubling the cohort must not double the compile count (it stays 1)."""
    service = StreamingService(window_size=WINDOW_SIZE)
    for seed in range(2 * N_CLIENTS):
        service.open(
            f"patient-{seed}", cohort_query(), {"s": ReplaySource(patient_source(seed))}
        )
    assert service.cache_stats.misses == 1
    assert service.cache_stats.hits == 2 * N_CLIENTS - 1

    def one_pump():
        return service.pump({f"patient-{seed}": 800 for seed in range(2 * N_CLIENTS)})

    pump_report = benchmark.pedantic(one_pump, rounds=1, iterations=1)
    assert set(pump_report.order) == {f"patient-{seed}" for seed in range(2 * N_CLIENTS)}
    service.close_all()
