"""Figure 10(c) — multi-core scaling of the end-to-end pipeline.

Paper result (32-core m5a.8xlarge): LifeStream scales to 32 threads and
peaks ~6× above Trill and ~1.9× above NumLib; Trill crashes with OOM beyond
12 threads; NumLib saturates around 24 threads.

The reproduction (i) measures real data-parallel execution over a small
patient cohort for the worker counts that fit a laptop, (ii) measures real
*window-sharded* execution of the Figure 3 pipeline through the engine's
MultiprocessBackend for 1–4 workers (intra-query parallelism, the closest
analogue of the paper's per-machine thread scaling), and (iii) calibrates
the analytic per-engine scaling model with the measured single-worker
throughput to reproduce the full 1–48 thread curves (the documented
substitution for the 32-core machine).
"""

import pytest

from benchmarks.conftest import get_report, timed_benchmark
from repro.bench.workloads import e2e_dataset, scaling_cohort
from repro.scaling import (
    MEASURED_WORKER_COUNTS,
    ScalingModel,
    measure_multicore_lifestream,
    measure_single_worker_throughput,
    run_data_parallel,
)

THREAD_COUNTS = (1, 2, 4, 8, 12, 16, 24, 32, 48)

HEADERS = ["engine", "workers", "million events/s", "failed"]


@pytest.fixture(scope="module")
def cohort():
    return scaling_cohort(n_patients=4, duration_seconds=30.0, seed=0)


@pytest.fixture(scope="module")
def single_worker_throughputs(cohort):
    return {
        engine: measure_single_worker_throughput(engine, cohort[0])
        for engine in ("lifestream", "trill", "numlib")
    }


def _report(registry):
    return get_report(
        registry, "fig10c_multicore", "Figure 10(c) — multi-core scaling (modelled curves)", HEADERS
    )


@pytest.mark.parametrize("workers", [1])
def test_real_data_parallel_lifestream(benchmark, report_registry, cohort, workers):
    """Real multiprocessing execution for the worker counts that fit a laptop."""
    seconds, point = timed_benchmark(
        benchmark, lambda: run_data_parallel("lifestream", cohort, n_workers=workers)
    )
    report = _report(report_registry)
    report.record(
        ("lifestream (measured)", workers),
        ["lifestream (measured)", workers, point.throughput_events_per_second / 1e6, False],
    )
    assert point.throughput_events_per_second > 0


def test_measured_window_sharded_lifestream(benchmark, report_registry):
    """Real Figure 10(c) points: MultiprocessBackend shards output windows.

    Every point is a genuine measurement on the host; on boxes with fewer
    cores than workers the curve is flat, which is the honest result (the
    modelled curves below remain the substitute for the paper's machine).
    """
    ecg, abp = e2e_dataset(duration_seconds=120.0, seed=10)

    _, result = timed_benchmark(
        benchmark,
        lambda: measure_multicore_lifestream(ecg, abp, worker_counts=MEASURED_WORKER_COUNTS),
    )
    report = _report(report_registry)
    for point in result.points:
        label = "lifestream (measured, window-sharded)"
        report.record(
            (label, point.workers),
            [label, point.workers, point.throughput_events_per_second / 1e6, point.failed],
        )
    assert len(result.points) == len(MEASURED_WORKER_COUNTS)
    assert all(point.throughput_events_per_second > 0 for point in result.points)


@pytest.mark.parametrize("engine", ["lifestream", "trill", "numlib"])
def test_modelled_scaling_curve(benchmark, report_registry, single_worker_throughputs, engine):
    """Modelled 1–48 worker curve calibrated from the measured single-worker run."""
    base = single_worker_throughputs[engine]

    def run():
        model = ScalingModel.for_engine(engine, base)
        return model.curve(list(THREAD_COUNTS))

    seconds, curve = timed_benchmark(benchmark, run)
    report = _report(report_registry)
    for point in curve.points:
        report.record(
            (engine, point.workers),
            [engine, point.workers, point.throughput_events_per_second / 1e6, point.failed],
        )


def test_paper_claims_hold_on_modelled_curves(benchmark, report_registry, single_worker_throughputs):
    """LifeStream peaks above both baselines; Trill fails beyond 12 workers."""

    def run():
        curves = {
            engine: ScalingModel.for_engine(engine, single_worker_throughputs[engine]).curve(
                list(THREAD_COUNTS)
            )
            for engine in ("lifestream", "trill", "numlib")
        }
        return curves

    _, curves = timed_benchmark(benchmark, run)
    assert curves["lifestream"].peak_throughput() > curves["trill"].peak_throughput()
    assert curves["lifestream"].peak_throughput() > curves["numlib"].peak_throughput()
    trill_failures = [p.workers for p in curves["trill"].points if p.failed]
    assert trill_failures and min(trill_failures) > 12
    report = _report(report_registry)
    report.note(
        "LifeStream peak / Trill peak = "
        f"{curves['lifestream'].peak_throughput() / curves['trill'].peak_throughput():.2f}x; "
        "Trill OOMs beyond 12 workers; NumLib saturates at 24."
    )
