"""Figure 9(a) — primitive micro-benchmarks: LifeStream vs the Trill baseline.

Paper result: Select and Where are within ~20% of Trill; Aggregate, Chop,
ClipJoin and Join are 2.2×, 2.0×, 5.3× and 6.7× faster on LifeStream.  The
claim reproduced here is that the simple element-wise primitives are roughly
at parity while the stateful/combining primitives are substantially faster
on LifeStream.
"""

import pytest

from benchmarks.conftest import get_report, timed_benchmark
from repro.baselines.trill import (
    TrillChop,
    TrillClipJoin,
    TrillEngine,
    TrillInput,
    TrillJoin,
    TrillSelect,
    TrillTumblingAggregate,
    TrillWhere,
)
from repro.bench.workloads import join_workload, synthetic_signal
from repro.core.engine import LifeStreamEngine
from repro.core.query import Query
from repro.core.sources import ArraySource

#: Synthetic 1000 Hz events for the unary primitives.
N_EVENTS = 400_000

HEADERS = ["primitive", "engine", "events", "seconds", "million events/s"]


@pytest.fixture(scope="module")
def signal():
    times, values = synthetic_signal(N_EVENTS, frequency_hz=1000.0, seed=0)
    return times, values


@pytest.fixture(scope="module")
def joinable():
    return join_workload(N_EVENTS, seed=1)


def _record(registry, key, benchmark, fn, events):
    report = get_report(registry, "fig9a_primitives", "Figure 9(a) — primitive micro-benchmarks", HEADERS)
    seconds, _ = timed_benchmark(benchmark, fn)
    report.record(key, [key[0], key[1], events, seconds, events / seconds / 1e6])


def _lifestream_unary(signal, query_builder):
    times, values = signal
    source = ArraySource(times, values, period=1)
    query = query_builder(Query.source("s", frequency_hz=1000))
    engine = LifeStreamEngine()

    def run():
        return engine.run(query, sources={"s": source}, collect=False)

    return run


def _trill_unary(signal, operators_builder):
    times, values = signal

    def run():
        engine = TrillEngine(batch_size=4096)
        return engine.run_unary(TrillInput(times, values, 1), operators_builder())

    return run


# -- Select -------------------------------------------------------------------


def test_select_lifestream(benchmark, report_registry, signal):
    run = _lifestream_unary(signal, lambda q: q.select(lambda v: v * 2.0 + 1.0))
    _record(report_registry, ("select", "lifestream"), benchmark, run, N_EVENTS)


def test_select_trill(benchmark, report_registry, signal):
    run = _trill_unary(signal, lambda: [TrillSelect(lambda v: v * 2.0 + 1.0)])
    _record(report_registry, ("select", "trill"), benchmark, run, N_EVENTS)


# -- Where --------------------------------------------------------------------


def test_where_lifestream(benchmark, report_registry, signal):
    run = _lifestream_unary(signal, lambda q: q.where(lambda v: v > 0.5))
    _record(report_registry, ("where", "lifestream"), benchmark, run, N_EVENTS)


def test_where_trill(benchmark, report_registry, signal):
    run = _trill_unary(signal, lambda: [TrillWhere(lambda v: v > 0.5)])
    _record(report_registry, ("where", "trill"), benchmark, run, N_EVENTS)


# -- Aggregate ----------------------------------------------------------------


def test_aggregate_lifestream(benchmark, report_registry, signal):
    run = _lifestream_unary(signal, lambda q: q.tumbling_window(100).mean())
    _record(report_registry, ("aggregate", "lifestream"), benchmark, run, N_EVENTS)


def test_aggregate_trill(benchmark, report_registry, signal):
    run = _trill_unary(signal, lambda: [TrillTumblingAggregate(window=100, func="mean")])
    _record(report_registry, ("aggregate", "trill"), benchmark, run, N_EVENTS)


# -- Chop ---------------------------------------------------------------------


def test_chop_lifestream(benchmark, report_registry, signal):
    run = _lifestream_unary(signal, lambda q: q.tumbling_window(100).mean().chop(1))
    _record(report_registry, ("chop", "lifestream"), benchmark, run, N_EVENTS)


def test_chop_trill(benchmark, report_registry, signal):
    run = _trill_unary(
        signal, lambda: [TrillTumblingAggregate(window=100, func="mean"), TrillChop(1)]
    )
    _record(report_registry, ("chop", "trill"), benchmark, run, N_EVENTS)


# -- ClipJoin -----------------------------------------------------------------


def test_clipjoin_lifestream(benchmark, report_registry, joinable):
    workload = joinable
    left = ArraySource(workload.left_times, workload.left_values, period=workload.left_period)
    right = ArraySource(workload.right_times, workload.right_values, period=workload.right_period)
    query = Query.source("l", period=workload.left_period).clip_join(
        Query.source("r", period=workload.right_period)
    )
    engine = LifeStreamEngine()

    def run():
        return engine.run(query, sources={"l": left, "r": right}, collect=False)

    _record(report_registry, ("clipjoin", "lifestream"), benchmark, run, workload.total_events)


def test_clipjoin_trill(benchmark, report_registry, joinable):
    workload = joinable

    def run():
        engine = TrillEngine(batch_size=4096)
        return engine.run_join(
            TrillInput(workload.left_times, workload.left_values, workload.left_period),
            TrillInput(workload.right_times, workload.right_values, workload.right_period),
            [],
            [],
            TrillClipJoin(),
        )

    _record(report_registry, ("clipjoin", "trill"), benchmark, run, workload.total_events)


# -- Join ---------------------------------------------------------------------


def test_join_lifestream(benchmark, report_registry, joinable):
    workload = joinable
    left = ArraySource(workload.left_times, workload.left_values, period=workload.left_period)
    right = ArraySource(workload.right_times, workload.right_values, period=workload.right_period)
    query = Query.source("l", period=workload.left_period).join(
        Query.source("r", period=workload.right_period), lambda a, b: a + b
    )
    engine = LifeStreamEngine()

    def run():
        return engine.run(query, sources={"l": left, "r": right}, collect=False)

    _record(report_registry, ("join", "lifestream"), benchmark, run, workload.total_events)


def test_join_trill(benchmark, report_registry, joinable):
    workload = joinable

    def run():
        engine = TrillEngine(batch_size=4096)
        return engine.run_join(
            TrillInput(workload.left_times, workload.left_values, workload.left_period),
            TrillInput(workload.right_times, workload.right_values, workload.right_period),
            [],
            [],
            TrillJoin(lambda a, b: a + b),
        )

    _record(report_registry, ("join", "trill"), benchmark, run, workload.total_events)
