"""Per-tick latency of incremental streaming sessions vs. full re-runs.

Acceptance measurement for the streaming execution subsystem: before
sessions existed, serving a live stream through the engine meant advancing
the :class:`~repro.core.sources.ReplaySource` watermark and recompiling +
re-running the query from time zero on every tick — O(stream length) work
per tick, quadratic over the stream's life.  A
:class:`~repro.core.runtime.session.StreamingSession` executes only the
newly-covered windows per tick while carrying operator state forward, so
per-tick work is O(tick length).

The benchmark replays the Figure 3 ECG+ABP workload tick-by-tick both
ways, asserts the two final results are bit-identical to a one-shot batch
run, and requires the session loop to beat per-tick re-running end-to-end.
"""

import numpy as np
import pytest

from benchmarks.conftest import get_report, timed_benchmark
from repro.bench.workloads import e2e_dataset
from repro.core.engine import LifeStreamEngine
from repro.core.sources import ArraySource, ReplaySource
from repro.core.timeutil import TICKS_PER_SECOND, period_from_hz
from repro.pipelines.e2e import ABP_HZ, ECG_HZ, lifestream_e2e_query

HEADERS = ["mode", "ticks", "total seconds", "mean tick ms", "max tick ms",
           "speedup vs re-run"]

#: Replayed stream length and watermark step (one-second live ticks).
DURATION_SECONDS = 20.0
TICK = TICKS_PER_SECOND
#: The session loop must beat recompile-and-re-run-from-zero end-to-end.
REQUIRED_SPEEDUP = 2.0


@pytest.fixture(scope="module")
def workload():
    ecg, abp = e2e_dataset(duration_seconds=DURATION_SECONDS, seed=77)
    end = int(max(ecg[0][-1], abp[0][-1]))
    watermarks = list(range(TICK, end + 2 * TICK, TICK))
    return ecg, abp, watermarks


def _replay_sources(ecg, abp):
    return {
        "ecg": ReplaySource(ArraySource(ecg[0], ecg[1], period=period_from_hz(ECG_HZ))),
        "abp": ReplaySource(ArraySource(abp[0], abp[1], period=period_from_hz(ABP_HZ))),
    }


def _advance(sources, watermark):
    for source in sources.values():
        source.advance(watermark)


def _batch_reference(ecg, abp):
    sources = {
        "ecg": ArraySource(ecg[0], ecg[1], period=period_from_hz(ECG_HZ)),
        "abp": ArraySource(abp[0], abp[1], period=period_from_hz(ABP_HZ)),
    }
    engine = LifeStreamEngine(window_size=TICKS_PER_SECOND)
    return engine.run(lifestream_e2e_query(resample_mode="hold"), sources)


def _run_session(ecg, abp, watermarks):
    """Incremental path: one long-lived session, one tick per watermark."""
    engine = LifeStreamEngine(window_size=TICKS_PER_SECOND)
    session = engine.open_session(
        lifestream_e2e_query(resample_mode="hold"), _replay_sources(ecg, abp)
    )
    for watermark in watermarks:
        session.advance(watermark)
    session.finish()
    result = session.result()
    latencies = [t.elapsed_seconds for t in session.ticks]
    session.close()
    return result, latencies


def _run_rerun(ecg, abp, watermarks):
    """Pre-session path: recompile and re-run from time zero on every tick."""
    import time

    engine = LifeStreamEngine(window_size=TICKS_PER_SECOND)
    sources = _replay_sources(ecg, abp)
    latencies = []
    result = None
    for watermark in watermarks:
        _advance(sources, watermark)
        began = time.perf_counter()
        result = engine.run(lifestream_e2e_query(resample_mode="hold"), sources)
        latencies.append(time.perf_counter() - began)
    return result, latencies


def _assert_identical(reference, candidate, label):
    np.testing.assert_array_equal(reference.times, candidate.times, err_msg=label)
    np.testing.assert_array_equal(reference.values, candidate.values, err_msg=label)
    np.testing.assert_array_equal(reference.durations, candidate.durations, err_msg=label)


def test_streaming_session_latency(benchmark, report_registry, workload):
    ecg, abp, watermarks = workload
    report = get_report(
        report_registry,
        "streaming_latency",
        f"Per-tick latency over {DURATION_SECONDS:.0f}s of live replay "
        f"(1-second ticks, Figure 3 workload)",
        HEADERS,
    )
    reference = _batch_reference(ecg, abp)

    rerun_result, rerun_latencies = _run_rerun(ecg, abp, watermarks)
    _assert_identical(reference, rerun_result, "full re-run vs batch")

    _, (session_result, session_latencies) = timed_benchmark(
        benchmark, lambda: _run_session(ecg, abp, watermarks)
    )
    _assert_identical(reference, session_result, "incremental session vs batch")

    rerun_total = sum(rerun_latencies)
    session_total = sum(session_latencies)
    speedup = rerun_total / session_total if session_total > 0 else float("inf")
    report.record(
        (0,),
        [
            "incremental session",
            len(session_latencies),
            round(session_total, 4),
            round(1e3 * np.mean(session_latencies), 3),
            round(1e3 * np.max(session_latencies), 3),
            round(speedup, 2),
        ],
    )
    report.record(
        (1,),
        [
            "full re-run per tick",
            len(rerun_latencies),
            round(rerun_total, 4),
            round(1e3 * np.mean(rerun_latencies), 3),
            round(1e3 * np.max(rerun_latencies), 3),
            1.0,
        ],
    )
    assert speedup >= REQUIRED_SPEEDUP, (
        f"incremental session was only {speedup:.2f}x faster than per-tick "
        f"re-runs (required {REQUIRED_SPEEDUP}x): "
        f"{session_total:.4f}s vs {rerun_total:.4f}s"
    )
