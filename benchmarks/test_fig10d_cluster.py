"""Figure 10(d) — multi-machine scaling of the end-to-end pipeline.

Paper result: on 16 m5a.8xlarge machines (each running its best thread
count from the multi-core study) LifeStream processes 473.66M events/s,
8.38× more than Trill's peak and 1.73× more than NumLib's.

Renting a 16-machine cluster is out of scope for this reproduction, so the
cluster curves are produced by the documented cluster model
(:mod:`repro.scaling.cluster`): per-machine peaks calibrated from measured
single-worker throughput, scaled out with a small coordination overhead.
The reproduced claims are the near-linear scaling of all three systems and
LifeStream's advantage carrying through at 16 machines.
"""

import pytest

from benchmarks.conftest import get_report, timed_benchmark
from repro.bench.workloads import scaling_cohort
from repro.scaling import ClusterModel, measure_single_worker_throughput

MACHINE_COUNTS = (1, 2, 4, 8, 12, 16)

HEADERS = ["engine", "machines", "million events/s"]


@pytest.fixture(scope="module")
def single_worker_throughputs():
    cohort = scaling_cohort(n_patients=1, duration_seconds=30.0, seed=3)
    return {
        engine: measure_single_worker_throughput(engine, cohort[0])
        for engine in ("lifestream", "trill", "numlib")
    }


def _report(registry):
    return get_report(
        registry, "fig10d_cluster", "Figure 10(d) — multi-machine scaling (modelled curves)", HEADERS
    )


@pytest.mark.parametrize("engine", ["lifestream", "trill", "numlib"])
def test_cluster_curve(benchmark, report_registry, single_worker_throughputs, engine):
    base = single_worker_throughputs[engine]

    def run():
        return ClusterModel(engine, base).curve(list(MACHINE_COUNTS))

    _, curve = timed_benchmark(benchmark, run)
    report = _report(report_registry)
    for point in curve.points:
        report.record(
            (engine, point.workers),
            [engine, point.workers, point.throughput_events_per_second / 1e6],
        )


def test_cluster_claims_hold(benchmark, report_registry, single_worker_throughputs):
    """LifeStream leads at 16 machines and every engine scales near-linearly."""

    def run():
        return {
            engine: ClusterModel(engine, single_worker_throughputs[engine])
            for engine in ("lifestream", "trill", "numlib")
        }

    _, models = timed_benchmark(benchmark, run)
    at_16 = {name: model.throughput(16).throughput_events_per_second for name, model in models.items()}
    assert at_16["lifestream"] > at_16["trill"]
    assert at_16["lifestream"] > at_16["numlib"]
    lifestream_1 = models["lifestream"].throughput(1).throughput_events_per_second
    assert at_16["lifestream"] > 12 * lifestream_1
    report = _report(report_registry)
    report.note(
        f"at 16 machines: LifeStream/Trill = {at_16['lifestream'] / at_16['trill']:.2f}x, "
        f"LifeStream/NumLib = {at_16['lifestream'] / at_16['numlib']:.2f}x"
    )
