"""Figure 10(b) — sensitivity of the end-to-end pipeline to the window size.

Paper result: on the synthetic (gap-free) dataset, LifeStream keeps its
advantage over Trill as the FWindow size grows from 1 minute to 1 hour —
performance is essentially flat across window sizes.

The reproduction sweeps the LifeStream window size over the same range on a
continuous ECG/ABP pair and also measures the Trill baseline (whose batch
size is its own tuning knob and stays at the default) as the reference line.
"""

import pytest

from benchmarks.conftest import get_report, timed_benchmark
from repro.bench.workloads import continuous_e2e_dataset
from repro.core.timeutil import TICKS_PER_MINUTE
from repro.pipelines.e2e import run_lifestream_e2e, run_trill_e2e

#: Window sizes in minutes (the paper sweeps 1 to 60 minutes).
WINDOW_MINUTES = (1, 5, 10, 30, 60)
DURATION_SECONDS = 3700.0

HEADERS = ["window (min)", "engine", "events", "seconds", "million events/s"]


@pytest.fixture(scope="module")
def dataset():
    return continuous_e2e_dataset(duration_seconds=DURATION_SECONDS, seed=7)


def _record(registry, key, benchmark, fn, events):
    report = get_report(
        registry, "fig10b_window_size", "Figure 10(b) — window-size sensitivity", HEADERS
    )
    seconds, _ = timed_benchmark(benchmark, fn, rounds=3)
    report.record(key, [key[0], key[1], events, seconds, events / seconds / 1e6])


@pytest.mark.parametrize("minutes", WINDOW_MINUTES)
def test_window_size_lifestream(benchmark, report_registry, dataset, minutes):
    ecg, abp = dataset
    events = ecg[0].size + abp[0].size
    _record(
        report_registry,
        (minutes, "lifestream"),
        benchmark,
        lambda: run_lifestream_e2e(ecg, abp, window_size=minutes * TICKS_PER_MINUTE),
        events,
    )


def test_window_size_trill_reference(benchmark, report_registry, dataset):
    ecg, abp = dataset
    events = ecg[0].size + abp[0].size
    _record(
        report_registry,
        (0, "trill (reference)"),
        benchmark,
        lambda: run_trill_e2e(ecg, abp),
        events,
    )


def test_performance_stable_across_window_sizes(benchmark, report_registry, dataset):
    """LifeStream's runtime varies by well under 3x across a 60x window range."""
    ecg, abp = dataset

    def run():
        timings = {}
        for minutes in (WINDOW_MINUTES[0], WINDOW_MINUTES[-1]):
            timings[minutes] = run_lifestream_e2e(
                ecg, abp, window_size=minutes * TICKS_PER_MINUTE
            ).elapsed_seconds
        return timings

    _, timings = timed_benchmark(benchmark, run)
    report = get_report(
        report_registry, "fig10b_window_size", "Figure 10(b) — window-size sensitivity", HEADERS
    )
    # Assert (and publish) the ratio over the table's own recorded endpoint
    # timings when they exist, so the invariant provably holds for the rows a
    # reader of the JSON can recompute — a paired re-measurement can otherwise
    # pass while the published rows violate it.  The fresh paired run above is
    # the fallback when this test runs in isolation.
    recorded = {
        minutes: report.rows[(minutes, "lifestream")][3]
        for minutes in (WINDOW_MINUTES[0], WINDOW_MINUTES[-1])
        if (minutes, "lifestream") in report.rows
    }
    if len(recorded) == 2:
        timings = recorded
    ratio = max(timings.values()) / min(timings.values())
    assert ratio < 3.0
    report.note(f"largest/smallest-window runtime ratio: {ratio:.2f}x")
