"""Section 6.1 — accuracy of shape-based Where on line-zero artifacts.

Paper result: over a month of ABP data containing 49 line-zero artifacts,
the constrained-DTW shape query achieves 0% false negatives and 0.2% false
positives.  The reproduction injects a comparable number of artifacts into
synthetic ABP (scaled to minutes rather than a month of signal) and measures
the same two rates.
"""

import pytest

from benchmarks.conftest import get_report, timed_benchmark
from repro.data.artifacts import inject_line_zero
from repro.data.physio import generate_abp
from repro.pipelines.linezero import evaluate_linezero_accuracy, run_lifestream_linezero

HEADERS = ["artifacts", "false negative rate", "false positive rate", "seconds"]

#: Seconds of ABP scanned and number of injected artifacts.
DURATION_SECONDS = 150.0
N_ARTIFACTS = 8


@pytest.fixture(scope="module")
def corrupted_abp():
    times, values = generate_abp(DURATION_SECONDS, seed=21)
    corrupted, artifacts = inject_line_zero(values, n_artifacts=N_ARTIFACTS, seed=22)
    return times, corrupted, artifacts


def test_linezero_detection_accuracy(benchmark, report_registry, corrupted_abp):
    times, values, artifacts = corrupted_abp

    def run():
        regions, _ = run_lifestream_linezero(times, values)
        return evaluate_linezero_accuracy(regions, artifacts, values.size)

    seconds, scores = timed_benchmark(benchmark, run)
    # The paper reports 0% false negatives and 0.2% false positives.
    assert scores["false_negative_rate"] == 0.0
    assert scores["false_positive_rate"] <= 0.02
    report = get_report(
        report_registry, "shape_accuracy", "Section 6.1 — shape-detection accuracy", HEADERS
    )
    report.record(
        (N_ARTIFACTS,),
        [N_ARTIFACTS, scores["false_negative_rate"], scores["false_positive_rate"], seconds],
    )


def test_clean_signal_has_no_false_positives(benchmark, report_registry):
    times, values = generate_abp(60.0, seed=23)

    def run():
        regions, _ = run_lifestream_linezero(times, values)
        return regions

    _, regions = timed_benchmark(benchmark, run)
    assert regions == []
