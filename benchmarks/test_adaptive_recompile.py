"""Profile-guided adaptive recompilation on a skewed multi-tenant cohort.

Acceptance measurement for the adaptive serving loop: a
:class:`~repro.serve.StreamingService` hosting a skewed tenant mix — a
dozen cold clients whose sparse streams produce a handful of isolated
windows, plus a few hot clients pushing dense long streams through a deep
derived-signal chain.  Every session opens on the default serial path; the
static service stays there forever, while the adaptive service folds each
tick's :class:`~repro.core.runtime.session.TickStats` into the signature's
:class:`~repro.serve.cache.ProfileStore` profile, notices the hot sessions'
long consecutive-window runs, recompiles their signature with
profile-derived :class:`~repro.core.compiler.CompileHints`, and hot-swaps
the new plan in at a tick boundary.

The benchmark asserts the three contract points of the adaptive loop:
every client's output stays bit-identical to the static service's, every
hot session really was swapped (its execution mode says ``(recompiled)``),
and end-to-end serving time improves by at least
:data:`REQUIRED_SPEEDUP` x.
"""

import time

import numpy as np
import pytest

from benchmarks.conftest import get_report, timed_benchmark
from repro.core.query import Query
from repro.core.sources import ArraySource, ReplaySource
from repro.serve import StreamingService

HEADERS = ["mode", "hot swaps", "total seconds", "hot mode", "speedup"]

#: Tenant mix: a few dense hot clients among many sparse cold ones.
N_HOT = 2
N_COLD = 12
#: Stages of the hot clients' derived-signal chain.
CHAIN_DEPTH = 24
#: FWindow size — small, so serial execution pays per-window overhead the
#: profile-guided vectorized plan amortises over whole runs.
WINDOW_SIZE = 100
#: Stream extent and the live watermark schedule the services pump through.
TOTAL_TICKS = 120_000
PUMP_STEP = 4_000
#: Adaptive serving must beat the static service end-to-end by this factor.
REQUIRED_SPEEDUP = 1.2
#: Measurement rounds per mode (interleaved best-of, to shed scheduler noise).
ROUNDS = 3


def hot_query():
    """A deep per-patient feature chain (fusion collapses it into one kernel,
    profile-guided recompilation runs that kernel over whole window runs)."""
    query = Query.source("s", frequency_hz=500)
    for index in range(CHAIN_DEPTH):
        gain = 1.0 + index / CHAIN_DEPTH
        query = query.select(lambda v, g=gain: v * g - (g - 1.0))
    return query.tumbling_window(100).mean()


def cold_query():
    return Query.source("s", frequency_hz=500).tumbling_window(100).mean()


def hot_source(seed, n=TOTAL_TICKS // 2):
    times = np.arange(n, dtype=np.int64) * 2
    values = np.sin(np.arange(n) * 0.01 + seed) * 10
    return ArraySource(times, values, period=2)


def cold_source(seed, n=200):
    rng = np.random.default_rng(seed)
    samples = rng.choice(TOTAL_TICKS // 2, size=n, replace=False)
    times = np.sort(samples).astype(np.int64) * 2
    return ArraySource(times, np.ones(n), period=2)


def run_cohort(adaptive):
    """Serve the full skewed cohort through one service; returns
    (per-client results, hot clients swapped, hot execution modes)."""
    service = StreamingService(window_size=WINDOW_SIZE, adaptive=adaptive)
    swapped = set()
    with service:
        for index in range(N_HOT):
            service.open(
                f"hot-{index}", hot_query(), {"s": ReplaySource(hot_source(index))}
            )
        for index in range(N_COLD):
            service.open(
                f"cold-{index}", cold_query(), {"s": ReplaySource(cold_source(index))}
            )
        for watermark in range(PUMP_STEP, TOTAL_TICKS + 1, PUMP_STEP):
            swapped.update(service.pump(watermark).swapped)
        service.finish()
        results = service.results()
        hot_modes = {
            client_id: service.session(client_id).result().stats.execution_mode
            for client_id in service.client_ids
            if client_id.startswith("hot-")
        }
    hot_swapped = {client_id for client_id in swapped if client_id.startswith("hot-")}
    return results, hot_swapped, hot_modes


def _assert_identical(reference, candidate, label):
    np.testing.assert_array_equal(reference.times, candidate.times, err_msg=label)
    np.testing.assert_array_equal(reference.values, candidate.values, err_msg=label)
    np.testing.assert_array_equal(
        reference.durations, candidate.durations, err_msg=label
    )


@pytest.mark.slow
def test_adaptive_recompile_speedup(benchmark, report_registry):
    report = get_report(
        report_registry,
        "adaptive_recompile",
        f"Adaptive recompilation: {N_HOT} hot + {N_COLD} cold clients, "
        f"{CHAIN_DEPTH}-stage hot chain over {TOTAL_TICKS} ticks",
        HEADERS,
    )

    # Interleave the two modes' rounds so a slow patch of the host (GC, a
    # noisy neighbour) penalises both alike; each takes its best-of-ROUNDS.
    static_seconds = adaptive_seconds = float("inf")
    static_results = adaptive_results = None
    hot_swapped = hot_modes = None
    for _ in range(ROUNDS):
        began = time.perf_counter()
        static_results, static_swapped, _ = run_cohort(adaptive=False)
        static_seconds = min(static_seconds, time.perf_counter() - began)
        assert static_swapped == set()
        began = time.perf_counter()
        adaptive_results, hot_swapped, hot_modes = run_cohort(adaptive=True)
        adaptive_seconds = min(adaptive_seconds, time.perf_counter() - began)

    # One extra measured round under pytest-benchmark for its report.
    bench_seconds, _ = timed_benchmark(
        benchmark, lambda: run_cohort(adaptive=True), rounds=1
    )
    adaptive_seconds = min(adaptive_seconds, bench_seconds)

    # Correctness first: adaptive output is bit-identical per client.
    assert set(adaptive_results) == set(static_results)
    for client_id, expected in static_results.items():
        _assert_identical(expected, adaptive_results[client_id], client_id)

    # Every hot session was recompiled and says so.
    assert hot_swapped == {f"hot-{index}" for index in range(N_HOT)}
    for client_id, mode in hot_modes.items():
        assert mode.endswith("(recompiled)"), f"{client_id}: {mode}"

    speedup = (
        static_seconds / adaptive_seconds if adaptive_seconds > 0 else float("inf")
    )
    report.record(
        (0,),
        [
            "adaptive (hot-swap)",
            len(hot_swapped),
            round(adaptive_seconds, 4),
            next(iter(hot_modes.values())),
            round(speedup, 2),
        ],
    )
    report.record(
        (1,),
        ["static (serial)", 0, round(static_seconds, 4), "serial", 1.0],
    )
    assert speedup >= REQUIRED_SPEEDUP, (
        f"adaptive serving was only {speedup:.2f}x faster than the static "
        f"service (required {REQUIRED_SPEEDUP}x): "
        f"{adaptive_seconds:.4f}s vs {static_seconds:.4f}s"
    )
