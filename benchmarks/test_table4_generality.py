"""Table 4 — generality: the LineZero and CAP models on LifeStream vs Trill.

Paper result (single-thread throughput, million events/second):

=========  =====  ==========  =======
Model      Trill  LifeStream  Speedup
=========  =====  ==========  =======
LineZero   0.027  0.315       11.58×
CAP        0.174  0.877       5.04×
=========  =====  ==========  =======

The reproduced claim is that LifeStream sustains a higher throughput than
the Trill-like baseline on both real pipelines.  The absolute gap is smaller
than the paper's because the dominant cost in this pure-Python reproduction
is the shared DTW / NumPy kernel work rather than engine overhead (see
EXPERIMENTS.md for the discussion).
"""

import pytest

from benchmarks.conftest import get_report, timed_benchmark
from repro.bench.workloads import cap_patient
from repro.data.artifacts import inject_line_zero
from repro.data.physio import generate_abp
from repro.pipelines.cap import run_lifestream_cap, run_trill_cap
from repro.pipelines.linezero import run_lifestream_linezero, run_trill_linezero

HEADERS = ["model", "engine", "events", "seconds", "million events/s"]

#: Seconds of ABP scanned by the LineZero benchmark (DTW-bound).
LINEZERO_SECONDS = 90.0
#: Seconds of six-signal data preprocessed by the CAP benchmark.
CAP_SECONDS = 120.0


@pytest.fixture(scope="module")
def linezero_data():
    times, values = generate_abp(LINEZERO_SECONDS, seed=0)
    corrupted, artifacts = inject_line_zero(values, n_artifacts=4, seed=1)
    return times, corrupted, artifacts


@pytest.fixture(scope="module")
def cap_record():
    return cap_patient(duration_seconds=CAP_SECONDS, seed=2)


def _record(registry, key, benchmark, fn, events):
    report = get_report(registry, "table4_generality", "Table 4 — LineZero and CAP models", HEADERS)
    seconds, result = timed_benchmark(benchmark, fn)
    report.record(key, [key[0], key[1], events, seconds, events / seconds / 1e6])
    return result


def test_linezero_lifestream(benchmark, report_registry, linezero_data):
    times, values, artifacts = linezero_data
    regions = _record(
        report_registry,
        ("linezero", "lifestream"),
        benchmark,
        lambda: run_lifestream_linezero(times, values)[0],
        times.size,
    )
    # Every injected artifact is found (the Section 6.1 accuracy result).
    assert len(regions) == len(artifacts)


def test_linezero_trill(benchmark, report_registry, linezero_data):
    times, values, _ = linezero_data
    _record(
        report_registry,
        ("linezero", "trill"),
        benchmark,
        lambda: run_trill_linezero(times, values)[0],
        times.size,
    )


def test_cap_lifestream(benchmark, report_registry, cap_record):
    _record(
        report_registry,
        ("cap", "lifestream"),
        benchmark,
        lambda: run_lifestream_cap(cap_record),
        cap_record.total_events(),
    )


def test_cap_trill(benchmark, report_registry, cap_record):
    _record(
        report_registry,
        ("cap", "trill"),
        benchmark,
        lambda: run_trill_cap(cap_record),
        cap_record.total_events(),
    )
