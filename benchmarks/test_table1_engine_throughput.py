"""Table 1 — single-core throughput of the streaming engines.

Paper result (million events/second):

===========  =====  =====  =====  =====  =====
Benchmark    Spark  Storm  Flink  Trill  SciPy
===========  =====  =====  =====  =====  =====
TemporalJoin 0.07   0.04   0.09   0.80   —
Upsampling   —      —      —      0.69   15.06
===========  =====  =====  =====  =====  =====

The reproduction measures the same two operations on the micro-batch
engines (Spark/Storm/Flink stand-ins), the Trill-like baseline, the NumLib
(SciPy) kernel, and LifeStream.  The claim being reproduced is the
*ordering*: distributed-style engines ≪ Trill ≪ SciPy on the vectorisable
upsampling, with LifeStream close to or above Trill.
"""

import pytest

from benchmarks.conftest import get_report, timed_benchmark
from repro.baselines.microbatch import MicroBatchEngine
from repro.baselines.numlib import vectorized_upsample_throughput_kernel
from repro.baselines.trill import TrillEngine, TrillInput, TrillJoin, TrillResample
from repro.bench.workloads import join_workload
from repro.core.engine import LifeStreamEngine
from repro.core.query import Query
from repro.core.sources import ArraySource

#: Event counts kept small enough for the record-at-a-time engines.
MICRO_EVENTS = 60_000
FAST_EVENTS = 200_000

HEADERS = ["benchmark", "engine", "events", "seconds", "million events/s"]


@pytest.fixture(scope="module")
def micro_workload():
    return join_workload(MICRO_EVENTS, seed=0)


@pytest.fixture(scope="module")
def fast_workload():
    return join_workload(FAST_EVENTS, seed=1)


def _record(registry, key, benchmark, fn, events):
    report = get_report(registry, "table1_engine_throughput", "Table 1 — engine throughput", HEADERS)
    seconds, _ = timed_benchmark(benchmark, fn)
    report.record(key, [key[0], key[1], events, seconds, events / seconds / 1e6])


# -- temporal join -----------------------------------------------------------


@pytest.mark.parametrize("engine_name", ["spark", "storm", "flink"])
def test_join_microbatch(benchmark, report_registry, micro_workload, engine_name):
    workload = micro_workload
    engine = MicroBatchEngine.from_name(engine_name)

    def run():
        return engine.temporal_join(
            workload.left_times,
            workload.left_values,
            workload.right_times,
            workload.right_values,
            right_duration=workload.right_period,
        )

    _record(report_registry, ("join", engine_name), benchmark, run, workload.total_events)


def test_join_trill(benchmark, report_registry, fast_workload):
    workload = fast_workload

    def run():
        engine = TrillEngine(batch_size=4096)
        return engine.run_join(
            TrillInput(workload.left_times, workload.left_values, workload.left_period),
            TrillInput(workload.right_times, workload.right_values, workload.right_period),
            [],
            [],
            TrillJoin(),
        )

    _record(report_registry, ("join", "trill"), benchmark, run, workload.total_events)


def test_join_lifestream(benchmark, report_registry, fast_workload):
    workload = fast_workload
    left = ArraySource(workload.left_times, workload.left_values, period=workload.left_period)
    right = ArraySource(workload.right_times, workload.right_values, period=workload.right_period)
    query = Query.source("left", period=workload.left_period).join(
        Query.source("right", period=workload.right_period)
    )
    engine = LifeStreamEngine()

    def run():
        return engine.run(query, sources={"left": left, "right": right}, collect=False)

    _record(report_registry, ("join", "lifestream"), benchmark, run, workload.total_events)


# -- upsampling ---------------------------------------------------------------


def test_upsample_trill(benchmark, report_registry, fast_workload):
    workload = fast_workload

    def run():
        engine = TrillEngine(batch_size=4096)
        return engine.run_unary(
            TrillInput(workload.right_times, workload.right_values, workload.right_period),
            [TrillResample(workload.left_period)],
        )

    _record(
        report_registry,
        ("upsample", "trill"),
        benchmark,
        run,
        int(workload.right_times.size),
    )


def test_upsample_scipy(benchmark, report_registry, fast_workload):
    workload = fast_workload
    factor = workload.right_period // workload.left_period

    def run():
        return vectorized_upsample_throughput_kernel(workload.right_values, factor)

    _record(
        report_registry,
        ("upsample", "scipy"),
        benchmark,
        run,
        int(workload.right_times.size),
    )


def test_upsample_lifestream(benchmark, report_registry, fast_workload):
    workload = fast_workload
    source = ArraySource(workload.right_times, workload.right_values, period=workload.right_period)
    query = Query.source("s", period=workload.right_period).resample(period=workload.left_period)
    engine = LifeStreamEngine()

    def run():
        return engine.run(query, sources={"s": source}, collect=False)

    _record(
        report_registry,
        ("upsample", "lifestream"),
        benchmark,
        run,
        int(workload.right_times.size),
    )


def test_table1_ordering_holds(report_registry, micro_workload, fast_workload):
    """The paper's ordering: distributed engines ≪ Trill on the join, SciPy ≫ Trill on upsampling."""
    report = report_registry.get("table1_engine_throughput")
    if report is None or ("join", "trill") not in report.rows:
        pytest.skip("run with --benchmark-only to populate the throughput table")
    throughput = {key: row[4] for key, row in report.rows.items()}
    for engine_name in ("spark", "storm", "flink"):
        assert throughput[("join", engine_name)] < throughput[("join", "trill")]
    assert throughput[("upsample", "scipy")] > throughput[("upsample", "trill")]
