"""Figure 10(a) — effectiveness of targeted query processing.

Paper result: LifeStream's speedup over Trill on the end-to-end pipeline
grows as the fraction of mutually overlapping ECG/ABP data shrinks — from
about 7× at (near) full overlap to about 65× at 10% overlap — because
targeted query processing skips the transforms whose outputs the join would
discard while Trill eagerly processes everything.

The reproduction sweeps the overlap fraction with the controlled-overlap
generator and reports both the LifeStream-vs-Trill speedup and the
targeted-vs-eager speedup on LifeStream itself (the pure ablation).
"""

import pytest

from benchmarks.conftest import get_report, timed_benchmark
from repro.bench.workloads import overlap_dataset
from repro.pipelines.e2e import run_lifestream_e2e, run_trill_e2e

#: Overlap fractions swept (1.0 = the two signals fully overlap).
OVERLAPS = (1.0, 0.75, 0.5, 0.25, 0.1)
#: Seconds of signal generated before trimming to the target overlap.
DURATION_SECONDS = 360.0

HEADERS = ["overlap", "engine/mode", "events", "seconds", "million events/s"]


@pytest.fixture(scope="module")
def datasets():
    prepared = {}
    for overlap in OVERLAPS:
        record = overlap_dataset(overlap, duration_seconds=DURATION_SECONDS, seed=int(overlap * 100))
        prepared[overlap] = (
            (record["ecg"].times, record["ecg"].values),
            (record["abp"].times, record["abp"].values),
        )
    return prepared


def _record(registry, key, benchmark, fn, events):
    report = get_report(
        registry, "fig10a_targeted", "Figure 10(a) — targeted query processing", HEADERS
    )
    seconds, _ = timed_benchmark(benchmark, fn, rounds=3)
    report.record(key, [key[0], key[1], events, seconds, events / seconds / 1e6])


@pytest.mark.parametrize("overlap", OVERLAPS)
def test_targeted_lifestream(benchmark, report_registry, datasets, overlap):
    ecg, abp = datasets[overlap]
    events = ecg[0].size + abp[0].size
    _record(
        report_registry,
        (overlap, "lifestream-targeted"),
        benchmark,
        lambda: run_lifestream_e2e(ecg, abp, targeted=True),
        events,
    )


@pytest.mark.parametrize("overlap", OVERLAPS)
def test_eager_lifestream(benchmark, report_registry, datasets, overlap):
    ecg, abp = datasets[overlap]
    events = ecg[0].size + abp[0].size
    _record(
        report_registry,
        (overlap, "lifestream-eager"),
        benchmark,
        lambda: run_lifestream_e2e(ecg, abp, targeted=False),
        events,
    )


@pytest.mark.parametrize("overlap", OVERLAPS)
def test_trill_baseline(benchmark, report_registry, datasets, overlap):
    ecg, abp = datasets[overlap]
    events = ecg[0].size + abp[0].size
    _record(
        report_registry,
        (overlap, "trill"),
        benchmark,
        lambda: run_trill_e2e(ecg, abp),
        events,
    )


def test_speedup_grows_as_overlap_shrinks(benchmark, report_registry, datasets):
    """The Figure 10(a) trend: less overlap ⇒ larger LifeStream advantage."""

    def run():
        speedups = {}
        for overlap in (OVERLAPS[0], OVERLAPS[-1]):
            ecg, abp = datasets[overlap]
            lifestream = run_lifestream_e2e(ecg, abp, targeted=True)
            trill = run_trill_e2e(ecg, abp)
            speedups[overlap] = trill.elapsed_seconds / lifestream.elapsed_seconds
        return speedups

    _, speedups = timed_benchmark(benchmark, run)
    report = get_report(
        report_registry, "fig10a_targeted", "Figure 10(a) — targeted query processing", HEADERS
    )
    # Quote speedups computed from the table's own recorded rows when they
    # exist, so the published note always matches the numbers in the same
    # file; the fresh paired measurement above is the fallback when this
    # test runs in isolation.
    recorded = {}
    for overlap in (OVERLAPS[0], OVERLAPS[-1]):
        targeted_key = (overlap, "lifestream-targeted")
        trill_key = (overlap, "trill")
        if targeted_key in report.rows and trill_key in report.rows:
            recorded[overlap] = report.rows[trill_key][3] / report.rows[targeted_key][3]
    if len(recorded) == 2:
        speedups = recorded
    assert speedups[OVERLAPS[-1]] > speedups[OVERLAPS[0]]
    report.note(
        f"speedup over the Trill baseline grows from {speedups[OVERLAPS[0]]:.1f}x at "
        f"{OVERLAPS[0]:.0%} overlap to {speedups[OVERLAPS[-1]]:.1f}x at {OVERLAPS[-1]:.0%} overlap"
    )
