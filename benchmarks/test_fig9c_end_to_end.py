"""Figure 9(c) — end-to-end application benchmark over increasing data sizes.

Paper result: on the Figure 3 pipeline over two weeks of ECG+ABP data,
LifeStream is 7.5× faster than Trill and 3.2× faster than NumLib, with
Trill's execution time rising rapidly until it runs out of memory at 200M
events.  The reproduction sweeps the dataset size (at laptop scale),
measures all three engines at each size, and demonstrates the Trill
out-of-memory behaviour under a proportionally scaled memory budget.
"""

import pytest

from benchmarks.conftest import get_report, timed_benchmark
from repro.bench.workloads import e2e_dataset
from repro.errors import TrillOutOfMemoryError
from repro.pipelines.e2e import run_lifestream_e2e, run_numlib_e2e, run_trill_e2e

#: Seconds of signal per sweep point (ECG 500 Hz + ABP 125 Hz ≈ 625 ev/s).
SWEEP_SECONDS = (120.0, 360.0, 720.0, 1440.0)

HEADERS = ["signal seconds", "engine", "events", "seconds", "million events/s"]


@pytest.fixture(scope="module")
def datasets():
    return {
        seconds: e2e_dataset(duration_seconds=seconds, seed=int(seconds))
        for seconds in SWEEP_SECONDS
    }


def _record(registry, key, benchmark, fn, events):
    report = get_report(
        registry, "fig9c_end_to_end", "Figure 9(c) — end-to-end pipeline vs data size", HEADERS
    )
    seconds, _ = timed_benchmark(benchmark, fn)
    report.record(key, [key[0], key[1], events, seconds, events / seconds / 1e6])
    return report


@pytest.mark.parametrize("duration", SWEEP_SECONDS)
def test_e2e_lifestream(benchmark, report_registry, datasets, duration):
    ecg, abp = datasets[duration]
    events = ecg[0].size + abp[0].size
    _record(
        report_registry,
        (duration, "lifestream"),
        benchmark,
        lambda: run_lifestream_e2e(ecg, abp),
        events,
    )


@pytest.mark.parametrize("duration", SWEEP_SECONDS)
def test_e2e_trill(benchmark, report_registry, datasets, duration):
    ecg, abp = datasets[duration]
    events = ecg[0].size + abp[0].size
    _record(
        report_registry, (duration, "trill"), benchmark, lambda: run_trill_e2e(ecg, abp), events
    )


@pytest.mark.parametrize("duration", SWEEP_SECONDS)
def test_e2e_numlib(benchmark, report_registry, datasets, duration):
    ecg, abp = datasets[duration]
    events = ecg[0].size + abp[0].size
    _record(
        report_registry, (duration, "numlib"), benchmark, lambda: run_numlib_e2e(ecg, abp), events
    )


def test_e2e_trill_out_of_memory(benchmark, report_registry, datasets):
    """Trill's divergence-driven OOM (the truncated Trill curve in Figure 9(c)).

    The paper's Trill run exhausts 16 GiB at 200M events; the reproduction
    scales the budget proportionally to the (much smaller) sweep sizes and
    shows the same failure mode: the largest dataset no longer fits.
    """
    # ECG spans the whole period but ABP only exists in the final stretch, so
    # the eager join must buffer nearly every transformed ECG event while it
    # waits for ABP progress (the divergence described in Section 8.3).
    ecg, abp = datasets[SWEEP_SECONDS[-1]]
    abp_times, abp_values = abp
    cutoff = abp_times[-1] - (abp_times[-1] - abp_times[0]) // 10
    keep = abp_times >= cutoff
    abp = (abp_times[keep], abp_values[keep])
    report = get_report(
        registry=report_registry,
        name="fig9c_end_to_end",
        title="Figure 9(c) — end-to-end pipeline vs data size",
        headers=HEADERS,
    )

    def run():
        try:
            run_trill_e2e(ecg, abp, memory_budget_bytes=1_000_000)
        except TrillOutOfMemoryError:
            return "oom"
        return "completed"

    _, outcome = timed_benchmark(benchmark, run)
    assert outcome == "oom"
    report.note(
        f"Trill baseline ran out of memory on the {SWEEP_SECONDS[-1]:.0f}s dataset "
        "with a proportionally scaled 1 MB join-state budget (Section 8.3 behaviour)."
    )
