"""Cross-tenant sub-plan sharing: shared prefix execution vs per-tenant.

Acceptance measurement for the sub-plan sharing subsystem
(:mod:`repro.serve.subplan`): a 16-tenant cohort whose queries all clean
the same physiological stream with the same filtered/resampled prefix —
a smoothing-transform chain, an amplitude filter, and an upsample — then
diverge into per-tenant aggregate tails.  Without sharing the service
executes that prefix 16 times per batch; with
``StreamingService(subplan_sharing=True)`` it runs once per batch and fans
out into per-tenant feeds.

The benchmark asserts per-tenant bit-identical results between the two
modes, exactly one prefix execution per batch (via the pump reports and
the group's session tick count), and a >=1.5x end-to-end speedup.
"""

import time

import numpy as np

from benchmarks.conftest import get_report, timed_benchmark
from repro.core.query import Query
from repro.core.sources import ArraySource, ReplaySource
from repro.ops import kernels
from repro.serve import StreamingService

HEADERS = ["mode", "tenants", "prefix execs / batch", "total seconds", "speedup"]

#: Cohort size: tenants sharing one cleaning prefix over one stream.
N_TENANTS = 16
#: Window (ticks) of the prefix's imputation/normalisation transforms.
CLEAN_WINDOW = 1000
WINDOW_SIZE = 4000
#: Live batches: every tenant announces the same watermark per batch.
WATERMARKS = tuple(range(10000, 120001, 10000))
REQUIRED_SPEEDUP = 1.5
#: Measurement rounds per mode (interleaved best-of, to shed scheduler noise).
ROUNDS = 3


def _amplitude_ok(values):
    return np.abs(values) < 3.5


def cohort_source():
    """One physical 500 Hz stream shared by the whole cohort (gappy)."""
    n = 60000
    rng = np.random.default_rng(11)
    times = np.arange(n, dtype=np.int64) * 2
    keep = np.ones(n, dtype=bool)
    for start in rng.integers(0, n - 800, size=4):
        keep[start : start + int(rng.integers(100, 500))] = False
    values = np.sin(np.arange(n) * 0.011) * 5 + 0.3 * rng.standard_normal(n)
    return ReplaySource(ArraySource(times[keep], values[keep], period=2))


def shared_prefix():
    """The cleaning prefix every tenant's query starts with.

    Windowed imputation and normalisation (the Figure 3 cleaning stages) do
    real per-window work — this is the execution the sharing group folds
    from 16 runs per batch down to one.
    """
    return (
        Query.source("s", frequency_hz=500)
        .transform(CLEAN_WINDOW, kernels.fill_mean_kernel(32))
        .transform(CLEAN_WINDOW, kernels.zscore_kernel())
        .where(_amplitude_ok)  # filtered ...
        .resample(frequency_hz=250, mode="interpolate")  # ... resampled
    )


def tenant_query(index):
    """Per-tenant tail: a cheap aggregate whose shape varies by tenant."""
    funcs = ("mean", "max", "min", "std")
    window = 400 + 200 * (index % 4)
    return shared_prefix().aggregate(window, func=funcs[index % len(funcs)])


def run_cohort(sharing):
    service = StreamingService(window_size=WINDOW_SIZE, subplan_sharing=sharing)
    source = cohort_source()
    with service:
        for index in range(N_TENANTS):
            service.open(f"tenant-{index}", tenant_query(index), {"s": source})
        reports = [service.pump(watermark) for watermark in WATERMARKS]
        reports.append(service.finish())
        results = {cid: service.result(cid) for cid in service.client_ids}
        groups = service.sharing_groups
    return results, groups, reports


def _assert_identical(reference, candidate, label):
    np.testing.assert_array_equal(reference.times, candidate.times, err_msg=label)
    np.testing.assert_array_equal(reference.values, candidate.values, err_msg=label)
    np.testing.assert_array_equal(reference.durations, candidate.durations, err_msg=label)


def test_subplan_sharing(benchmark, report_registry):
    report = get_report(
        report_registry,
        "subplan_sharing",
        f"Serving {N_TENANTS} tenants sharing a filtered/resampled prefix: "
        f"sub-plan sharing vs per-tenant execution",
        HEADERS,
    )

    # Interleave the two modes' rounds so a slow patch of the host (GC, a
    # noisy neighbour) penalises both alike; each takes its best-of-ROUNDS.
    unshared_seconds = shared_seconds = float("inf")
    unshared_results = shared_results = None
    shared_groups = shared_reports = None
    for _ in range(ROUNDS):
        began = time.perf_counter()
        unshared_results, unshared_groups, _ = run_cohort(False)
        unshared_seconds = min(unshared_seconds, time.perf_counter() - began)
        began = time.perf_counter()
        shared_results, shared_groups, shared_reports = run_cohort(True)
        shared_seconds = min(shared_seconds, time.perf_counter() - began)
    assert unshared_groups == []

    # One extra measured round under pytest-benchmark for its report.
    bench_seconds, _ = timed_benchmark(benchmark, lambda: run_cohort(True), rounds=1)
    shared_seconds = min(shared_seconds, bench_seconds)

    # Correctness first: sharing must be observationally invisible.
    assert set(shared_results) == set(unshared_results)
    for client_id, expected in unshared_results.items():
        _assert_identical(expected, shared_results[client_id], client_id)

    # One group holding the whole cohort, and exactly one prefix execution
    # per batch (pumps + the finishing drain) instead of one per tenant.
    (group,) = shared_groups
    assert sorted(group["members"]) == sorted(shared_results)
    assert group["prefix_ticks"] == len(WATERMARKS) + 1
    for pump_report in shared_reports:
        assert list(pump_report.prefix_ticks) == [group["group_id"]]

    speedup = unshared_seconds / shared_seconds if shared_seconds > 0 else float("inf")
    report.record(
        (0,),
        [
            "sub-plan sharing",
            N_TENANTS,
            1,
            round(shared_seconds, 4),
            round(speedup, 2),
        ],
    )
    report.record(
        (1,),
        [
            "per-tenant execution",
            N_TENANTS,
            N_TENANTS,
            round(unshared_seconds, 4),
            1.0,
        ],
    )
    assert speedup >= REQUIRED_SPEEDUP, (
        f"sub-plan sharing was only {speedup:.2f}x faster than per-tenant "
        f"execution (required {REQUIRED_SPEEDUP}x): "
        f"{shared_seconds:.4f}s vs {unshared_seconds:.4f}s"
    )
