"""Section 6.2 — FWindow fragmentation on realistically gappy data.

Paper result: across the evaluated use cases the degree of FWindow
fragmentation is at most 0.3%, because physiological discontinuities are
concentrated in bursts rather than scattered through the stream.  The
reproduction streams burst-gapped ECG data through the Figure 3 per-signal
stages and records the worst interior fragmentation observed in any FWindow
of the plan.
"""


from benchmarks.conftest import get_report, timed_benchmark
from repro.core.engine import LifeStreamEngine
from repro.core.graph import topological_order
from repro.core.query import Query
from repro.core.sources import ArraySource
from repro.data.gaps import inject_burst_gaps, small_random_gaps
from repro.data.physio import generate_ecg
from repro.ops import kernels

HEADERS = ["gap structure", "gap fraction", "max FWindow fragmentation", "seconds"]

DURATION_SECONDS = 1200.0


def _max_fragmentation(times, values) -> float:
    source = ArraySource(times, values, period=2)
    query = (
        Query.source("ecg", frequency_hz=500)
        .transform(1000, kernels.zscore_kernel())
        .tumbling_window(1000)
        .mean()
    )
    engine = LifeStreamEngine(window_size=60_000)
    compiled = engine.compile(query, sources={"ecg": source})

    worst = 0.0
    sink = compiled.plan.sink
    dimension = sink.dimension
    for start in compiled.plan.output_coverage.iter_windows(dimension, sink.descriptor.offset):
        sink.fill(start)
        for node in topological_order(sink):
            worst = max(worst, node.fwindow.fragmentation())
    return worst


def test_burst_gaps_cause_negligible_fragmentation(benchmark, report_registry):
    """Bursty (Figure 2-like) gaps leave FWindows essentially unfragmented."""
    times, values = generate_ecg(DURATION_SECONDS, seed=31)
    times, values = inject_burst_gaps(times, values, gap_fraction=0.2, n_bursts=2, seed=32)

    seconds, worst = timed_benchmark(benchmark, lambda: _max_fragmentation(times, values))
    assert worst <= 0.02  # comfortably within the paper's sub-1% regime
    report = get_report(
        report_registry, "fragmentation", "Section 6.2 — FWindow fragmentation", HEADERS
    )
    report.record(("burst",), ["burst gaps", 0.2, worst, seconds])


def test_scattered_gaps_worst_case(benchmark, report_registry):
    """Scattered one-sample dropouts are the worst case the paper argues is rare."""
    times, values = generate_ecg(DURATION_SECONDS, seed=33)
    times, values = small_random_gaps(times, values, gap_probability=0.002, seed=34)

    seconds, worst = timed_benchmark(benchmark, lambda: _max_fragmentation(times, values))
    report = get_report(
        report_registry, "fragmentation", "Section 6.2 — FWindow fragmentation", HEADERS
    )
    report.record(("scattered",), ["scattered single-sample gaps", 0.002, worst, seconds])
    assert worst < 0.05
