"""Baseline systems the paper compares LifeStream against.

* :mod:`repro.baselines.trill` — a Trill-like single-machine streaming
  engine (eager, batch-at-a-time, dynamic allocation, divergence-buffering
  temporal join);
* :mod:`repro.baselines.numlib` — hand-written NumPy/SciPy pipelines with a
  pure-Python temporal join (the "NumLib" baseline);
* :mod:`repro.baselines.microbatch` — distributed-style record-at-a-time
  engines standing in for Spark Streaming, Storm and Flink (Table 1 only).
"""

from repro.baselines import microbatch, numlib, trill

__all__ = ["trill", "numlib", "microbatch"]
