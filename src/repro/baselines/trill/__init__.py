"""Trill-like baseline engine (eager, batch-at-a-time, dynamic allocation)."""

from repro.baselines.trill.batch import EventBatch, batches_from_arrays, concatenate_batches
from repro.baselines.trill.engine import (
    DEFAULT_BATCH_SIZE,
    DEFAULT_MEMORY_BUDGET,
    TrillEngine,
    TrillInput,
    TrillRunStats,
)
from repro.baselines.trill.operators import (
    TrillChop,
    TrillClipJoin,
    TrillJoin,
    TrillOperator,
    TrillResample,
    TrillSelect,
    TrillShift,
    TrillTumblingAggregate,
    TrillWhere,
    TrillWindowTransform,
)

__all__ = [
    "TrillEngine",
    "TrillInput",
    "TrillRunStats",
    "EventBatch",
    "batches_from_arrays",
    "concatenate_batches",
    "TrillOperator",
    "TrillSelect",
    "TrillWhere",
    "TrillShift",
    "TrillTumblingAggregate",
    "TrillChop",
    "TrillClipJoin",
    "TrillResample",
    "TrillWindowTransform",
    "TrillJoin",
    "DEFAULT_BATCH_SIZE",
    "DEFAULT_MEMORY_BUDGET",
]
