"""The Trill-like baseline engine: eager, batch-at-a-time, push-based.

The engine ingests its sources in fixed-size columnar batches ordered by
event time and pushes every batch through the operator pipeline as soon as
it arrives, regardless of whether a downstream join will keep the results.
Join state is tracked against a configurable memory budget; exceeding it
raises :class:`~repro.errors.TrillOutOfMemoryError`, reproducing the
behaviour the paper observed when the two join inputs diverge (Section 8.3).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.baselines.trill.batch import EventBatch, batches_from_arrays, concatenate_batches
from repro.baselines.trill.operators import TrillJoin, TrillOperator
from repro.errors import TrillOutOfMemoryError

#: Default per-query memory budget for buffered operator state (bytes).
DEFAULT_MEMORY_BUDGET = 256 * 1024 * 1024
#: Default ingestion batch size, in events.
DEFAULT_BATCH_SIZE = 4096


def _flush_chain(operators: list["TrillOperator"]) -> list[EventBatch]:
    """Flush every operator and push its tail through the operators after it."""
    outputs: list[EventBatch] = []
    for index, operator in enumerate(operators):
        pending = operator.flush()
        for downstream in operators[index + 1 :]:
            next_pending: list[EventBatch] = []
            for item in pending:
                next_pending.extend(downstream.process(item))
            pending = next_pending
        outputs.extend(pending)
    return outputs


@dataclass
class TrillRunStats:
    """Counters describing one Trill-baseline execution."""

    elapsed_seconds: float = 0.0
    events_ingested: int = 0
    events_emitted: int = 0
    batches_processed: int = 0
    peak_state_bytes: int = 0
    extra: dict = field(default_factory=dict)

    @property
    def throughput_events_per_second(self) -> float:
        """Ingested events per wall-clock second."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.events_ingested / self.elapsed_seconds


@dataclass(frozen=True)
class TrillInput:
    """One input stream handed to the engine: timestamp/value arrays plus period."""

    times: np.ndarray
    values: np.ndarray
    period: int


class TrillEngine:
    """Eager batch-at-a-time streaming engine used as the paper's main baseline."""

    def __init__(
        self,
        batch_size: int = DEFAULT_BATCH_SIZE,
        memory_budget_bytes: int = DEFAULT_MEMORY_BUDGET,
        tracer=None,
    ) -> None:
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.batch_size = batch_size
        self.memory_budget_bytes = memory_budget_bytes
        self.tracer = tracer

    # -- unary pipelines ------------------------------------------------------

    def run_unary(
        self,
        source: TrillInput,
        operators: list[TrillOperator],
    ) -> tuple[np.ndarray, np.ndarray, TrillRunStats]:
        """Push one input stream through a chain of unary operators."""
        stats = TrillRunStats(events_ingested=int(np.asarray(source.times).size))
        outputs: list[EventBatch] = []
        began = time.perf_counter()
        for batch in batches_from_arrays(
            source.times, source.values, self.batch_size, source.period, tracer=self.tracer
        ):
            stats.batches_processed += 1
            pending = [batch]
            for operator in operators:
                next_pending: list[EventBatch] = []
                for item in pending:
                    next_pending.extend(operator.process(item))
                pending = next_pending
            outputs.extend(pending)
            self._check_budget(operators, None, stats)
        outputs.extend(_flush_chain(operators))
        stats.elapsed_seconds = time.perf_counter() - began
        times, values = concatenate_batches(outputs)
        stats.events_emitted = int(times.size)
        return times, values, stats

    # -- join pipelines ------------------------------------------------------------

    def run_join(
        self,
        left: TrillInput,
        right: TrillInput,
        left_operators: list[TrillOperator],
        right_operators: list[TrillOperator],
        join: TrillJoin,
        post_operators: list[TrillOperator] | None = None,
    ) -> tuple[np.ndarray, np.ndarray, TrillRunStats]:
        """Run two per-side pipelines feeding a temporal join (the Figure 3 shape).

        Batches are ingested in global event-time order, which is how a
        push-based engine sees interleaved live streams.  When one signal
        has a long discontinuity, the other side keeps producing batches and
        the join has to buffer them — the divergence that eventually
        exhausts the memory budget.
        """
        post_operators = post_operators or []
        stats = TrillRunStats(
            events_ingested=int(np.asarray(left.times).size + np.asarray(right.times).size)
        )
        outputs: list[EventBatch] = []
        began = time.perf_counter()

        left_batches = list(
            batches_from_arrays(left.times, left.values, self.batch_size, left.period, self.tracer)
        )
        right_batches = list(
            batches_from_arrays(
                right.times, right.values, self.batch_size, right.period, self.tracer
            )
        )

        def run_side(batch: EventBatch, operators: list[TrillOperator]) -> list[EventBatch]:
            pending = [batch]
            for operator in operators:
                next_pending: list[EventBatch] = []
                for item in pending:
                    next_pending.extend(operator.process(item))
                pending = next_pending
            return pending

        def run_post(batches: list[EventBatch]) -> list[EventBatch]:
            pending = batches
            for operator in post_operators:
                next_pending: list[EventBatch] = []
                for item in pending:
                    next_pending.extend(operator.process(item))
                pending = next_pending
            return pending

        li, ri = 0, 0
        while li < len(left_batches) or ri < len(right_batches):
            take_left = ri >= len(right_batches) or (
                li < len(left_batches)
                and left_batches[li].sync_times[0] <= right_batches[ri].sync_times[0]
            )
            if take_left:
                stats.batches_processed += 1
                for transformed in run_side(left_batches[li], left_operators):
                    outputs.extend(run_post(join.push_left(transformed)))
                li += 1
            else:
                stats.batches_processed += 1
                for transformed in run_side(right_batches[ri], right_operators):
                    outputs.extend(run_post(join.push_right(transformed)))
                ri += 1
            self._check_budget(left_operators + right_operators, join, stats)

        for tail in _flush_chain(left_operators):
            outputs.extend(run_post(join.push_left(tail)))
        for tail in _flush_chain(right_operators):
            outputs.extend(run_post(join.push_right(tail)))
        outputs.extend(run_post(join.finish()))
        for operator in post_operators:
            outputs.extend(operator.flush())

        stats.elapsed_seconds = time.perf_counter() - began
        stats.peak_state_bytes = max(stats.peak_state_bytes, join.peak_state_bytes)
        times, values = concatenate_batches(outputs)
        order = np.argsort(times, kind="stable")
        stats.events_emitted = int(times.size)
        return times[order], values[order], stats

    # -- internal -------------------------------------------------------------------

    def _check_budget(
        self,
        operators: list[TrillOperator],
        join: TrillJoin | None,
        stats: TrillRunStats,
    ) -> None:
        state = sum(op.state_bytes() for op in operators)
        if join is not None:
            state += join.state_bytes()
        stats.peak_state_bytes = max(stats.peak_state_bytes, state)
        if state > self.memory_budget_bytes:
            raise TrillOutOfMemoryError(
                f"Trill baseline exceeded its memory budget: buffered {state} bytes "
                f"of operator/join state (budget {self.memory_budget_bytes} bytes). "
                "This reproduces the divergence-driven out-of-memory behaviour "
                "described in Section 8.3 of the paper."
            )
