"""Push-based operators of the Trill-like baseline engine.

Every operator consumes an :class:`~repro.baselines.trill.batch.EventBatch`
and produces zero or more output batches, allocating the outputs afresh each
time (dynamic allocation).  Execution is *eager*: an operator transforms
every batch it receives immediately, whether or not a downstream join will
keep the results — the behaviour that targeted query processing in
LifeStream avoids (Section 5.3 of the paper).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.baselines.trill.batch import EventBatch


class TrillOperator:
    """Base class: unary, push-based, eager."""

    def process(self, batch: EventBatch) -> list[EventBatch]:
        """Transform one input batch into output batches."""
        raise NotImplementedError

    def flush(self) -> list[EventBatch]:
        """Emit any events buffered internally at end of stream."""
        return []

    def state_bytes(self) -> int:
        """Bytes of internal state currently buffered (for the memory budget)."""
        return 0


class TrillSelect(TrillOperator):
    """Payload projection."""

    def __init__(self, projection: Callable[[np.ndarray], np.ndarray], tracer=None):
        self.projection = projection
        self.tracer = tracer

    def process(self, batch: EventBatch) -> list[EventBatch]:
        if batch.is_empty():
            return []
        with np.errstate(all="ignore"):
            values = self.projection(batch.values)
        return [EventBatch(batch.sync_times, batch.durations, values, tracer=self.tracer)]


class TrillWhere(TrillOperator):
    """Payload predicate filter."""

    def __init__(self, predicate: Callable[[np.ndarray], np.ndarray], tracer=None):
        self.predicate = predicate
        self.tracer = tracer

    def process(self, batch: EventBatch) -> list[EventBatch]:
        if batch.is_empty():
            return []
        with np.errstate(all="ignore"):
            keep = np.asarray(self.predicate(batch.values), dtype=bool)
        return [batch.select(keep, tracer=self.tracer)]


class TrillShift(TrillOperator):
    """Shift sync times by a constant."""

    def __init__(self, offset: int, tracer=None):
        self.offset = int(offset)
        self.tracer = tracer

    def process(self, batch: EventBatch) -> list[EventBatch]:
        if batch.is_empty():
            return []
        return [
            EventBatch(
                batch.sync_times + self.offset, batch.durations, batch.values, tracer=self.tracer
            )
        ]


class TrillTumblingAggregate(TrillOperator):
    """Tumbling-window aggregate producing one event per window.

    Events are grouped by ``sync_time // window``; because a window can span
    batch boundaries the operator buffers the partial aggregate of the last
    open window between batches.
    """

    def __init__(self, window: int, func: str = "mean", tracer=None):
        self.window = int(window)
        self.func = func
        self.tracer = tracer
        self._open_window: int | None = None
        self._open_values: list[np.ndarray] = []

    def _finalise(self, window_index: int, chunks: list[np.ndarray]) -> EventBatch:
        values = np.concatenate(chunks) if len(chunks) > 1 else chunks[0]
        if self.func == "mean":
            result = float(values.mean())
        elif self.func == "sum":
            result = float(values.sum())
        elif self.func == "max":
            result = float(values.max())
        elif self.func == "min":
            result = float(values.min())
        elif self.func == "std":
            result = float(values.std())
        elif self.func == "count":
            result = float(values.size)
        else:
            raise ValueError(f"unknown aggregate {self.func!r}")
        start = window_index * self.window
        return EventBatch(
            np.array([start], dtype=np.int64),
            np.array([self.window], dtype=np.int64),
            np.array([result], dtype=np.float64),
            tracer=self.tracer,
            label="aggregate",
        )

    def process(self, batch: EventBatch) -> list[EventBatch]:
        if batch.is_empty():
            return []
        outputs: list[EventBatch] = []
        window_ids = batch.sync_times // self.window
        boundaries = np.flatnonzero(np.diff(window_ids)) + 1
        segments = np.split(np.arange(len(batch)), boundaries)
        for segment in segments:
            if segment.size == 0:
                continue
            window_index = int(window_ids[segment[0]])
            values = batch.values[segment]
            if self._open_window is None or window_index == self._open_window:
                self._open_window = window_index
                self._open_values.append(values)
            else:
                outputs.append(self._finalise(self._open_window, self._open_values))
                self._open_window = window_index
                self._open_values = [values]
        return outputs

    def flush(self) -> list[EventBatch]:
        if self._open_window is None:
            return []
        output = [self._finalise(self._open_window, self._open_values)]
        self._open_window = None
        self._open_values = []
        return output

    def state_bytes(self) -> int:
        return sum(chunk.nbytes for chunk in self._open_values)


class TrillChop(TrillOperator):
    """Split long-duration events on period boundaries."""

    def __init__(self, period: int, tracer=None):
        self.period = int(period)
        self.tracer = tracer

    def process(self, batch: EventBatch) -> list[EventBatch]:
        if batch.is_empty():
            return []
        out_times: list[int] = []
        out_durations: list[int] = []
        out_values: list[float] = []
        period = self.period
        # Row-at-a-time expansion, as a generic engine without the
        # periodicity assumption has to do.
        for sync, duration, value in zip(
            batch.sync_times.tolist(), batch.durations.tolist(), batch.values.tolist()
        ):
            position = sync
            end = sync + duration
            while position < end:
                boundary = ((position // period) + 1) * period
                segment_end = min(boundary, end)
                out_times.append(position)
                out_durations.append(segment_end - position)
                out_values.append(value)
                position = segment_end
        return [
            EventBatch(
                np.asarray(out_times, dtype=np.int64),
                np.asarray(out_durations, dtype=np.int64),
                np.asarray(out_values, dtype=np.float64),
                tracer=self.tracer,
                label="chop",
            )
        ]


class TrillResample(TrillOperator):
    """Up/down-sample a signal onto a new period using linear interpolation."""

    def __init__(self, new_period: int, tracer=None):
        self.new_period = int(new_period)
        self.tracer = tracer

    def process(self, batch: EventBatch) -> list[EventBatch]:
        if batch.is_empty():
            return []
        start, end = batch.time_span()
        new_times = np.arange(start, end, self.new_period, dtype=np.int64)
        if new_times.size == 0:
            return []
        new_values = np.interp(new_times, batch.sync_times, batch.values)
        return [
            EventBatch(
                new_times,
                np.full(new_times.size, self.new_period, dtype=np.int64),
                new_values,
                tracer=self.tracer,
                label="resample",
            )
        ]


class TrillWindowTransform(TrillOperator):
    """Apply a user function to fixed windows of events (Trill's user-defined operators).

    The function receives ``(sync_times, values)`` for one window and returns
    new values (same length).  Used to express the Table 3 operations
    (Normalize, PassFilter, FillConst, FillMean) in the baseline.
    """

    def __init__(
        self,
        window: int,
        function: Callable[[np.ndarray, np.ndarray], tuple[np.ndarray, np.ndarray]],
        tracer=None,
    ):
        self.window = int(window)
        self.function = function
        self.tracer = tracer
        self._pending_times: list[np.ndarray] = []
        self._pending_values: list[np.ndarray] = []
        self._open_window: int | None = None

    def _finalise(self) -> list[EventBatch]:
        if self._open_window is None:
            return []
        times = np.concatenate(self._pending_times)
        values = np.concatenate(self._pending_values)
        with np.errstate(all="ignore"):
            new_times, new_values = self.function(times, values)
        self._pending_times = []
        self._pending_values = []
        self._open_window = None
        return [
            EventBatch(
                np.asarray(new_times, dtype=np.int64),
                np.full(np.asarray(new_times).size, 0, dtype=np.int64) + self._duration_for(new_times),
                np.asarray(new_values, dtype=np.float64),
                tracer=self.tracer,
                label="transform",
            )
        ]

    @staticmethod
    def _duration_for(times: np.ndarray) -> int:
        times = np.asarray(times)
        if times.size >= 2:
            return int(np.min(np.diff(times)))
        return 1

    def process(self, batch: EventBatch) -> list[EventBatch]:
        if batch.is_empty():
            return []
        outputs: list[EventBatch] = []
        window_ids = batch.sync_times // self.window
        boundaries = np.flatnonzero(np.diff(window_ids)) + 1
        segments = np.split(np.arange(len(batch)), boundaries)
        for segment in segments:
            if segment.size == 0:
                continue
            window_index = int(window_ids[segment[0]])
            if self._open_window is not None and window_index != self._open_window:
                outputs.extend(self._finalise())
            self._open_window = window_index
            self._pending_times.append(batch.sync_times[segment])
            self._pending_values.append(batch.values[segment])
        return outputs

    def flush(self) -> list[EventBatch]:
        return self._finalise()

    def state_bytes(self) -> int:
        return sum(chunk.nbytes for chunk in self._pending_times) + sum(
            chunk.nbytes for chunk in self._pending_values
        )


class TrillJoin:
    """Temporal inner join with per-side buffering.

    The operator buffers events from both sides and, whenever new data
    arrives, matches everything up to the minimum watermark of the two
    sides.  When the two input streams diverge — one side's event time runs
    far ahead of the other's, which happens constantly on discontinuous
    physiological data — the faster side's buffer keeps growing.  The engine
    checks this state against a memory budget and raises
    :class:`~repro.errors.TrillOutOfMemoryError` when it is exceeded,
    reproducing the out-of-memory behaviour reported in Section 8.3.
    """

    def __init__(
        self,
        combine: Callable[[np.ndarray, np.ndarray], np.ndarray] | None = None,
        tracer=None,
    ):
        self.combine = combine if combine is not None else (lambda left, right: left)
        self.tracer = tracer
        self._left_times: list[np.ndarray] = []
        self._left_durations: list[np.ndarray] = []
        self._left_values: list[np.ndarray] = []
        self._right_times: list[np.ndarray] = []
        self._right_durations: list[np.ndarray] = []
        self._right_values: list[np.ndarray] = []
        self._left_watermark = -np.inf
        self._right_watermark = -np.inf
        #: Peak bytes buffered across both sides (reported by the benchmarks).
        self.peak_state_bytes = 0

    # -- ingestion ----------------------------------------------------------

    def push_left(self, batch: EventBatch) -> list[EventBatch]:
        """Ingest a batch on the left side and match what has become safe."""
        if not batch.is_empty():
            self._left_times.append(batch.sync_times)
            self._left_durations.append(batch.durations)
            self._left_values.append(batch.values)
            self._left_watermark = float(batch.time_span()[1])
        return self._match()

    def push_right(self, batch: EventBatch) -> list[EventBatch]:
        """Ingest a batch on the right side and match what has become safe."""
        if not batch.is_empty():
            self._right_times.append(batch.sync_times)
            self._right_durations.append(batch.durations)
            self._right_values.append(batch.values)
            self._right_watermark = float(batch.time_span()[1])
        return self._match()

    def finish(self) -> list[EventBatch]:
        """Match everything that remains at end of stream."""
        self._left_watermark = np.inf
        self._right_watermark = np.inf
        return self._match()

    # -- state accounting ---------------------------------------------------

    def state_bytes(self) -> int:
        total = 0
        for chunks in (
            self._left_times,
            self._left_durations,
            self._left_values,
            self._right_times,
            self._right_durations,
            self._right_values,
        ):
            total += sum(chunk.nbytes for chunk in chunks)
        return total

    # -- matching ------------------------------------------------------------

    def _consolidate(self, side: str) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        times_list = getattr(self, f"_{side}_times")
        durations_list = getattr(self, f"_{side}_durations")
        values_list = getattr(self, f"_{side}_values")
        if not times_list:
            empty_i = np.empty(0, dtype=np.int64)
            return empty_i, empty_i, np.empty(0, dtype=np.float64)
        times = np.concatenate(times_list)
        durations = np.concatenate(durations_list)
        values = np.concatenate(values_list)
        setattr(self, f"_{side}_times", [times])
        setattr(self, f"_{side}_durations", [durations])
        setattr(self, f"_{side}_values", [values])
        return times, durations, values

    def _match(self) -> list[EventBatch]:
        self.peak_state_bytes = max(self.peak_state_bytes, self.state_bytes())
        watermark = min(self._left_watermark, self._right_watermark)
        if not np.isfinite(watermark) and watermark != np.inf:
            return []
        left_times, left_durations, left_values = self._consolidate("left")
        right_times, right_durations, right_values = self._consolidate("right")
        if left_times.size == 0 or right_times.size == 0:
            return []

        matchable = left_times < watermark
        if not matchable.any():
            return []
        lt = left_times[matchable]
        ld = left_durations[matchable]
        lv = left_values[matchable]

        # Find, for every left event, the right event active at its sync time.
        indices = np.searchsorted(right_times, lt, side="right") - 1
        clipped = np.clip(indices, 0, right_times.size - 1)
        active = (indices >= 0) & (right_times[clipped] + right_durations[clipped] > lt)
        with np.errstate(all="ignore"):
            combined = self.combine(lv[active], right_values[clipped][active])
        output = EventBatch(
            lt[active],
            ld[active],
            np.asarray(combined, dtype=np.float64),
            tracer=self.tracer,
            label="join",
        )

        # Retire matched left events; keep right events that may still match
        # future left events (their end time is beyond the watermark).
        keep_left = ~matchable
        self._left_times = [left_times[keep_left]]
        self._left_durations = [left_durations[keep_left]]
        self._left_values = [left_values[keep_left]]
        keep_right = right_times + right_durations > watermark
        self._right_times = [right_times[keep_right]]
        self._right_durations = [right_durations[keep_right]]
        self._right_values = [right_values[keep_right]]
        return [output] if len(output) else []


class TrillClipJoin:
    """Join each left event with the immediately succeeding right event.

    Keeps the same push interface as :class:`TrillJoin` (``push_left`` /
    ``push_right`` / ``finish``) so the engine can drive it through
    ``run_join``.  Left events are buffered until a right event with a later
    sync time arrives.
    """

    def __init__(self, combine=None, tracer=None):
        self.combine = combine if combine is not None else (lambda left, right: left)
        self.tracer = tracer
        self._left_times: list[np.ndarray] = []
        self._left_values: list[np.ndarray] = []
        self._right_times: list[np.ndarray] = []
        self._right_values: list[np.ndarray] = []
        self.peak_state_bytes = 0

    def state_bytes(self) -> int:
        total = 0
        for chunks in (self._left_times, self._left_values, self._right_times, self._right_values):
            total += sum(chunk.nbytes for chunk in chunks)
        return total

    def push_left(self, batch: EventBatch) -> list[EventBatch]:
        if not batch.is_empty():
            self._left_times.append(batch.sync_times)
            self._left_values.append(batch.values)
        return self._match(final=False)

    def push_right(self, batch: EventBatch) -> list[EventBatch]:
        if not batch.is_empty():
            self._right_times.append(batch.sync_times)
            self._right_values.append(batch.values)
        return self._match(final=False)

    def finish(self) -> list[EventBatch]:
        return self._match(final=True)

    def _match(self, final: bool) -> list[EventBatch]:
        self.peak_state_bytes = max(self.peak_state_bytes, self.state_bytes())
        if not self._left_times or not self._right_times:
            return []
        left_times = np.concatenate(self._left_times)
        left_values = np.concatenate(self._left_values)
        right_times = np.concatenate(self._right_times)
        right_values = np.concatenate(self._right_values)

        successor = np.searchsorted(right_times, left_times, side="left")
        resolvable = successor < right_times.size
        if not final:
            # A left event can only be resolved once we are sure no earlier
            # successor can still arrive, i.e. its time is before the latest
            # right time seen so far.
            resolvable &= left_times < right_times[-1]
        if not resolvable.any():
            self._left_times = [left_times]
            self._left_values = [left_values]
            self._right_times = [right_times]
            self._right_values = [right_values]
            return []
        matched_successor = np.clip(successor[resolvable], 0, right_times.size - 1)
        with np.errstate(all="ignore"):
            combined = self.combine(left_values[resolvable], right_values[matched_successor])
        output = EventBatch(
            left_times[resolvable],
            np.full(int(resolvable.sum()), 1, dtype=np.int64),
            np.asarray(combined, dtype=np.float64),
            tracer=self.tracer,
            label="clipjoin",
        )
        self._left_times = [left_times[~resolvable]]
        self._left_values = [left_values[~resolvable]]
        self._right_times = [right_times]
        self._right_values = [right_values]
        return [output]
