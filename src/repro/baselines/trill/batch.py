"""Columnar event batches for the Trill-like baseline engine.

Trill (Chandramouli et al., VLDB 2015) organises streams into columnar
batches of events carrying explicit sync times, durations and payloads.
The baseline reproduces that data layout.  Crucially — and in contrast to
LifeStream's statically allocated FWindows — every operator invocation
allocates a *new* output batch, which models the allocation churn and the
loss of cross-operator locality that the paper attributes to batch-oriented
engines (Sections 5.2 and 8.5).
"""

from __future__ import annotations

import numpy as np


class EventBatch:
    """A columnar batch of temporal events: sync time, duration, payload."""

    __slots__ = ("sync_times", "durations", "values")

    def __init__(
        self,
        sync_times: np.ndarray,
        durations: np.ndarray,
        values: np.ndarray,
        tracer=None,
        label: str = "batch",
    ) -> None:
        self.sync_times = np.asarray(sync_times, dtype=np.int64)
        self.durations = np.asarray(durations, dtype=np.int64)
        self.values = np.asarray(values, dtype=np.float64)
        if tracer is not None:
            # Every batch is a fresh allocation in the simulated address
            # space: the tracer sees new addresses for every operator output.
            buffer_id = tracer.allocate(self.nbytes, label)
            tracer.touch(buffer_id, 0, self.nbytes)

    @staticmethod
    def empty(tracer=None) -> "EventBatch":
        """A batch holding no events."""
        return EventBatch(
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.float64),
            tracer=tracer,
        )

    def __len__(self) -> int:
        return int(self.sync_times.size)

    @property
    def nbytes(self) -> int:
        """Total bytes of the three columns."""
        return int(self.sync_times.nbytes + self.durations.nbytes + self.values.nbytes)

    def is_empty(self) -> bool:
        """True when the batch holds no events."""
        return self.sync_times.size == 0

    def time_span(self) -> tuple[int, int]:
        """First sync time and last event end (or ``(0, 0)`` when empty)."""
        if self.is_empty():
            return (0, 0)
        return int(self.sync_times[0]), int(self.sync_times[-1] + self.durations[-1])

    def select(self, mask: np.ndarray, tracer=None) -> "EventBatch":
        """New batch holding only the events where *mask* is True."""
        return EventBatch(
            self.sync_times[mask],
            self.durations[mask],
            self.values[mask],
            tracer=tracer,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<EventBatch {len(self)} events {self.time_span()}>"


def batches_from_arrays(
    times: np.ndarray,
    values: np.ndarray,
    batch_size: int,
    period: int,
    tracer=None,
):
    """Split event arrays into fixed-size :class:`EventBatch` chunks (a generator)."""
    times = np.asarray(times, dtype=np.int64)
    values = np.asarray(values, dtype=np.float64)
    for start in range(0, times.size, batch_size):
        stop = min(start + batch_size, times.size)
        chunk_times = times[start:stop]
        yield EventBatch(
            chunk_times,
            np.full(chunk_times.size, period, dtype=np.int64),
            values[start:stop],
            tracer=tracer,
            label="ingest",
        )


def concatenate_batches(batches: list[EventBatch]) -> tuple[np.ndarray, np.ndarray]:
    """Merge a list of batches into ``(times, values)`` arrays."""
    non_empty = [batch for batch in batches if not batch.is_empty()]
    if not non_empty:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)
    times = np.concatenate([batch.sync_times for batch in non_empty])
    values = np.concatenate([batch.values for batch in non_empty])
    return times, values
