"""Hand-written NumPy/SciPy implementations of the Table 3 operations.

These are the "NumLib" baseline of the paper: the kind of ad-hoc, per-
operation code a data scientist writes directly against numerical libraries.
Each function is fast in isolation (it is a thin wrapper over vectorised
NumPy/SciPy kernels) but carries no notion of event time — the temporal
bookkeeping (alignment, gap handling, joining) has to be re-implemented by
hand around them, which is exactly the programmability and end-to-end
performance problem the paper describes in Section 3.
"""

from __future__ import annotations

import numpy as np
from scipy import signal as scipy_signal


def normalize(values: np.ndarray, window_samples: int) -> np.ndarray:
    """Standard-score normalisation over consecutive windows (Table 3: Normalize).

    Mirrors ``sklearn.preprocessing.scale`` applied per window: each window
    of *window_samples* samples is centred on its mean and divided by its
    standard deviation.  The trailing partial window is normalised with its
    own statistics.
    """
    values = np.asarray(values, dtype=np.float64)
    result = np.empty_like(values)
    for start in range(0, values.size, window_samples):
        window = values[start : start + window_samples]
        mean = window.mean()
        std = window.std()
        if std == 0:
            result[start : start + window_samples] = 0.0
        else:
            result[start : start + window_samples] = (window - mean) / std
    return result


def design_fir_taps(numtaps: int, cutoff_hz: float, sample_rate_hz: float) -> np.ndarray:
    """Design a low-pass FIR filter (Hamming window method, as scipy.firwin does)."""
    return scipy_signal.firwin(numtaps, cutoff_hz, fs=sample_rate_hz)


def passfilter(
    values: np.ndarray,
    numtaps: int = 51,
    cutoff_hz: float = 40.0,
    sample_rate_hz: float = 500.0,
) -> np.ndarray:
    """Finite-impulse-response frequency filtering (Table 3: PassFilter)."""
    taps = design_fir_taps(numtaps, cutoff_hz, sample_rate_hz)
    return scipy_signal.lfilter(taps, 1.0, np.asarray(values, dtype=np.float64))


def fill_const(
    times: np.ndarray,
    values: np.ndarray,
    period: int,
    max_gap: int,
    constant: float = 0.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Fill gaps smaller than *max_gap* ticks with a constant (Table 3: FillConst).

    Takes explicit timestamp/value arrays (the NumLib baseline has no
    implicit grid) and returns new arrays with the filled samples inserted.
    """
    return _fill(times, values, period, max_gap, lambda left, right: constant)


def fill_mean(
    times: np.ndarray,
    values: np.ndarray,
    period: int,
    max_gap: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Fill gaps smaller than *max_gap* ticks with the mean of the gap's endpoints."""
    return _fill(times, values, period, max_gap, lambda left, right: 0.5 * (left + right))


def _fill(times, values, period, max_gap, fill_value_fn):
    times = np.asarray(times, dtype=np.int64)
    values = np.asarray(values, dtype=np.float64)
    if times.size < 2:
        return times.copy(), values.copy()
    gaps = np.diff(times)
    gap_positions = np.flatnonzero((gaps > period) & (gaps <= max_gap))
    if gap_positions.size == 0:
        return times.copy(), values.copy()
    pieces_t = []
    pieces_v = []
    previous = 0
    for position in gap_positions:
        pieces_t.append(times[previous : position + 1])
        pieces_v.append(values[previous : position + 1])
        missing = np.arange(times[position] + period, times[position + 1], period, dtype=np.int64)
        pieces_t.append(missing)
        pieces_v.append(
            np.full(missing.size, fill_value_fn(values[position], values[position + 1]))
        )
        previous = position + 1
    pieces_t.append(times[previous:])
    pieces_v.append(values[previous:])
    return np.concatenate(pieces_t), np.concatenate(pieces_v)


def resample(
    times: np.ndarray,
    values: np.ndarray,
    new_period: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Linear-interpolation resampling onto a new period (Table 3: Resample)."""
    times = np.asarray(times, dtype=np.int64)
    values = np.asarray(values, dtype=np.float64)
    if times.size == 0:
        return times.copy(), values.copy()
    new_times = np.arange(times[0], times[-1] + 1, new_period, dtype=np.int64)
    new_values = np.interp(new_times, times, values)
    return new_times, new_values


def pure_python_inner_join(
    left_times: np.ndarray,
    left_values: np.ndarray,
    right_times: np.ndarray,
    right_values: np.ndarray,
    right_duration: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Temporal inner join written in pure Python.

    The paper notes that "operations like temporal Inner Join required pure
    Python implementation" in the NumLib pipelines (Section 7), because the
    numerical libraries have no notion of event time.  This two-pointer merge
    is the idiomatic way to write it; its per-event interpreter cost is what
    drags the NumLib end-to-end numbers down in Figure 9(c).

    Returns ``(times, left_payloads, right_payloads)`` for every left event
    that overlaps a right event.
    """
    out_times: list[int] = []
    out_left: list[float] = []
    out_right: list[float] = []
    lt = left_times.tolist()
    lv = left_values.tolist()
    rt = right_times.tolist()
    rv = right_values.tolist()
    j = 0
    n_right = len(rt)
    for t, value in zip(lt, lv):
        while j + 1 < n_right and rt[j + 1] <= t:
            j += 1
        if j < n_right and rt[j] <= t < rt[j] + right_duration:
            out_times.append(t)
            out_left.append(value)
            out_right.append(rv[j])
    return (
        np.asarray(out_times, dtype=np.int64),
        np.asarray(out_left, dtype=np.float64),
        np.asarray(out_right, dtype=np.float64),
    )


def vectorized_upsample_throughput_kernel(values: np.ndarray, factor: int) -> np.ndarray:
    """The SciPy-style upsampling kernel used for the Table 1 comparison."""
    positions = np.arange(values.size * factor) / factor
    return np.interp(positions, np.arange(values.size), values)
