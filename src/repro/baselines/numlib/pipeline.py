"""The NumLib end-to-end pipeline (Figure 3 of the paper, written by hand).

This is the baseline a data scientist would write today: each stage calls a
vectorised NumPy/SciPy kernel, but every stage also has to re-establish the
temporal bookkeeping by hand (materialising timestamp arrays, re-aligning
grids, converting between representations), and the temporal join is pure
Python.  The per-stage array copies and the interpreted join are what limit
its end-to-end performance despite the fast kernels (Sections 3 and 8.3).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.baselines.numlib import ops


@dataclass
class NumLibRunStats:
    """Counters describing one NumLib pipeline execution."""

    elapsed_seconds: float = 0.0
    events_ingested: int = 0
    events_emitted: int = 0

    @property
    def throughput_events_per_second(self) -> float:
        """Ingested events per wall-clock second."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.events_ingested / self.elapsed_seconds


def run_e2e_pipeline(
    ecg_times: np.ndarray,
    ecg_values: np.ndarray,
    abp_times: np.ndarray,
    abp_values: np.ndarray,
    ecg_period: int = 2,
    abp_period: int = 8,
    fill_gap: int = 64,
    normalize_window_samples: int = 500,
) -> tuple[np.ndarray, np.ndarray, NumLibRunStats]:
    """Hand-written Figure 3 pipeline: impute → upsample ABP → normalize → join."""
    stats = NumLibRunStats(events_ingested=int(ecg_times.size + abp_times.size))
    began = time.perf_counter()

    # Signal value imputation (fill small gaps with the neighbouring mean).
    ecg_times_f, ecg_values_f = ops.fill_mean(ecg_times, ecg_values, ecg_period, fill_gap)
    abp_times_f, abp_values_f = ops.fill_mean(abp_times, abp_values, abp_period, fill_gap * 4)

    # Upsample ABP from 125 Hz to the ECG rate (500 Hz).
    abp_times_u, abp_values_u = ops.resample(abp_times_f, abp_values_f, ecg_period)

    # Normalize both signals with per-window standard scores.
    ecg_norm = ops.normalize(ecg_values_f, normalize_window_samples)
    abp_norm = ops.normalize(abp_values_u, normalize_window_samples)

    # Temporal inner join: pure Python, as the paper notes.
    out_times, left_payload, right_payload = ops.pure_python_inner_join(
        ecg_times_f, ecg_norm, abp_times_u, abp_norm, right_duration=ecg_period
    )
    combined = left_payload - right_payload

    stats.elapsed_seconds = time.perf_counter() - began
    stats.events_emitted = int(out_times.size)
    return out_times, combined, stats


def run_operation(
    name: str,
    times: np.ndarray,
    values: np.ndarray,
    period: int,
) -> tuple[np.ndarray, NumLibRunStats]:
    """Run one Table 3 operation by name (used by the Figure 9(b) benchmark)."""
    stats = NumLibRunStats(events_ingested=int(times.size))
    began = time.perf_counter()
    if name == "normalize":
        result = ops.normalize(values, window_samples=60_000 // period)
    elif name == "passfilter":
        result = ops.passfilter(values, sample_rate_hz=1000.0 / period)
    elif name == "fillconst":
        _, result = ops.fill_const(times, values, period, max_gap=32 * period, constant=0.0)
    elif name == "fillmean":
        _, result = ops.fill_mean(times, values, period, max_gap=32 * period)
    elif name == "resample":
        _, result = ops.resample(times, values, new_period=max(1, period // 4))
    else:
        raise ValueError(f"unknown operation {name!r}")
    stats.elapsed_seconds = time.perf_counter() - began
    stats.events_emitted = int(np.asarray(result).size)
    return np.asarray(result), stats
