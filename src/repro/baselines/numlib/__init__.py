"""NumLib baseline: hand-written NumPy/SciPy data-processing pipelines."""

from repro.baselines.numlib.ops import (
    design_fir_taps,
    fill_const,
    fill_mean,
    normalize,
    passfilter,
    pure_python_inner_join,
    resample,
    vectorized_upsample_throughput_kernel,
)
from repro.baselines.numlib.pipeline import NumLibRunStats, run_e2e_pipeline, run_operation

__all__ = [
    "normalize",
    "passfilter",
    "design_fir_taps",
    "fill_const",
    "fill_mean",
    "resample",
    "pure_python_inner_join",
    "vectorized_upsample_throughput_kernel",
    "run_e2e_pipeline",
    "run_operation",
    "NumLibRunStats",
]
