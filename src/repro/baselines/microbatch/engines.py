"""Distributed-style micro-batch / record-at-a-time engines.

Table 1 of the paper compares the single-core temporal-join throughput of
Spark Streaming, Storm, Flink and Trill.  The distributed engines lose by
an order of magnitude because they were designed for cluster execution:
events travel as individual record objects, get (de)serialised between
operators and tasks, and micro-batch scheduling adds a fixed overhead per
batch.

This module models those engines at that level of abstraction.  Each engine
configuration differs only in its micro-batch size, per-batch scheduling
overhead and whether records are serialised between stages — the three
knobs that determine single-machine throughput for this class of system.
The point of the reproduction is the *ordering* of Table 1 (Storm < Spark <
Flink ≪ Trill ≪ SciPy), not the absolute numbers.
"""

from __future__ import annotations

import pickle
import time
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class MicroBatchConfig:
    """Execution model parameters of one distributed-style engine."""

    name: str
    #: Events per micro-batch (records are still processed one at a time).
    micro_batch_size: int
    #: Simulated scheduling/coordination overhead per micro-batch, in seconds.
    per_batch_overhead_seconds: float
    #: Whether records are serialised when crossing operator boundaries.
    serialize_records: bool


#: Spark Structured Streaming: large micro-batches, heavy per-batch scheduling,
#: serialised shuffles.
SPARK_LIKE = MicroBatchConfig("spark", micro_batch_size=2000, per_batch_overhead_seconds=0.004, serialize_records=True)
#: Storm: record-at-a-time (tiny batches), per-tuple acking overhead.
STORM_LIKE = MicroBatchConfig("storm", micro_batch_size=200, per_batch_overhead_seconds=0.0015, serialize_records=True)
#: Flink: pipelined record-at-a-time with lighter coordination than Storm.
FLINK_LIKE = MicroBatchConfig("flink", micro_batch_size=2000, per_batch_overhead_seconds=0.002, serialize_records=True)

ENGINE_CONFIGS = {config.name: config for config in (SPARK_LIKE, STORM_LIKE, FLINK_LIKE)}


@dataclass
class MicroBatchRunStats:
    """Counters describing one micro-batch-engine execution."""

    engine: str
    elapsed_seconds: float
    events_ingested: int
    events_emitted: int

    @property
    def throughput_events_per_second(self) -> float:
        """Ingested events per wall-clock second."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.events_ingested / self.elapsed_seconds


class MicroBatchEngine:
    """Record-at-a-time engine with micro-batch scheduling and serialisation."""

    def __init__(self, config: MicroBatchConfig):
        self.config = config

    @staticmethod
    def from_name(name: str) -> "MicroBatchEngine":
        """Build the engine matching one of the Table 1 systems."""
        if name not in ENGINE_CONFIGS:
            raise ValueError(f"unknown engine {name!r}; expected one of {sorted(ENGINE_CONFIGS)}")
        return MicroBatchEngine(ENGINE_CONFIGS[name])

    def _stage_boundary(self, records: list) -> list:
        """Simulate an operator/task boundary (serialisation + copy)."""
        if self.config.serialize_records:
            return pickle.loads(pickle.dumps(records))
        return list(records)

    def _schedule_micro_batch(self) -> float:
        """Pay the engine's per-micro-batch scheduling cost in real time."""
        time.sleep(self.config.per_batch_overhead_seconds)
        return self.config.per_batch_overhead_seconds

    def temporal_join(
        self,
        left_times: np.ndarray,
        left_values: np.ndarray,
        right_times: np.ndarray,
        right_values: np.ndarray,
        right_duration: int,
    ) -> tuple[list[tuple[int, float, float]], MicroBatchRunStats]:
        """Record-at-a-time temporal inner join (the Table 1 benchmark)."""
        config = self.config
        began = time.perf_counter()
        results: list[tuple[int, float, float]] = []
        right_records = [
            (int(t), float(v)) for t, v in zip(right_times.tolist(), right_values.tolist())
        ]
        overhead = 0.0
        j = 0
        n_right = len(right_records)
        left_records = [
            (int(t), float(v)) for t, v in zip(left_times.tolist(), left_values.tolist())
        ]
        for start in range(0, len(left_records), config.micro_batch_size):
            batch = left_records[start : start + config.micro_batch_size]
            batch = self._stage_boundary(batch)
            overhead += self._schedule_micro_batch()
            for t, value in batch:
                while j + 1 < n_right and right_records[j + 1][0] <= t:
                    j += 1
                if j < n_right:
                    rt, rv = right_records[j]
                    if rt <= t < rt + right_duration:
                        results.append((t, value, rv))
        elapsed = time.perf_counter() - began
        stats = MicroBatchRunStats(
            engine=config.name,
            elapsed_seconds=elapsed,
            events_ingested=int(left_times.size + right_times.size),
            events_emitted=len(results),
        )
        return results, stats

    def upsample(
        self,
        times: np.ndarray,
        values: np.ndarray,
        factor: int,
    ) -> tuple[list[tuple[int, float]], MicroBatchRunStats]:
        """Record-at-a-time linear-interpolation upsampling."""
        config = self.config
        began = time.perf_counter()
        records = [(int(t), float(v)) for t, v in zip(times.tolist(), values.tolist())]
        results: list[tuple[int, float]] = []
        overhead = 0.0
        for start in range(0, len(records), config.micro_batch_size):
            batch = records[start : start + config.micro_batch_size]
            batch = self._stage_boundary(batch)
            overhead += self._schedule_micro_batch()
            for index, (t, value) in enumerate(batch):
                absolute = start + index
                if absolute + 1 < len(records):
                    next_t, next_v = records[absolute + 1]
                else:
                    next_t, next_v = t + (t - records[absolute - 1][0] if absolute else 1), value
                step = (next_t - t) / factor
                for k in range(factor):
                    fraction = k / factor
                    results.append((int(t + k * step), value + fraction * (next_v - value)))
        elapsed = time.perf_counter() - began
        stats = MicroBatchRunStats(
            engine=config.name,
            elapsed_seconds=elapsed,
            events_ingested=int(times.size),
            events_emitted=len(results),
        )
        return results, stats
