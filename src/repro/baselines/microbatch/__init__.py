"""Distributed-style micro-batch engines standing in for Spark/Storm/Flink."""

from repro.baselines.microbatch.engines import (
    ENGINE_CONFIGS,
    FLINK_LIKE,
    SPARK_LIKE,
    STORM_LIKE,
    MicroBatchConfig,
    MicroBatchEngine,
    MicroBatchRunStats,
)

__all__ = [
    "MicroBatchEngine",
    "MicroBatchConfig",
    "MicroBatchRunStats",
    "ENGINE_CONFIGS",
    "SPARK_LIKE",
    "STORM_LIKE",
    "FLINK_LIKE",
]
