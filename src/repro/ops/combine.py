"""Named binary combiners for join operators.

Joins take a ``combine(left, right)`` callable.  Inline lambdas work, but
every lambda is a distinct code object compiled at a distinct site, so two
authoring paths building "the same" join (the Python builders and the LSQL
front-end) would produce plans with different
:func:`~repro.serve.cache.plan_signature`\\ s and the
:class:`~repro.serve.cache.PlanCache` could never share them.  Referencing
one of these module-level functions from both paths makes the fingerprints
trivially identical — the LSQL resolver maps the combiner names of the
grammar (``sub``, ``add``, ...) onto exactly these objects.
"""

from __future__ import annotations

import numpy as np


def sub(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """``left - right`` (the Figure 3 pipeline's ECG−ABP combiner)."""
    return left - right


def add(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """``left + right``."""
    return left + right


def mul(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """``left * right``."""
    return left * right


def div(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """``left / right`` (NaN/inf semantics follow NumPy)."""
    return left / right


def first(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """Keep the left payload (pairing join that only gates on the right)."""
    return left


def second(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """Keep the right payload."""
    return right


#: Grammar-visible combiner names, as the LSQL resolver exposes them.
COMBINERS = {
    "sub": sub,
    "add": add,
    "mul": mul,
    "div": div,
    "first": first,
    "second": second,
}
