"""Shared numeric kernels used by the Table 3 operations.

Each kernel has the signature required by the LifeStream ``Transform``
operator — ``f(values, present) -> values`` or ``-> (values, present)`` —
and a factory that closes over the operation's parameters.  The same
kernels are reused by the Trill-baseline pipelines (wrapped in
``TrillWindowTransform``) so that both engines execute the identical
numerical work and only the engine architecture differs.
"""

from __future__ import annotations

from typing import Callable

import numpy as np
from scipy import signal as scipy_signal


def zscore_kernel() -> Callable[[np.ndarray, np.ndarray], tuple[np.ndarray, np.ndarray]]:
    """Standard-score normalisation of a window (Table 3: Normalize)."""

    def kernel(values: np.ndarray, present: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        if not present.any():
            return values, present
        observed = values[present]
        mean = observed.mean()
        std = observed.std()
        if std == 0:
            return np.zeros_like(values), present
        return (values - mean) / std, present

    return kernel


def fir_filter_kernel(
    numtaps: int, cutoff_hz: float, sample_rate_hz: float
) -> Callable[[np.ndarray, np.ndarray], tuple[np.ndarray, np.ndarray]]:
    """Low-pass FIR frequency filtering of a window (Table 3: PassFilter)."""
    taps = scipy_signal.firwin(numtaps, cutoff_hz, fs=sample_rate_hz)

    def kernel(values: np.ndarray, present: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        padded = np.where(present, values, 0.0)
        filtered = scipy_signal.lfilter(taps, 1.0, padded)
        return filtered, present

    return kernel


def fill_const_kernel(
    max_gap_samples: int, constant: float = 0.0
) -> Callable[[np.ndarray, np.ndarray], tuple[np.ndarray, np.ndarray]]:
    """Fill absent runs of at most *max_gap_samples* with a constant (FillConst)."""

    def kernel(values: np.ndarray, present: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        new_values, new_present = _fill_gaps(
            values, present, max_gap_samples, lambda left, right: constant
        )
        return new_values, new_present

    return kernel


def fill_mean_kernel(
    max_gap_samples: int,
) -> Callable[[np.ndarray, np.ndarray], tuple[np.ndarray, np.ndarray]]:
    """Fill absent runs with the mean of the surrounding present values (FillMean)."""

    def kernel(values: np.ndarray, present: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        return _fill_gaps(values, present, max_gap_samples, lambda left, right: 0.5 * (left + right))

    return kernel


def _fill_gaps(
    values: np.ndarray,
    present: np.ndarray,
    max_gap_samples: int,
    fill_value_fn: Callable[[float, float], float],
) -> tuple[np.ndarray, np.ndarray]:
    """Fill interior runs of absent samples no longer than *max_gap_samples*."""
    new_values = values.copy()
    new_present = present.copy()
    if present.all() or not present.any():
        return new_values, new_present
    present_idx = np.flatnonzero(present)
    gap_starts = present_idx[:-1] + 1
    gap_ends = present_idx[1:]  # inclusive end is gap_ends - 1; gap length below
    gap_lengths = present_idx[1:] - present_idx[:-1] - 1
    for start, end, length, left_idx, right_idx in zip(
        gap_starts, gap_ends, gap_lengths, present_idx[:-1], present_idx[1:]
    ):
        if length <= 0 or length > max_gap_samples:
            continue
        fill = fill_value_fn(float(values[left_idx]), float(values[right_idx]))
        new_values[start:end] = fill
        new_present[start:end] = True
    return new_values, new_present


def interpolate_gaps_kernel(
    max_gap_samples: int,
) -> Callable[[np.ndarray, np.ndarray], tuple[np.ndarray, np.ndarray]]:
    """Fill short gaps by linear interpolation between the surrounding samples."""

    def kernel(values: np.ndarray, present: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        new_values = values.copy()
        new_present = present.copy()
        if present.all() or not present.any():
            return new_values, new_present
        present_idx = np.flatnonzero(present)
        all_idx = np.arange(values.size)
        interpolated = np.interp(all_idx, present_idx, values[present_idx])
        gap_lengths = np.diff(present_idx) - 1
        for left_idx, right_idx, length in zip(present_idx[:-1], present_idx[1:], gap_lengths):
            if 0 < length <= max_gap_samples:
                new_values[left_idx + 1 : right_idx] = interpolated[left_idx + 1 : right_idx]
                new_present[left_idx + 1 : right_idx] = True
        return new_values, new_present

    return kernel


def clamp_kernel(
    low: float, high: float
) -> Callable[[np.ndarray, np.ndarray], tuple[np.ndarray, np.ndarray]]:
    """Mask out events whose payload falls outside ``[low, high]`` (event masking)."""

    def kernel(values: np.ndarray, present: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        keep = present & (values >= low) & (values <= high)
        return values, keep

    return kernel
