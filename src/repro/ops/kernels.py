"""Shared numeric kernels used by the Table 3 operations.

Each kernel has the signature required by the LifeStream ``Transform``
operator — ``f(values, present) -> values`` or ``-> (values, present)`` —
and a factory that closes over the operation's parameters.  The same
kernels are reused by the Trill-baseline pipelines (wrapped in
``TrillWindowTransform``) so that both engines execute the identical
numerical work and only the engine architecture differs.

Kernels that can process many windows in one NumPy call additionally carry a
``batched`` attribute: ``kernel.batched(values_2d, mask_2d)`` receives one
row per window (shape ``(n_windows, samples_per_window)``) and returns what
calling the scalar kernel row-by-row would.  The vectorized execution
backend dispatches these through ``Transform.compute_run`` to amortise the
per-call NumPy overhead that dominates the serial profile.  Batched variants
must stay **bit-identical** to the scalar kernel; where the batched math
cannot reproduce a row exactly (partially-present rows whose reductions run
over a compacted subset), the row is delegated to the scalar kernel.
"""

from __future__ import annotations

from typing import Callable

import numpy as np
from scipy import signal as scipy_signal


def zscore_kernel() -> Callable[[np.ndarray, np.ndarray], tuple[np.ndarray, np.ndarray]]:
    """Standard-score normalisation of a window (Table 3: Normalize)."""

    def kernel(values: np.ndarray, present: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        if not present.any():
            return values, present
        observed = values[present]
        mean = observed.mean()
        std = observed.std()
        if std == 0:
            return np.zeros_like(values), present
        return (values - mean) / std, present

    scratch: dict[tuple[int, int], tuple[np.ndarray, np.ndarray]] = {}

    def _normalize_rows(rows: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        # Fully-present rows: `values[present]` is the whole row, so the
        # row-wise mean/std reduce the very same contiguous operands in the
        # same order as the scalar kernel — bit-identical.  The reductions
        # are issued as raw ``np.add.reduce`` (the ufunc ``np.mean``/
        # ``np.std`` bottom out in, with the same pairwise summation), and
        # the std is spelled out so the centered operand feeds the
        # normalisation directly instead of being recomputed.  The two
        # whole-run temporaries are recycled per shape (runs alternate
        # between a handful of lengths, so this stays bounded).
        samples = rows.shape[1]
        buffers = scratch.get(rows.shape)
        if buffers is None:
            buffers = scratch[rows.shape] = (np.empty_like(rows), np.empty_like(rows))
        centered, squared = buffers
        means = np.add.reduce(rows, axis=1) / samples
        np.subtract(rows, means[:, None], out=centered)
        np.multiply(centered, centered, out=squared)
        stds = np.sqrt(np.add.reduce(squared, axis=1) / samples)
        if bool(stds.all()):
            # No zero-variance rows (the overwhelmingly common case).
            return np.divide(centered, stds[:, None], out=out)
        flat = stds == 0.0
        safe = np.where(flat, 1.0, stds)
        normed = np.divide(centered, safe[:, None], out=out)
        normed[flat] = 0.0
        return normed

    def batched(
        rows: np.ndarray, mask: np.ndarray, out: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        full = np.logical_and.reduce(mask, axis=1)
        # Normalise every row as if fully present (row-wise math is
        # row-independent, so full rows are unaffected by the extras), then
        # overwrite the partially-present rows with the scalar kernel's
        # math — their reductions run over the compacted subset, which 2-D
        # math cannot reproduce bit-identically.
        new_values = _normalize_rows(rows, out)
        if not bool(full.all()):
            for row in np.flatnonzero(~full):
                present = mask[row]
                if not present.any():
                    new_values[row] = rows[row]
                    continue
                observed = rows[row][present]
                mean = np.add.reduce(observed) / observed.size
                deviations = observed - mean
                std = np.sqrt(np.add.reduce(deviations * deviations) / observed.size)
                if std == 0.0:
                    new_values[row] = 0.0
                else:
                    new_values[row] = (rows[row] - mean) / std
        return new_values, mask

    batched.accepts_out = True
    kernel.batched = batched
    return kernel


def fir_filter_kernel(
    numtaps: int, cutoff_hz: float, sample_rate_hz: float
) -> Callable[[np.ndarray, np.ndarray], tuple[np.ndarray, np.ndarray]]:
    """Low-pass FIR frequency filtering of a window (Table 3: PassFilter)."""
    taps = scipy_signal.firwin(numtaps, cutoff_hz, fs=sample_rate_hz)

    def kernel(values: np.ndarray, present: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        padded = np.where(present, values, 0.0)
        filtered = scipy_signal.lfilter(taps, 1.0, padded)
        return filtered, present

    return kernel


def fill_const_kernel(
    max_gap_samples: int, constant: float = 0.0
) -> Callable[[np.ndarray, np.ndarray], tuple[np.ndarray, np.ndarray]]:
    """Fill absent runs of at most *max_gap_samples* with a constant (FillConst)."""

    fill = lambda left, right: constant  # noqa: E731 - tiny closure shared below

    def kernel(values: np.ndarray, present: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        return _fill_gaps(values, present, max_gap_samples, fill)

    kernel.batched = _make_fill_batched(max_gap_samples, fill)
    return kernel


def fill_mean_kernel(
    max_gap_samples: int,
) -> Callable[[np.ndarray, np.ndarray], tuple[np.ndarray, np.ndarray]]:
    """Fill absent runs with the mean of the surrounding present values (FillMean)."""

    fill = lambda left, right: 0.5 * (left + right)  # noqa: E731

    def kernel(values: np.ndarray, present: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        return _fill_gaps(values, present, max_gap_samples, fill)

    kernel.batched = _make_fill_batched(max_gap_samples, fill)
    return kernel


def _fill_gaps(
    values: np.ndarray,
    present: np.ndarray,
    max_gap_samples: int,
    fill_value_fn: Callable[[float, float], float],
) -> tuple[np.ndarray, np.ndarray]:
    """Fill interior runs of absent samples no longer than *max_gap_samples*."""
    new_values = values.copy()
    new_present = present.copy()
    if present.all() or not present.any():
        return new_values, new_present
    present_idx = np.flatnonzero(present)
    gap_starts = present_idx[:-1] + 1
    gap_ends = present_idx[1:]  # inclusive end is gap_ends - 1; gap length below
    gap_lengths = present_idx[1:] - present_idx[:-1] - 1
    for start, end, length, left_idx, right_idx in zip(
        gap_starts, gap_ends, gap_lengths, present_idx[:-1], present_idx[1:]
    ):
        if length <= 0 or length > max_gap_samples:
            continue
        fill = fill_value_fn(float(values[left_idx]), float(values[right_idx]))
        new_values[start:end] = fill
        new_present[start:end] = True
    return new_values, new_present


def _make_fill_batched(
    max_gap_samples: int, fill_value_fn: Callable[[float, float], float]
) -> Callable[[np.ndarray, np.ndarray], tuple[np.ndarray, np.ndarray]]:
    """Row-batched gap filling as pure 2-D array arithmetic.

    For every absent slot, running maxima locate the nearest present sample
    on each side *within its row*; interior gaps no longer than the limit
    are filled from those two neighbours.  Each filled slot computes
    ``fill_value_fn`` on exactly the two doubles the scalar :func:`_fill_gaps`
    would pass for its gap, so results are bit-identical row for row.
    """

    def batched(
        rows: np.ndarray, mask: np.ndarray, out: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        gappy = ~np.logical_and.reduce(mask, axis=1)
        if not gappy.any():
            # Nothing to fill: the inputs are returned as-is (callers treat
            # kernel results as read-only and copy them into the output).
            return rows, mask
        if out is None:
            new_values = rows.copy()
        else:
            np.copyto(out, rows)
            new_values = out
        new_mask = mask.copy()
        # Only rows containing at least one absent slot need the running-max
        # scans; in typical streams that is a small fraction of the run.
        sub_rows = rows[gappy]
        sub_mask = mask[gappy]
        if not sub_mask.any():
            return new_values, new_mask
        samples = rows.shape[1]
        columns = np.arange(samples)
        # Index of the nearest present sample at-or-before / at-or-after each
        # slot (-1 / `samples` when none exists on that side).
        before = np.maximum.accumulate(np.where(sub_mask, columns, -1), axis=1)
        reversed_mask = sub_mask[:, ::-1]
        after_rev = np.maximum.accumulate(np.where(reversed_mask, columns, -1), axis=1)
        after = (samples - 1) - after_rev[:, ::-1]
        fillable = (
            ~sub_mask
            & (before >= 0)
            & (after < samples)
            & (after - before - 1 <= max_gap_samples)
        )
        if fillable.any():
            gappy_indices = np.flatnonzero(gappy)
            fill_rows, fill_cols = np.nonzero(fillable)
            left = sub_rows[fill_rows, before[fill_rows, fill_cols]]
            right = sub_rows[fill_rows, after[fill_rows, fill_cols]]
            out_rows = gappy_indices[fill_rows]
            new_values[out_rows, fill_cols] = fill_value_fn(left, right)
            new_mask[out_rows, fill_cols] = True
        return new_values, new_mask

    batched.accepts_out = True
    return batched


def interpolate_gaps_kernel(
    max_gap_samples: int,
) -> Callable[[np.ndarray, np.ndarray], tuple[np.ndarray, np.ndarray]]:
    """Fill short gaps by linear interpolation between the surrounding samples."""

    def kernel(values: np.ndarray, present: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        new_values = values.copy()
        new_present = present.copy()
        if present.all() or not present.any():
            return new_values, new_present
        present_idx = np.flatnonzero(present)
        all_idx = np.arange(values.size)
        interpolated = np.interp(all_idx, present_idx, values[present_idx])
        gap_lengths = np.diff(present_idx) - 1
        for left_idx, right_idx, length in zip(present_idx[:-1], present_idx[1:], gap_lengths):
            if 0 < length <= max_gap_samples:
                new_values[left_idx + 1 : right_idx] = interpolated[left_idx + 1 : right_idx]
                new_present[left_idx + 1 : right_idx] = True
        return new_values, new_present

    return kernel


def clamp_kernel(
    low: float, high: float
) -> Callable[[np.ndarray, np.ndarray], tuple[np.ndarray, np.ndarray]]:
    """Mask out events whose payload falls outside ``[low, high]`` (event masking)."""

    def kernel(values: np.ndarray, present: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        keep = present & (values >= low) & (values <= high)
        return values, keep

    # The expression is purely element-wise, so it is its own batched form.
    kernel.batched = kernel
    return kernel
