"""The Table 3 operation benchmarks, expressed on each engine.

For every operation the paper benchmarks (Normalize, PassFilter, FillConst,
FillMean, Resample) this module provides

* a LifeStream query fragment (``lifestream_*``) that can be chained onto
  any :class:`~repro.core.query.Query`,
* the matching Trill-baseline operator chain (``trill_*``),

so the Figure 9(b) benchmark runs the *same* numerical kernels on both
engines and only the engine architecture differs.  The NumLib versions live
in :mod:`repro.baselines.numlib`.
"""

from __future__ import annotations

from repro.baselines.trill.operators import TrillOperator, TrillResample, TrillWindowTransform
from repro.core.query import Query
from repro.core.timeutil import TICKS_PER_MINUTE, TICKS_PER_SECOND, period_from_hz
from repro.ops import kernels

#: Default processing window used by the paper's benchmarks (one minute).
DEFAULT_WINDOW = TICKS_PER_MINUTE

#: Operation names in the order Figure 9(b) lists them.
OPERATION_NAMES = ("normalize", "passfilter", "fillconst", "fillmean", "resample")


# ---------------------------------------------------------------------------
# LifeStream query fragments
# ---------------------------------------------------------------------------


def lifestream_normalize(query: Query, window: int = DEFAULT_WINDOW) -> Query:
    """Standard-score normalisation over fixed windows (Table 3: Normalize)."""
    return query.transform(window, kernels.zscore_kernel())


def lifestream_normalize_multicast(query: Query, window: int = DEFAULT_WINDOW) -> Query:
    """Normalize written purely with temporal primitives (multicast + aggregates).

    Functionally equivalent to :func:`lifestream_normalize`; exists to
    exercise the Listing 1 style of composing aggregates and joins, and as
    the query used in the cache study (it chains several operators so
    cross-operator locality matters).
    """
    return query.multicast(
        lambda s: s.join(
            s.tumbling_window(window).mean(), lambda value, mean: value - mean
        ).join(s.tumbling_window(window).std(), lambda centered, std: centered / std)
    )


def lifestream_passfilter(
    query: Query,
    frequency_hz: float,
    window: int = DEFAULT_WINDOW,
    numtaps: int = 51,
    cutoff_hz: float = 40.0,
) -> Query:
    """FIR low-pass filtering (Table 3: PassFilter)."""
    return query.transform(window, kernels.fir_filter_kernel(numtaps, cutoff_hz, frequency_hz))


def lifestream_fillconst(
    query: Query,
    period: int,
    max_gap: int = TICKS_PER_SECOND,
    constant: float = 0.0,
    window: int = DEFAULT_WINDOW,
) -> Query:
    """Fill small gaps with a constant value (Table 3: FillConst)."""
    return query.transform(window, kernels.fill_const_kernel(max_gap // period, constant))


def lifestream_fillmean(
    query: Query,
    period: int,
    max_gap: int = TICKS_PER_SECOND,
    window: int = DEFAULT_WINDOW,
) -> Query:
    """Fill small gaps with the mean of the surrounding values (Table 3: FillMean)."""
    return query.transform(window, kernels.fill_mean_kernel(max_gap // period))


def lifestream_resample(query: Query, to_frequency_hz: float) -> Query:
    """Linear-interpolation resampling (Table 3: Resample)."""
    return query.resample(frequency_hz=to_frequency_hz, mode="interpolate")


def lifestream_operation(
    name: str,
    source_name: str,
    frequency_hz: float,
    window: int = DEFAULT_WINDOW,
) -> Query:
    """Build the LifeStream query for one Table 3 operation by name."""
    period = period_from_hz(frequency_hz)
    query = Query.source(source_name, frequency_hz=frequency_hz)
    if name == "normalize":
        return lifestream_normalize(query, window)
    if name == "passfilter":
        return lifestream_passfilter(query, frequency_hz, window)
    if name == "fillconst":
        return lifestream_fillconst(query, period, window=window)
    if name == "fillmean":
        return lifestream_fillmean(query, period, window=window)
    if name == "resample":
        # Upsample onto a finer grid (quarter period, floor of one tick), the
        # same target the Trill and NumLib versions of this benchmark use.
        return query.resample(period=max(1, period // 4), mode="interpolate")
    raise ValueError(f"unknown operation {name!r}; expected one of {OPERATION_NAMES}")


# ---------------------------------------------------------------------------
# Trill-baseline operator chains
# ---------------------------------------------------------------------------


def _wrap_window_kernel(kernel):
    """Adapt a ``(values, present) -> ...`` kernel to Trill's ``(times, values)`` transforms."""

    def adapted(times, values):
        import numpy as np

        present = np.ones(values.shape, dtype=bool)
        result = kernel(values, present)
        if isinstance(result, tuple):
            new_values, new_present = result
            return times[new_present], new_values[new_present]
        return times, result

    return adapted


def trill_operation(
    name: str,
    frequency_hz: float,
    window: int = DEFAULT_WINDOW,
    tracer=None,
) -> list[TrillOperator]:
    """Build the Trill-baseline operator chain for one Table 3 operation."""
    period = period_from_hz(frequency_hz)
    if name == "normalize":
        return [TrillWindowTransform(window, _wrap_window_kernel(kernels.zscore_kernel()), tracer)]
    if name == "passfilter":
        kernel = kernels.fir_filter_kernel(51, 40.0, frequency_hz)
        return [TrillWindowTransform(window, _wrap_window_kernel(kernel), tracer)]
    if name == "fillconst":
        kernel = _trill_fill_kernel(period, TICKS_PER_SECOND, constant=0.0)
        return [TrillWindowTransform(window, kernel, tracer)]
    if name == "fillmean":
        kernel = _trill_fill_kernel(period, TICKS_PER_SECOND, constant=None)
        return [TrillWindowTransform(window, kernel, tracer)]
    if name == "resample":
        return [TrillResample(max(1, period // 4), tracer)]
    raise ValueError(f"unknown operation {name!r}; expected one of {OPERATION_NAMES}")


def _trill_fill_kernel(period: int, max_gap: int, constant: float | None):
    """Gap filling over explicit timestamps (the Trill baseline has no implicit grid)."""

    def kernel(times, values):
        from repro.baselines.numlib import ops as numlib_ops

        if constant is None:
            return numlib_ops.fill_mean(times, values, period, max_gap)
        return numlib_ops.fill_const(times, values, period, max_gap, constant)

    return kernel
