"""Physiological data-processing operations (Table 3 of the paper)."""

from repro.ops.kernels import (
    clamp_kernel,
    fill_const_kernel,
    fill_mean_kernel,
    fir_filter_kernel,
    interpolate_gaps_kernel,
    zscore_kernel,
)
from repro.ops.operations import (
    DEFAULT_WINDOW,
    OPERATION_NAMES,
    lifestream_fillconst,
    lifestream_fillmean,
    lifestream_normalize,
    lifestream_normalize_multicast,
    lifestream_operation,
    lifestream_passfilter,
    lifestream_resample,
    trill_operation,
)

__all__ = [
    "zscore_kernel",
    "fir_filter_kernel",
    "fill_const_kernel",
    "fill_mean_kernel",
    "interpolate_gaps_kernel",
    "clamp_kernel",
    "lifestream_normalize",
    "lifestream_normalize_multicast",
    "lifestream_passfilter",
    "lifestream_fillconst",
    "lifestream_fillmean",
    "lifestream_resample",
    "lifestream_operation",
    "trill_operation",
    "OPERATION_NAMES",
    "DEFAULT_WINDOW",
]
