"""Interval sets used for coverage tracking and targeted query processing.

An :class:`IntervalSet` is a sorted collection of disjoint half-open integer
intervals ``[start, end)``.  Sources report where data actually exists as an
interval set; the compiler propagates those sets through the query graph
(intersecting them at joins) and the runtime only executes windows whose
span intersects the final output coverage.  This is the mechanism behind the
paper's *targeted query processing* (Section 5.3).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

import numpy as np


def _normalize(intervals: Iterable[tuple[int, int]]) -> list[tuple[int, int]]:
    """Sort, drop empty intervals, and merge overlapping/adjacent intervals."""
    cleaned = [(int(s), int(e)) for s, e in intervals if e > s]
    cleaned.sort()
    merged: list[tuple[int, int]] = []
    for start, end in cleaned:
        if merged and start <= merged[-1][1]:
            prev_start, prev_end = merged[-1]
            merged[-1] = (prev_start, max(prev_end, end))
        else:
            merged.append((start, end))
    return merged


class IntervalSet:
    """An immutable set of disjoint, sorted, half-open integer intervals."""

    __slots__ = ("_intervals",)

    def __init__(self, intervals: Iterable[tuple[int, int]] = ()) -> None:
        self._intervals: tuple[tuple[int, int], ...] = tuple(_normalize(intervals))

    # -- constructors -----------------------------------------------------

    @staticmethod
    def empty() -> "IntervalSet":
        """The empty interval set."""
        return IntervalSet(())

    @staticmethod
    def single(start: int, end: int) -> "IntervalSet":
        """An interval set containing the single interval ``[start, end)``."""
        return IntervalSet([(start, end)])

    @staticmethod
    def from_timestamps(times: Sequence[int] | np.ndarray, period: int) -> "IntervalSet":
        """Build coverage from event timestamps of a periodic stream.

        Consecutive events that are exactly one period apart are merged into
        a single interval; any larger gap starts a new interval.  Each event
        covers ``[t, t + period)``.
        """
        arr = np.asarray(times, dtype=np.int64)
        if arr.size == 0:
            return IntervalSet.empty()
        arr = np.sort(arr)
        gaps = np.flatnonzero(np.diff(arr) > period)
        starts = np.concatenate(([0], gaps + 1))
        ends = np.concatenate((gaps, [arr.size - 1]))
        intervals = [(int(arr[s]), int(arr[e]) + period) for s, e in zip(starts, ends)]
        return IntervalSet(intervals)

    @staticmethod
    def from_events(times: Sequence[int] | np.ndarray, durations: Sequence[int] | np.ndarray) -> "IntervalSet":
        """Build coverage from events with explicit durations.

        Each event covers ``[t, t + duration)``; touching or overlapping
        active intervals are merged.  Used when events outlive their period
        (for example aggregate outputs whose duration equals the window).
        """
        times = np.asarray(times, dtype=np.int64)
        durations = np.asarray(durations, dtype=np.int64)
        if times.size == 0:
            return IntervalSet.empty()
        order = np.argsort(times, kind="stable")
        times = times[order]
        ends = times + durations[order]
        running_end = np.maximum.accumulate(ends)
        breaks = np.flatnonzero(times[1:] > running_end[:-1])
        starts = np.concatenate(([0], breaks + 1))
        stops = np.concatenate((breaks, [times.size - 1]))
        intervals = [(int(times[s]), int(running_end[e])) for s, e in zip(starts, stops)]
        return IntervalSet(intervals)

    # -- basic protocol ---------------------------------------------------

    def __iter__(self) -> Iterator[tuple[int, int]]:
        return iter(self._intervals)

    def __len__(self) -> int:
        return len(self._intervals)

    def __bool__(self) -> bool:
        return bool(self._intervals)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalSet):
            return NotImplemented
        return self._intervals == other._intervals

    def __hash__(self) -> int:
        return hash(self._intervals)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"IntervalSet({list(self._intervals)!r})"

    @property
    def intervals(self) -> tuple[tuple[int, int], ...]:
        """The underlying tuple of ``(start, end)`` pairs."""
        return self._intervals

    # -- queries ----------------------------------------------------------

    def is_empty(self) -> bool:
        """True when the set contains no intervals."""
        return not self._intervals

    def total_length(self) -> int:
        """Sum of the lengths of all intervals."""
        return sum(end - start for start, end in self._intervals)

    def span(self) -> tuple[int, int]:
        """The smallest single interval containing every interval in the set."""
        if not self._intervals:
            return (0, 0)
        return (self._intervals[0][0], self._intervals[-1][1])

    def contains(self, timestamp: int) -> bool:
        """True when *timestamp* lies inside one of the intervals."""
        for start, end in self._intervals:
            if start <= timestamp < end:
                return True
            if start > timestamp:
                return False
        return False

    def overlaps(self, start: int, end: int) -> bool:
        """True when ``[start, end)`` intersects any interval in the set."""
        for s, e in self._intervals:
            if s < end and start < e:
                return True
            if s >= end:
                return False
        return False

    # -- set algebra ------------------------------------------------------

    def union(self, other: "IntervalSet") -> "IntervalSet":
        """The union of two interval sets."""
        return IntervalSet(list(self._intervals) + list(other._intervals))

    def intersect(self, other: "IntervalSet") -> "IntervalSet":
        """The intersection of two interval sets."""
        result: list[tuple[int, int]] = []
        i, j = 0, 0
        a, b = self._intervals, other._intervals
        while i < len(a) and j < len(b):
            start = max(a[i][0], b[j][0])
            end = min(a[i][1], b[j][1])
            if start < end:
                result.append((start, end))
            if a[i][1] <= b[j][1]:
                i += 1
            else:
                j += 1
        return IntervalSet(result)

    def difference(self, other: "IntervalSet") -> "IntervalSet":
        """Intervals of *self* with every interval of *other* removed."""
        result: list[tuple[int, int]] = []
        for start, end in self._intervals:
            pieces = [(start, end)]
            for o_start, o_end in other._intervals:
                next_pieces: list[tuple[int, int]] = []
                for p_start, p_end in pieces:
                    if o_end <= p_start or o_start >= p_end:
                        next_pieces.append((p_start, p_end))
                        continue
                    if p_start < o_start:
                        next_pieces.append((p_start, o_start))
                    if o_end < p_end:
                        next_pieces.append((o_end, p_end))
                pieces = next_pieces
            result.extend(pieces)
        return IntervalSet(result)

    # -- transformations --------------------------------------------------

    def shift(self, offset: int) -> "IntervalSet":
        """Translate every interval by *offset* ticks."""
        return IntervalSet([(s + offset, e + offset) for s, e in self._intervals])

    def dilate(self, before: int, after: int) -> "IntervalSet":
        """Grow every interval by *before* ticks on the left and *after* on the right."""
        return IntervalSet([(s - before, e + after) for s, e in self._intervals])

    def align_to_grid(self, step: int, offset: int = 0) -> "IntervalSet":
        """Round every interval outward to the grid ``offset + k * step``."""
        aligned = []
        for start, end in self._intervals:
            lo = offset + ((start - offset) // step) * step
            hi = offset + -((offset - end) // step) * step
            aligned.append((lo, hi))
        return IntervalSet(aligned)

    def clip(self, start: int, end: int) -> "IntervalSet":
        """Intersect the set with the single interval ``[start, end)``."""
        return self.intersect(IntervalSet.single(start, end))

    # -- iteration helpers ------------------------------------------------

    def iter_windows(self, window: int, offset: int = 0) -> Iterator[int]:
        """Yield window start times on the grid ``offset + k * window``.

        Every window ``[t, t + window)`` that intersects at least one
        interval of the set is yielded exactly once, in increasing order of
        ``t``.  This is how the targeted executor enumerates the output
        FWindows worth computing.
        """
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        last_yielded: int | None = None
        for start, end in self._intervals:
            first = offset + ((start - offset) // window) * window
            t = first
            if last_yielded is not None and t <= last_yielded:
                t = last_yielded + window
            while t < end:
                yield t
                last_yielded = t
                t += window

    def count_windows(self, window: int, offset: int = 0) -> int:
        """Number of windows :meth:`iter_windows` would yield."""
        return sum(1 for _ in self.iter_windows(window, offset))
