"""Operator fusion: collapse element-wise chains into single kernel nodes.

Element-wise operators (Select, Where, Shift, AlterDuration) translate
FWindow slots one-to-one, so a chain of them is a single vectorised sweep
executed as several plan nodes.  ``fuse_elementwise`` rewrites the plan
graph, replacing every maximal single-consumer chain of two or more such
nodes with one node carrying a
:class:`~repro.core.operators.fused.FusedElementwise` operator.

The pass runs after locality tracing and lineage analysis, so the fused
node inherits the chain head's dimension and coverage verbatim; the fused
operator recomputes the composed descriptor and checks it against the
chain's (defence in depth).  Nodes with more than one consumer — multicast
fan-out points — are never absorbed into a chain, so a shared stream is
still computed exactly once per window.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.graph import OperatorNode, PlanNode, topological_order
from repro.core.operators.fused import FUSABLE_OPERATORS, FusedElementwise
from repro.errors import CompilationError


@dataclass
class FusionReport:
    """Outcome of one fusion rewrite."""

    #: The (possibly replaced) sink of the rewritten plan.
    sink: PlanNode
    #: Number of fused kernel nodes created.
    chains_fused: int
    #: Number of original plan nodes absorbed into fused kernels.
    nodes_eliminated: int


def _parents(sink: PlanNode) -> dict[int, list[PlanNode]]:
    parents: dict[int, list[PlanNode]] = {}
    for node in topological_order(sink):
        for child in node.inputs:
            parents.setdefault(id(child), []).append(node)
    return parents


def _is_fusable(node: PlanNode) -> bool:
    return (
        isinstance(node, OperatorNode)
        and len(node.inputs) == 1
        and isinstance(node.operator, FUSABLE_OPERATORS)
    )


def fuse_elementwise(sink: PlanNode, max_length: int | None = None) -> FusionReport:
    """Rewrite the graph rooted at *sink*, fusing element-wise chains.

    ``max_length`` caps the stages per fused kernel: a longer chain is cut
    into consecutive segments of at most that many stages (each segment of
    two or more stages fuses; a leftover single stage keeps its original
    node).  The cut point is a profile-guided knob
    (:class:`~repro.core.compiler.hints.CompileHints`) — output is identical
    wherever the chain is cut, only the kernel granularity changes.
    """
    if max_length is not None and max_length < 2:
        raise CompilationError(
            f"fusion max_length must be at least 2 (a fused chain needs two "
            f"stages), got {max_length}"
        )
    parents = _parents(sink)

    def absorbable(node: PlanNode) -> bool:
        """Can *node* be an interior (non-head) element of a chain?"""
        return _is_fusable(node) and len(parents.get(id(node), ())) == 1

    chains_fused = 0
    nodes_eliminated = 0
    new_sink = sink
    for node in topological_order(sink):
        if not _is_fusable(node):
            continue
        node_parents = parents.get(id(node), ())
        if len(node_parents) == 1 and _is_fusable(node_parents[0]):
            continue  # interior of some chain; handled from its head
        # *node* is a chain head: walk inward while the input is absorbable.
        chain = [node]
        current = node.inputs[0]
        while absorbable(current):
            chain.append(current)
            current = current.inputs[0]
        if len(chain) < 2:
            continue
        chain.reverse()  # innermost first
        head = chain[-1]
        if max_length is None or len(chain) <= max_length:
            segments = [chain]
        else:
            segments = [
                chain[cut : cut + max_length]
                for cut in range(0, len(chain), max_length)
            ]
        produced = chain[0].inputs[0]  # the chain's upstream input
        for segment in segments:
            if len(segment) == 1:
                # A leftover stage keeps its original node; only its input
                # is rewired onto the fused segment below it.
                segment[0].inputs = [produced]
                produced = segment[0]
                continue
            fused_op = FusedElementwise(
                [(link.operator, link.inputs[0].descriptor) for link in segment]
            )
            fused = OperatorNode(
                "fused_" + "+".join(link.name for link in segment), fused_op, [produced]
            )
            tail = segment[-1]
            if fused.descriptor != tail.descriptor:  # pragma: no cover - defensive
                raise CompilationError(
                    f"fused chain descriptor {fused.descriptor} does not match the "
                    f"original head descriptor {tail.descriptor}"
                )
            fused.dimension = tail.dimension
            fused.coverage = tail.coverage
            produced = fused
            chains_fused += 1
            nodes_eliminated += len(segment)
        if produced is not head:
            for parent in parents.get(id(head), ()):
                parent.inputs = [
                    produced if inp is head else inp for inp in parent.inputs
                ]
            if head is sink:
                new_sink = produced
    return FusionReport(sink=new_sink, chains_fused=chains_fused, nodes_eliminated=nodes_eliminated)
