"""Operator fusion: collapse element-wise chains into single kernel nodes.

Element-wise operators (Select, Where, Shift, AlterDuration) translate
FWindow slots one-to-one, so a chain of them is a single vectorised sweep
executed as several plan nodes.  ``fuse_elementwise`` rewrites the plan
graph, replacing every maximal single-consumer chain of two or more such
nodes with one node carrying a
:class:`~repro.core.operators.fused.FusedElementwise` operator.

The pass runs after locality tracing and lineage analysis, so the fused
node inherits the chain head's dimension and coverage verbatim; the fused
operator recomputes the composed descriptor and checks it against the
chain's (defence in depth).  Nodes with more than one consumer — multicast
fan-out points — are never absorbed into a chain, so a shared stream is
still computed exactly once per window.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.graph import OperatorNode, PlanNode, topological_order
from repro.core.operators.fused import FUSABLE_OPERATORS, FusedElementwise
from repro.errors import CompilationError


@dataclass
class FusionReport:
    """Outcome of one fusion rewrite."""

    #: The (possibly replaced) sink of the rewritten plan.
    sink: PlanNode
    #: Number of fused kernel nodes created.
    chains_fused: int
    #: Number of original plan nodes absorbed into fused kernels.
    nodes_eliminated: int


def _parents(sink: PlanNode) -> dict[int, list[PlanNode]]:
    parents: dict[int, list[PlanNode]] = {}
    for node in topological_order(sink):
        for child in node.inputs:
            parents.setdefault(id(child), []).append(node)
    return parents


def _is_fusable(node: PlanNode) -> bool:
    return (
        isinstance(node, OperatorNode)
        and len(node.inputs) == 1
        and isinstance(node.operator, FUSABLE_OPERATORS)
    )


def fuse_elementwise(sink: PlanNode) -> FusionReport:
    """Rewrite the graph rooted at *sink*, fusing element-wise chains."""
    parents = _parents(sink)

    def absorbable(node: PlanNode) -> bool:
        """Can *node* be an interior (non-head) element of a chain?"""
        return _is_fusable(node) and len(parents.get(id(node), ())) == 1

    chains_fused = 0
    nodes_eliminated = 0
    new_sink = sink
    for node in topological_order(sink):
        if not _is_fusable(node):
            continue
        node_parents = parents.get(id(node), ())
        if len(node_parents) == 1 and _is_fusable(node_parents[0]):
            continue  # interior of some chain; handled from its head
        # *node* is a chain head: walk inward while the input is absorbable.
        chain = [node]
        current = node.inputs[0]
        while absorbable(current):
            chain.append(current)
            current = current.inputs[0]
        if len(chain) < 2:
            continue
        chain.reverse()  # innermost first
        source = chain[0].inputs[0]
        fused_op = FusedElementwise(
            [(link.operator, link.inputs[0].descriptor) for link in chain]
        )
        fused = OperatorNode(
            "fused_" + "+".join(link.name for link in chain), fused_op, [source]
        )
        head = chain[-1]
        if fused.descriptor != head.descriptor:  # pragma: no cover - defensive
            raise CompilationError(
                f"fused chain descriptor {fused.descriptor} does not match the "
                f"original head descriptor {head.descriptor}"
            )
        fused.dimension = head.dimension
        fused.coverage = head.coverage
        for parent in parents.get(id(head), ()):
            parent.inputs = [fused if inp is head else inp for inp in parent.inputs]
        if head is sink:
            new_sink = fused
        chains_fused += 1
        nodes_eliminated += len(chain)
    return FusionReport(sink=new_sink, chains_fused=chains_fused, nodes_eliminated=nodes_eliminated)
