"""Static memory allocation (Section 5.2 of the paper).

Once locality tracing has fixed every FWindow dimension, the bounded-memory
property of periodic streams (at most ``dimension / period`` events per
window) makes the memory footprint of the whole plan statically computable.
The planner allocates every FWindow buffer exactly once, before execution
starts; the runtime then reuses those buffers for every window it slides
through, eliminating allocation and deallocation overhead on the hot path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.fwindow import FWindow
from repro.core.graph import OperatorNode, PlanNode, topological_order
from repro.errors import MemoryPlanError


@dataclass(frozen=True)
class MemoryPlan:
    """Summary of the buffers pre-allocated for a compiled plan."""

    #: Number of FWindows allocated (one per plan node).
    fwindow_count: int
    #: Total bytes across all FWindow buffers.
    total_bytes: int
    #: Largest single FWindow, in bytes.
    largest_fwindow_bytes: int
    #: Per-node breakdown: node name -> bytes.
    per_node_bytes: dict[str, int]

    def __str__(self) -> str:
        return (
            f"MemoryPlan({self.fwindow_count} FWindows, "
            f"{self.total_bytes / 1024:.1f} KiB total)"
        )


def estimate_footprint(sink: PlanNode) -> int:
    """Upper bound (in bytes) of the plan's intermediate-result memory.

    Uses the bounded-memory property only — it can be called before the
    buffers are allocated, as long as locality tracing has run.
    """
    total = 0
    for node in topological_order(sink):
        if node.dimension is None:
            raise MemoryPlanError(
                f"node {node.name} has no dimension; run locality tracing first"
            )
        capacity = node.dimension // node.descriptor.period
        # values (float64) + durations (int64) + bitvector (bool)
        total += capacity * (8 + 8 + 1)
    return total


def allocate(sink: PlanNode, tracer=None) -> MemoryPlan:
    """Allocate every FWindow and operator state for the plan rooted at *sink*."""
    per_node: dict[str, int] = {}
    for node in topological_order(sink):
        if node.dimension is None:
            raise MemoryPlanError(
                f"node {node.name} has no dimension; run locality tracing first"
            )
        node.fwindow = FWindow(
            node.descriptor,
            node.dimension,
            name=node.name,
            tracer=tracer,
        )
        if isinstance(node, OperatorNode):
            node.state = node.operator.make_state()
        per_node[node.name] = node.fwindow.memory_bytes()
    total = sum(per_node.values())
    largest = max(per_node.values()) if per_node else 0
    return MemoryPlan(
        fwindow_count=len(per_node),
        total_bytes=total,
        largest_fwindow_bytes=largest,
        per_node_bytes=per_node,
    )
