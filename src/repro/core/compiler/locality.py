"""Locality tracing (Section 5.2 of the paper).

Locality tracing is a static analysis over the computation graph that
adjusts the dimension of every FWindow so that the input and output
dimensions of every operator match.  When they do, each intermediate result
is consumed immediately by the next operator while it is still resident in
cache, which is what gives LifeStream its end-to-end cache locality.

The procedure mirrors Figure 6 of the paper: every dimension starts at the
stream's period and the analysis repeatedly reconciles mismatched operator
inputs/outputs by raising dimensions to least common multiples until the
graph reaches a fixed point.  Because every constraint is of the form
"dimension must be a multiple of X", the iteration converges (dimensions
only ever grow, bounded by the LCM of all constraints).

After convergence the dimensions are scaled up uniformly so that the
largest FWindow covers at least the user-requested window size (the paper
uses one minute), which amortises per-window bookkeeping over a large batch
without breaking any alignment constraint.
"""

from __future__ import annotations

from repro.core.graph import OperatorNode, PlanNode, SourceNode, topological_order
from repro.core.timeutil import lcm
from repro.errors import LocalityTracingError

#: Safety valve: if the fix-point has not converged after this many sweeps the
#: query almost certainly contains inconsistent period constraints.
_MAX_SWEEPS = 64


def trace_dimensions(sink: PlanNode, window_size: int) -> dict[int, int]:
    """Compute a consistent FWindow dimension for every node of the plan.

    Returns a mapping from ``id(node)`` to the dimension (in ticks) assigned
    to that node's FWindow.  Raises :class:`LocalityTracingError` when the
    constraints cannot be satisfied.
    """
    if window_size <= 0:
        raise LocalityTracingError(f"window size must be positive, got {window_size}")

    nodes = topological_order(sink)
    dims: dict[int, int] = {}

    # Step 1: seed every dimension with the stream period plus the operator's
    # own constraint (aggregation window, chop period, transform window, ...).
    for node in nodes:
        constraint = node.descriptor.period
        if isinstance(node, OperatorNode):
            input_descriptors = [inp.descriptor for inp in node.inputs]
            constraint = lcm(constraint, node.operator.dimension_constraint(input_descriptors))
        dims[id(node)] = constraint

    # Step 2: reconcile operator input/output dimensions until stable.  Every
    # operator in the engine consumes and produces FWindows positioned at the
    # same sync time, so the consistency requirement is that a node's
    # dimension is a common multiple of its own constraint and its inputs'.
    for _ in range(_MAX_SWEEPS):
        changed = False
        for node in nodes:
            if not isinstance(node, OperatorNode):
                continue
            current = dims[id(node)]
            merged = current
            for inp in node.inputs:
                merged = lcm(merged, dims[id(inp)])
            if merged != current:
                dims[id(node)] = merged
                changed = True
            for inp in node.inputs:
                required = node.operator.required_input_dimension(merged, node.inputs.index(inp))
                reconciled = lcm(dims[id(inp)], required)
                if reconciled != dims[id(inp)]:
                    dims[id(inp)] = reconciled
                    changed = True
        if not changed:
            break
    else:
        raise LocalityTracingError(
            "locality tracing did not converge; the query mixes incompatible "
            "periods or window parameters"
        )

    # Step 3: verify consistency (defence in depth — the fix-point should
    # already guarantee this).
    for node in nodes:
        if node.descriptor.period and dims[id(node)] % node.descriptor.period != 0:
            raise LocalityTracingError(
                f"node {node.name} was assigned dimension {dims[id(node)]} which is "
                f"not a multiple of its period {node.descriptor.period}"
            )

    # Step 4: scale up to the requested window size.  Multiplying every
    # dimension by the same integer preserves all multiple-of constraints.
    largest = max(dims.values())
    if largest < window_size:
        factor = -(-window_size // largest)  # ceil division
        for key in dims:
            dims[key] *= factor
    return dims


def assign_dimensions(sink: PlanNode, window_size: int) -> dict[int, int]:
    """Run :func:`trace_dimensions` and store the result on each plan node."""
    dims = trace_dimensions(sink, window_size)
    for node in topological_order(sink):
        node.dimension = dims[id(node)]
    return dims


def uniform_dimension(sink: PlanNode) -> int:
    """Return the single dimension shared by the whole plan.

    After locality tracing all nodes of a connected query share one
    dimension (the Figure 6 end state); this helper asserts that and returns
    it, which the executor uses as its window-iteration step.
    """
    dims = {node.dimension for node in topological_order(sink)}
    if len(dims) != 1 or None in dims:
        raise LocalityTracingError(f"plan does not have a uniform dimension: {dims}")
    return dims.pop()


def describe_trace(sink: PlanNode) -> list[str]:
    """Human-readable trace of the assigned dimensions, for plan explanation."""
    lines = []
    for node in topological_order(sink):
        kind = "source" if isinstance(node, SourceNode) else "operator"
        lines.append(f"{node.name:<24} {kind:<8} {node.descriptor}[{node.dimension}]")
    return lines
