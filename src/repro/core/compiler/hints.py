"""Profile-derived compilation hints.

Compilation normally fixes every tunable — batching width, fusion
boundaries, the vectorized run cap, targeted-vs-eager enumeration, the
execution backend — once, from static heuristics, before a single window
has run.  :class:`CompileHints` is the feedback path back into the
compiler: a small, immutable record of the choices a runtime profile
(:class:`~repro.core.runtime.profile.PlanProfile`) recommends, threaded
through :func:`~repro.core.compiler.compile_plan` into the pass pipeline.

Hints are *advisory*: every field defaults to ``None`` ("keep the static
decision"), each pass consumes only the fields it understands, and a plan
compiled with hints executes bit-identically to one compiled without —
hints only move work between equivalent execution strategies.  The
adaptive serving layer (:mod:`repro.serve.service`) compiles hot plan
signatures a second time with hints derived from their merged profiles and
hot-swaps the result into live sessions at a tick boundary.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CompilationError


@dataclass(frozen=True)
class CompileHints:
    """Profile-driven overrides for the pass pipeline and backend choice.

    ``None`` in any field means "no opinion" — the pipeline keeps its
    static default for that decision.
    """

    #: Windows per dispatch for the batched backend's widened twin.
    batch_windows: int | None = None
    #: Cap on windows per contiguous run buffer for the vectorized backend.
    max_run_windows: int | None = None
    #: Cut fused element-wise chains at this many stages (fusion boundary).
    max_fusion_length: int | None = None
    #: Enumerate output windows from coverage (True) or the eager span (False).
    targeted: bool | None = None
    #: Execution backend name the profile recommends (informational; the
    #: serving layer builds the backend via ``recommend_backend``).
    backend: str | None = None
    #: Human-readable provenance ("profile: 12 ticks, mean run 23.5 ...").
    reason: str = ""

    def __post_init__(self) -> None:
        for field_name in ("batch_windows", "max_run_windows", "max_fusion_length"):
            value = getattr(self, field_name)
            if value is not None and value < 1:
                raise CompilationError(
                    f"hint {field_name} must be positive, got {value}"
                )
        if self.max_fusion_length is not None and self.max_fusion_length < 2:
            raise CompilationError(
                f"hint max_fusion_length must be at least 2 (a fused chain "
                f"needs two stages), got {self.max_fusion_length}"
            )

    def cache_key(self) -> tuple:
        """Hashable identity of the *decisions* (the reason text is excluded,
        so two profiles that converge on the same choices share one compiled
        template in the plan cache)."""
        return (
            "compile-hints",
            self.batch_windows,
            self.max_run_windows,
            self.max_fusion_length,
            self.targeted,
            self.backend,
        )

    def describe(self) -> str:
        """Compact one-line summary for ``explain()`` and log lines."""
        parts = []
        if self.backend is not None:
            parts.append(f"backend={self.backend}")
        if self.batch_windows is not None:
            parts.append(f"batch_windows={self.batch_windows}")
        if self.max_run_windows is not None:
            parts.append(f"max_run_windows={self.max_run_windows}")
        if self.max_fusion_length is not None:
            parts.append(f"max_fusion_length={self.max_fusion_length}")
        if self.targeted is not None:
            parts.append(f"targeted={self.targeted}")
        return ", ".join(parts) if parts else "no overrides"
