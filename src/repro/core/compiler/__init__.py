"""Query compilation: spec → plan IR → passes → executable plan.

``build_plan`` turns the declarative :class:`~repro.core.query.Query` spec
into a graph of plan nodes, binding named sources to concrete
:class:`~repro.core.sources.StreamSource` objects.  ``compile_plan`` then
drives the ordered pass pipeline of :mod:`repro.core.compiler.passes`:

1. ``normalize``        — spec canonicalisation + plan-IR construction,
2. ``lineage``          — coverage propagation for targeted query
   processing (:mod:`repro.core.compiler.lineage`),
3. ``locality``         — locality tracing (:mod:`repro.core.compiler.locality`),
4. ``fuse_elementwise`` — element-wise operator fusion
   (:mod:`repro.core.compiler.fusion`),
5. ``memory``           — static memory allocation
   (:mod:`repro.core.compiler.memory`),
6. ``verify``           — static plan verification
   (:mod:`repro.analysis.plan_verifier`), whose findings land on
   :attr:`CompiledPlan.diagnostics`.

Every pass is timed; :meth:`CompiledPlan.explain` reports the timeline.
``compile_plan(..., strict=True)`` raises
:class:`~repro.errors.PlanVerificationError` when verification produces
error-level diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.compiler.fusion import FusionReport, fuse_elementwise
from repro.core.compiler.hints import CompileHints
from repro.core.compiler.lineage import (
    backward_time_map,
    forward_time_map,
    propagate_coverage,
    redundant_source_coverage,
    trace_output_to_source,
)
from repro.core.compiler.locality import assign_dimensions, trace_dimensions, uniform_dimension
from repro.core.compiler.memory import MemoryPlan, allocate, estimate_footprint
from repro.core.compiler.passes import (
    MAX_OPTIMIZATION_LEVEL,
    CompilerPass,
    FuseElementwisePass,
    LineagePass,
    LocalityPass,
    MemoryPass,
    NormalizePass,
    PassContext,
    PassManager,
    PassTiming,
    VectorizePass,
    VerifyPass,
)
from repro.core.graph import OperatorNode, PlanNode, SourceNode
from repro.core.intervals import IntervalSet
from repro.core.query import Query, QuerySpec
from repro.core.sources import StreamSource
from repro.core.timeutil import TICKS_PER_MINUTE
from repro.errors import CompilationError, PlanVerificationError, QueryConstructionError

__all__ = [
    "build_plan",
    "compile_plan",
    "CompiledPlan",
    "CompileHints",
    "MemoryPlan",
    "PassManager",
    "PassContext",
    "PassTiming",
    "CompilerPass",
    "NormalizePass",
    "LineagePass",
    "LocalityPass",
    "FuseElementwisePass",
    "MemoryPass",
    "VectorizePass",
    "VerifyPass",
    "MAX_OPTIMIZATION_LEVEL",
    "FusionReport",
    "fuse_elementwise",
    "assign_dimensions",
    "trace_dimensions",
    "uniform_dimension",
    "allocate",
    "estimate_footprint",
    "propagate_coverage",
    "forward_time_map",
    "backward_time_map",
    "trace_output_to_source",
    "redundant_source_coverage",
]


def build_plan(query: Query, sources: dict[str, StreamSource] | None = None) -> PlanNode:
    """Instantiate the plan graph for *query*, binding its named sources.

    Spec nodes shared via ``Multicast`` become a single shared plan node, so
    the resulting structure is a DAG, not a tree.
    """
    sources = sources or {}
    memo: dict[int, PlanNode] = {}

    def build(spec: QuerySpec) -> PlanNode:
        existing = memo.get(id(spec))
        if existing is not None:
            return existing
        if spec.kind == "source":
            source = spec.bound_source
            if source is None:
                if spec.source_name not in sources:
                    raise QueryConstructionError(
                        f"query references source {spec.source_name!r} but no such "
                        f"source was provided (available: {sorted(sources)})"
                    )
                source = sources[spec.source_name]
            declared = spec.declared_descriptor
            if declared is not None and declared.period != source.descriptor.period:
                raise QueryConstructionError(
                    f"source {spec.source_name!r} was declared with period "
                    f"{declared.period} but the bound source has period "
                    f"{source.descriptor.period}"
                )
            node: PlanNode = SourceNode(spec.name, source)
        elif spec.kind == "operator":
            inputs = [build(child) for child in spec.inputs]
            node = OperatorNode(spec.name, spec.operator, inputs)
        else:  # pragma: no cover - defensive
            raise CompilationError(f"unknown spec kind {spec.kind!r}")
        memo[id(spec)] = node
        return node

    return build(query.spec)


@dataclass
class CompiledPlan:
    """The result of compiling a query: an executable plan plus its metadata."""

    sink: PlanNode
    window_size: int
    memory_plan: MemoryPlan
    output_coverage: IntervalSet
    #: Timed record of the pass pipeline that produced this plan.
    pass_timings: list[PassTiming] = field(default_factory=list)
    #: Free-form per-pass facts (e.g. fusion statistics).
    pass_metadata: dict = field(default_factory=dict)
    #: The query and bound sources the plan was compiled from.  Execution
    #: backends that need a re-shaped twin of the plan (e.g. the batched
    #: backend's widened windows) recompile from these.
    query: Query | None = None
    sources: dict[str, StreamSource] | None = None
    tracer: object = None
    optimization_level: int = MAX_OPTIMIZATION_LEVEL
    #: Profile-derived overrides the plan was compiled with (None when the
    #: pipeline ran on its static defaults).
    hints: CompileHints | None = None
    #: Findings from the verify pass (:class:`repro.analysis.Diagnostic`).
    #: Empty for clean plans and for custom pipelines without a verify pass.
    diagnostics: list = field(default_factory=list)

    def instantiate(
        self,
        sources: dict[str, StreamSource] | None = None,
        strict: bool = True,
    ) -> "CompiledPlan":
        """Clone this plan's runtime state, sharing the immutable pass output.

        Multi-tenant serving runs the *same* compiled query over many
        independent client streams.  Recompiling per client repeats work
        whose result cannot change — spec normalization, locality tracing,
        fusion — because it depends only on the query shape, the window size
        and the optimization level.  ``instantiate`` therefore rebuilds only
        the per-client state: a fresh graph of plan nodes (reusing the
        template's operator objects, which are pure descriptions), freshly
        allocated FWindow buffers of the same traced dimensions, and fresh
        operator carry state.

        ``sources`` rebinds source nodes by name to a client's own streams
        (every node with a matching name, including repeated references to
        one source name from separate spec nodes); unnamed nodes keep the
        template's source.  A replacement source must have the template
        descriptor (same offset and period) — the traced dimensions are only
        valid on that grid.  Coverage is re-propagated over the clone, since
        each client's data has its own gaps.  With ``strict`` (the default)
        replacement names that match no source node raise; ``strict=False``
        ignores them, matching ``build_plan``'s tolerance of extra entries
        in a shared sources dict.
        """
        from repro.core.fwindow import FWindow

        replacements = dict(sources or {})
        rebound: set[str] = set()
        memo: dict[int, PlanNode] = {}

        def clone(node: PlanNode) -> PlanNode:
            existing = memo.get(id(node))
            if existing is not None:
                return existing
            if isinstance(node, SourceNode):
                source = replacements.get(node.name, node.source)
                if node.name in replacements:
                    rebound.add(node.name)
                if source.descriptor != node.source.descriptor:
                    raise CompilationError(
                        f"cannot instantiate plan: replacement source {node.name!r} "
                        f"has descriptor {source.descriptor} but the plan was "
                        f"compiled for {node.source.descriptor}; recompile for "
                        f"streams on a different grid"
                    )
                fresh: PlanNode = SourceNode(node.name, source)
            else:
                fresh = OperatorNode(
                    node.name, node.operator, [clone(child) for child in node.inputs]
                )
                fresh.state = node.operator.make_state()
            fresh.dimension = node.dimension
            if node.fwindow is not None:
                fresh.fwindow = FWindow(
                    fresh.descriptor, node.dimension, name=node.name, tracer=self.tracer
                )
            memo[id(node)] = fresh
            return fresh

        sink = clone(self.sink)
        unmatched = set(replacements) - rebound
        if unmatched and strict:
            raise CompilationError(
                f"cannot instantiate plan: no source node named "
                f"{sorted(unmatched)} in the plan (available: "
                f"{sorted(n.name for n in sink.iter_nodes() if isinstance(n, SourceNode))})"
            )
        coverage = propagate_coverage(sink)
        bound = {
            node.name: node.source
            for node in sink.iter_nodes()
            if isinstance(node, SourceNode)
        }
        return CompiledPlan(
            sink=sink,
            window_size=self.window_size,
            # Same node set, same descriptors, same dimensions -> the
            # template's (frozen) memory plan describes the clone exactly.
            memory_plan=self.memory_plan,
            output_coverage=coverage,
            pass_timings=self.pass_timings,
            pass_metadata=self.pass_metadata,
            query=self.query,
            sources=bound,
            tracer=self.tracer,
            optimization_level=self.optimization_level,
            hints=self.hints,
            # Verification is a property of the plan shape, which the clone
            # shares with its template.
            diagnostics=self.diagnostics,
        )

    def explain(self) -> str:
        """Human-readable plan dump in the paper's ``(offset,period)[dim]`` notation."""
        from repro.core.graph import describe_plan

        header = (
            f"window size: {self.window_size} ticks, "
            f"pre-allocated: {self.memory_plan.total_bytes} bytes, "
            f"output coverage: {self.output_coverage.total_length()} ticks"
        )
        lines = [header, describe_plan(self.sink)]
        if self.hints is not None:
            lines.append(f"compile hints: {self.hints.describe()}")
        if self.pass_timings:
            lines.append("pass timeline:")
            for timing in self.pass_timings:
                note = self.pass_metadata.get(timing.name)
                suffix = f"  ({note})" if note else ""
                lines.append(f"  {timing.name:<18} {timing.seconds * 1e3:8.3f} ms{suffix}")
        if self.diagnostics:
            lines.append("diagnostics:")
            lines.extend(f"  {d.render()}" for d in self.diagnostics)
        return "\n".join(lines)


def compile_plan(
    query: Query,
    sources: dict[str, StreamSource] | None = None,
    window_size: int = TICKS_PER_MINUTE,
    tracer=None,
    optimization_level: int = MAX_OPTIMIZATION_LEVEL,
    pass_manager: PassManager | None = None,
    hints: CompileHints | None = None,
    strict: bool = False,
) -> CompiledPlan:
    """Compile *query* into an executable :class:`CompiledPlan`.

    ``optimization_level`` gates the rewriting passes: 0 compiles the query
    verbatim, 1 adds spec normalization, 2 (default) adds operator fusion.
    A custom ``pass_manager`` replaces the default pipeline entirely.
    ``hints`` threads profile-derived overrides (:class:`CompileHints`) into
    the pipeline — advisory per-decision tweaks that never change the
    plan's output, only how it executes.  ``strict`` raises
    :class:`~repro.errors.PlanVerificationError` when plan verification
    produces error-level diagnostics (verification runs even when a custom
    ``pass_manager`` omits the verify pass).
    """
    if not 0 <= optimization_level <= MAX_OPTIMIZATION_LEVEL:
        raise CompilationError(
            f"optimization_level must be in [0, {MAX_OPTIMIZATION_LEVEL}], "
            f"got {optimization_level}"
        )
    manager = pass_manager or PassManager.default_pipeline()
    ctx = PassContext(
        query=query,
        sources=sources,
        window_size=window_size,
        tracer=tracer,
        optimization_level=optimization_level,
        hints=hints,
    )
    timings = manager.run(ctx)
    sink = ctx.require_sink()
    if ctx.memory_plan is None:
        raise CompilationError("pass pipeline did not allocate memory for the plan")
    if ctx.coverage is None:
        raise CompilationError("pass pipeline did not compute output coverage")
    diagnostics = ctx.diagnostics
    if strict:
        if "verify" not in manager.pass_names:
            from repro.analysis.plan_verifier import verify_plan_graph

            diagnostics = verify_plan_graph(sink, hints=hints)
        errors = [d for d in diagnostics if d.severity == "error"]
        if errors:
            raise PlanVerificationError(
                f"plan verification found {len(errors)} error(s): "
                + "; ".join(d.render() for d in errors),
                diagnostics=diagnostics,
            )
    return CompiledPlan(
        sink=sink,
        window_size=window_size,
        memory_plan=ctx.memory_plan,
        output_coverage=ctx.coverage,
        pass_timings=timings,
        pass_metadata=ctx.metadata,
        query=query,
        sources=sources,
        tracer=tracer,
        optimization_level=optimization_level,
        hints=hints,
        diagnostics=diagnostics,
    )
