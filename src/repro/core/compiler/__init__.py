"""Query compilation: spec → plan graph → dimensions → buffers → coverage.

``build_plan`` turns the declarative :class:`~repro.core.query.Query` spec
into a graph of plan nodes, binding named sources to concrete
:class:`~repro.core.sources.StreamSource` objects.  ``compile_plan`` then
runs the three compile-time passes of the paper in order:

1. locality tracing (:mod:`repro.core.compiler.locality`),
2. static memory allocation (:mod:`repro.core.compiler.memory`),
3. coverage propagation for targeted query processing
   (:mod:`repro.core.compiler.lineage`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.compiler.lineage import (
    backward_time_map,
    forward_time_map,
    propagate_coverage,
    redundant_source_coverage,
    trace_output_to_source,
)
from repro.core.compiler.locality import assign_dimensions, trace_dimensions, uniform_dimension
from repro.core.compiler.memory import MemoryPlan, allocate, estimate_footprint
from repro.core.graph import OperatorNode, PlanNode, SourceNode
from repro.core.intervals import IntervalSet
from repro.core.query import Query, QuerySpec
from repro.core.sources import StreamSource
from repro.core.timeutil import TICKS_PER_MINUTE
from repro.errors import CompilationError, QueryConstructionError

__all__ = [
    "build_plan",
    "compile_plan",
    "CompiledPlan",
    "MemoryPlan",
    "assign_dimensions",
    "trace_dimensions",
    "uniform_dimension",
    "allocate",
    "estimate_footprint",
    "propagate_coverage",
    "forward_time_map",
    "backward_time_map",
    "trace_output_to_source",
    "redundant_source_coverage",
]


def build_plan(query: Query, sources: dict[str, StreamSource] | None = None) -> PlanNode:
    """Instantiate the plan graph for *query*, binding its named sources.

    Spec nodes shared via ``Multicast`` become a single shared plan node, so
    the resulting structure is a DAG, not a tree.
    """
    sources = sources or {}
    memo: dict[int, PlanNode] = {}

    def build(spec: QuerySpec) -> PlanNode:
        existing = memo.get(id(spec))
        if existing is not None:
            return existing
        if spec.kind == "source":
            source = spec.bound_source
            if source is None:
                if spec.source_name not in sources:
                    raise QueryConstructionError(
                        f"query references source {spec.source_name!r} but no such "
                        f"source was provided (available: {sorted(sources)})"
                    )
                source = sources[spec.source_name]
            declared = spec.declared_descriptor
            if declared is not None and declared.period != source.descriptor.period:
                raise QueryConstructionError(
                    f"source {spec.source_name!r} was declared with period "
                    f"{declared.period} but the bound source has period "
                    f"{source.descriptor.period}"
                )
            node: PlanNode = SourceNode(spec.name, source)
        elif spec.kind == "operator":
            inputs = [build(child) for child in spec.inputs]
            node = OperatorNode(spec.name, spec.operator, inputs)
        else:  # pragma: no cover - defensive
            raise CompilationError(f"unknown spec kind {spec.kind!r}")
        memo[id(spec)] = node
        return node

    return build(query.spec)


@dataclass
class CompiledPlan:
    """The result of compiling a query: an executable plan plus its metadata."""

    sink: PlanNode
    window_size: int
    memory_plan: MemoryPlan
    output_coverage: IntervalSet

    def explain(self) -> str:
        """Human-readable plan dump in the paper's ``(offset,period)[dim]`` notation."""
        from repro.core.graph import describe_plan

        header = (
            f"window size: {self.window_size} ticks, "
            f"pre-allocated: {self.memory_plan.total_bytes} bytes, "
            f"output coverage: {self.output_coverage.total_length()} ticks"
        )
        return header + "\n" + describe_plan(self.sink)


def compile_plan(
    query: Query,
    sources: dict[str, StreamSource] | None = None,
    window_size: int = TICKS_PER_MINUTE,
    tracer=None,
) -> CompiledPlan:
    """Compile *query* into an executable :class:`CompiledPlan`."""
    sink = build_plan(query, sources)
    assign_dimensions(sink, window_size)
    memory_plan = allocate(sink, tracer=tracer)
    coverage = propagate_coverage(sink)
    return CompiledPlan(
        sink=sink,
        window_size=window_size,
        memory_plan=memory_plan,
        output_coverage=coverage,
    )
