"""The pass-based compilation pipeline.

Compilation is an ordered sequence of named, individually-testable passes
over an explicit plan IR, run by a :class:`PassManager`:

1. ``normalize``         — canonicalise the query spec and build the plan
   graph (shift merging, no-op elision; :func:`repro.core.query.normalize_spec`);
2. ``lineage``           — propagate source coverage through the graph for
   targeted query processing (Section 5.3);
3. ``locality``          — locality tracing: assign every FWindow a
   consistent dimension (Section 5.2);
4. ``fuse_elementwise``  — collapse element-wise operator chains into fused
   kernel nodes (:mod:`repro.core.compiler.fusion`);
5. ``vectorize``         — mark which operator nodes lower to whole-run
   array kernels (:mod:`repro.core.runtime.vectorized`), with per-node
   fallback for the rest;
6. ``memory``            — static allocation of every FWindow buffer;
7. ``verify``            — static plan verification
   (:mod:`repro.analysis.plan_verifier`): re-prove the invariants the
   earlier passes are supposed to establish and surface the findings as
   structured diagnostics on the compiled plan.

Each pass is timed; the timeline is stored on the resulting
:class:`~repro.core.compiler.CompiledPlan` and reported by its
``explain()``.  The ``optimization_level`` knob gates the rewriting passes:
level 0 compiles the query verbatim, level 1 adds spec normalization, and
level 2 (the default) adds operator fusion.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.compiler.fusion import fuse_elementwise
from repro.core.compiler.lineage import propagate_coverage
from repro.core.compiler.locality import assign_dimensions
from repro.core.compiler.memory import MemoryPlan, allocate
from repro.core.graph import PlanNode
from repro.core.intervals import IntervalSet
from repro.core.query import Query
from repro.core.sources import StreamSource
from repro.errors import CompilationError

#: Highest supported optimization level (normalize + fuse).
MAX_OPTIMIZATION_LEVEL = 2


@dataclass
class PassTiming:
    """Wall-clock record of one pass execution."""

    name: str
    seconds: float


@dataclass
class PassContext:
    """Mutable state threaded through the pass pipeline.

    ``normalize`` populates ``sink`` (the plan IR); later passes refine it
    and fill in ``coverage`` and ``memory_plan``.  ``metadata`` carries
    free-form per-pass facts (e.g. fusion statistics) into the compiled
    plan's explanation.
    """

    query: Query
    sources: dict[str, StreamSource] | None
    window_size: int
    tracer: object = None
    optimization_level: int = MAX_OPTIMIZATION_LEVEL
    sink: PlanNode | None = None
    coverage: IntervalSet | None = None
    memory_plan: MemoryPlan | None = None
    metadata: dict = field(default_factory=dict)
    #: Profile-derived overrides (:class:`~repro.core.compiler.hints.CompileHints`);
    #: ``None`` keeps every static decision.  Each pass consumes only the
    #: fields it understands.
    hints: object = None
    #: Findings from the verify pass (:class:`repro.analysis.Diagnostic`),
    #: carried onto :attr:`CompiledPlan.diagnostics`.
    diagnostics: list = field(default_factory=list)

    def require_sink(self) -> PlanNode:
        """The plan IR, raising if no plan-building pass has run yet."""
        if self.sink is None:
            raise CompilationError(
                "pass pipeline has no plan graph yet; the normalize pass must run first"
            )
        return self.sink


class CompilerPass:
    """Base class for compilation passes: a named transform of a PassContext."""

    name = "pass"

    def run(self, ctx: PassContext) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"


class NormalizePass(CompilerPass):
    """Canonicalise the query spec and instantiate the plan graph."""

    name = "normalize"

    def run(self, ctx: PassContext) -> None:
        from repro.core.compiler import build_plan

        query = ctx.query
        if ctx.optimization_level >= 1:
            query = query.normalized()
        ctx.sink = build_plan(query, ctx.sources)


class LineagePass(CompilerPass):
    """Propagate source coverage through the graph (targeted processing)."""

    name = "lineage"

    def run(self, ctx: PassContext) -> None:
        ctx.coverage = propagate_coverage(ctx.require_sink())


class LocalityPass(CompilerPass):
    """Locality tracing: assign consistent FWindow dimensions."""

    name = "locality"

    def run(self, ctx: PassContext) -> None:
        assign_dimensions(ctx.require_sink(), ctx.window_size)


class FuseElementwisePass(CompilerPass):
    """Collapse element-wise operator chains into fused kernel nodes."""

    name = "fuse_elementwise"

    def run(self, ctx: PassContext) -> None:
        if ctx.optimization_level < 2:
            ctx.metadata["fusion"] = "disabled"
            return
        max_length = getattr(ctx.hints, "max_fusion_length", None)
        report = fuse_elementwise(ctx.require_sink(), max_length=max_length)
        ctx.sink = report.sink
        ctx.metadata["fusion"] = (
            f"{report.chains_fused} chain(s), {report.nodes_eliminated} node(s) fused"
            + (f", cut at {max_length} stage(s)" if max_length is not None else "")
        )


class VectorizePass(CompilerPass):
    """Mark which operator nodes lower to whole-run array kernels.

    Runs after fusion (fused chains lower as one kernel) and annotates each
    operator node with a ``vectorizable`` flag; the summary lands in the
    compiled plan's metadata so ``explain()`` shows what the vectorized
    backend will lower and what falls back per node to window-by-window
    execution.  Analysis only — the plan graph is not rewritten, so every
    backend (and level-0 compilations, where this pass still runs) executes
    the same graph.
    """

    name = "vectorize"

    def run(self, ctx: PassContext) -> None:
        # Imported lazily: the runtime package imports the compiler at module
        # load (backends compile widened twins), so a module-level import
        # here would cycle mid-initialisation.
        from repro.core.runtime.vectorized import annotate_plan

        ctx.metadata["vectorize"] = annotate_plan(ctx.require_sink())


class MemoryPass(CompilerPass):
    """Static memory allocation: one FWindow per plan node, allocated once."""

    name = "memory"

    def run(self, ctx: PassContext) -> None:
        ctx.memory_plan = allocate(ctx.require_sink(), tracer=ctx.tracer)


class VerifyPass(CompilerPass):
    """Static plan verification: re-prove what the earlier passes established.

    Runs :func:`repro.analysis.plan_verifier.verify_plan_graph` over the
    finished plan IR — dimension algebra, time-map soundness, join grid
    alignment, fused-chain legality, dead operators, source liveness and
    vectorized-lowering availability — and records the findings on
    ``ctx.diagnostics``.  Analysis only: the graph is never rewritten, and
    findings do not abort compilation here (``compile_plan(strict=True)``
    raises on error-level findings after the pipeline completes).
    """

    name = "verify"

    def run(self, ctx: PassContext) -> None:
        # Imported lazily for the same reason as VectorizePass: the analysis
        # package reaches back into the compiler and runtime.
        from repro.analysis.diagnostics import summarize
        from repro.analysis.plan_verifier import verify_plan_graph

        findings = verify_plan_graph(ctx.require_sink(), hints=ctx.hints)
        ctx.diagnostics.extend(findings)
        ctx.metadata["verify"] = summarize(findings)


class PassManager:
    """Runs an ordered pass pipeline over a :class:`PassContext`, timing each pass."""

    def __init__(self, passes: list[CompilerPass]):
        if not passes:
            raise CompilationError("a pass pipeline needs at least one pass")
        names = [p.name for p in passes]
        if len(set(names)) != len(names):
            raise CompilationError(f"duplicate pass names in pipeline: {names}")
        self.passes = list(passes)

    @staticmethod
    def default_pipeline() -> "PassManager":
        """The standard LifeStream pipeline (Figure 6 plus fusion)."""
        return PassManager(
            [
                NormalizePass(),
                LineagePass(),
                LocalityPass(),
                FuseElementwisePass(),
                VectorizePass(),
                MemoryPass(),
                VerifyPass(),
            ]
        )

    @property
    def pass_names(self) -> list[str]:
        """Names of the passes, in execution order."""
        return [p.name for p in self.passes]

    def run(self, ctx: PassContext) -> list[PassTiming]:
        """Execute every pass in order, returning the timed timeline."""
        timeline: list[PassTiming] = []
        for compiler_pass in self.passes:
            began = time.perf_counter()
            compiler_pass.run(ctx)
            timeline.append(PassTiming(compiler_pass.name, time.perf_counter() - began))
        return timeline
