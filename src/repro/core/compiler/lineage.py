"""Event lineage tracking and coverage propagation (Sections 5.1 and 5.3).

The linearity property of temporal operators on periodic streams means that
every output event can be mapped back to its parent input events, and —
composed across the whole query — every region of the final output can be
mapped back to regions of the sources.  LifeStream uses the *forward*
direction of this mapping at compile time: each source reports the interval
set where data actually exists (its *coverage*), and each operator
transforms its inputs' coverage into output coverage.  Joins intersect
coverage, which is exactly what lets targeted query processing skip the
expensive upstream transforms on data that a downstream join would discard.
"""

from __future__ import annotations

from repro.core.graph import OperatorNode, PlanNode, SourceNode, topological_order
from repro.core.intervals import IntervalSet
from repro.core.timeutil import LinearTimeMap
from repro.errors import CompilationError


def propagate_coverage(sink: PlanNode) -> IntervalSet:
    """Compute and store the data coverage of every node in the plan.

    Returns the coverage of the sink (the final output stream): the interval
    set that the targeted executor walks.
    """
    for node in topological_order(sink):
        if isinstance(node, SourceNode):
            node.coverage = node.source.coverage()
        elif isinstance(node, OperatorNode):
            node.coverage = node.operator.propagate_coverage(
                [inp.coverage for inp in node.inputs]
            )
        else:  # pragma: no cover - defensive
            raise CompilationError(f"unknown node type {type(node).__name__}")
    return sink.coverage


def forward_time_map(sink: PlanNode, source: SourceNode) -> LinearTimeMap:
    """Compose the linear time map from *source*'s domain to *sink*'s domain.

    Follows the first path found from the source to the sink.  Operators
    whose time map is the identity contribute nothing; shifts accumulate.
    This is the event-lineage map of Section 5.1 in closed form.
    """
    path = _find_path(sink, source)
    if path is None:
        raise CompilationError(f"source {source.name} is not an input of the plan")
    composed = LinearTimeMap.identity()
    # path is ordered source -> ... -> sink; each interior node is an operator
    # node whose time map takes its input's domain to its output's domain.
    for node in path[1:]:
        assert isinstance(node, OperatorNode)
        composed = node.operator.time_map(0).compose(composed)
    return composed


def backward_time_map(sink: PlanNode, source: SourceNode) -> LinearTimeMap:
    """Map from the sink's time domain back to the source's time domain."""
    return forward_time_map(sink, source).invert()


def trace_output_to_source(
    sink: PlanNode, source: SourceNode, output_interval: tuple[int, int]
) -> tuple[int, int]:
    """Map an output time interval back to the source interval that produced it."""
    return backward_time_map(sink, source).apply_interval(output_interval)


def _find_path(sink: PlanNode, target: SourceNode) -> list[PlanNode] | None:
    """Depth-first search for a path from *target* up to *sink* (ordered source→sink)."""
    if sink is target:
        return [sink]
    for child in sink.inputs:
        sub = _find_path(child, target)
        if sub is not None:
            return sub + [sink]
    return None


def redundant_source_coverage(sink: PlanNode) -> dict[str, IntervalSet]:
    """Per-source coverage that targeted processing will skip.

    For every source, this is the part of its data whose lineage never
    reaches the output (for example ECG regions with no overlapping ABP
    data, which an inner join downstream would discard).  The benchmark for
    Figure 10(a) uses this to report how much computation was pruned.
    """
    output_coverage = sink.coverage
    skipped: dict[str, IntervalSet] = {}
    for node in topological_order(sink):
        if not isinstance(node, SourceNode):
            continue
        backward = backward_time_map(sink, node)
        useful = IntervalSet(
            [backward.apply_interval(interval) for interval in output_coverage]
        )
        skipped[node.name] = node.coverage.difference(useful)
    return skipped
