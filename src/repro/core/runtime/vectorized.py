"""Run-lowered (vectorized) plan execution.

The serial executor slides every FWindow one window at a time and pays the
per-window costs — a Python graph walk, a window slide, a source read, a
handful of fixed-overhead NumPy calls on a few hundred samples — once per
window per node.  On periodic grids those costs are pure overhead: the
paper's central observation is that index ↔ time conversion is arithmetic,
so *consecutive* windows of every stream in the plan occupy *consecutive*
slots of one contiguous column buffer.

This module lowers window loops onto that observation:

* :func:`runs_for_coverage` / :func:`runs_for_starts` convert the targeted
  coverage (an :class:`~repro.core.intervals.IntervalSet`) into maximal
  **runs of consecutive windows** — disjoint, and exactly tiling the window
  starts the serial executor would visit;
* :class:`RunExecutor` allocates one contiguous run buffer (an FWindow of
  dimension ``count * D``) per run per stream — not per window — and pulls
  each run through the graph in a single walk, dispatching every lowerable
  operator's :meth:`~repro.core.operators.base.Operator.compute_run` as one
  NumPy array program over the whole run;
* operators that are not lowerable (``batch_safe`` is False, or no
  ``compute_run`` implementation) fall back **per node** to the serial
  semantics: the default ``compute_run`` drives the operator's ordinary
  ``compute`` window-by-window over zero-copy views of the run buffer, so
  the fallback is bit-identical to serial execution by construction.

Why runs are exact
------------------

After locality tracing every node of a compiled plan shares one uniform
dimension ``D``, and every operator's time map is a pure shift (scale 1) —
:func:`analyze_plan` verifies both.  ``input_sync_time`` is then
``align_down(t + shift)``, which distributes over multiples of ``D``, so
window ``k`` of an output run reads exactly window ``k`` of each input run:
positioning each run buffer *once* positions every window in it.  Stateful
operators (Shift carries, sliding-aggregate tails, join/chop carries) see
the same window sequence in the same order as the serial loop — their
``compute`` is already extent-invariant for batch-safe operators (the
property the batched backend's parity suite proves), so carries evolve
identically across run boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.core.fwindow import FWindow
from repro.core.graph import OperatorNode, PlanNode, SourceNode, topological_order
from repro.core.intervals import IntervalSet
from repro.core.operators.base import Operator
from repro.errors import ExecutionError

#: Default cap on windows per run buffer.  Long eager spans are chunked into
#: consecutive runs of at most this many windows, bounding run-buffer memory;
#: chunking is exact (a chunk boundary is just another run boundary, and
#: stateful operators carry across it exactly as they carry across windows).
DEFAULT_MAX_RUN_WINDOWS = 512


# ---------------------------------------------------------------------------
# Coverage -> runs
# ---------------------------------------------------------------------------


def runs_for_starts(
    starts: Iterable[int], window: int, max_run_windows: int | None = None
) -> list[tuple[int, int]]:
    """Group increasing window *starts* into maximal consecutive runs.

    Returns ``(start, count)`` pairs: ``count`` windows at ``start``,
    ``start + window``, ...  Runs are maximal (adjacent runs are never
    contiguous unless split by *max_run_windows*), disjoint, and together
    contain exactly the given starts.
    """
    if window <= 0:
        raise ExecutionError(f"window must be positive, got {window}")
    if max_run_windows is not None and max_run_windows < 1:
        raise ExecutionError(f"max_run_windows must be positive, got {max_run_windows}")
    runs: list[tuple[int, int]] = []
    run_start: int | None = None
    run_count = 0
    for start in starts:
        if (
            run_count
            and start == run_start + run_count * window
            and (max_run_windows is None or run_count < max_run_windows)
        ):
            run_count += 1
            continue
        if run_count:
            runs.append((run_start, run_count))
        run_start, run_count = int(start), 1
    if run_count:
        runs.append((run_start, run_count))
    return runs


def runs_for_coverage(
    coverage: IntervalSet,
    window: int,
    offset: int = 0,
    max_run_windows: int | None = None,
) -> list[tuple[int, int]]:
    """Convert *coverage* into maximal runs of consecutive windows.

    The runs tile exactly the window starts
    ``coverage.iter_windows(window, offset)`` yields — the set the targeted
    serial executor visits — grouped greedily into maximal consecutive
    stretches (optionally chunked at *max_run_windows*).
    """
    return runs_for_starts(coverage.iter_windows(window, offset), window, max_run_windows)


# ---------------------------------------------------------------------------
# Plan analysis
# ---------------------------------------------------------------------------


@dataclass
class VectorPlanInfo:
    """What run-lowered execution can do with one compiled plan."""

    #: Whether run execution is sound for this plan at all (uniform
    #: dimension, pure-shift time maps).  When False, the vectorized backend
    #: delegates the whole plan to serial execution.
    runnable: bool
    #: Human-readable reason when not runnable (empty otherwise).
    reason: str
    #: ``id(node) -> True`` for operator nodes whose ``compute_run`` is
    #: dispatched as one array program over the run; False means the node
    #: executes window-by-window (per-node serial fallback).
    lowered: dict[int, bool]
    #: Total operator nodes in the plan.
    operator_nodes: int
    #: Operator nodes with a lowered run kernel.
    lowered_operators: int

    @property
    def worthwhile(self) -> bool:
        """True when run execution would actually vectorize something.

        A runnable plan in which *no* operator node lowers would execute
        every node window-by-window — serial execution with extra buffer
        copies.  The vectorized backend runs (and reports) plain serial in
        that case, per the execution-mode honesty convention.
        """
        return self.runnable and (self.operator_nodes == 0 or self.lowered_operators > 0)


def node_lowerable(node: OperatorNode) -> bool:
    """True when *node*'s operator has a whole-run kernel that is exact here.

    Requires both a ``compute_run`` implementation (beyond the base class's
    window-by-window fallback) and ``batch_safe`` inputs — the run buffer is
    a widened window, so only widening-invariant operators may compute it in
    one call.
    """
    operator = node.operator
    if type(operator).compute_run is Operator.compute_run:
        return False
    return operator.batch_safe([inp.descriptor for inp in node.inputs])


def analyze_plan(sink: PlanNode) -> VectorPlanInfo:
    """Classify every node of the plan rooted at *sink* for run execution."""
    nodes = topological_order(sink)
    dimensions = {node.dimension for node in nodes}
    if None in dimensions:
        return VectorPlanInfo(False, "plan has no dimensions assigned", {}, 0, 0)
    if len(dimensions) != 1:
        return VectorPlanInfo(
            False, f"plan mixes FWindow dimensions {sorted(dimensions)}", {}, 0, 0
        )
    operators = [node for node in nodes if isinstance(node, OperatorNode)]
    for node in operators:
        for index in range(len(node.inputs)):
            if node.operator.time_map(index).scale != 1:
                # A time-scaling operator breaks the "consecutive windows map
                # to consecutive windows" invariant for the whole plan: even
                # per-window fallback views would be positioned wrongly.
                return VectorPlanInfo(
                    False,
                    f"operator {node.name} scales time "
                    f"(map {node.operator.time_map(index)})",
                    {},
                    len(operators),
                    0,
                )
    lowered = {id(node): node_lowerable(node) for node in operators}
    return VectorPlanInfo(
        runnable=True,
        reason="",
        lowered=lowered,
        operator_nodes=len(operators),
        lowered_operators=sum(lowered.values()),
    )


def annotate_plan(sink: PlanNode) -> str:
    """Compile-time entry point for the ``vectorize`` pass.

    Marks every operator node with a ``vectorizable`` attribute (for plan
    introspection) and returns the one-line summary stored in the pass
    metadata.  The runtime re-derives the same analysis from the operators
    themselves, so plans that skip the pass (or clones from
    ``CompiledPlan.instantiate``) lower identically.
    """
    info = analyze_plan(sink)
    for node in topological_order(sink):
        if isinstance(node, OperatorNode):
            node.vectorizable = info.runnable and info.lowered.get(id(node), False)
    if not info.runnable:
        return f"not run-lowerable ({info.reason})"
    return (
        f"{info.lowered_operators}/{info.operator_nodes} operator node(s) "
        f"lowerable to run kernels"
    )


def plan_vector_info(plan) -> VectorPlanInfo:
    """The (cached) run-lowering analysis for a compiled plan.

    Cached on the plan object itself so its lifetime is tied to the plan's,
    mirroring the batched backend's twin cache.
    """
    info = plan.__dict__.get("_vector_info")
    if info is None:
        info = plan.__dict__["_vector_info"] = analyze_plan(plan.sink)
    return info


# ---------------------------------------------------------------------------
# The run executor
# ---------------------------------------------------------------------------


class RunExecutor:
    """Pulls runs of consecutive windows through a plan graph.

    One contiguous run buffer (an FWindow of dimension ``count * D``) is
    allocated per node and reused across runs of the same length; lowered
    operators compute the whole run in one call, the rest fall back to the
    window-by-window default over zero-copy subwindow views.  The executor
    reads and advances the plan nodes' own ``state`` and
    ``windows_computed``, so one-shot runs, resumed sessions and checkpoints
    all see exactly the serial executor's bookkeeping.
    """

    def __init__(self, plan, info: VectorPlanInfo | None = None) -> None:
        self.plan = plan
        self.info = plan_vector_info(plan) if info is None else info
        if not self.info.runnable:
            raise ExecutionError(
                f"plan is not run-lowerable: {self.info.reason}; "
                f"execute it with the serial backend instead"
            )
        #: Names of operator nodes that executed window-by-window (at least
        #: once) — the honest-execution-mode report reads this.
        self.fallback_nodes: set[str] = set()
        #: High-water mark of run-buffer bytes allocated by this executor.
        self.peak_buffer_bytes = 0
        self._pool_bytes = 0
        #: All buffers ever allocated, keyed by (node, run length) — coverage
        #: gaps make run lengths alternate between a handful of values, and
        #: reusing the matching buffer instead of reallocating keeps the
        #: executor allocation-free in the steady state.
        self._pool: dict[tuple[int, int], FWindow] = {}
        #: Topologically ordered ``(node, offset)`` fill schedule: each
        #: node's fill position is ``run start + offset``.  With pure-shift
        #: time maps (``analyze_plan`` rejects everything else) the offset
        #: of ``align_down(start + shift)`` from ``start`` depends only on
        #: ``start % D``, so one walk serves every run with the same phase.
        self._schedule: list[tuple[PlanNode, int]] | None = None
        self._schedule_phase: int | None = None
        #: Per run-length bindings of the schedule to concrete run buffers.
        self._bound: dict[int, list] = {}

    def _buffer(self, node: PlanNode, count: int) -> FWindow:
        key = (id(node), count)
        window = self._pool.get(key)
        if window is None:
            window = FWindow(
                node.descriptor,
                node.dimension * count,
                name=f"{node.name}@run",
                monotonic=False,
            )
            self._pool[key] = window
            self._pool_bytes += window.memory_bytes()
            self.peak_buffer_bytes = max(self.peak_buffer_bytes, self._pool_bytes)
        return window

    def _build_schedule(self, start: int) -> list[tuple[PlanNode, int]]:
        """Walk the graph once, recording every node's offset from *start*.

        Mirrors the serial executor's recursive fill (children before
        parents, multicast nodes deduplicated like its ``_filled_at`` memo)
        but replaces the per-run recursion with a flat replayable list.
        """
        order: list[tuple[PlanNode, int]] = []
        positions: dict[int, int] = {}

        def visit(node: PlanNode, node_start: int) -> None:
            key = id(node)
            if key in positions:
                if positions[key] != node_start:
                    raise ExecutionError(
                        f"node {node.name} is multicast at inconsistent "
                        f"positions {positions[key]} and {node_start}"
                    )
                return
            positions[key] = node_start
            if isinstance(node, OperatorNode):
                operator = node.operator
                for index, upstream in enumerate(node.inputs):
                    visit(
                        upstream,
                        operator.input_sync_time(node_start, index, upstream.descriptor),
                    )
            order.append((node, node_start - start))

        visit(self.plan.sink, start)
        return order

    def _bind(self, count: int) -> list:
        """Bind the schedule to the run buffers for run length *count*."""
        windows = {
            id(node): self._buffer(node, count) for node, _ in self._schedule
        }
        bound = []
        for node, offset in self._schedule:
            window = windows[id(node)]
            if isinstance(node, SourceNode):
                bound.append((node, offset, window, None, None, False))
            else:
                inputs = [windows[id(upstream)] for upstream in node.inputs]
                lowered = bool(self.info.lowered.get(id(node), False))
                bound.append((node, offset, window, node.operator, inputs, lowered))
        self._bound[count] = bound
        return bound

    def execute_run(
        self,
        start: int,
        count: int,
        collect: bool,
        times: list[np.ndarray],
        values: list[np.ndarray],
        durations: list[np.ndarray],
    ) -> int:
        """Execute ``count`` consecutive windows beginning at *start*.

        Appends the sink's present events (in stream order) to the columnar
        accumulators when *collect* is set and returns the number appended.
        """
        start = int(start)
        count = int(count)
        phase = start % self.plan.sink.dimension
        if self._schedule is None or self._schedule_phase != phase:
            self._schedule = self._build_schedule(start)
            self._schedule_phase = phase
            self._bound.clear()
        bound = self._bound.get(count)
        if bound is None:
            bound = self._bind(count)

        window = None
        for node, offset, window, operator, inputs, lowered in bound:
            node_start = start + offset
            window.slide_to(node_start)
            if operator is None:
                read_times, read_values, read_durations = node.source.read(
                    node_start, node_start + node.dimension * count
                )
                if read_times.size:
                    window.set_events(read_times, read_values, read_durations)
            elif lowered:
                operator.compute_run(window, inputs, node.state, count)
            else:
                # Force the base-class window-by-window fallback even if the
                # operator defines a run kernel: lowering was rejected for
                # this node (not batch-safe), so only the serial per-window
                # semantics are exact.
                Operator.compute_run(operator, window, inputs, node.state, count)
                self.fallback_nodes.add(node.name)
            node.windows_computed += count

        if not collect:
            return 0
        indices = window.present_indices()
        if not indices.size:
            return 0
        times.append(window.sync_time + indices * window.period)
        # Fancy indexing already yields fresh arrays — safe to keep past the
        # buffer's reuse in the next run.
        values.append(window.values[indices])
        durations.append(window.durations[indices])
        return int(indices.size)
