"""Incremental streaming sessions.

A :class:`StreamingSession` holds a compiled query open against live (or
replayed) sources and turns the Section-4 FWindow slide into a long-lived
loop: every :meth:`advance`/:meth:`poll` executes only the output windows
that became newly computable since the previous tick, while the stateful
operators' carries (Shift FIFOs, sliding-aggregate tails, join carries)
persist in the plan graph between ticks.  A one-shot ``engine.run`` over
the same final coverage and an incremental session that reached the same
watermark produce bit-identical results — the parity suite in
``tests/core/test_session.py`` asserts this across backends and modes.

Three mechanisms make the loop incremental:

* **coverage refresh** — :class:`~repro.core.sources.ReplaySource` reports
  coverage clipped to its watermark, so re-running the compiler's lineage
  propagation over the live plan graph each tick yields exactly the output
  windows the targeted executor would visit if the stream ended now;
* **the emission frontier** — the session remembers the last window start
  it executed and only runs strictly later windows.  Coverage only ever
  grows forward as watermarks advance, so the union of per-tick frontiers
  equals the one-shot window list;
* **readiness gating** — a window is only executed once every replayed
  source's watermark has passed the *entire* input span that window reads
  (computed by walking the graph with each operator's event-lineage map).
  Windows straddling a watermark are deferred, never executed on partial
  data; :meth:`finish` drains them once the sources are exhausted.

Sessions checkpoint to disk (:meth:`checkpoint`) by snapshotting every
operator's carry state via :meth:`~repro.core.operators.base.Operator.snapshot_state`
together with the emission frontier, source watermarks and the events
emitted so far; restoring onto a freshly compiled plan resumes the stream
exactly where it stopped, even after a crash.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.core.compiler.lineage import propagate_coverage
from repro.core.graph import OperatorNode, SourceNode, topological_order
from repro.core.intervals import IntervalSet
from repro.core.runtime.executor import _eager_span, collect_sink_window, eager_window_count
from repro.core.runtime.result import ExecutionStats, StreamResult
from repro.core.sources import ReplaySource
from repro.errors import ExecutionError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.engine import CompiledQuery

#: On-disk checkpoint format identifier (bump when the layout changes).
CHECKPOINT_FORMAT = "lifestream-session-checkpoint/v1"


@dataclass
class TickStats:
    """Instrumentation record of one session tick.

    ``plan_seconds`` covers the per-tick compile-side work (coverage
    refresh, frontier computation, readiness gating); ``execute_seconds``
    the backend window loop.  Profile-guided adaptation reads these to tune
    batch sizing from observed tick profiles.
    """

    #: 1-based tick index within the session.
    index: int
    #: Minimum watermark across the session's replay sources after this tick
    #: (None when the session has no replayed source).
    watermark: int | None
    #: Windows executed this tick.
    windows_run: int
    #: Events emitted this tick.
    events_emitted: int
    #: Newly-covered windows deferred because their input span still crosses
    #: a watermark (they run on a later tick).
    windows_deferred: int
    #: Seconds spent refreshing coverage and computing the ready frontier.
    plan_seconds: float
    #: Seconds spent in the window loop.
    execute_seconds: float
    #: Name of the execution backend driving the session.
    backend: str
    #: Windows executed since the session (or its restored lineage) started.
    cumulative_windows: int
    #: Events emitted since the session (or its restored lineage) started.
    cumulative_events: int
    #: Maximal consecutive-window runs the executed windows formed (adjacent
    #: starts exactly one dimension apart share a run).  0 on empty ticks.
    window_runs: int = 0
    #: Execution mode that really drove this tick (honest label, including
    #: any ``+serial-fallback`` suffix accrued so far).
    execution_mode: str = "serial"

    @property
    def elapsed_seconds(self) -> float:
        """Total wall-clock seconds of this tick."""
        return self.plan_seconds + self.execute_seconds


class StreamingSession:
    """A compiled query held open for incremental, tick-by-tick execution.

    The session takes exclusive ownership of the compiled plan's runtime
    state (FWindow positions and operator carries); one-shot ``run()`` calls
    on the same :class:`~repro.core.engine.CompiledQuery` are rejected until
    the session is closed.  Construct via
    :meth:`~repro.core.engine.LifeStreamEngine.open_session`.
    """

    def __init__(
        self,
        compiled: "CompiledQuery",
        targeted: bool | None = None,
        backend=None,
        checkpoint: dict | str | Path | None = None,
    ) -> None:
        self._compiled = compiled
        use_backend = compiled.backend if backend is None else backend
        self._backend = use_backend
        self._backend_name = getattr(use_backend, "name", "serial")
        self._plan = (
            compiled.plan if use_backend is None else use_backend.session_plan(compiled.plan)
        )
        # The mode that really drives the ticks: a batched backend whose plan
        # is not batch-safe hands back the original plan and the session runs
        # it one window at a time — the stats must say "serial", not
        # "batched"; the vectorized backend keeps the original plan but runs
        # its ticks as window runs.  Each backend knows which case applies.
        self._execution_mode = (
            use_backend.session_execution_mode(compiled.plan, self._plan)
            if use_backend is not None
            else "serial"
        )
        self._targeted = compiled.targeted if targeted is None else targeted
        self._nodes = topological_order(self._plan.sink)
        self._operator_nodes = [n for n in self._nodes if isinstance(n, OperatorNode)]
        self._source_nodes = [n for n in self._nodes if isinstance(n, SourceNode)]
        self._replay_nodes = [
            n for n in self._source_nodes if isinstance(n.source, ReplaySource)
        ]
        self._last_start: int | None = None
        self._collected_times: list[np.ndarray] = []
        self._collected_values: list[np.ndarray] = []
        self._collected_durations: list[np.ndarray] = []
        self._windows_run = 0
        self._ticks: list[TickStats] = []
        self._finished = False
        self._closed = False
        self._recompiled = False
        self._checkpoint_hook = None
        self._checkpoint_every = 1
        self._ticks_since_checkpoint = 0
        # Claim exclusivity BEFORE touching any runtime state: if another
        # session already owns the plan, attach_session raises and the live
        # session's carries/watermarks are left untouched.
        compiled.attach_session(self)
        try:
            for node in self._nodes:
                node.reset()
            # A previous session on this plan may have cached a run executor
            # (vectorized ticks); its buffers sit at that session's frontier
            # and would reject this session's earlier windows.
            self._plan.__dict__.pop("_run_executor", None)
            if checkpoint is not None:
                self._apply_checkpoint(checkpoint)
        except BaseException:
            self._closed = True
            compiled.detach_session(self)
            raise

    # -- introspection -----------------------------------------------------

    @property
    def ticks(self) -> list[TickStats]:
        """Per-tick instrumentation records, oldest first."""
        return list(self._ticks)

    def recent_ticks(self, count: int) -> list[TickStats]:
        """The newest *count* tick records, oldest first.

        Unlike :attr:`ticks` this does not copy the whole history, so
        schedulers polling a long-lived session's recent profile every
        batch pay O(count), not O(session age).
        """
        return self._ticks[-count:] if count > 0 else []

    @property
    def backend_name(self) -> str:
        """Name of the execution backend driving the session."""
        return self._backend_name

    @property
    def backend(self):
        """The execution backend object driving the session (None = serial)."""
        return self._backend

    @property
    def targeted(self) -> bool:
        """Whether the session enumerates output windows from coverage."""
        return self._targeted

    @property
    def recompiled(self) -> bool:
        """True when this session adopted its state from a hot-swap
        (:meth:`swap_plan`) rather than starting fresh."""
        return self._recompiled

    @property
    def finished(self) -> bool:
        """True once :meth:`finish` has drained the stream."""
        return self._finished

    @property
    def closed(self) -> bool:
        """True once :meth:`close` released the plan."""
        return self._closed

    @property
    def watermark(self) -> int | None:
        """Minimum watermark across the replayed sources (None if none)."""
        if not self._replay_nodes:
            return None
        return min(node.source.watermark for node in self._replay_nodes)

    @property
    def frontier(self) -> int | None:
        """Start time of the last executed output window (None before any)."""
        return self._last_start

    @property
    def output_complete_through(self) -> int | None:
        """Stream time through which the emitted output is *final*.

        Output windows execute strictly in order along the sink's dimension
        grid, so every window a future tick could still run starts at or
        after ``frontier + dimension`` — nothing already emitted below that
        time can change or gain new neighbours.  (A merely covered-but-
        unexecuted trailing window is *not* final: coverage can extend a
        partial window until it fills and executes, emitting events below
        the coverage end.  The frontier bound has no such hazard.)
        ``None`` before the first window has executed.

        This is exactly the watermark a downstream consumer of the output
        stream may advance to — the contract the sub-plan sharing layer
        (:mod:`repro.serve.subplan`) relies on to feed one prefix session's
        output into many tail sessions without ever exposing a non-final
        event.
        """
        if self._last_start is None:
            return None
        return self._last_start + self._plan.sink.dimension

    # -- the tick loop -----------------------------------------------------

    def advance(self, watermark: int) -> TickStats:
        """Advance every replayed source to *watermark* and run the new windows.

        Re-announcing the current watermark is an idempotent no-op tick, but
        a watermark *behind* any replayed source's clock is a protocol error
        (stream time only moves forward) and raises
        :class:`~repro.errors.ExecutionError` instead of being silently
        ignored; use :meth:`poll` after advancing sources independently.
        """
        self._require_open()
        if self._finished:
            raise ExecutionError("session is finished; no more data can arrive")
        for node in self._replay_nodes:
            if watermark < node.source.watermark:
                raise ExecutionError(
                    f"watermark regression: source {node.name!r} is already at "
                    f"{node.source.watermark} but advance() was asked to move it "
                    f"back to {watermark}; watermarks only move forward "
                    f"(re-announcing the current watermark is a no-op, and poll() "
                    f"ticks without touching the sources)"
                )
        for node in self._replay_nodes:
            if watermark > node.source.watermark:
                node.source.advance(watermark)
        return self.poll()

    def poll(self) -> TickStats:
        """Execute every newly-covered, fully-ready output window."""
        self._require_open()
        return self._tick(drain=False)

    def finish(self) -> TickStats:
        """Declare the stream complete and drain all remaining windows.

        Advances every replayed source to the end of its underlying data and
        executes the deferred tail (windows whose input span extended past
        the last watermark — aggregate lookback tails, shift carries).  After
        this, :meth:`result` is bit-identical to a one-shot run over the full
        data.  Idempotent.
        """
        self._require_open()
        if self._finished:
            return self._empty_tick()
        for node in self._replay_nodes:
            node.source.advance_to_end()
        stats = self._tick(drain=True)
        self._finished = True
        return stats

    def _tick(self, drain: bool) -> TickStats:
        began = time.perf_counter()
        propagate_coverage(self._plan.sink)
        new = self._new_window_starts()
        ready: list[int] = []
        deferred = 0
        for start in new:
            if drain or self._window_ready(start):
                ready.append(start)
            else:
                # Windows must run in order (FWindows only slide forward);
                # everything past the first unready window waits too.
                deferred = len(new) - len(ready)
                break
        planned = time.perf_counter()

        if self._backend is not None:
            events, fell_back = self._backend.session_tick(
                self._plan,
                ready,
                self._collected_times,
                self._collected_values,
                self._collected_durations,
            )
            if fell_back and not self._execution_mode.endswith("+serial-fallback"):
                self._execution_mode = f"{self._execution_mode}+serial-fallback"
        else:
            sink = self._plan.sink
            events = 0
            for start in ready:
                sink.fill(start)
                events += collect_sink_window(
                    sink, self._collected_times, self._collected_values,
                    self._collected_durations,
                )
        executed = time.perf_counter()

        if ready:
            self._last_start = ready[-1]
        self._windows_run += len(ready)
        dimension = self._plan.sink.dimension
        window_runs = sum(
            1
            for position, start in enumerate(ready)
            if position == 0 or start != ready[position - 1] + dimension
        )
        stats = TickStats(
            index=len(self._ticks) + 1,
            watermark=self.watermark,
            windows_run=len(ready),
            events_emitted=events,
            windows_deferred=deferred,
            plan_seconds=planned - began,
            execute_seconds=executed - planned,
            backend=self._backend_name,
            cumulative_windows=self._windows_run,
            cumulative_events=sum(t.size for t in self._collected_times),
            window_runs=window_runs,
            execution_mode=self._execution_mode,
        )
        self._ticks.append(stats)
        self._maybe_auto_checkpoint()
        return stats

    # -- checkpoint cadence --------------------------------------------------

    def set_checkpoint_hook(self, hook, every_ticks: int = 1) -> None:
        """Install *hook*, called with a fresh checkpoint dict on a tick cadence.

        After every *every_ticks*-th completed tick (``advance``/``poll``,
        including the drain tick of ``finish``), the session snapshots itself
        via :meth:`checkpoint` and passes the state dict to ``hook(state)``.
        This is the failover feed of the ingest worker pool: workers
        checkpoint their sessions on a cadence and ship the snapshots to a
        supervisor, which can restore a dead worker's sessions on a peer.
        Pass ``hook=None`` to uninstall.
        """
        if hook is not None and every_ticks < 1:
            raise ExecutionError(
                f"checkpoint cadence must be a positive tick count, got {every_ticks}"
            )
        self._checkpoint_hook = hook
        self._checkpoint_every = int(every_ticks)
        self._ticks_since_checkpoint = 0

    def _maybe_auto_checkpoint(self) -> None:
        if self._checkpoint_hook is None:
            return
        self._ticks_since_checkpoint += 1
        if self._ticks_since_checkpoint < self._checkpoint_every:
            return
        self._ticks_since_checkpoint = 0
        self._checkpoint_hook(self.checkpoint())

    def _empty_tick(self) -> TickStats:
        stats = TickStats(
            index=len(self._ticks) + 1,
            watermark=self.watermark,
            windows_run=0,
            events_emitted=0,
            windows_deferred=0,
            plan_seconds=0.0,
            execute_seconds=0.0,
            backend=self._backend_name,
            cumulative_windows=self._windows_run,
            cumulative_events=sum(t.size for t in self._collected_times),
            window_runs=0,
            execution_mode=self._execution_mode,
        )
        self._ticks.append(stats)
        return stats

    def _new_window_starts(self) -> list[int]:
        """Output-window starts past the emission frontier, in order.

        The sink coverage is clipped to the frontier before windows are
        enumerated, so per-tick planning cost is proportional to the *new*
        coverage, not to the stream's age — a session alive for weeks pays
        the same per tick as one opened a second ago.
        """
        sink = self._plan.sink
        dimension = sink.dimension
        if self._targeted:
            coverage = sink.coverage
        else:
            span = _eager_span(self._plan)
            coverage = IntervalSet.empty() if span is None else IntervalSet.single(*span)
        if self._last_start is not None and coverage:
            end = coverage.span()[1]
            # Windows at starts > frontier lie entirely past frontier + dim
            # (starts sit on the dimension grid), so clipping there drops all
            # already-executed coverage without losing any new window.
            if end <= self._last_start + dimension:
                return []
            coverage = coverage.clip(self._last_start + dimension, end)
        starts = coverage.iter_windows(dimension, sink.descriptor.offset)
        if self._last_start is None:
            return list(starts)
        return [s for s in starts if s > self._last_start]

    def _window_ready(self, start: int) -> bool:
        """True when every replayed source's watermark covers the full input
        span the output window starting at *start* would read."""
        if not self._replay_nodes:
            return True
        ready = True

        def walk(node, sync: int) -> None:
            nonlocal ready
            if not ready:
                return
            if isinstance(node, SourceNode):
                if isinstance(node.source, ReplaySource):
                    if sync + node.dimension > node.source.watermark:
                        ready = False
                return
            for index, upstream in enumerate(node.inputs):
                walk(
                    upstream,
                    node.operator.input_sync_time(sync, index, upstream.descriptor),
                )

        walk(self._plan.sink, start)
        return ready

    # -- results -----------------------------------------------------------

    def result(self) -> StreamResult:
        """Everything the session has emitted so far, in stream order."""
        if self._collected_times:
            times = np.concatenate(self._collected_times)
            values = np.concatenate(self._collected_values)
            durations = np.concatenate(self._collected_durations)
        else:
            times = np.empty(0, dtype=np.int64)
            values = np.empty(0, dtype=np.float64)
            durations = np.empty(0, dtype=np.int64)
        stats = ExecutionStats(
            output_windows=self._windows_run,
            windows_computed=sum(node.windows_computed for node in self._nodes),
            windows_skipped=(
                max(0, eager_window_count(self._plan) - self._windows_run)
                if self._targeted
                else 0
            ),
            events_emitted=int(times.size),
            events_ingested=sum(node.source.event_count() for node in self._source_nodes),
            preallocated_bytes=self._plan.memory_plan.total_bytes,
            elapsed_seconds=sum(t.elapsed_seconds for t in self._ticks),
            targeted=self._targeted,
            execution_mode=(
                f"{self._execution_mode} (recompiled)"
                if self._recompiled
                else self._execution_mode
            ),
            per_node_windows={node.name: node.windows_computed for node in self._nodes},
        )
        return StreamResult(times, values, durations, stats=stats)

    def recent_events(self, count: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The newest *count* emitted events as ``(times, values, durations)``.

        Unlike :meth:`result` this touches only the tail of the collected
        output, so a serving loop delivering per-tick deltas to subscribers
        pays O(delta), not O(history), per tick.
        """
        if count <= 0:
            return (
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.float64),
                np.empty(0, dtype=np.int64),
            )
        tail_times: list[np.ndarray] = []
        tail_values: list[np.ndarray] = []
        tail_durations: list[np.ndarray] = []
        remaining = count
        for index in range(len(self._collected_times) - 1, -1, -1):
            chunk = self._collected_times[index]
            take = min(remaining, int(chunk.size))
            if take:
                tail_times.append(chunk[chunk.size - take :])
                tail_values.append(self._collected_values[index][chunk.size - take :])
                tail_durations.append(
                    self._collected_durations[index][chunk.size - take :]
                )
                remaining -= take
            if remaining == 0:
                break
        if not tail_times:
            return self.recent_events(0)
        tail_times.reverse()
        tail_values.reverse()
        tail_durations.reverse()
        return (
            np.concatenate(tail_times),
            np.concatenate(tail_values),
            np.concatenate(tail_durations),
        )

    def close(self) -> None:
        """Release the plan so one-shot runs on the compiled query work again."""
        if not self._closed:
            self._closed = True
            self._compiled.detach_session(self)

    def _require_open(self) -> None:
        if self._closed:
            raise ExecutionError("session is closed")

    # -- checkpoint / restore ----------------------------------------------

    def checkpoint(self, path: str | Path | None = None) -> dict:
        """Snapshot the session so it can resume after a restart or crash.

        The checkpoint captures the plan geometry (for compatibility
        checks), every operator node's carry state (by topological index),
        the replayed sources' watermarks, the emission frontier and the
        events emitted so far.  It contains only NumPy arrays and plain
        Python containers, so it pickles cleanly; pass *path* to also write
        it to disk.  Restore by opening a new session over a freshly
        compiled copy of the same query with ``checkpoint=``.

        The on-disk write is crash-safe: the state is pickled to a temporary
        file in the same directory and atomically renamed into place with
        :func:`os.replace`, so a crash mid-checkpoint can never leave a
        truncated file where failover expects a valid one — the previous
        checkpoint (if any) survives intact.
        """
        self._require_open()
        result = self.result()
        state = {
            "format": CHECKPOINT_FORMAT,
            "targeted": self._targeted,
            "backend": self._backend_name,
            "window_size": self._plan.window_size,
            "sink_dimension": self._plan.sink.dimension,
            "last_start": self._last_start,
            "windows_run": self._windows_run,
            "finished": self._finished,
            "watermarks": {
                node.name: node.source.watermark for node in self._replay_nodes
            },
            "operator_states": [
                {
                    "index": index,
                    "operator": node.operator.name,
                    "state": node.operator.snapshot_state(node.state),
                }
                for index, node in enumerate(self._operator_nodes)
            ],
            "emitted": {
                "times": result.times,
                "values": result.values,
                "durations": result.durations,
            },
        }
        if path is not None:
            path = Path(path)
            descriptor, tmp_name = tempfile.mkstemp(
                prefix=f".{path.name}.", suffix=".tmp", dir=path.parent
            )
            try:
                with os.fdopen(descriptor, "wb") as handle:
                    pickle.dump(state, handle)
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        return state

    def _apply_checkpoint(self, checkpoint: dict | str | Path) -> None:
        if not isinstance(checkpoint, dict):
            path = checkpoint
            try:
                with open(path, "rb") as handle:
                    checkpoint = pickle.load(handle)
            except (EOFError, pickle.UnpicklingError, AttributeError, ValueError) as exc:
                raise ExecutionError(
                    f"checkpoint file {path} is truncated or corrupt "
                    f"({type(exc).__name__}: {exc}); it cannot be restored — "
                    f"checkpoints are written atomically, so this file was not "
                    f"produced by StreamingSession.checkpoint()"
                ) from exc
            if not isinstance(checkpoint, dict):
                raise ExecutionError(
                    f"checkpoint file {path} does not hold a checkpoint dict "
                    f"(found {type(checkpoint).__name__})"
                )
        if checkpoint.get("format") != CHECKPOINT_FORMAT:
            raise ExecutionError(
                f"unrecognised checkpoint format {checkpoint.get('format')!r}; "
                f"expected {CHECKPOINT_FORMAT!r}"
            )
        for field, actual in (
            ("targeted", self._targeted),
            ("backend", self._backend_name),
            ("window_size", self._plan.window_size),
            ("sink_dimension", self._plan.sink.dimension),
        ):
            if checkpoint[field] != actual:
                raise ExecutionError(
                    f"checkpoint was taken with {field}={checkpoint[field]!r} but "
                    f"this session has {field}={actual!r}; recompile with the "
                    f"original configuration to resume"
                )
        saved_states = checkpoint["operator_states"]
        if len(saved_states) != len(self._operator_nodes):
            raise ExecutionError(
                f"checkpoint holds {len(saved_states)} operator states but the "
                f"plan has {len(self._operator_nodes)} operator nodes; was the "
                f"query changed since the checkpoint?"
            )
        for saved, node in zip(saved_states, self._operator_nodes):
            if saved["operator"] != node.operator.name:
                raise ExecutionError(
                    f"checkpoint state {saved['index']} belongs to operator "
                    f"{saved['operator']!r} but the plan has {node.operator.name!r} "
                    f"at that position; was the query changed since the checkpoint?"
                )
            node.state = node.operator.restore_state(saved["state"])
        watermarks = checkpoint["watermarks"]
        for node in self._replay_nodes:
            saved_watermark = watermarks.get(node.name)
            if saved_watermark is not None and saved_watermark > node.source.watermark:
                node.source.advance(saved_watermark)
        self._last_start = checkpoint["last_start"]
        self._windows_run = checkpoint["windows_run"]
        self._finished = checkpoint["finished"]
        emitted = checkpoint["emitted"]
        if emitted["times"].size:
            self._collected_times = [np.asarray(emitted["times"], dtype=np.int64)]
            self._collected_values = [np.asarray(emitted["values"], dtype=np.float64)]
            self._collected_durations = [np.asarray(emitted["durations"], dtype=np.int64)]

    # -- hot swap ------------------------------------------------------------

    def swap_plan(
        self,
        compiled: "CompiledQuery",
        targeted: bool | None = None,
        backend=None,
    ) -> "StreamingSession":
        """Replace this session's plan with a recompiled one at a tick boundary.

        Opens a new session over *compiled* (a fresh recompilation of the
        same query bound to the same sources), transplants this session's
        runtime state into it — operator carries, emission frontier, source
        watermarks, emitted output, tick-independent counters — and closes
        this session.  The new session continues the stream exactly where
        this one stopped: the adaptive parity suite asserts output across
        the swap is bit-identical to a never-swapped session.

        Unlike checkpoint restore, the new plan may differ in backend,
        targeted mode, fusion cuts or batch geometry; only two things must
        hold, and both are checked:

        * **frontier alignment** — the emitted-through time must land on the
          new sink's window grid, or the new session would re-emit or skip a
          partial window.  A batched twin widens the sink dimension, so a
          swap *onto* a twin only succeeds at every ``batch_windows``-th
          boundary; a misaligned swap raises
          :class:`~repro.errors.ExecutionError` and the caller simply
          retries at a later tick.  (This method always sees the session's
          *runtime* plan, so swapping off a twin is always aligned.)
        * **matching operator state units** — carries are transplanted
          operator-by-operator (fused chains flattened to their stages, so
          different fusion cuts still line up); a mismatch means the plans
          do not compute the same query and the swap is refused.

        Returns the new session; on failure this session is left open and
        untouched.
        """
        self._require_open()
        state = {
            "units": self._flatten_operator_states(),
            "watermarks": {
                node.name: node.source.watermark for node in self._replay_nodes
            },
            "emitted_through": (
                None
                if self._last_start is None
                else self._last_start + self._plan.sink.dimension
            ),
            "windows_run": self._windows_run,
            "finished": self._finished,
            "collected": (
                list(self._collected_times),
                list(self._collected_values),
                list(self._collected_durations),
            ),
        }
        new = compiled.open_session(targeted=targeted, backend=backend)
        try:
            new._adopt_swap_state(state)
        except BaseException:
            new.close()
            raise
        self.close()
        return new

    def _flatten_operator_states(self) -> list[tuple[str, object]]:
        """Snapshot every operator's carry as ``(name, state)`` units, with
        fused chains expanded to one unit per stage.

        Flattening makes the transplant invariant to *where* the fusion pass
        cut the chains: a plan fused as ``[a+b+c]`` and one fused as
        ``[a+b][c]`` both yield units ``a, b, c``.
        """
        from repro.core.operators.fused import FusedElementwise

        units: list[tuple[str, object]] = []
        for node in self._operator_nodes:
            operator = node.operator
            if isinstance(operator, FusedElementwise):
                for (stage_op, _), stage_state in zip(operator.stages, node.state):
                    units.append((stage_op.name, stage_op.snapshot_state(stage_state)))
            else:
                units.append((operator.name, operator.snapshot_state(node.state)))
        return units

    def _restore_flattened(self, units: list[tuple[str, object]]) -> None:
        """Install flattened state units into this session's plan, regrouping
        per-stage states for fused nodes.  Raises on any shape mismatch."""
        from repro.core.operators.fused import FusedElementwise

        cursor = 0

        def take(expected_name: str) -> object:
            nonlocal cursor
            if cursor >= len(units):
                raise ExecutionError(
                    f"hot-swap state mismatch: the old plan provided "
                    f"{len(units)} operator state unit(s) but the new plan "
                    f"expects more (next: {expected_name!r}); the plans do not "
                    f"compute the same query"
                )
            name, snapshot = units[cursor]
            if name != expected_name:
                raise ExecutionError(
                    f"hot-swap state mismatch: state unit {cursor} belongs to "
                    f"operator {name!r} but the new plan has "
                    f"{expected_name!r} at that position; the plans do not "
                    f"compute the same query"
                )
            cursor += 1
            return snapshot

        for node in self._operator_nodes:
            operator = node.operator
            if isinstance(operator, FusedElementwise):
                node.state = [
                    stage_op.restore_state(take(stage_op.name))
                    for stage_op, _ in operator.stages
                ]
            else:
                node.state = operator.restore_state(take(operator.name))
        if cursor != len(units):
            raise ExecutionError(
                f"hot-swap state mismatch: the old plan provided {len(units)} "
                f"operator state unit(s) but the new plan consumed only "
                f"{cursor}; the plans do not compute the same query"
            )

    def _adopt_swap_state(self, state: dict) -> None:
        """Continue a predecessor session's stream on this (fresh) session."""
        sink = self._plan.sink
        dimension = sink.dimension
        emitted_through = state["emitted_through"]
        if emitted_through is not None:
            if (emitted_through - sink.descriptor.offset) % dimension != 0:
                raise ExecutionError(
                    f"hot-swap misaligned: the stream is emitted through "
                    f"t={emitted_through}, which is not on the new plan's "
                    f"window grid (dimension {dimension}, offset "
                    f"{sink.descriptor.offset}); retry the swap at a later "
                    f"tick boundary"
                )
            self._last_start = emitted_through - dimension
        self._restore_flattened(state["units"])
        # The recompiled plan usually binds the same source objects as its
        # predecessor (instantiate rebinds by name), making this advance an
        # idempotent no-op; with distinct sources it fast-forwards them to
        # the predecessor's clock.
        for node in self._replay_nodes:
            watermark = state["watermarks"].get(node.name)
            if watermark is not None and watermark > node.source.watermark:
                node.source.advance(watermark)
        self._windows_run = state["windows_run"]
        self._finished = state["finished"]
        times, values, durations = state["collected"]
        self._collected_times = list(times)
        self._collected_values = list(values)
        self._collected_durations = list(durations)
        self._recompiled = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<StreamingSession {self._backend_name} frontier={self._last_start} "
            f"ticks={len(self._ticks)} windows={self._windows_run}>"
        )
