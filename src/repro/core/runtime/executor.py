"""Plan execution: targeted (default) and eager modes.

The executor drives a compiled plan by sliding the sink's FWindow forward
through the output time domain and pulling each window's contents through
the operator graph.

In **targeted** mode (the paper's targeted query processing, Section 5.3)
only the windows that intersect the output coverage computed by lineage
analysis are executed; everything else — in particular upstream transforms
on signal regions that a downstream join would discard — is skipped
entirely.

In **eager** mode the executor mimics conventional engines: every window in
the union of the sources' data spans is processed, whether or not it can
produce output.  Eager mode exists for the ablation study (Figure 10(a))
and for tests that check both modes produce identical results.

This module provides the window-loop machinery; *how* the loop is driven
(serially, in widened batches, or sharded across processes) is the job of
the pluggable :mod:`~repro.core.runtime.backends`.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from repro.core.compiler import CompiledPlan
from repro.core.graph import SourceNode, source_nodes, topological_order
from repro.core.intervals import IntervalSet
from repro.core.runtime.result import ExecutionStats, StreamResult
from repro.errors import ExecutionError


def _eager_span(plan: CompiledPlan) -> tuple[int, int] | None:
    """Time range an eager run must walk (None when every source is empty).

    The union of the sources' data spans, widened to include the sink's
    output coverage: stateful operators (shifts, sliding aggregates) can
    emit events beyond the last source sample, and the eager walk must visit
    those tail windows no matter what window geometry the backend uses —
    this is what keeps eager results identical to targeted ones.
    """
    spans = [node.coverage.span() for node in source_nodes(plan.sink) if node.coverage]
    if not spans:
        return None
    start = min(span[0] for span in spans)
    end = max(span[1] for span in spans)
    sink_coverage = plan.sink.coverage
    if sink_coverage:
        coverage_start, coverage_end = sink_coverage.span()
        start = min(start, coverage_start)
        end = max(end, coverage_end)
    return start, end


def _window_starts(plan: CompiledPlan, targeted: bool) -> list[int]:
    """Output-window start times the executor will visit, in increasing order."""
    sink = plan.sink
    dimension = sink.dimension
    if dimension is None:
        raise ExecutionError("plan has no dimensions assigned; was it compiled?")
    offset = sink.descriptor.offset
    if targeted:
        coverage = sink.coverage
    else:
        # Eager processing: walk every window in the union of the sources'
        # spans, exactly as a push-based engine would ingest everything.
        span = _eager_span(plan)
        if span is None:
            return []
        coverage = IntervalSet.single(*span)
    return list(coverage.iter_windows(dimension, offset))


def eager_window_count(plan: CompiledPlan) -> int:
    """Number of windows an eager run would visit, by pure arithmetic.

    Equivalent to ``len(_window_starts(plan, targeted=False))`` but derived
    from the sources' span and the sink dimension without materialising a
    window-start list, so the targeted executor can report how many windows
    it skipped at no per-run cost.
    """
    sink = plan.sink
    dimension = sink.dimension
    if dimension is None:
        raise ExecutionError("plan has no dimensions assigned; was it compiled?")
    span = _eager_span(plan)
    if span is None:
        return 0
    start, end = span
    offset = sink.descriptor.offset
    first = offset + ((start - offset) // dimension) * dimension
    return max(0, -(-(end - first) // dimension))


def collect_sink_window(
    sink,
    times: list[np.ndarray],
    values: list[np.ndarray],
    durations: list[np.ndarray],
) -> int:
    """Append the sink FWindow's present events to the columnar accumulators.

    The single materialisation point for output events — the window loop and
    the incremental streaming session both emit through here, so their
    results cannot drift apart.  Returns the number of events appended.
    """
    window = sink.fwindow
    indices = window.present_indices()
    if indices.size:
        times.append(window.sync_time + indices * window.period)
        values.append(window.values[indices].copy())
        durations.append(window.durations[indices].copy())
    return int(indices.size)


def run_window_loop(
    plan: CompiledPlan,
    starts: Sequence[int],
    collect: bool = True,
    warmup_starts: Sequence[int] = (),
) -> tuple[np.ndarray, np.ndarray, np.ndarray, float, int]:
    """Drive the sink through *starts*, returning the collected columns.

    The plan's runtime state is reset first.  ``warmup_starts`` are executed
    before the collected range with their output discarded — backends that
    enter the stream mid-way (sharded workers) use this to rebuild stateful
    operators' carries exactly as a from-the-start run would have.

    Returns ``(times, values, durations, elapsed_seconds, windows_run)``
    where ``windows_run`` counts only the collected (non-warm-up) windows.
    """
    sink = plan.sink
    nodes = topological_order(sink)
    for node in nodes:
        node.reset()

    collected_times: list[np.ndarray] = []
    collected_values: list[np.ndarray] = []
    collected_durations: list[np.ndarray] = []

    began = time.perf_counter()
    for start in warmup_starts:
        sink.fill(start)
    for start in starts:
        sink.fill(start)
        if collect:
            collect_sink_window(sink, collected_times, collected_values, collected_durations)
    elapsed = time.perf_counter() - began

    if collected_times:
        times = np.concatenate(collected_times)
        values = np.concatenate(collected_values)
        durations = np.concatenate(collected_durations)
    else:
        times = np.empty(0, dtype=np.int64)
        values = np.empty(0, dtype=np.float64)
        durations = np.empty(0, dtype=np.int64)
    return times, values, durations, elapsed, len(starts)


def build_stats(
    plan: CompiledPlan,
    output_windows: int,
    events_emitted: int,
    elapsed: float,
    targeted: bool,
) -> ExecutionStats:
    """Assemble the :class:`ExecutionStats` for a completed run."""
    nodes = topological_order(plan.sink)
    if targeted:
        skipped = max(0, eager_window_count(plan) - output_windows)
    else:
        skipped = 0
    return ExecutionStats(
        output_windows=output_windows,
        windows_computed=sum(node.windows_computed for node in nodes),
        windows_skipped=skipped,
        events_emitted=events_emitted,
        events_ingested=sum(
            node.source.event_count() for node in nodes if isinstance(node, SourceNode)
        ),
        preallocated_bytes=plan.memory_plan.total_bytes,
        elapsed_seconds=elapsed,
        targeted=targeted,
        per_node_windows={node.name: node.windows_computed for node in nodes},
    )


def execute_plan(
    plan: CompiledPlan,
    targeted: bool = True,
    collect: bool = True,
    backend=None,
) -> StreamResult:
    """Execute a compiled plan and return its result stream.

    With ``collect=False`` the output events are not materialised (the
    windows are still fully computed); benchmarks that only measure engine
    throughput use this to keep result accumulation out of the measurement.

    ``backend`` selects the execution strategy; ``None`` uses the serial
    backend (the engine's historical semantics).
    """
    if backend is not None:
        return backend.execute(plan, targeted=targeted, collect=collect)
    starts = _window_starts(plan, targeted)
    times, values, durations, elapsed, windows_run = run_window_loop(plan, starts, collect)
    stats = build_stats(plan, windows_run, int(times.size), elapsed, targeted)
    return StreamResult(times, values, durations, stats=stats)
