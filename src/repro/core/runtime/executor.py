"""Plan execution: targeted (default) and eager modes.

The executor drives a compiled plan by sliding the sink's FWindow forward
through the output time domain and pulling each window's contents through
the operator graph.

In **targeted** mode (the paper's targeted query processing, Section 5.3)
only the windows that intersect the output coverage computed by lineage
analysis are executed; everything else — in particular upstream transforms
on signal regions that a downstream join would discard — is skipped
entirely.

In **eager** mode the executor mimics conventional engines: every window in
the union of the sources' data spans is processed, whether or not it can
produce output.  Eager mode exists for the ablation study (Figure 10(a))
and for tests that check both modes produce identical results.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.compiler import CompiledPlan
from repro.core.graph import SourceNode, source_nodes, topological_order
from repro.core.intervals import IntervalSet
from repro.core.runtime.result import ExecutionStats, StreamResult
from repro.errors import ExecutionError


def _window_starts(plan: CompiledPlan, targeted: bool) -> list[int]:
    """Output-window start times the executor will visit, in increasing order."""
    sink = plan.sink
    dimension = sink.dimension
    if dimension is None:
        raise ExecutionError("plan has no dimensions assigned; was it compiled?")
    offset = sink.descriptor.offset
    if targeted:
        coverage = sink.coverage
    else:
        # Eager processing: walk every window in the union of the sources'
        # spans, exactly as a push-based engine would ingest everything.
        spans = [node.coverage.span() for node in source_nodes(sink) if node.coverage]
        if not spans:
            return []
        start = min(span[0] for span in spans)
        end = max(span[1] for span in spans)
        coverage = IntervalSet.single(start, end)
    return list(coverage.iter_windows(dimension, offset))


def execute_plan(
    plan: CompiledPlan,
    targeted: bool = True,
    collect: bool = True,
) -> StreamResult:
    """Execute a compiled plan and return its result stream.

    With ``collect=False`` the output events are not materialised (the
    windows are still fully computed); benchmarks that only measure engine
    throughput use this to keep result accumulation out of the measurement.
    """
    sink = plan.sink
    nodes = topological_order(sink)
    for node in nodes:
        node.reset()

    starts = _window_starts(plan, targeted)
    all_possible = _window_starts(plan, targeted=False)

    collected_times: list[np.ndarray] = []
    collected_values: list[np.ndarray] = []
    collected_durations: list[np.ndarray] = []

    began = time.perf_counter()
    for start in starts:
        sink.fill(start)
        if collect:
            window = sink.fwindow
            indices = window.present_indices()
            if indices.size:
                collected_times.append(window.sync_time + indices * window.period)
                collected_values.append(window.values[indices].copy())
                collected_durations.append(window.durations[indices].copy())
    elapsed = time.perf_counter() - began

    if collected_times:
        times = np.concatenate(collected_times)
        values = np.concatenate(collected_values)
        durations = np.concatenate(collected_durations)
    else:
        times = np.empty(0, dtype=np.int64)
        values = np.empty(0, dtype=np.float64)
        durations = np.empty(0, dtype=np.int64)

    stats = ExecutionStats(
        output_windows=len(starts),
        windows_computed=sum(node.windows_computed for node in nodes),
        windows_skipped=max(0, len(all_possible) - len(starts)),
        events_emitted=int(times.size),
        events_ingested=sum(
            node.source.event_count() for node in nodes if isinstance(node, SourceNode)
        ),
        preallocated_bytes=plan.memory_plan.total_bytes,
        elapsed_seconds=elapsed,
        targeted=targeted,
        per_node_windows={node.name: node.windows_computed for node in nodes},
    )
    return StreamResult(times, values, durations, stats=stats)
