"""Runtime plan profiles: the measurement half of adaptive recompilation.

Every session tick already produces a
:class:`~repro.core.runtime.session.TickStats` record (plan vs execute
seconds, windows run/deferred, run counts, the execution mode that really
drove the tick).  :class:`PlanProfile` aggregates those records into a
compact, mergeable summary — lifetime counters, EWMA rates, and a
power-of-two run-length histogram — cheap enough to update on every tick
of every session and small enough to persist as JSON per plan signature
(:class:`~repro.serve.cache.ProfileStore`).

The profile answers the questions the compiler's static heuristics guess
at:

* how long are the runs of consecutive windows really? (batch width, run
  cap, whether vectorized/batched execution has anything to amortise)
* does coverage fragment, or is the stream dense? (targeted vs eager)
* what fraction of wall-clock goes to planning vs the window loop, and
  does the nominal backend actually run or fall back? (backend choice)

:meth:`PlanProfile.hints` turns the answers into a
:class:`~repro.core.compiler.hints.CompileHints`; the profile-aware
:func:`~repro.core.runtime.backends.recommend_backend` uses the same
measurements to pick the backend.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.compiler.hints import CompileHints
    from repro.core.runtime.session import TickStats

#: Serialized profile format identifier (bump when the layout changes).
PROFILE_FORMAT = "lifestream-plan-profile/v1"

#: Smoothing factor of the per-tick EWMA summaries.  0.2 weighs the last
#: ~5 ticks most, so a session whose workload shifts (backlog drained, a
#: burst arrives) re-profiles within a handful of ticks.
EWMA_ALPHA = 0.2

#: Caps for profile-derived tuning knobs.
MAX_HINTED_BATCH_WINDOWS = 64
MIN_HINTED_RUN_WINDOWS = 16
MAX_HINTED_RUN_WINDOWS = 512


def _pow2_at_most(value: float) -> int:
    """Largest power of two <= max(value, 1)."""
    return 1 << max(0, int(value).bit_length() - 1) if value >= 1 else 1


def _pow2_at_least(value: float) -> int:
    """Smallest power of two >= max(value, 1)."""
    if value <= 1:
        return 1
    return 1 << (int(value - 1).bit_length())


@dataclass
class PlanProfile:
    """Aggregated runtime profile of one plan signature.

    All counters are lifetime sums over every observed tick (possibly from
    many sessions of many clients sharing the signature — see
    :meth:`merge`); the EWMA fields favour recent behaviour.
    """

    #: Ticks observed.
    ticks: int = 0
    #: Ticks that executed at least one window.
    busy_ticks: int = 0
    #: Windows executed.
    windows_run: int = 0
    #: Maximal consecutive-window runs those windows formed.
    window_runs: int = 0
    #: Newly-covered windows deferred to a later tick (watermark straddles).
    windows_deferred: int = 0
    #: Events emitted.
    events_emitted: int = 0
    #: Seconds spent in coverage refresh / frontier / readiness work.
    plan_seconds: float = 0.0
    #: Seconds spent in the window loop.
    execute_seconds: float = 0.0
    #: Ticks whose execution mode degraded below the nominal backend
    #: (``...+serial-fallback``) — a backend the profile should steer away from.
    fallback_ticks: int = 0
    #: EWMA of per-tick plan seconds.
    ewma_plan_seconds: float = 0.0
    #: EWMA of per-tick execute seconds.
    ewma_execute_seconds: float = 0.0
    #: EWMA of windows executed per tick.
    ewma_windows_per_tick: float = 0.0
    #: EWMA of mean run length (windows per consecutive run), busy ticks only.
    ewma_run_length: float = 0.0
    #: Histogram of per-tick mean run lengths, bucketed by power of two:
    #: ``{bucket: busy ticks whose mean run length floored to bucket}``.
    run_length_histogram: dict[int, int] = field(default_factory=dict)

    # -- accumulation ------------------------------------------------------

    def observe(self, stats: "TickStats") -> None:
        """Fold one tick's instrumentation record into the profile."""
        self.ticks += 1
        self.windows_run += stats.windows_run
        self.window_runs += stats.window_runs
        self.windows_deferred += stats.windows_deferred
        self.events_emitted += stats.events_emitted
        self.plan_seconds += stats.plan_seconds
        self.execute_seconds += stats.execute_seconds
        if stats.execution_mode.endswith("+serial-fallback"):
            self.fallback_ticks += 1

        def ewma(old: float, new: float, first: bool) -> float:
            return new if first else (1.0 - EWMA_ALPHA) * old + EWMA_ALPHA * new

        first = self.ticks == 1
        self.ewma_plan_seconds = ewma(self.ewma_plan_seconds, stats.plan_seconds, first)
        self.ewma_execute_seconds = ewma(
            self.ewma_execute_seconds, stats.execute_seconds, first
        )
        self.ewma_windows_per_tick = ewma(
            self.ewma_windows_per_tick, float(stats.windows_run), first
        )
        if stats.window_runs > 0:
            self.busy_ticks += 1
            length = stats.windows_run / stats.window_runs
            self.ewma_run_length = ewma(
                self.ewma_run_length, length, self.busy_ticks == 1
            )
            bucket = _pow2_at_most(length)
            self.run_length_histogram[bucket] = (
                self.run_length_histogram.get(bucket, 0) + 1
            )

    def merge(self, other: "PlanProfile") -> None:
        """Fold *other* into this profile (clients sharing one signature).

        Counters add; EWMAs combine weighted by the tick counts behind
        them, so a client with a long history dominates a fresh one.
        """
        if other.ticks == 0:
            return
        if self.ticks == 0:
            weight_self, weight_other = 0.0, 1.0
        else:
            total = self.ticks + other.ticks
            weight_self, weight_other = self.ticks / total, other.ticks / total
        self.ewma_plan_seconds = (
            weight_self * self.ewma_plan_seconds
            + weight_other * other.ewma_plan_seconds
        )
        self.ewma_execute_seconds = (
            weight_self * self.ewma_execute_seconds
            + weight_other * other.ewma_execute_seconds
        )
        self.ewma_windows_per_tick = (
            weight_self * self.ewma_windows_per_tick
            + weight_other * other.ewma_windows_per_tick
        )
        busy_total = self.busy_ticks + other.busy_ticks
        if busy_total:
            self.ewma_run_length = (
                self.busy_ticks * self.ewma_run_length
                + other.busy_ticks * other.ewma_run_length
            ) / busy_total
        self.ticks += other.ticks
        self.busy_ticks += other.busy_ticks
        self.windows_run += other.windows_run
        self.window_runs += other.window_runs
        self.windows_deferred += other.windows_deferred
        self.events_emitted += other.events_emitted
        self.plan_seconds += other.plan_seconds
        self.execute_seconds += other.execute_seconds
        self.fallback_ticks += other.fallback_ticks
        for bucket, count in other.run_length_histogram.items():
            self.run_length_histogram[bucket] = (
                self.run_length_histogram.get(bucket, 0) + count
            )

    # -- derived measurements ----------------------------------------------

    @property
    def mean_run_length(self) -> float:
        """Lifetime mean windows per maximal consecutive run (0 if none)."""
        return self.windows_run / self.window_runs if self.window_runs else 0.0

    @property
    def deferral_ratio(self) -> float:
        """Deferred windows per executed window (watermark fragmentation)."""
        return self.windows_deferred / self.windows_run if self.windows_run else 0.0

    @property
    def fragmented(self) -> bool:
        """Whether busy ticks see more than one run on average — i.e. the
        coverage has gaps that eager enumeration would walk for nothing."""
        return self.busy_ticks > 0 and self.window_runs > self.busy_ticks

    @property
    def longest_run_bucket(self) -> int:
        """Largest populated power-of-two run-length bucket (1 if none)."""
        return max(self.run_length_histogram, default=1)

    @property
    def elapsed_seconds(self) -> float:
        """Total observed wall-clock seconds."""
        return self.plan_seconds + self.execute_seconds

    # -- hint derivation ----------------------------------------------------

    def hints(self) -> "CompileHints":
        """Compile-time choices this profile recommends.

        * ``batch_windows`` — the batched twin should dispatch about one
          observed run per graph walk: the power of two at most the mean
          run length, capped so twin buffers stay bounded.  Left unset when
          runs are isolated windows (nothing to amortise).
        * ``max_run_windows`` — run buffers should hold the longest runs the
          coverage actually forms (next power of two above the largest
          histogram bucket), instead of the static 512-window worst case.
        * ``targeted`` — fragmented coverage keeps targeted enumeration
          (eager would walk the gaps); dense streams have no opinion, since
          targeted and eager then visit the same windows.
        """
        from repro.core.compiler.hints import CompileHints

        mean_run = self.mean_run_length
        batch_windows = None
        if mean_run >= 2.0:
            batch_windows = min(_pow2_at_most(mean_run), MAX_HINTED_BATCH_WINDOWS)
        max_run_windows = None
        if self.busy_ticks:
            max_run_windows = min(
                max(
                    _pow2_at_least(2 * self.longest_run_bucket),
                    MIN_HINTED_RUN_WINDOWS,
                ),
                MAX_HINTED_RUN_WINDOWS,
            )
        targeted = True if self.fragmented else None
        return CompileHints(
            batch_windows=batch_windows,
            max_run_windows=max_run_windows,
            targeted=targeted,
            reason=(
                f"profile: {self.ticks} tick(s), {self.windows_run} window(s) in "
                f"{self.window_runs} run(s) (mean length {mean_run:.1f}), "
                f"{self.windows_deferred} deferred, "
                f"{self.fallback_ticks} fallback tick(s)"
            ),
        )

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-JSON representation (histogram keys become strings)."""
        return {
            "format": PROFILE_FORMAT,
            "ticks": self.ticks,
            "busy_ticks": self.busy_ticks,
            "windows_run": self.windows_run,
            "window_runs": self.window_runs,
            "windows_deferred": self.windows_deferred,
            "events_emitted": self.events_emitted,
            "plan_seconds": self.plan_seconds,
            "execute_seconds": self.execute_seconds,
            "fallback_ticks": self.fallback_ticks,
            "ewma_plan_seconds": self.ewma_plan_seconds,
            "ewma_execute_seconds": self.ewma_execute_seconds,
            "ewma_windows_per_tick": self.ewma_windows_per_tick,
            "ewma_run_length": self.ewma_run_length,
            "run_length_histogram": {
                str(bucket): count
                for bucket, count in sorted(self.run_length_histogram.items())
            },
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "PlanProfile":
        """Rebuild a profile from :meth:`to_dict` output."""
        profile = cls(
            ticks=int(payload.get("ticks", 0)),
            busy_ticks=int(payload.get("busy_ticks", 0)),
            windows_run=int(payload.get("windows_run", 0)),
            window_runs=int(payload.get("window_runs", 0)),
            windows_deferred=int(payload.get("windows_deferred", 0)),
            events_emitted=int(payload.get("events_emitted", 0)),
            plan_seconds=float(payload.get("plan_seconds", 0.0)),
            execute_seconds=float(payload.get("execute_seconds", 0.0)),
            fallback_ticks=int(payload.get("fallback_ticks", 0)),
            ewma_plan_seconds=float(payload.get("ewma_plan_seconds", 0.0)),
            ewma_execute_seconds=float(payload.get("ewma_execute_seconds", 0.0)),
            ewma_windows_per_tick=float(payload.get("ewma_windows_per_tick", 0.0)),
            ewma_run_length=float(payload.get("ewma_run_length", 0.0)),
        )
        profile.run_length_histogram = {
            int(bucket): int(count)
            for bucket, count in payload.get("run_length_histogram", {}).items()
        }
        return profile

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<PlanProfile {self.ticks} tick(s), {self.windows_run} window(s), "
            f"mean run {self.mean_run_length:.1f}>"
        )
