"""Query results.

The engine returns results as a :class:`StreamResult`: columnar arrays of
sync times, payload values and durations for every event the query emitted,
in chronological order.  The class offers both columnar access (for
benchmark harnesses and NumPy post-processing) and row-wise access (for
tests and examples).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.event import Event


@dataclass
class ExecutionStats:
    """Counters describing one execution of a compiled plan."""

    #: Windows the sink produced (i.e. output FWindow positions computed).
    output_windows: int = 0
    #: Total windows computed across every node in the plan.
    windows_computed: int = 0
    #: Windows the targeted executor skipped because lineage analysis showed
    #: they could not produce output.
    windows_skipped: int = 0
    #: Events emitted by the query.
    events_emitted: int = 0
    #: Events read from the sources.
    events_ingested: int = 0
    #: Bytes of FWindow buffers pre-allocated by the static memory planner.
    preallocated_bytes: int = 0
    #: Wall-clock seconds spent in the executor.
    elapsed_seconds: float = 0.0
    #: Whether targeted query processing was enabled for this run.
    targeted: bool = True
    #: How the window loop was actually driven: ``"serial"``, ``"batched"``,
    #: ``"multiprocess"``, ``"vectorized"`` or — when the vectorized backend
    #: lowered some nodes to whole-run kernels but drove others window by
    #: window — ``"vectorized+serial-fallback"``.  Backends that silently
    #: fall back (a batched run of a non-batch-safe plan, a multiprocess run
    #: without fork or with too few windows, a vectorized run of a plan with
    #: nothing to lower) report the mode that really executed, not the one
    #: that was requested.
    execution_mode: str = "serial"
    #: Why a backend fell back to a slower execution mode than requested
    #: (``None`` when it ran as asked): which node or property blocked it,
    #: e.g. ``"operator Chop is not batch-safe"`` or ``"operator shift_3
    #: scales time ..."``.  Pairs with ``execution_mode`` so the fallback is
    #: attributable, not just visible.
    fallback_reason: str | None = None
    #: Per-node window counts, keyed by node name.
    per_node_windows: dict[str, int] = field(default_factory=dict)

    @property
    def throughput_events_per_second(self) -> float:
        """Ingested events per wall-clock second (the paper's throughput metric)."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.events_ingested / self.elapsed_seconds


class StreamResult:
    """Columnar result of a query execution."""

    def __init__(
        self,
        times: np.ndarray,
        values: np.ndarray,
        durations: np.ndarray,
        stats: ExecutionStats | None = None,
    ) -> None:
        self.times = np.asarray(times, dtype=np.int64)
        self.values = np.asarray(values, dtype=np.float64)
        self.durations = np.asarray(durations, dtype=np.int64)
        self.stats = stats or ExecutionStats()

    @staticmethod
    def empty() -> "StreamResult":
        """A result holding no events."""
        return StreamResult(
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.float64),
            np.empty(0, dtype=np.int64),
        )

    def __len__(self) -> int:
        return int(self.times.size)

    def __iter__(self):
        for t, v, d in zip(self.times.tolist(), self.values.tolist(), self.durations.tolist()):
            yield Event(sync_time=int(t), duration=int(d), value=float(v))

    def to_events(self) -> list[Event]:
        """Materialise the result as a list of :class:`Event` objects."""
        return list(self)

    def to_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(times, values)`` as NumPy arrays."""
        return self.times, self.values

    def value_at(self, sync_time: int) -> float:
        """Payload of the event with the given sync time (raises KeyError if absent)."""
        index = np.searchsorted(self.times, sync_time)
        if index >= self.times.size or self.times[index] != sync_time:
            raise KeyError(f"no event at sync time {sync_time}")
        return float(self.values[index])

    def time_span(self) -> tuple[int, int]:
        """First sync time and last event end time (or ``(0, 0)`` when empty)."""
        if not len(self):
            return (0, 0)
        return int(self.times[0]), int(self.times[-1] + self.durations[-1])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<StreamResult {len(self)} events over {self.time_span()}>"
