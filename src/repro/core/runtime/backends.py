"""Pluggable execution backends.

A backend decides *how* a compiled plan's window loop is driven:

* :class:`SerialBackend` — one window at a time, in-process (the engine's
  historical semantics and the reference implementation);
* :class:`BatchedBackend` — dispatches runs of consecutive FWindows per
  call by executing a widened twin of the plan, amortising the per-window
  graph walk (window slides, presence-vector clears, Python dispatch) over
  ``batch_windows`` windows at a time;
* :class:`MultiprocessBackend` — shards disjoint output-window ranges
  across worker processes and merges the per-shard ``StreamResult``s,
  giving real multi-core execution for the Figure 10(c) study;
* :class:`VectorizedBackend` — lowers the targeted coverage to maximal
  runs of consecutive windows and executes each operator as a single
  NumPy array program over one contiguous run buffer per stream
  (:mod:`~repro.core.runtime.vectorized`), falling back per node to the
  window-by-window semantics where lowering is not exact.

All backends produce bit-identical :class:`~repro.core.runtime.result.StreamResult`
event columns for the same plan; the parity suite in
``tests/core/test_backends.py`` asserts this across operator-chain queries
in both targeted and eager modes.
"""

from __future__ import annotations

import multiprocessing
import threading
import time

import numpy as np

from repro.core.compiler import CompiledPlan, compile_plan, uniform_dimension
from repro.core.graph import OperatorNode, topological_order
from repro.core.runtime.executor import (
    _window_starts,
    build_stats,
    collect_sink_window,
    eager_window_count,
    run_window_loop,
)
from repro.core.runtime.result import StreamResult
from repro.core.runtime.vectorized import (
    DEFAULT_MAX_RUN_WINDOWS,
    RunExecutor,
    plan_vector_info,
    runs_for_starts,
)
from repro.errors import ExecutionError


class ExecutionBackend:
    """Base class for execution backends."""

    #: Short name used in stats, benchmarks and error messages.
    name = "backend"

    def execute(
        self, plan: CompiledPlan, targeted: bool = True, collect: bool = True
    ) -> StreamResult:
        """Run *plan* and return its result stream."""
        raise NotImplementedError

    def session_plan(self, plan: CompiledPlan) -> CompiledPlan:
        """The plan a :class:`~repro.core.runtime.session.StreamingSession`
        should drive incrementally when this backend is selected.

        Serial execution drives the plan itself; the batched backend hands
        back its widened twin (so each session tick dispatches runs of
        ``batch_windows`` windows per graph walk); backends that cannot keep
        a single long-lived plan alive across ticks (multiprocess sharding)
        raise ``NotImplementedError``.
        """
        return plan

    def session_execution_mode(self, plan: CompiledPlan, session_plan: CompiledPlan) -> str:
        """Honest execution-mode label for a session driven through this backend.

        The default follows :meth:`session_plan`'s contract: a backend that
        handed back the original plan is driving it one window at a time
        (serial semantics), whatever its name; one that substituted its own
        plan (the batched twin) actually runs in its mode.  Backends whose
        per-tick strategy differs from their ``session_plan`` identity
        (vectorized run execution) override this.
        """
        return "serial" if session_plan is plan else self.name

    def session_tick(
        self,
        plan: CompiledPlan,
        starts,
        times: list,
        values: list,
        durations: list,
    ) -> tuple[int, bool]:
        """Execute one session tick's ready window *starts* on *plan*.

        Appends the emitted events to the columnar accumulators and returns
        ``(events_emitted, fell_back)`` where ``fell_back`` reports whether
        any node executed below this backend's nominal mode (used to demote
        the session's ``execution_mode`` label).  The default drives the
        plan's own sink one window at a time — the serial semantics every
        ``session_plan`` result supports.
        """
        sink = plan.sink
        events = 0
        for start in starts:
            sink.fill(start)
            events += collect_sink_window(sink, times, values, durations)
        return events, False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__}>"


class SerialBackend(ExecutionBackend):
    """Execute every window in order, in the calling process."""

    name = "serial"

    def execute(
        self, plan: CompiledPlan, targeted: bool = True, collect: bool = True
    ) -> StreamResult:
        starts = _window_starts(plan, targeted)
        times, values, durations, elapsed, windows_run = run_window_loop(plan, starts, collect)
        stats = build_stats(plan, windows_run, int(times.size), elapsed, targeted)
        return StreamResult(times, values, durations, stats=stats)


def batch_unsafe_node(plan: CompiledPlan) -> OperatorNode | None:
    """The first operator node whose output is not widening-invariant.

    Returns None when the whole plan is batch-safe.  Used both for the
    go/no-go decision (:func:`plan_batch_safe`) and to name the blocking
    node in :attr:`~repro.core.runtime.result.ExecutionStats.fallback_reason`.
    """
    for node in topological_order(plan.sink):
        if isinstance(node, OperatorNode):
            inputs = [inp.descriptor for inp in node.inputs]
            if not node.operator.batch_safe(inputs):
                return node
    return None


def plan_batch_safe(plan: CompiledPlan) -> bool:
    """True when every operator's output is invariant to window widening.

    Checked via :meth:`~repro.core.operators.base.Operator.batch_safe`; the
    batched backend only widens plans where this holds and falls back to
    serial execution otherwise (recording why in the run's stats), so
    correctness never depends on the backend choice.
    """
    return batch_unsafe_node(plan) is None


class BatchedBackend(ExecutionBackend):
    """Dispatch runs of consecutive FWindows per call.

    The backend compiles a twin of the plan whose uniform dimension is
    ``batch_windows`` times the original, so each ``fill`` of the twin's
    sink processes a run of ``batch_windows`` consecutive original windows
    in one graph walk.  Locality tracing scales every dimension by the same
    integer factor, so all alignment constraints are preserved and the twin
    computes the same events (windows outside the output coverage hold no
    present events — the targeted/eager equivalence the engine already
    guarantees).  The trade-off is ``batch_windows``× larger FWindow
    buffers.

    Widening is only exact for plans whose operators are all
    window-widening-invariant (:func:`plan_batch_safe`); plans containing a
    boundary-sensitive operator (interpolating resample, clip join, shape
    matching) execute serially instead.

    The twin is compiled lazily on first use and cached per plan, so
    repeated runs of a :class:`~repro.core.engine.CompiledQuery` pay the
    extra compilation once.
    """

    name = "batched"

    def __init__(self, batch_windows: int = 16):
        if batch_windows < 1:
            raise ExecutionError(f"batch_windows must be positive, got {batch_windows}")
        self.batch_windows = int(batch_windows)

    def _twin(self, plan: CompiledPlan) -> CompiledPlan | None:
        # The twin cache lives on the plan itself (keyed by batch factor) so
        # its lifetime is tied to the plan's: a backend that executes many
        # plans never accumulates buffers for plans the caller has dropped.
        # A twin of None records "not batch-safe, run serially".
        cache: dict[int, CompiledPlan | None] = plan.__dict__.setdefault(
            "_batched_twins", {}
        )
        if self.batch_windows in cache:
            return cache[self.batch_windows]
        if not plan_batch_safe(plan):
            cache[self.batch_windows] = None
            return None
        if plan.query is None:
            raise ExecutionError(
                "batched execution needs the plan's source query to compile a "
                "widened twin; compile the plan via compile_plan()/LifeStreamEngine"
            )
        dimension = uniform_dimension(plan.sink)
        twin = compile_plan(
            plan.query,
            sources=plan.sources,
            window_size=self.batch_windows * dimension,
            tracer=plan.tracer,
            optimization_level=plan.optimization_level,
        )
        cache[self.batch_windows] = twin
        return twin

    def session_plan(self, plan: CompiledPlan) -> CompiledPlan:
        # Non-batch-safe plans fall back to driving the original plan one
        # window at a time, mirroring execute()'s serial fallback.
        if self.batch_windows <= 1:
            return plan
        twin = self._twin(plan)
        return plan if twin is None else twin

    def execute(
        self, plan: CompiledPlan, targeted: bool = True, collect: bool = True
    ) -> StreamResult:
        twin = self._twin(plan) if self.batch_windows > 1 else None
        target = plan if twin is None else twin
        starts = _window_starts(target, targeted)
        times, values, durations, elapsed, windows_run = run_window_loop(target, starts, collect)
        stats = build_stats(target, windows_run, int(times.size), elapsed, targeted)
        # A non-batch-safe plan (or batch_windows=1) ran the original plan one
        # window at a time; the stats must say so — and say why.
        stats.execution_mode = "serial" if twin is None else self.name
        if twin is None and self.batch_windows > 1:
            blocker = batch_unsafe_node(plan)
            if blocker is not None:
                stats.fallback_reason = (
                    f"operator {blocker.operator.name} ({blocker.name}) is not "
                    "batch-safe: widening its windows would change its output"
                )
        if twin is not None:
            # Report window counts in the *original* plan's geometry so
            # backend sweeps compare like with like: every twin window is a
            # run of ``batch_windows`` original windows (the final run may
            # overhang the stream end, hence the clamp).  Batched runs
            # genuinely compute the coverage holes inside each run, so
            # windows_skipped is honestly lower than a serial targeted run's.
            # preallocated_bytes stays the twin's — that is the memory this
            # execution mode actually allocated.
            eager_total = eager_window_count(plan)
            stats.output_windows = min(windows_run * self.batch_windows, eager_total)
            stats.windows_skipped = (
                max(0, eager_total - stats.output_windows) if targeted else 0
            )
            stats.per_node_windows = {
                name: count * self.batch_windows
                for name, count in stats.per_node_windows.items()
            }
            stats.windows_computed = sum(stats.per_node_windows.values())
        return StreamResult(times, values, durations, stats=stats)


def plan_warmup_windows(plan: CompiledPlan) -> int:
    """Windows of history a shard must replay to rebuild operator state."""
    dimension = plan.sink.dimension
    if dimension is None:
        raise ExecutionError("plan has no dimensions assigned; was it compiled?")
    needed = 0
    for node in topological_order(plan.sink):
        if isinstance(node, OperatorNode):
            needed = max(needed, node.operator.warmup_windows(dimension))
    return needed


#: Per-process state handed to forked shard workers.  Set by the parent
#: immediately before the pool is created; forked children inherit it (the
#: plan graph holds lambdas and NumPy buffers, which cannot be pickled).
#: Guarded by ``_SHARD_LOCK`` so concurrent multiprocess executions from
#: different threads cannot observe each other's plan.
_SHARD_STATE: tuple[CompiledPlan, list[int], bool, int] | None = None
_SHARD_LOCK = threading.Lock()


def _run_shard(bounds: tuple[int, int]):
    """Worker: execute the start range ``[lo, hi)`` of the shared plan."""
    plan, starts, collect, warmup = _SHARD_STATE
    lo, hi = bounds
    warmup_starts = starts[max(0, lo - warmup) : lo]
    times, values, durations, _, windows_run = run_window_loop(
        plan, starts[lo:hi], collect, warmup_starts=warmup_starts
    )
    per_node = {
        node.name: node.windows_computed for node in topological_order(plan.sink)
    }
    return times, values, durations, windows_run, per_node


def fork_available() -> bool:
    """True when the platform supports the ``fork`` start method."""
    return "fork" in multiprocessing.get_all_start_methods()


class MultiprocessBackend(ExecutionBackend):
    """Shard disjoint output-window ranges across worker processes.

    The targeted window-start list is split into ``n_workers`` contiguous
    shards.  Each worker (a forked child, so the unpicklable plan graph is
    inherited rather than serialised) replays the few windows preceding its
    shard to rebuild stateful operators' carries, executes its range, and
    ships the columnar results back; the parent concatenates them in shard
    order, which keeps the merged stream chronologically sorted.

    Requires the ``fork`` start method; platforms without it (or runs with
    ``n_workers=1``) fall back to serial in-process execution.
    """

    name = "multiprocess"

    def __init__(self, n_workers: int = 2, warmup_windows: int | None = None):
        if n_workers < 1:
            raise ExecutionError(f"n_workers must be positive, got {n_workers}")
        self.n_workers = int(n_workers)
        self.warmup_windows = warmup_windows

    @staticmethod
    def _fork_available() -> bool:
        return fork_available()

    def session_plan(self, plan: CompiledPlan) -> CompiledPlan:
        raise NotImplementedError(
            "streaming sessions are not supported on the multiprocess backend: "
            "sharding re-replays warm-up windows per run, which conflicts with "
            "a single long-lived carry state; open the session with the serial "
            "or batched backend instead"
        )

    def execute(
        self, plan: CompiledPlan, targeted: bool = True, collect: bool = True
    ) -> StreamResult:
        global _SHARD_STATE
        starts = _window_starts(plan, targeted)
        if self.n_workers == 1 or len(starts) < 2 * self.n_workers or not self._fork_available():
            return SerialBackend().execute(plan, targeted=targeted, collect=collect)

        warmup = (
            self.warmup_windows
            if self.warmup_windows is not None
            else plan_warmup_windows(plan)
        )
        bounds = []
        per_shard = -(-len(starts) // self.n_workers)
        for lo in range(0, len(starts), per_shard):
            bounds.append((lo, min(lo + per_shard, len(starts))))

        began = time.perf_counter()
        with _SHARD_LOCK:
            _SHARD_STATE = (plan, starts, collect, warmup)
            try:
                context = multiprocessing.get_context("fork")
                with context.Pool(len(bounds)) as pool:
                    shard_results = pool.map(_run_shard, bounds)
            finally:
                _SHARD_STATE = None
        elapsed = time.perf_counter() - began

        times = np.concatenate([shard[0] for shard in shard_results])
        values = np.concatenate([shard[1] for shard in shard_results])
        durations = np.concatenate([shard[2] for shard in shard_results])
        windows_run = sum(shard[3] for shard in shard_results)
        stats = build_stats(plan, windows_run, int(times.size), elapsed, targeted)
        stats.execution_mode = self.name
        # The parent plan never executed; fold the workers' per-node counts
        # (shard warm-up replays are included — they are real work done).
        per_node: dict[str, int] = {}
        for shard in shard_results:
            for name, count in shard[4].items():
                per_node[name] = per_node.get(name, 0) + count
        stats.per_node_windows = per_node
        stats.windows_computed = sum(per_node.values())
        return StreamResult(times, values, durations, stats=stats)


def vectorized_fallback_reason(plan: CompiledPlan) -> str:
    """Why the vectorized backend would run *plan* entirely serially.

    Names the specific blocking property — the cache tracer, the plan-level
    soundness failure (including which node scales time), or the absence of
    any lowerable operator — so the fallback is attributable in
    :attr:`~repro.core.runtime.result.ExecutionStats.fallback_reason` and in
    ``--backend auto`` pipeline output.
    """
    if plan.tracer is not None:
        return "plan carries a cache tracer, which models per-window buffer touches"
    info = plan_vector_info(plan)
    if not info.runnable:
        return info.reason
    return (
        f"none of the plan's {info.operator_nodes} operator node(s) lowers "
        "to a run kernel"
    )


class VectorizedBackend(ExecutionBackend):
    """Execute maximal runs of consecutive windows as NumPy array programs.

    The targeted coverage is converted to runs of consecutive windows
    (:func:`~repro.core.runtime.vectorized.runs_for_starts`); each run is
    pulled through the graph once, with every stream materialised in one
    contiguous run buffer and every lowerable operator executing the whole
    run per :meth:`~repro.core.operators.base.Operator.compute_run` call.
    Unlike the batched backend this needs no widened twin plan (no second
    compilation, and the run length adapts to the coverage instead of being
    fixed), and unlowerable operators degrade *per node* to bit-identical
    window-by-window execution instead of failing the whole plan over to
    serial.

    Plans where run execution is unsound (mixed dimensions, time-scaling
    operators) or useless (no operator lowers) run on the serial backend and
    honestly report ``execution_mode == "serial"``; runs with any per-node
    fallback report ``"vectorized+serial-fallback"``.  Cache-tracing plans
    always run serially — the tracer models per-window buffer touches.
    """

    name = "vectorized"

    def __init__(self, max_run_windows: int = DEFAULT_MAX_RUN_WINDOWS):
        if max_run_windows < 1:
            raise ExecutionError(f"max_run_windows must be positive, got {max_run_windows}")
        self.max_run_windows = int(max_run_windows)

    def _active(self, plan: CompiledPlan) -> bool:
        return plan.tracer is None and plan_vector_info(plan).worthwhile

    def execute(
        self, plan: CompiledPlan, targeted: bool = True, collect: bool = True
    ) -> StreamResult:
        if not self._active(plan):
            result = SerialBackend().execute(plan, targeted=targeted, collect=collect)
            result.stats.fallback_reason = vectorized_fallback_reason(plan)
            return result
        starts = _window_starts(plan, targeted)
        runs = runs_for_starts(starts, plan.sink.dimension, self.max_run_windows)
        for node in topological_order(plan.sink):
            node.reset()
        # Run buffers are reused across executions of the same plan (the pool
        # is keyed by run length, and repeated executions see the same run
        # geometry), keeping the steady state allocation-free.
        executor = plan.__dict__.get("_run_executor")
        if executor is None:
            executor = plan.__dict__["_run_executor"] = RunExecutor(plan)
        executor.fallback_nodes.clear()

        collected_times: list[np.ndarray] = []
        collected_values: list[np.ndarray] = []
        collected_durations: list[np.ndarray] = []
        began = time.perf_counter()
        for start, count in runs:
            executor.execute_run(
                start, count, collect, collected_times, collected_values, collected_durations
            )
        elapsed = time.perf_counter() - began

        if collected_times:
            times = np.concatenate(collected_times)
            values = np.concatenate(collected_values)
            durations = np.concatenate(collected_durations)
        else:
            times = np.empty(0, dtype=np.int64)
            values = np.empty(0, dtype=np.float64)
            durations = np.empty(0, dtype=np.int64)
        stats = build_stats(plan, len(starts), int(times.size), elapsed, targeted)
        stats.execution_mode = (
            "vectorized+serial-fallback" if executor.fallback_nodes else self.name
        )
        # The statically planned per-window FWindows stay allocated (sessions
        # and other backends share the plan); the run buffers are this
        # execution's own extra footprint.
        stats.preallocated_bytes = plan.memory_plan.total_bytes + executor.peak_buffer_bytes
        return StreamResult(times, values, durations, stats=stats)

    def session_plan(self, plan: CompiledPlan) -> CompiledPlan:
        # Run execution drives the original plan's state and geometry — each
        # tick just groups the ready windows into runs — so sessions keep
        # their compiled plan (and its checkpoints) unchanged.
        return plan

    def session_execution_mode(self, plan: CompiledPlan, session_plan: CompiledPlan) -> str:
        return self.name if self._active(session_plan) else "serial"

    def session_tick(
        self,
        plan: CompiledPlan,
        starts,
        times: list,
        values: list,
        durations: list,
    ) -> tuple[int, bool]:
        if not self._active(plan):
            return super().session_tick(plan, starts, times, values, durations)
        # One executor per session plan, cached on the plan so run buffers
        # persist across ticks (ticks advance monotonically, like windows).
        executor = plan.__dict__.get("_run_executor")
        if executor is None:
            executor = plan.__dict__["_run_executor"] = RunExecutor(plan)
        events = 0
        for start, count in runs_for_starts(starts, plan.sink.dimension, self.max_run_windows):
            events += executor.execute_run(start, count, True, times, values, durations)
        return events, bool(executor.fallback_nodes)


def recommend_backend(
    plan: CompiledPlan, targeted: bool = True, profile=None
) -> tuple[ExecutionBackend, str]:
    """Choose an execution backend for *plan* and say why.

    Returns ``(backend, reason)`` — the reason is a human-readable sentence
    surfaced by ``--backend auto`` pipelines and recorded by the adaptive
    serving layer, so backend choices are auditable rather than silent.

    Without a profile, the heuristic mirrors what the backends themselves
    would decide, without running anything: vectorized run execution wins
    whenever some operator lowers and the targeted coverage forms
    non-trivial runs (amortising the per-window overhead is the whole point
    — isolated single-window runs leave nothing to amortise); widening-safe
    plans that cannot lower any node still benefit from the batched twin;
    everything else runs serially.

    With a :class:`~repro.core.runtime.profile.PlanProfile` (measured ticks
    of a live session), the *observed* run geometry replaces the static
    coverage guess: the measured mean run length decides whether there is
    anything to amortise, and the profile's histogram sizes the vectorized
    run cap / batched twin width.
    """
    can_vectorize = plan.tracer is None and plan_vector_info(plan).worthwhile
    batchable = plan_batch_safe(plan) and plan.query is not None

    if profile is not None and profile.window_runs > 0:
        mean_run = profile.mean_run_length
        hints = profile.hints()
        if can_vectorize and mean_run >= 2.0:
            cap = hints.max_run_windows or DEFAULT_MAX_RUN_WINDOWS
            return VectorizedBackend(max_run_windows=cap), (
                f"profile over {profile.ticks} tick(s) measured mean runs of "
                f"{mean_run:.1f} consecutive window(s); lowerable operators "
                f"amortise per-window overhead over runs (cap {cap})"
            )
        if batchable and mean_run >= 2.0:
            width = hints.batch_windows or BatchedBackend().batch_windows
            return BatchedBackend(batch_windows=width), (
                f"profile over {profile.ticks} tick(s) measured mean runs of "
                f"{mean_run:.1f} consecutive window(s) but no operator "
                f"lowers; a {width}-window widened twin amortises the graph "
                f"walk instead"
            )
        return SerialBackend(), (
            f"profile over {profile.ticks} tick(s) measured mostly isolated "
            f"windows (mean run {mean_run:.1f}); batching or run execution "
            f"has nothing to amortise"
        )

    if can_vectorize:
        starts = _window_starts(plan, targeted)
        runs = runs_for_starts(starts, plan.sink.dimension)
        if runs and len(starts) >= 4 * len(runs):
            return VectorizedBackend(), (
                f"coverage forms {len(runs)} run(s) over {len(starts)} "
                f"window(s) and some operators lower to array programs"
            )
    if batchable:
        return BatchedBackend(), (
            "every operator is widening-invariant, so a widened twin "
            "amortises the per-window graph walk"
            + (
                "; coverage runs are too short for run execution"
                if can_vectorize
                else ""
            )
        )
    return SerialBackend(), (
        "plan is neither lowerable nor widening-safe; windows must run "
        "one at a time"
    )
