"""Runtime: plan execution and results."""

from repro.core.runtime.executor import execute_plan
from repro.core.runtime.result import ExecutionStats, StreamResult

__all__ = ["execute_plan", "ExecutionStats", "StreamResult"]
