"""Runtime: plan execution, pluggable backends, and results."""

from repro.core.runtime.backends import (
    BatchedBackend,
    ExecutionBackend,
    MultiprocessBackend,
    SerialBackend,
    VectorizedBackend,
    plan_batch_safe,
    plan_warmup_windows,
    recommend_backend,
)
from repro.core.runtime.executor import eager_window_count, execute_plan, run_window_loop
from repro.core.runtime.profile import PlanProfile
from repro.core.runtime.result import ExecutionStats, StreamResult
from repro.core.runtime.session import StreamingSession, TickStats
from repro.core.runtime.vectorized import runs_for_coverage, runs_for_starts

__all__ = [
    "execute_plan",
    "run_window_loop",
    "eager_window_count",
    "ExecutionStats",
    "StreamResult",
    "StreamingSession",
    "TickStats",
    "PlanProfile",
    "ExecutionBackend",
    "SerialBackend",
    "BatchedBackend",
    "MultiprocessBackend",
    "VectorizedBackend",
    "plan_batch_safe",
    "plan_warmup_windows",
    "recommend_backend",
    "runs_for_coverage",
    "runs_for_starts",
]
