"""Runtime: plan execution, pluggable backends, and results."""

from repro.core.runtime.backends import (
    BatchedBackend,
    ExecutionBackend,
    MultiprocessBackend,
    SerialBackend,
    plan_batch_safe,
    plan_warmup_windows,
)
from repro.core.runtime.executor import eager_window_count, execute_plan, run_window_loop
from repro.core.runtime.result import ExecutionStats, StreamResult
from repro.core.runtime.session import StreamingSession, TickStats

__all__ = [
    "execute_plan",
    "run_window_loop",
    "eager_window_count",
    "ExecutionStats",
    "StreamResult",
    "StreamingSession",
    "TickStats",
    "ExecutionBackend",
    "SerialBackend",
    "BatchedBackend",
    "MultiprocessBackend",
    "plan_batch_safe",
    "plan_warmup_windows",
]
