"""LifeStream core engine: the paper's primary contribution.

The public surface of the core package:

* :class:`~repro.core.engine.LifeStreamEngine` — compile and run queries,
* :class:`~repro.core.query.Query` — the temporal query language,
* :class:`~repro.core.event.StreamDescriptor` / :class:`~repro.core.event.Event`
  — the periodic data model,
* :class:`~repro.core.fwindow.FWindow` — the fixed-interval sliding window,
* the stream sources in :mod:`repro.core.sources`.
"""

from repro.core.engine import CompiledQuery, LifeStreamEngine
from repro.core.event import Event, StreamDescriptor
from repro.core.fwindow import FWindow
from repro.core.intervals import IntervalSet
from repro.core.query import Query
from repro.core.runtime.backends import (
    BatchedBackend,
    ExecutionBackend,
    MultiprocessBackend,
    SerialBackend,
    VectorizedBackend,
    recommend_backend,
)
from repro.core.runtime.result import ExecutionStats, StreamResult
from repro.core.runtime.session import StreamingSession, TickStats
from repro.core.sources import ArraySource, CsvSource, ReplaySource, StreamSource, write_csv
from repro.core.timeutil import (
    TICKS_PER_HOUR,
    TICKS_PER_MINUTE,
    TICKS_PER_SECOND,
    LinearTimeMap,
    period_from_hz,
)

__all__ = [
    "LifeStreamEngine",
    "CompiledQuery",
    "Query",
    "Event",
    "StreamDescriptor",
    "FWindow",
    "IntervalSet",
    "StreamResult",
    "ExecutionStats",
    "StreamingSession",
    "TickStats",
    "ExecutionBackend",
    "SerialBackend",
    "BatchedBackend",
    "MultiprocessBackend",
    "VectorizedBackend",
    "recommend_backend",
    "StreamSource",
    "ArraySource",
    "CsvSource",
    "ReplaySource",
    "write_csv",
    "LinearTimeMap",
    "period_from_hz",
    "TICKS_PER_SECOND",
    "TICKS_PER_MINUTE",
    "TICKS_PER_HOUR",
]
