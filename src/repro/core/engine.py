"""The LifeStream engine facade.

:class:`LifeStreamEngine` is the main entry point of the library: it owns
the compile-time configuration (window size, targeted execution, the
optimization level of the pass pipeline, optional cache tracer) and the
runtime configuration (the execution backend), compiles queries into
:class:`CompiledQuery` objects, and runs them against concrete stream
sources.

Typical use::

    from repro import LifeStreamEngine, Query
    from repro.core.sources import ArraySource

    ecg = ArraySource(times, values, period=2)          # 500 Hz
    query = Query.source("ecg", frequency_hz=500).tumbling_window(1000).mean()

    engine = LifeStreamEngine()
    result = engine.run(query, sources={"ecg": ecg})

Scaling the same query up is a constructor argument away::

    from repro.core.runtime import BatchedBackend, MultiprocessBackend

    engine = LifeStreamEngine(backend=BatchedBackend(batch_windows=16))
    engine = LifeStreamEngine(backend=MultiprocessBackend(n_workers=4))
"""

from __future__ import annotations

from repro.core.compiler import MAX_OPTIMIZATION_LEVEL, CompiledPlan, compile_plan
from repro.core.query import Query
from repro.core.runtime.backends import ExecutionBackend
from repro.core.runtime.executor import execute_plan
from repro.core.runtime.result import StreamResult
from repro.core.sources import StreamSource
from repro.core.timeutil import TICKS_PER_MINUTE
from repro.errors import ExecutionError, QueryConstructionError


class CompiledQuery:
    """A query compiled against concrete sources, ready to execute repeatedly."""

    def __init__(
        self,
        plan: CompiledPlan,
        targeted: bool,
        backend: ExecutionBackend | None = None,
    ) -> None:
        self._plan = plan
        self._targeted = targeted
        self._backend = backend
        self._session = None
        self.last_stats = None

    @property
    def plan(self) -> CompiledPlan:
        """The underlying compiled plan (graph, dimensions, buffers, coverage)."""
        return self._plan

    @property
    def targeted(self) -> bool:
        """Whether runs default to targeted query processing."""
        return self._targeted

    @property
    def window_size(self) -> int:
        """The FWindow size (in ticks) the plan was compiled for."""
        return self._plan.window_size

    @property
    def backend(self) -> ExecutionBackend | None:
        """The execution backend runs will use (None = serial)."""
        return self._backend

    def explain(self) -> str:
        """Human-readable plan dump (dimensions, coverage, memory, pass timeline)."""
        return self._plan.explain()

    def run(
        self,
        targeted: bool | None = None,
        collect: bool = True,
        backend: ExecutionBackend | None = None,
    ) -> StreamResult:
        """Execute the plan and return the output stream.

        ``targeted`` overrides the engine-level setting for this run, which
        is how the ablation benchmarks compare targeted against eager
        processing on the same compiled plan; ``backend`` likewise overrides
        the engine-level execution backend.
        """
        if self._session is not None:
            raise ExecutionError(
                "this compiled query has an open StreamingSession, which owns "
                "the plan's runtime state (FWindow positions, operator carries); "
                "close the session before running one-shot, or compile a "
                "separate copy of the query"
            )
        use_targeted = self._targeted if targeted is None else targeted
        use_backend = self._backend if backend is None else backend
        result = execute_plan(
            self._plan, targeted=use_targeted, collect=collect, backend=use_backend
        )
        self.last_stats = result.stats
        return result

    def open_session(
        self,
        targeted: bool | None = None,
        backend: ExecutionBackend | None = None,
        checkpoint=None,
    ) -> "StreamingSession":
        """Open an incremental :class:`~repro.core.runtime.session.StreamingSession`.

        The session takes exclusive ownership of the plan's runtime state;
        ``run()`` is rejected until it is closed.  Pass ``checkpoint=`` (a
        dict from :meth:`StreamingSession.checkpoint` or a path to a pickled
        one) to resume a previous session's stream position and carries.
        """
        from repro.core.runtime.session import StreamingSession

        use_backend = self._backend if backend is None else backend
        return StreamingSession(
            self, targeted=targeted, backend=use_backend, checkpoint=checkpoint
        )

    def attach_session(self, session) -> None:
        """Record *session* as the exclusive owner of the plan's runtime state."""
        if self._session is not None:
            raise ExecutionError(
                "this compiled query already has an open StreamingSession; "
                "close it before opening another"
            )
        self._session = session

    def detach_session(self, session) -> None:
        """Release the plan (called by :meth:`StreamingSession.close`)."""
        if self._session is session:
            self._session = None


class LifeStreamEngine:
    """High-level engine: compile temporal queries and stream data through them."""

    def __init__(
        self,
        window_size: int = TICKS_PER_MINUTE,
        targeted: bool = True,
        tracer=None,
        backend: ExecutionBackend | None = None,
        optimization_level: int = MAX_OPTIMIZATION_LEVEL,
        plan_cache=None,
        strict: bool = False,
    ) -> None:
        if window_size <= 0:
            raise ExecutionError(f"window size must be positive, got {window_size}")
        self.window_size = window_size
        self.targeted = targeted
        self.tracer = tracer
        self.backend = backend
        self.optimization_level = optimization_level
        #: Refuse plans whose verify pass found error-level diagnostics:
        #: every compile raises :class:`~repro.errors.PlanVerificationError`
        #: instead of returning a plan that is statically known unsound.
        self.strict = strict
        #: Optional :class:`~repro.serve.cache.PlanCache`.  When set,
        #: ``compile()`` looks the query up by structural signature and, on a
        #: hit, hands back a per-client ``instantiate()`` clone of the cached
        #: template instead of running the pass pipeline again — the
        #: compile-once path behind :class:`~repro.serve.StreamingService`.
        self.plan_cache = plan_cache
        self._last_signature: tuple | None = None

    @property
    def last_signature(self) -> tuple | None:
        """The plan signature computed by the most recent :meth:`compile`
        (None when that compile bypassed the cache: no plan cache attached,
        bound sources, or hints).  Signature computation walks the whole
        query spec fingerprinting every callable — letting the serving
        layer reuse this instead of recomputing keeps ``open()`` at one
        signature per client."""
        return self._last_signature

    def compile(
        self,
        query: Query,
        sources: dict[str, StreamSource] | None = None,
        hints=None,
    ) -> CompiledQuery:
        """Compile *query* against *sources* without executing it.

        With a :attr:`plan_cache` attached, structurally equal queries (same
        normalized spec, source grids, window size and optimization level)
        compile exactly once; later calls clone the cached template via
        :meth:`CompiledPlan.instantiate`, rebinding each client's sources.
        Queries with bound sources always compile directly.

        ``hints`` (a :class:`~repro.core.compiler.CompileHints`) threads
        profile-derived overrides into the pass pipeline and bypasses the
        signature cache — hinted recompiles are per-profile specialisations;
        the adaptive serving layer caches them itself under
        ``(signature, hints.cache_key())``.
        """
        if hints is not None:
            self._last_signature = None
        plan = self._cached_plan(query, sources) if hints is None else None
        if plan is None:
            plan = compile_plan(
                query,
                sources=sources,
                window_size=self.window_size,
                tracer=self.tracer,
                optimization_level=self.optimization_level,
                hints=hints,
                strict=self.strict,
            )
        return CompiledQuery(plan, targeted=self.targeted, backend=self.backend)

    def _cached_plan(self, query, sources):
        """Instantiate from the plan cache, or None to compile directly."""
        template = self._cached_template(query, sources)
        if template is None:
            return None
        # Extra entries in a shared sources dict are tolerated, exactly as
        # build_plan tolerates them on the direct compile path.
        return template.instantiate(sources, strict=False)

    def _cached_template(self, query, sources):
        """The cached (pristine, never-executed) template for *query*.

        Returns None when no plan cache is attached or the query cannot be
        cached (bound sources).  Also used by the sharded serving layer to
        pre-warm the cache before forking, without paying for a throwaway
        per-client instantiation.
        """
        self._last_signature = None
        if self.plan_cache is None:
            return None
        # Imported here: repro.serve sits above the engine in the layering.
        from repro.serve.cache import has_bound_sources, plan_signature

        if has_bound_sources(query):
            return None
        # A cache hit skips build_plan, so its missing-source check (and its
        # error) must be replicated for clients that forgot a stream.
        missing = query.source_names() - set(sources or {})
        if missing:
            raise QueryConstructionError(
                f"query references source {sorted(missing)[0]!r} but no such "
                f"source was provided (available: {sorted(sources or {})})"
            )
        key = plan_signature(
            query,
            sources=sources,
            window_size=self.window_size,
            optimization_level=self.optimization_level,
        )
        self._last_signature = key
        return self.plan_cache.get_or_compile(
            key,
            lambda: compile_plan(
                query,
                sources=sources,
                window_size=self.window_size,
                tracer=self.tracer,
                optimization_level=self.optimization_level,
                strict=self.strict,
            ),
        )

    def run(
        self,
        query: Query,
        sources: dict[str, StreamSource] | None = None,
        targeted: bool | None = None,
        collect: bool = True,
    ) -> StreamResult:
        """Compile and execute *query* in one call."""
        compiled = self.compile(query, sources)
        return compiled.run(targeted=targeted, collect=collect)

    def open_session(
        self,
        query: Query,
        sources: dict[str, StreamSource] | None = None,
        targeted: bool | None = None,
        checkpoint=None,
    ):
        """Compile *query* and hold it open as an incremental streaming session.

        Sources wrapped in :class:`~repro.core.sources.ReplaySource` gate
        execution on their watermark: each ``session.advance(watermark)``
        (or ``poll()`` after advancing the sources directly) executes only
        the output windows that became fully covered since the last tick,
        carrying operator state forward instead of recomputing from time
        zero.  ``session.finish()`` drains the tail; ``checkpoint=`` resumes
        a checkpointed session (see :class:`StreamingSession`).
        """
        compiled = self.compile(query, sources)
        return compiled.open_session(targeted=targeted, checkpoint=checkpoint)
