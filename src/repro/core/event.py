"""Event and stream descriptors.

LifeStream targets *periodic* streams: the sync time of every event lies on
the grid ``offset + k * period``.  A stream is therefore fully described by
the symbolic pair ``(offset, period)`` (Section 4 of the paper); the engine
never needs to store per-event timestamps, it derives them from array
indices.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.timeutil import hz_from_period, is_aligned, period_from_hz
from repro.errors import StreamDefinitionError


@dataclass(frozen=True)
class StreamDescriptor:
    """Symbolic description of a periodic stream: ``(offset, period)``.

    *offset* is the sync time of the first possible event; *period* is the
    constant spacing between consecutive events (the reciprocal of the
    sampling frequency).  Both are integer ticks.
    """

    offset: int
    period: int

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise StreamDefinitionError(f"period must be positive, got {self.period}")
        if self.offset < 0:
            raise StreamDefinitionError(f"offset must be non-negative, got {self.offset}")

    @staticmethod
    def from_frequency(frequency_hz: float, offset: int = 0) -> "StreamDescriptor":
        """Build a descriptor from a sampling frequency in Hz."""
        return StreamDescriptor(offset=offset, period=period_from_hz(frequency_hz))

    @property
    def frequency_hz(self) -> float:
        """Sampling frequency implied by the period."""
        return hz_from_period(self.period)

    def grid_index(self, sync_time: int) -> int:
        """Index of the grid slot holding an event with the given sync time."""
        if not self.is_on_grid(sync_time):
            raise StreamDefinitionError(
                f"sync time {sync_time} is not on the grid of {self}"
            )
        return (sync_time - self.offset) // self.period

    def grid_time(self, index: int) -> int:
        """Sync time of the grid slot at *index*."""
        return self.offset + index * self.period

    def is_on_grid(self, sync_time: int) -> bool:
        """True when *sync_time* lies on this stream's periodic grid."""
        return is_aligned(sync_time, self.period, self.offset)

    def align_down(self, sync_time: int) -> int:
        """Largest grid time that is ``<= sync_time``."""
        return self.offset + ((sync_time - self.offset) // self.period) * self.period

    def events_per(self, duration: int) -> int:
        """Maximum number of events in an interval of the given *duration*.

        This is the paper's bounded-memory-footprint property: at most
        ``duration / period`` events can exist in any interval of that
        length.
        """
        if duration % self.period != 0:
            raise StreamDefinitionError(
                f"duration {duration} is not a multiple of period {self.period}"
            )
        return duration // self.period

    def with_offset(self, offset: int) -> "StreamDescriptor":
        """Copy of this descriptor with a different offset."""
        return StreamDescriptor(offset=offset, period=self.period)

    def with_period(self, period: int) -> "StreamDescriptor":
        """Copy of this descriptor with a different period."""
        return StreamDescriptor(offset=self.offset, period=period)

    def __str__(self) -> str:
        return f"({self.offset},{self.period})"


@dataclass(frozen=True)
class Event:
    """A single stream event: payload value, sync time, and duration.

    The engine itself stores events in columnar :class:`~repro.core.fwindow.FWindow`
    buffers; this row-wise representation exists for interoperability at the
    edges of the system (sources, sinks, tests, examples).
    """

    sync_time: int
    duration: int
    value: float

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise StreamDefinitionError(
                f"event duration must be positive, got {self.duration}"
            )

    @property
    def end_time(self) -> int:
        """The first instant at which the event is no longer active."""
        return self.sync_time + self.duration

    def is_active_at(self, timestamp: int) -> bool:
        """True when the event's active interval covers *timestamp*."""
        return self.sync_time <= timestamp < self.end_time

    def overlaps(self, other: "Event") -> bool:
        """True when the active intervals of the two events intersect."""
        return self.sync_time < other.end_time and other.sync_time < self.end_time
