"""Stream sources.

A source feeds a periodic stream into the engine.  The engine only needs
three things from a source:

* its :class:`~repro.core.event.StreamDescriptor` ``(offset, period)``,
* its *coverage* — an :class:`~repro.core.intervals.IntervalSet` describing
  where data actually exists (physiological data is full of gaps), and
* a ``read(start, end)`` method returning the events inside a half-open time
  interval as columnar NumPy arrays.

Three concrete sources are provided: in-memory arrays (``ArraySource``),
CSV files on disk (``CsvSource``), matching the paper's retrospective-data
use case, and a replayable wrapper (``ReplaySource``) that simulates live
ingestion by only exposing data up to a movable "now" watermark.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from repro.core.event import StreamDescriptor
from repro.core.intervals import IntervalSet
from repro.errors import StreamDefinitionError


class StreamSource:
    """Abstract base class for stream sources."""

    descriptor: StreamDescriptor

    def coverage(self) -> IntervalSet:
        """Interval set describing where events exist."""
        raise NotImplementedError

    def read(self, start: int, end: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(times, values, durations)`` for events in ``[start, end)``."""
        raise NotImplementedError

    def event_count(self) -> int:
        """Total number of events the source holds."""
        raise NotImplementedError


#: Duplicate-timestamp policies accepted by :class:`ArraySource`.
DEDUPE_POLICIES = ("first", "last")


class ArraySource(StreamSource):
    """A source backed by in-memory NumPy arrays of timestamps and values.

    Timestamps are sorted if needed.  Duplicate timestamps are rejected by
    default (two events cannot share one grid slot of a periodic stream —
    silently keeping both would corrupt FWindow fills downstream); pass
    ``dedupe="last"`` (or ``"first"``) to opt into keeping one event per
    slot instead.  ``validate=False`` disables duplicate, grid-alignment and
    duration checks entirely.
    """

    def __init__(
        self,
        times: np.ndarray,
        values: np.ndarray,
        period: int,
        offset: int | None = None,
        durations: np.ndarray | None = None,
        validate: bool = True,
        dedupe: str | None = None,
    ) -> None:
        if dedupe is not None and dedupe not in DEDUPE_POLICIES:
            raise StreamDefinitionError(
                f"unknown dedupe policy {dedupe!r}; expected one of {DEDUPE_POLICIES}"
            )
        times = np.asarray(times, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        if times.shape != values.shape:
            raise StreamDefinitionError(
                f"times and values must have the same shape, got {times.shape} "
                f"and {values.shape}"
            )
        if durations is not None:
            durations = np.asarray(durations, dtype=np.int64)
            if durations.shape != times.shape:
                raise StreamDefinitionError(
                    f"durations must have the same shape as times, got "
                    f"{durations.shape} and {times.shape}"
                )
        if times.size and np.any(np.diff(times) <= 0):
            order = np.argsort(times, kind="stable")
            times = times[order]
            values = values[order]
            if durations is not None:
                durations = durations[order]
        duplicated = np.flatnonzero(np.diff(times) == 0) if times.size else np.empty(0, int)
        if duplicated.size:
            if dedupe is not None:
                # Stable sort preserved input order within equal timestamps,
                # so "first"/"last" refer to the order events were supplied.
                if dedupe == "last":
                    keep = np.append(np.diff(times) != 0, True)
                else:
                    keep = np.append(True, np.diff(times) != 0)
                times = times[keep]
                values = values[keep]
                if durations is not None:
                    durations = durations[keep]
            elif validate:
                bad = int(times[duplicated[0]])
                raise StreamDefinitionError(
                    f"duplicate timestamp {bad}: two events cannot share one grid "
                    f"slot of a periodic stream; pass dedupe='last' (or 'first') "
                    f"to keep one event per slot"
                )
        if offset is None:
            offset = int(times[0] % period) if times.size else 0
        if validate and times.size:
            misaligned = (times - offset) % period
            if np.any(misaligned != 0):
                bad = int(times[np.flatnonzero(misaligned)[0]])
                raise StreamDefinitionError(
                    f"timestamp {bad} does not lie on the periodic grid "
                    f"(offset={offset}, period={period})"
                )
            if durations is not None and np.any(durations <= 0):
                index = int(np.flatnonzero(durations <= 0)[0])
                raise StreamDefinitionError(
                    f"duration {int(durations[index])} of the event at timestamp "
                    f"{int(times[index])} must be positive"
                )
        self.descriptor = StreamDescriptor(offset=offset, period=period)
        self._times = times
        self._values = values
        if durations is None:
            self._durations = np.full(times.shape, period, dtype=np.int64)
            self._coverage = IntervalSet.from_timestamps(times, period)
        else:
            self._durations = np.asarray(durations, dtype=np.int64)
            self._coverage = IntervalSet.from_events(times, self._durations)

    @staticmethod
    def from_frequency(
        times: np.ndarray,
        values: np.ndarray,
        frequency_hz: float,
        **kwargs,
    ) -> "ArraySource":
        """Build an ArraySource from a sampling frequency in Hz."""
        descriptor = StreamDescriptor.from_frequency(frequency_hz)
        return ArraySource(times, values, period=descriptor.period, **kwargs)

    def coverage(self) -> IntervalSet:
        return self._coverage

    def event_count(self) -> int:
        return int(self._times.size)

    def read(self, start: int, end: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        lo = int(np.searchsorted(self._times, start, side="left"))
        hi = int(np.searchsorted(self._times, end, side="left"))
        return self._times[lo:hi], self._values[lo:hi], self._durations[lo:hi]

    @property
    def times(self) -> np.ndarray:
        """The full timestamp array backing this source."""
        return self._times

    @property
    def values(self) -> np.ndarray:
        """The full value array backing this source."""
        return self._values


class CsvSource(StreamSource):
    """A source reading ``timestamp,value`` rows from a CSV file.

    This mirrors the paper's retrospective-data workflow where historical
    waveform data is stored on persistent disks in CSV form (Section 8.3).
    The file is loaded eagerly into memory; for the dataset sizes used in
    the reproduction this is both simpler and faster than chunked reads.

    Timestamps may be written as integers (``10``) or integral floats
    (``"10.0"``, a common artifact of exporting from pandas/Excel); anything
    else raises :class:`~repro.errors.StreamDefinitionError` naming the
    offending row.  Rows whose timestamp or value cell is blank are skipped
    (they represent missing samples, i.e. gaps) and counted in
    :attr:`skipped_rows`.
    """

    def __init__(
        self,
        path: str | Path,
        period: int,
        has_header: bool = True,
        validate: bool = True,
        dedupe: str | None = None,
    ) -> None:
        self.path = Path(path)
        times: list[int] = []
        values: list[float] = []
        #: Number of data rows skipped because a timestamp/value cell was blank.
        self.skipped_rows = 0
        with open(self.path, newline="") as handle:
            reader = csv.reader(handle)
            if has_header:
                next(reader, None)
            for line_number, row in enumerate(reader, start=2 if has_header else 1):
                if not row or all(not cell.strip() for cell in row):
                    continue
                raw_time = row[0].strip()
                raw_value = row[1].strip() if len(row) > 1 else ""
                if not raw_time or not raw_value:
                    self.skipped_rows += 1
                    continue
                times.append(self._parse_timestamp(raw_time, line_number))
                try:
                    values.append(float(raw_value))
                except ValueError:
                    raise StreamDefinitionError(
                        f"{self.path}, row {line_number}: value {raw_value!r} is "
                        f"not a number"
                    ) from None
        self._delegate = ArraySource(
            np.asarray(times, dtype=np.int64),
            np.asarray(values, dtype=np.float64),
            period=period,
            validate=validate,
            dedupe=dedupe,
        )
        self.descriptor = self._delegate.descriptor

    def _parse_timestamp(self, raw: str, line_number: int) -> int:
        try:
            parsed = float(raw)
        except ValueError:
            raise StreamDefinitionError(
                f"{self.path}, row {line_number}: timestamp {raw!r} is not a number"
            ) from None
        if not parsed.is_integer():
            raise StreamDefinitionError(
                f"{self.path}, row {line_number}: timestamp {raw!r} is not an "
                f"integer tick (periodic streams use integer timestamps)"
            )
        return int(parsed)

    def coverage(self) -> IntervalSet:
        return self._delegate.coverage()

    def event_count(self) -> int:
        return self._delegate.event_count()

    def read(self, start: int, end: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        return self._delegate.read(start, end)


class ReplaySource(StreamSource):
    """Wraps another source and only exposes events up to a watermark.

    Data analysts develop pipelines against retrospective data and then
    deploy them on live streams (Section 2).  ``ReplaySource`` simulates the
    live case: the same query runs unchanged, but ``read`` never returns
    events beyond the current watermark, and the watermark can be advanced
    between executor steps to mimic data arriving over time.
    """

    def __init__(self, inner: StreamSource, watermark: int | None = None) -> None:
        self._inner = inner
        self.descriptor = inner.descriptor
        span = inner.coverage().span()
        self._watermark = watermark if watermark is not None else span[0]

    @property
    def watermark(self) -> int:
        """Current watermark: no event at or beyond this time is visible."""
        return self._watermark

    def advance(self, new_watermark: int) -> None:
        """Move the watermark forward (it can never move backwards)."""
        if new_watermark < self._watermark:
            raise StreamDefinitionError(
                f"watermark can only move forward ({self._watermark} -> {new_watermark})"
            )
        self._watermark = new_watermark

    def advance_to_end(self) -> None:
        """Expose the entire underlying source (never moves the watermark back)."""
        self._watermark = max(self._watermark, self._inner.coverage().span()[1])

    def coverage(self) -> IntervalSet:
        return self._inner.coverage().clip(*(self._inner.coverage().span()[0], self._watermark))

    def event_count(self) -> int:
        return self._inner.event_count()

    def read(self, start: int, end: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        return self._inner.read(start, min(end, self._watermark))


def write_csv(path: str | Path, times: np.ndarray, values: np.ndarray) -> Path:
    """Write a ``timestamp,value`` CSV file compatible with :class:`CsvSource`."""
    path = Path(path)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["timestamp", "value"])
        for t, v in zip(np.asarray(times).tolist(), np.asarray(values).tolist()):
            writer.writerow([int(t), float(v)])
    return path
