"""Stream sources.

A source feeds a periodic stream into the engine.  The engine only needs
three things from a source:

* its :class:`~repro.core.event.StreamDescriptor` ``(offset, period)``,
* its *coverage* — an :class:`~repro.core.intervals.IntervalSet` describing
  where data actually exists (physiological data is full of gaps), and
* a ``read(start, end)`` method returning the events inside a half-open time
  interval as columnar NumPy arrays.

Three concrete sources are provided: in-memory arrays (``ArraySource``),
CSV files on disk (``CsvSource``), matching the paper's retrospective-data
use case, and a replayable wrapper (``ReplaySource``) that simulates live
ingestion by only exposing data up to a movable "now" watermark.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from repro.core.event import StreamDescriptor
from repro.core.intervals import IntervalSet
from repro.errors import StreamDefinitionError


class StreamSource:
    """Abstract base class for stream sources."""

    descriptor: StreamDescriptor

    def coverage(self) -> IntervalSet:
        """Interval set describing where events exist."""
        raise NotImplementedError

    def read(self, start: int, end: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(times, values, durations)`` for events in ``[start, end)``."""
        raise NotImplementedError

    def event_count(self) -> int:
        """Total number of events the source holds."""
        raise NotImplementedError


#: Duplicate-timestamp policies accepted by :class:`ArraySource`.
DEDUPE_POLICIES = ("first", "last")


class ArraySource(StreamSource):
    """A source backed by in-memory NumPy arrays of timestamps and values.

    Timestamps are sorted if needed.  Duplicate timestamps are rejected by
    default (two events cannot share one grid slot of a periodic stream —
    silently keeping both would corrupt FWindow fills downstream); pass
    ``dedupe="last"`` (or ``"first"``) to opt into keeping one event per
    slot instead.  ``validate=False`` disables duplicate, grid-alignment and
    duration checks entirely.
    """

    def __init__(
        self,
        times: np.ndarray,
        values: np.ndarray,
        period: int,
        offset: int | None = None,
        durations: np.ndarray | None = None,
        validate: bool = True,
        dedupe: str | None = None,
    ) -> None:
        if dedupe is not None and dedupe not in DEDUPE_POLICIES:
            raise StreamDefinitionError(
                f"unknown dedupe policy {dedupe!r}; expected one of {DEDUPE_POLICIES}"
            )
        times = np.asarray(times, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        if times.shape != values.shape:
            raise StreamDefinitionError(
                f"times and values must have the same shape, got {times.shape} "
                f"and {values.shape}"
            )
        if durations is not None:
            durations = np.asarray(durations, dtype=np.int64)
            if durations.shape != times.shape:
                raise StreamDefinitionError(
                    f"durations must have the same shape as times, got "
                    f"{durations.shape} and {times.shape}"
                )
        if times.size and np.any(np.diff(times) <= 0):
            order = np.argsort(times, kind="stable")
            times = times[order]
            values = values[order]
            if durations is not None:
                durations = durations[order]
        duplicated = np.flatnonzero(np.diff(times) == 0) if times.size else np.empty(0, int)
        if duplicated.size:
            if dedupe is not None:
                # Stable sort preserved input order within equal timestamps,
                # so "first"/"last" refer to the order events were supplied.
                if dedupe == "last":
                    keep = np.append(np.diff(times) != 0, True)
                else:
                    keep = np.append(True, np.diff(times) != 0)
                times = times[keep]
                values = values[keep]
                if durations is not None:
                    durations = durations[keep]
            elif validate:
                bad = int(times[duplicated[0]])
                raise StreamDefinitionError(
                    f"duplicate timestamp {bad}: two events cannot share one grid "
                    f"slot of a periodic stream; pass dedupe='last' (or 'first') "
                    f"to keep one event per slot"
                )
        if offset is None:
            offset = int(times[0] % period) if times.size else 0
        if validate and times.size:
            misaligned = (times - offset) % period
            if np.any(misaligned != 0):
                bad = int(times[np.flatnonzero(misaligned)[0]])
                raise StreamDefinitionError(
                    f"timestamp {bad} does not lie on the periodic grid "
                    f"(offset={offset}, period={period})"
                )
            if durations is not None and np.any(durations <= 0):
                index = int(np.flatnonzero(durations <= 0)[0])
                raise StreamDefinitionError(
                    f"duration {int(durations[index])} of the event at timestamp "
                    f"{int(times[index])} must be positive"
                )
        self.descriptor = StreamDescriptor(offset=offset, period=period)
        self._times = times
        self._values = values
        if durations is None:
            self._durations = np.full(times.shape, period, dtype=np.int64)
            self._coverage = IntervalSet.from_timestamps(times, period)
        else:
            self._durations = np.asarray(durations, dtype=np.int64)
            self._coverage = IntervalSet.from_events(times, self._durations)

    @staticmethod
    def from_frequency(
        times: np.ndarray,
        values: np.ndarray,
        frequency_hz: float,
        **kwargs,
    ) -> "ArraySource":
        """Build an ArraySource from a sampling frequency in Hz."""
        descriptor = StreamDescriptor.from_frequency(frequency_hz)
        return ArraySource(times, values, period=descriptor.period, **kwargs)

    def coverage(self) -> IntervalSet:
        return self._coverage

    def event_count(self) -> int:
        return int(self._times.size)

    def read(self, start: int, end: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        lo = int(np.searchsorted(self._times, start, side="left"))
        hi = int(np.searchsorted(self._times, end, side="left"))
        return self._times[lo:hi], self._values[lo:hi], self._durations[lo:hi]

    @property
    def times(self) -> np.ndarray:
        """The full timestamp array backing this source."""
        return self._times

    @property
    def values(self) -> np.ndarray:
        """The full value array backing this source."""
        return self._values


class CsvSource(StreamSource):
    """A source reading ``timestamp,value`` rows from a CSV file.

    This mirrors the paper's retrospective-data workflow where historical
    waveform data is stored on persistent disks in CSV form (Section 8.3).
    The file is loaded eagerly into memory; for the dataset sizes used in
    the reproduction this is both simpler and faster than chunked reads.

    Timestamps may be written as integers (``10``) or integral floats
    (``"10.0"``, a common artifact of exporting from pandas/Excel); anything
    else raises :class:`~repro.errors.StreamDefinitionError` naming the
    offending row.  Rows whose timestamp or value cell is blank are skipped
    (they represent missing samples, i.e. gaps) and counted in
    :attr:`skipped_rows`.
    """

    def __init__(
        self,
        path: str | Path,
        period: int,
        has_header: bool = True,
        validate: bool = True,
        dedupe: str | None = None,
    ) -> None:
        self.path = Path(path)
        times: list[int] = []
        values: list[float] = []
        #: Number of data rows skipped because a timestamp/value cell was blank.
        self.skipped_rows = 0
        with open(self.path, newline="") as handle:
            reader = csv.reader(handle)
            if has_header:
                next(reader, None)
            for line_number, row in enumerate(reader, start=2 if has_header else 1):
                if not row or all(not cell.strip() for cell in row):
                    continue
                raw_time = row[0].strip()
                raw_value = row[1].strip() if len(row) > 1 else ""
                if not raw_time or not raw_value:
                    self.skipped_rows += 1
                    continue
                times.append(self._parse_timestamp(raw_time, line_number))
                try:
                    values.append(float(raw_value))
                except ValueError:
                    raise StreamDefinitionError(
                        f"{self.path}, row {line_number}: value {raw_value!r} is "
                        f"not a number"
                    ) from None
        self._delegate = ArraySource(
            np.asarray(times, dtype=np.int64),
            np.asarray(values, dtype=np.float64),
            period=period,
            validate=validate,
            dedupe=dedupe,
        )
        self.descriptor = self._delegate.descriptor

    def _parse_timestamp(self, raw: str, line_number: int) -> int:
        try:
            parsed = float(raw)
        except ValueError:
            raise StreamDefinitionError(
                f"{self.path}, row {line_number}: timestamp {raw!r} is not a number"
            ) from None
        if not parsed.is_integer():
            raise StreamDefinitionError(
                f"{self.path}, row {line_number}: timestamp {raw!r} is not an "
                f"integer tick (periodic streams use integer timestamps)"
            )
        return int(parsed)

    def coverage(self) -> IntervalSet:
        return self._delegate.coverage()

    def event_count(self) -> int:
        return self._delegate.event_count()

    def read(self, start: int, end: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        return self._delegate.read(start, end)


class ReplaySource(StreamSource):
    """Wraps another source and only exposes events up to a watermark.

    Data analysts develop pipelines against retrospective data and then
    deploy them on live streams (Section 2).  ``ReplaySource`` simulates the
    live case: the same query runs unchanged, but ``read`` never returns
    events beyond the current watermark, and the watermark can be advanced
    between executor steps to mimic data arriving over time.
    """

    def __init__(self, inner: StreamSource, watermark: int | None = None) -> None:
        self._inner = inner
        self.descriptor = inner.descriptor
        span = inner.coverage().span()
        self._watermark = watermark if watermark is not None else span[0]

    @property
    def watermark(self) -> int:
        """Current watermark: no event at or beyond this time is visible."""
        return self._watermark

    def advance(self, new_watermark: int) -> None:
        """Move the watermark forward (it can never move backwards)."""
        if new_watermark < self._watermark:
            raise StreamDefinitionError(
                f"watermark can only move forward ({self._watermark} -> {new_watermark})"
            )
        self._watermark = new_watermark

    def advance_to_end(self) -> None:
        """Expose the entire underlying source (never moves the watermark back)."""
        self._watermark = max(self._watermark, self._inner.coverage().span()[1])

    def coverage(self) -> IntervalSet:
        return self._inner.coverage().clip(*(self._inner.coverage().span()[0], self._watermark))

    def event_count(self) -> int:
        return self._inner.event_count()

    def read(self, start: int, end: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        return self._inner.read(start, min(end, self._watermark))


class PushSource(ReplaySource):
    """An appendable, watermark-gated source for push-based ingestion.

    Where :class:`ReplaySource` *replays* a fully-known retrospective stream
    behind a movable watermark, ``PushSource`` is the live half of the same
    contract: it starts empty, grows as producers :meth:`append` sample
    batches, and advances its watermark to the end of each appended batch —
    so a :class:`~repro.core.runtime.session.StreamingSession` over it
    executes exactly the windows the pushed data has fully covered.  This is
    the source the ingest gateway feeds: *pushed samples*, not hand-delivered
    watermarks, are what move stream time forward.

    Appends are validated like :class:`ArraySource` construction (on-grid
    timestamps, positive durations) plus an ordering rule arrays do not
    need: batches must arrive in time order, strictly after the previous
    batch's last event, because data behind the watermark may already have
    been executed and can never be amended.  :meth:`advance` still works for
    watermark-only progress announcements (heartbeat punctuation: "no data
    through *t*"), letting windows that end in a silence flush.

    Storage is a pair of amortised-growth column buffers (capacity doubles),
    so a long-lived session pays O(1) per appended sample, not O(history).
    """

    def __init__(
        self,
        period: int,
        offset: int = 0,
        watermark: int | None = None,
    ) -> None:
        # Deliberately does not call ReplaySource.__init__: there is no
        # inner source to wrap.  Subclassing ReplaySource is what plugs the
        # push path into the runtime — sessions gate readiness on
        # `isinstance(source, ReplaySource)` watermarks.
        if period <= 0:
            raise StreamDefinitionError(f"period must be positive, got {period}")
        self.descriptor = StreamDescriptor(offset=offset, period=period)
        self._times = np.empty(0, dtype=np.int64)
        self._values = np.empty(0, dtype=np.float64)
        self._durations = np.empty(0, dtype=np.int64)
        self._size = 0
        self._coverage = IntervalSet.empty()
        self._watermark = int(offset) if watermark is None else int(watermark)

    # -- the push path -----------------------------------------------------

    def append(
        self,
        times: np.ndarray,
        values: np.ndarray,
        durations: np.ndarray | None = None,
    ) -> int:
        """Append one batch of samples and advance the watermark past them.

        *times* must be strictly increasing, lie on the stream's periodic
        grid, and start strictly after the last already-appended event (data
        behind the watermark may already have been executed downstream).
        Returns the new watermark: the end of the last appended event
        (``time + duration``, duration defaulting to the period).  An empty
        batch is a no-op returning the current watermark.
        """
        times = np.asarray(times, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        if times.shape != values.shape:
            raise StreamDefinitionError(
                f"times and values must have the same shape, got {times.shape} "
                f"and {values.shape}"
            )
        if durations is not None:
            durations = np.asarray(durations, dtype=np.int64)
            if durations.shape != times.shape:
                raise StreamDefinitionError(
                    f"durations must have the same shape as times, got "
                    f"{durations.shape} and {times.shape}"
                )
            if durations.size and np.any(durations <= 0):
                index = int(np.flatnonzero(durations <= 0)[0])
                raise StreamDefinitionError(
                    f"duration {int(durations[index])} of the pushed event at "
                    f"timestamp {int(times[index])} must be positive"
                )
        if times.size == 0:
            return self._watermark
        if times.size > 1 and np.any(np.diff(times) <= 0):
            bad = int(times[int(np.flatnonzero(np.diff(times) <= 0)[0]) + 1])
            raise StreamDefinitionError(
                f"pushed timestamps must be strictly increasing; timestamp "
                f"{bad} does not advance past its predecessor"
            )
        descriptor = self.descriptor
        misaligned = (times - descriptor.offset) % descriptor.period
        if np.any(misaligned != 0):
            bad = int(times[np.flatnonzero(misaligned)[0]])
            raise StreamDefinitionError(
                f"pushed timestamp {bad} does not lie on the periodic grid "
                f"(offset={descriptor.offset}, period={descriptor.period})"
            )
        if self._size and int(times[0]) <= int(self._times[self._size - 1]):
            raise StreamDefinitionError(
                f"pushed batch starts at timestamp {int(times[0])} but the "
                f"stream already holds data through "
                f"{int(self._times[self._size - 1])}; batches must arrive in "
                f"time order (data behind the watermark may already have "
                f"been executed and cannot be amended)"
            )
        if durations is None:
            durations = np.full(times.shape, descriptor.period, dtype=np.int64)
            chunk_coverage = IntervalSet.from_timestamps(times, descriptor.period)
        else:
            chunk_coverage = IntervalSet.from_events(times, durations)
        self._reserve(times.size)
        end = self._size + times.size
        self._times[self._size : end] = times
        self._values[self._size : end] = values
        self._durations[self._size : end] = durations
        self._size = end
        self._coverage = self._coverage.union(chunk_coverage)
        appended_through = int(times[-1]) + int(durations[-1])
        self._watermark = max(self._watermark, appended_through)
        return self._watermark

    def _reserve(self, extra: int) -> None:
        """Grow the column buffers to hold *extra* more samples (amortised)."""
        needed = self._size + extra
        capacity = self._times.size
        if needed <= capacity:
            return
        new_capacity = max(needed, 2 * capacity, 1024)
        for name, dtype in (
            ("_times", np.int64),
            ("_values", np.float64),
            ("_durations", np.int64),
        ):
            grown = np.empty(new_capacity, dtype=dtype)
            grown[: self._size] = getattr(self, name)[: self._size]
            setattr(self, name, grown)

    # -- the ReplaySource contract -----------------------------------------

    @property
    def watermark(self) -> int:
        """Current watermark: no event at or beyond this time is visible."""
        return self._watermark

    def advance(self, new_watermark: int) -> None:
        """Announce watermark-only progress (heartbeat: no data through *t*)."""
        if new_watermark < self._watermark:
            raise StreamDefinitionError(
                f"watermark can only move forward ({self._watermark} -> {new_watermark})"
            )
        self._watermark = int(new_watermark)

    def advance_to_end(self) -> None:
        """Expose everything appended so far (used by ``session.finish()``)."""
        if self._coverage:
            self._watermark = max(self._watermark, self._coverage.span()[1])

    def coverage(self) -> IntervalSet:
        if not self._coverage:
            return IntervalSet.empty()
        return self._coverage.clip(self._coverage.span()[0], self._watermark)

    def event_count(self) -> int:
        return int(self._size)

    def read(self, start: int, end: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        times = self._times[: self._size]
        lo = int(np.searchsorted(times, start, side="left"))
        hi = int(np.searchsorted(times, min(end, self._watermark), side="left"))
        return (
            times[lo:hi],
            self._values[: self._size][lo:hi],
            self._durations[: self._size][lo:hi],
        )


def write_csv(path: str | Path, times: np.ndarray, values: np.ndarray) -> Path:
    """Write a ``timestamp,value`` CSV file compatible with :class:`CsvSource`."""
    path = Path(path)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["timestamp", "value"])
        for t, v in zip(np.asarray(times).tolist(), np.asarray(values).tolist()):
            writer.writerow([int(t), float(v)])
    return path
