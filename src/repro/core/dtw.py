"""Constrained dynamic time warping (DTW) for shape-based queries.

LifeStream extends the ``Where`` operator so that users can query *visual
patterns* in a signal stream (Section 6.1 of the paper): the user supplies a
representative shape as a list of signal values (for example the "line-zero"
artifact in arterial blood pressure, Figure 7) and the engine finds stream
regions whose DTW distance to that shape is small.

The paper uses a constrained variant of DTW (a Sakoe-Chiba band) re-purposed
for the streaming setting so that the distance for each candidate window is
computed in linear time in the window length.  This module implements:

* :func:`constrained_dtw` — banded DTW distance between two sequences,
* :func:`dtw_profile` — the distance of every sliding window of a long
  signal against a query shape (the streaming building block used by the
  ``ShapeWhere`` operator),
* :func:`match_shape` — convenience wrapper returning the matched regions.
"""

from __future__ import annotations

import numpy as np


def _band_width(n: int, m: int, band_fraction: float) -> int:
    """Half-width of the Sakoe-Chiba band for sequences of length *n* and *m*."""
    base = max(abs(n - m), 1)
    return int(max(base, round(band_fraction * max(n, m))))


def constrained_dtw(
    sequence: np.ndarray,
    shape: np.ndarray,
    band_fraction: float = 0.1,
    normalize: bool = True,
) -> float:
    """Banded (Sakoe-Chiba) DTW distance between *sequence* and *shape*.

    The band constrains the warping path to stay within ``band_fraction`` of
    the diagonal, which bounds the work to ``O(len * band)`` instead of the
    quadratic cost of unconstrained DTW.  With ``normalize=True`` the
    returned distance is divided by the path length so that distances are
    comparable across shapes of different lengths.
    """
    a = np.asarray(sequence, dtype=np.float64)
    b = np.asarray(shape, dtype=np.float64)
    n, m = a.size, b.size
    if n == 0 or m == 0:
        return float("inf")
    band = _band_width(n, m, band_fraction)
    inf = np.inf
    # cost[j] holds the running DTW cost for shape index j of the previous row.
    prev = np.full(m + 1, inf)
    prev[0] = 0.0
    current = np.full(m + 1, inf)
    for i in range(1, n + 1):
        current[:] = inf
        center = int(round(i * m / n))
        j_lo = max(1, center - band)
        j_hi = min(m, center + band)
        ai = a[i - 1]
        costs = np.abs(ai - b[j_lo - 1 : j_hi])
        for j, cost in zip(range(j_lo, j_hi + 1), costs):
            best = prev[j]
            if prev[j - 1] < best:
                best = prev[j - 1]
            if current[j - 1] < best:
                best = current[j - 1]
            current[j] = cost + best
        prev, current = current, prev
    distance = float(prev[m])
    if not np.isfinite(distance):
        return float("inf")
    if normalize:
        distance /= n + m
    return distance


def dtw_profile(
    signal: np.ndarray,
    shape: np.ndarray,
    stride: int | None = None,
    band_fraction: float = 0.1,
) -> tuple[np.ndarray, np.ndarray]:
    """DTW distance of every candidate window of *signal* against *shape*.

    Returns ``(starts, distances)`` where ``starts[i]`` is the index of the
    candidate window in *signal* and ``distances[i]`` its normalised banded
    DTW distance.  Candidate windows have the same length as *shape* and are
    spaced ``stride`` samples apart (default: a quarter of the shape length,
    which is dense enough to never miss an artifact while keeping the
    streaming cost linear).
    """
    signal = np.asarray(signal, dtype=np.float64)
    shape = np.asarray(shape, dtype=np.float64)
    m = shape.size
    if m == 0 or signal.size < m:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)
    if stride is None:
        stride = max(1, m // 4)
    starts = np.arange(0, signal.size - m + 1, stride, dtype=np.int64)
    distances = np.empty(starts.size, dtype=np.float64)
    for k, start in enumerate(starts):
        window = signal[start : start + m]
        distances[k] = constrained_dtw(window, shape, band_fraction=band_fraction)
    return starts, distances


def match_shape(
    signal: np.ndarray,
    shape: np.ndarray,
    threshold: float,
    stride: int | None = None,
    band_fraction: float = 0.1,
) -> list[tuple[int, int]]:
    """Return ``[start, end)`` index regions of *signal* that match *shape*.

    A region matches when its normalised banded DTW distance to *shape* is
    at most *threshold*.  Overlapping matched windows are merged into a
    single region.
    """
    starts, distances = dtw_profile(signal, shape, stride=stride, band_fraction=band_fraction)
    m = np.asarray(shape).size
    regions: list[tuple[int, int]] = []
    for start, distance in zip(starts.tolist(), distances.tolist()):
        if distance > threshold:
            continue
        end = start + m
        if regions and start <= regions[-1][1]:
            regions[-1] = (regions[-1][0], max(regions[-1][1], end))
        else:
            regions.append((start, end))
    return regions
