"""The fixed-interval sliding window (FWindow).

The FWindow is LifeStream's central runtime construct (Section 4 of the
paper).  It is a columnar buffer holding every grid slot of a periodic
stream inside a fixed-size time interval:

* ``values``     — the event payloads,
* ``durations``  — per-event active lifetimes,
* ``bitvector``  — presence flags marking which grid slots actually hold an
  event (gaps in the physiological signal leave their slot absent).

Because the stream is periodic, the sync time of the event in slot ``i`` is
simply ``sync_time + i * period`` — no per-event timestamp column is needed
and index ↔ time conversion is pure arithmetic.

Operators slide an FWindow forward through the stream by updating its
``sync_time``.  The buffers themselves are allocated exactly once by the
static memory planner and reused for the whole query execution, which is
what eliminates runtime allocation overhead (Section 5.2).
"""

from __future__ import annotations

import numpy as np

from repro.core.event import Event, StreamDescriptor
from repro.errors import MemoryPlanError, NonMonotonicProgressError, StreamDefinitionError


class FWindow:
    """A fixed-interval sliding window over a periodic stream."""

    __slots__ = (
        "descriptor",
        "dimension",
        "capacity",
        "sync_time",
        "values",
        "durations",
        "bitvector",
        "name",
        "_tracer",
        "_values_buffer",
        "_durations_buffer",
        "_bitvector_buffer",
        "_monotonic",
        "_has_slid",
    )

    def __init__(
        self,
        descriptor: StreamDescriptor,
        dimension: int,
        name: str = "",
        tracer=None,
        monotonic: bool = True,
    ) -> None:
        if dimension <= 0:
            raise MemoryPlanError(f"FWindow dimension must be positive, got {dimension}")
        if dimension % descriptor.period != 0:
            raise MemoryPlanError(
                f"FWindow dimension {dimension} must be a multiple of the stream "
                f"period {descriptor.period}"
            )
        self.descriptor = descriptor
        self.dimension = int(dimension)
        self.capacity = dimension // descriptor.period
        self.sync_time = descriptor.offset
        self.name = name
        self._monotonic = monotonic
        # The very first slide may position the window anywhere (including
        # before the descriptor offset, e.g. for warm-up windows of stateful
        # operators); monotonic progress is enforced from then on.
        self._has_slid = False
        # The three columnar fields.  They are allocated here, once, and are
        # never reallocated: operators overwrite them in place as the window
        # slides forward.
        self.values = np.zeros(self.capacity, dtype=np.float64)
        self.durations = np.full(self.capacity, descriptor.period, dtype=np.int64)
        self.bitvector = np.zeros(self.capacity, dtype=bool)
        self._tracer = tracer
        self._values_buffer = None
        self._durations_buffer = None
        self._bitvector_buffer = None
        if tracer is not None:
            label = name or "fwindow"
            self._values_buffer = tracer.allocate(self.values.nbytes, f"{label}.values")
            self._durations_buffer = tracer.allocate(self.durations.nbytes, f"{label}.durations")
            self._bitvector_buffer = tracer.allocate(self.bitvector.nbytes, f"{label}.bitvector")

    # -- geometry ----------------------------------------------------------

    @property
    def period(self) -> int:
        """Period of the underlying stream."""
        return self.descriptor.period

    @property
    def end_time(self) -> int:
        """First tick after the window's current interval."""
        return self.sync_time + self.dimension

    def sync_times(self) -> np.ndarray:
        """Sync times of every grid slot in the current window."""
        return self.sync_time + np.arange(self.capacity, dtype=np.int64) * self.period

    def index_of(self, sync_time: int) -> int:
        """Slot index of the event with the given sync time."""
        delta = sync_time - self.sync_time
        if delta < 0 or delta >= self.dimension:
            raise StreamDefinitionError(
                f"sync time {sync_time} is outside the window "
                f"[{self.sync_time}, {self.end_time})"
            )
        if delta % self.period != 0:
            raise StreamDefinitionError(
                f"sync time {sync_time} is not on the period grid of {self.descriptor}"
            )
        return delta // self.period

    def contains_time(self, sync_time: int) -> bool:
        """True when *sync_time* falls inside the current window interval."""
        return self.sync_time <= sync_time < self.end_time

    def subwindow(self, index: int, count: int) -> "FWindow":
        """Zero-copy view of window *index* of a run buffer split into *count*.

        A run buffer holds ``count`` consecutive windows of dimension
        ``dimension / count`` in one contiguous allocation; the view's
        columnar fields are slices of this window's, so writes through the
        view land in the run buffer.  Views are positioned once (at the slot
        they alias) and never slide.
        """
        if count <= 0:
            raise MemoryPlanError(f"subwindow count must be positive, got {count}")
        if self.capacity % count != 0 or self.dimension % count != 0:
            raise MemoryPlanError(
                f"cannot split FWindow of capacity {self.capacity} "
                f"(dimension {self.dimension}) into {count} subwindows"
            )
        if not 0 <= index < count:
            raise MemoryPlanError(f"subwindow index {index} out of range for count {count}")
        capacity = self.capacity // count
        dimension = self.dimension // count
        view = FWindow.__new__(FWindow)
        view.descriptor = self.descriptor
        view.dimension = dimension
        view.capacity = capacity
        view.sync_time = self.sync_time + index * dimension
        view.name = f"{self.name}[{index}]"
        view._monotonic = False
        view._has_slid = True
        low = index * capacity
        view.values = self.values[low : low + capacity]
        view.durations = self.durations[low : low + capacity]
        view.bitvector = self.bitvector[low : low + capacity]
        view._tracer = None
        view._values_buffer = None
        view._durations_buffer = None
        view._bitvector_buffer = None
        return view

    # -- sliding -----------------------------------------------------------

    def slide_to(self, sync_time: int) -> None:
        """Move the window so it starts at *sync_time* and clear its contents.

        Windows may only move forward in time (monotonic query progress,
        Section 4).  The new start must lie on the stream's period grid.
        """
        if not self.descriptor.is_on_grid(sync_time):
            raise StreamDefinitionError(
                f"window start {sync_time} is not on the grid of {self.descriptor}"
            )
        if self._monotonic and self._has_slid and sync_time < self.sync_time:
            raise NonMonotonicProgressError(
                f"FWindow {self.name or ''} asked to move backwards from "
                f"{self.sync_time} to {sync_time}"
            )
        self.sync_time = sync_time
        self._has_slid = True
        self.clear()

    def reset(self) -> None:
        """Return the window to its initial position (used between runs)."""
        self.sync_time = self.descriptor.offset
        self._has_slid = False
        self.clear()

    def clear(self) -> None:
        """Mark every slot absent.  Values/durations are left as garbage."""
        self.bitvector[:] = False

    # -- event access ------------------------------------------------------

    def set_events(
        self,
        times: np.ndarray,
        values: np.ndarray,
        durations: np.ndarray | None = None,
    ) -> None:
        """Place events (given by arrays of sync times and payloads) into the window.

        Only events whose sync time falls inside the current window interval
        are stored; the rest are ignored.  Times must lie on the period grid.
        """
        times = np.asarray(times, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        if times.size == 0:
            return
        # Fast path: a contiguous run of events entirely inside the window
        # (the common case when a source reads a dense region) maps to a
        # single slice assignment.
        first, last = int(times[0]), int(times[-1])
        contiguous = times.size == (last - first) // self.period + 1
        if contiguous and first >= self.sync_time and last < self.end_time:
            start = (first - self.sync_time) // self.period
            stop = start + times.size
            self.values[start:stop] = values
            self.bitvector[start:stop] = True
            if durations is None:
                self.durations[start:stop] = self.period
            else:
                self.durations[start:stop] = np.asarray(durations, dtype=np.int64)
            self.trace_write()
            return
        mask = (times >= self.sync_time) & (times < self.end_time)
        if not mask.any():
            return
        selected_times = times[mask]
        indices = (selected_times - self.sync_time) // self.period
        self.values[indices] = values[mask]
        self.bitvector[indices] = True
        if durations is None:
            self.durations[indices] = self.period
        else:
            durations = np.asarray(durations, dtype=np.int64)
            self.durations[indices] = durations[mask]
        self.trace_write()

    def set_event(self, sync_time: int, value: float, duration: int | None = None) -> None:
        """Place a single event into the window (row-wise convenience)."""
        index = self.index_of(sync_time)
        self.values[index] = value
        self.durations[index] = duration if duration is not None else self.period
        self.bitvector[index] = True

    def present_indices(self) -> np.ndarray:
        """Indices of slots that hold an event."""
        return np.flatnonzero(self.bitvector)

    def present_times(self) -> np.ndarray:
        """Sync times of the events present in the window."""
        return self.sync_time + self.present_indices() * self.period

    def present_values(self) -> np.ndarray:
        """Payload values of the events present in the window."""
        return self.values[self.bitvector]

    def present_durations(self) -> np.ndarray:
        """Durations of the events present in the window."""
        return self.durations[self.bitvector]

    def count(self) -> int:
        """Number of events present in the window."""
        return int(self.bitvector.sum())

    def to_events(self) -> list[Event]:
        """Materialise the window contents as a list of :class:`Event` objects."""
        indices = self.present_indices()
        return [
            Event(
                sync_time=int(self.sync_time + i * self.period),
                duration=int(self.durations[i]),
                value=float(self.values[i]),
            )
            for i in indices
        ]

    # -- statistics --------------------------------------------------------

    def occupancy(self) -> float:
        """Fraction of slots holding an event."""
        return float(self.bitvector.mean()) if self.capacity else 0.0

    def fragmentation(self) -> float:
        """Fraction of *internal* holes: absent slots between present slots.

        Leading and trailing absent slots do not count as fragmentation
        because they correspond to data that simply has not arrived (or has
        finished), not to wasted space inside a populated region.  This is
        the metric behind the paper's Section 6.2 discussion.
        """
        present = np.flatnonzero(self.bitvector)
        if present.size < 2:
            return 0.0
        interior = int(present[-1] - present[0] + 1)
        holes = interior - present.size
        return holes / self.capacity

    def memory_bytes(self) -> int:
        """Total bytes held by the three columnar buffers."""
        return int(self.values.nbytes + self.durations.nbytes + self.bitvector.nbytes)

    # -- cache tracing hooks -------------------------------------------------

    def trace_read(self) -> None:
        """Report a sequential read of the window's buffers to the tracer."""
        if self._tracer is not None:
            self._tracer.touch(self._values_buffer, 0, self.values.nbytes)
            self._tracer.touch(self._bitvector_buffer, 0, self.bitvector.nbytes)

    def trace_write(self) -> None:
        """Report a sequential write of the window's buffers to the tracer."""
        if self._tracer is not None:
            self._tracer.touch(self._values_buffer, 0, self.values.nbytes)
            self._tracer.touch(self._durations_buffer, 0, self.durations.nbytes)
            self._tracer.touch(self._bitvector_buffer, 0, self.bitvector.nbytes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FWindow({self.descriptor}[{self.dimension}] @ {self.sync_time}, "
            f"{self.count()}/{self.capacity} events)"
        )
