"""Operator base class and shared numeric helpers.

Every primitive in Table 2 of the paper is implemented as a subclass of
:class:`Operator`.  An operator is a *pure description* of a computation; it
owns no buffers.  The compiler wires operators into plan nodes, assigns each
node an FWindow (sized by locality tracing and the static memory planner)
and the runtime then repeatedly calls :meth:`Operator.compute` as the
windows slide forward through the stream.

An operator contributes four pieces of information:

``output_descriptor``
    how the (offset, period) of the output stream derives from the inputs —
    the *linearity property* in stream-descriptor form;
``dimension_constraint`` / ``required_input_dimension``
    the dimension-translation rules used by locality tracing (Section 5.2);
``input_sync_time``
    where the input FWindow(s) must be positioned to produce a given output
    window — the event-lineage map used by targeted query processing;
``propagate_coverage``
    how data availability flows through the operator, again for targeted
    query processing (Section 5.3).
"""

from __future__ import annotations

import copy
from typing import Callable, Sequence

import numpy as np

from repro.core.event import StreamDescriptor
from repro.core.fwindow import FWindow
from repro.core.intervals import IntervalSet
from repro.core.timeutil import LinearTimeMap
from repro.errors import QueryConstructionError


class Operator:
    """Base class for all temporal operators."""

    #: Number of input streams the operator consumes (1 or 2).
    arity: int = 1
    #: Whether the operator keeps cross-window state (Table 2, "Is stateful?").
    stateful: bool = False
    #: Human-readable name used in plan dumps and error messages.
    name: str = "operator"

    # -- compile-time interface -------------------------------------------

    def output_descriptor(self, inputs: Sequence[StreamDescriptor]) -> StreamDescriptor:
        """Descriptor of the output stream given the input descriptors."""
        return inputs[0]

    def dimension_constraint(self, inputs: Sequence[StreamDescriptor]) -> int:
        """Extra value the FWindow dimension must be a multiple of.

        Locality tracing takes the LCM of the stream periods with every
        operator's dimension constraint; most operators only require the
        period itself (return 1 here).
        """
        return 1

    def required_input_dimension(self, output_dimension: int, input_index: int) -> int:
        """Input FWindow dimension needed to produce an output of the given dimension."""
        return output_dimension

    def output_dimension(self, input_dimensions: Sequence[int]) -> int:
        """Output FWindow dimension produced from the given input dimensions."""
        return max(input_dimensions)

    def time_map(self, input_index: int = 0) -> LinearTimeMap:
        """Linear map from input sync times to output sync times."""
        return LinearTimeMap.identity()

    def input_sync_time(
        self,
        output_sync_time: int,
        input_index: int,
        input_descriptor: StreamDescriptor,
    ) -> int:
        """Sync time at which input *input_index*'s FWindow must be positioned.

        An operator's time map is fixed at construction, but this translation
        runs once per input per window per run — and in streaming sessions
        the readiness walk repeats it every tick.  The inverted map is
        therefore memoised (as plain floats) on first use; ``_inverse_maps``
        is a pure cache, invisible to plan signatures and never snapshotted.
        """
        cache = self.__dict__.get("_inverse_maps")
        if cache is None:
            cache = self.__dict__["_inverse_maps"] = {}
        entry = cache.get(input_index)
        if entry is None:
            inverse = self.time_map(input_index).invert()
            entry = (float(inverse.scale), float(inverse.shift))
            cache[input_index] = entry
        scale, shift = entry
        return input_descriptor.align_down(int(scale * output_sync_time + shift))

    def propagate_coverage(self, coverages: Sequence[IntervalSet]) -> IntervalSet:
        """Output data coverage given the input coverages."""
        mapped = self.time_map(0)
        if mapped.is_identity():
            return coverages[0]
        return IntervalSet([mapped.apply_interval(iv) for iv in coverages[0]])

    def batch_safe(self, inputs: Sequence[StreamDescriptor]) -> bool:
        """Whether per-window output is invariant to widening the FWindow.

        The batched execution backend replaces N consecutive windows of
        dimension D with one window of dimension N*D.  That is only exact
        for operators whose window boundaries are semantically invisible —
        true for element-wise ops, chunk-local transforms, stride-aligned
        aggregates and carry-correct joins, but **not** for operators whose
        output near a boundary depends on how much of the stream the window
        exposes (boundary-clamped interpolation, successor lookups, matching
        normalised against the window's value range).  Those return False
        and force the batched backend to fall back to serial execution.
        """
        return True

    # -- runtime interface --------------------------------------------------

    def warmup_windows(self, dimension: int) -> int:
        """Windows of history needed to rebuild this operator's state.

        Execution backends that start mid-stream (a sharded worker, a
        resumed range) replay this many preceding windows, discarding their
        output, so the operator's cross-window state matches a run from the
        beginning.  Stateless operators need none; the default for stateful
        operators is one window (a single carried event, Section 6.3).
        """
        return 1 if self.stateful else 0

    def make_state(self):
        """Create the operator's constant-size cross-window state (or None)."""
        return None

    def snapshot_state(self, state):
        """Picklable deep copy of the operator's cross-window state.

        Streaming sessions checkpoint a long-lived plan by snapshotting every
        operator's carry state (Shift FIFOs, sliding-aggregate tails, join
        carries) mid-stream; :meth:`restore_state` rebuilds the state on a
        freshly compiled plan so execution resumes exactly where it stopped.
        The default deep copy is correct for every built-in operator, whose
        states hold only NumPy arrays, tuples and plain containers; operators
        with exotic state (open handles, views into shared buffers) must
        override both methods.
        """
        return copy.deepcopy(state)

    def restore_state(self, snapshot):
        """Rebuild cross-window state from a :meth:`snapshot_state` result."""
        return copy.deepcopy(snapshot)

    def compute(self, output: FWindow, inputs: Sequence[FWindow], state) -> None:
        """Fill *output* from the already-positioned and filled *inputs*."""
        raise NotImplementedError

    def compute_run(
        self, output: FWindow, inputs: Sequence[FWindow], state, windows: int
    ) -> None:
        """Fill a run buffer of *windows* consecutive windows in one call.

        *output* and every input are run buffers: contiguous FWindows whose
        dimension is ``windows`` times the plan's window dimension, holding
        ``windows`` consecutive windows back to back.  The default drives the
        ordinary :meth:`compute` window-by-window over zero-copy
        :meth:`~repro.core.fwindow.FWindow.subwindow` views — exactly the
        serial executor's window sequence, so any operator is run-executable
        (just not vectorized).  Operator families whose computation widens
        cleanly override this with a single array program over the whole run;
        the vectorized backend only dispatches such overrides when the
        operator is also ``batch_safe`` for its inputs.
        """
        if windows == 1:
            self.compute(output, inputs, state)
            return
        for index in range(windows):
            view_inputs = [window.subwindow(index, windows) for window in inputs]
            self.compute(output.subwindow(index, windows), view_inputs, state)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__}>"


class WindowAgnosticRun:
    """Mixin for operators whose ``compute`` never inspects window extent.

    Batch-safe operators compute the same per-slot output whatever the
    FWindow dimension (the invariant the batched backend's parity suite
    proves), so a run buffer of N consecutive windows is just one wider
    window to them: ``compute_run`` is a single ``compute`` call over the
    whole run.  Stateful members of these families (Shift carries, sliding
    tails, join/chop carries) remain exact because their state transition is
    likewise extent-invariant — a run of N windows leaves the state exactly
    where N serial windows would.

    Must precede :class:`Operator` in the MRO.
    """

    def compute_run(
        self, output: FWindow, inputs: Sequence[FWindow], state, windows: int
    ) -> None:
        self.compute(output, inputs, state)


# ---------------------------------------------------------------------------
# Shared numeric helpers
# ---------------------------------------------------------------------------


def ensure_callable(function, what: str) -> Callable:
    """Raise a :class:`QueryConstructionError` when *function* is not callable."""
    if not callable(function):
        raise QueryConstructionError(f"{what} must be callable, got {function!r}")
    return function


def sample_active(
    out_times: np.ndarray,
    source: FWindow,
    carry: tuple[int, float, int] | None,
) -> tuple[np.ndarray, np.ndarray, tuple[int, float, int] | None]:
    """Sample which event of *source* is active at each of *out_times*.

    Returns ``(active_mask, values, new_carry)`` where ``values[i]`` is the
    payload of the event covering ``out_times[i]`` (unspecified where the
    mask is False).  *carry* is the bounded one-event state described in
    Section 6.3 of the paper: an event from a previous window whose duration
    extends across the FWindow boundary.  The returned ``new_carry`` is the
    last event observed, to be passed to the next call.
    """
    out_times = np.asarray(out_times, dtype=np.int64)

    # Fast path: every event in the window lives for exactly one period (the
    # overwhelmingly common case for periodic signals, gaps included).  An
    # event then covers exactly its own grid slot, so the active event index
    # is pure arithmetic — no search — and a gap is simply an absent slot.
    if source.capacity > 0 and bool((source.durations == source.period).all()):
        indices = (out_times - source.sync_time) // source.period
        in_range = (indices >= 0) & (indices < source.capacity)
        clipped = np.clip(indices, 0, source.capacity - 1)
        active = in_range & source.bitvector[clipped]
        sampled = source.values[clipped]
        # A carried event participates only while it is still alive at the
        # window start (the bounded-state rule the slow path applies).  It
        # may then cover slots the window's own events do not reach: slots
        # before the window and — when the carry outlives its period —
        # absent slots before the window's *first* present event.  In the
        # common case (the carry ends exactly at the window start) this
        # costs one comparison.
        if carry is not None:
            carry_time, carry_value, carry_duration = carry
            carry_end = carry_time + carry_duration
            if carry_end > source.sync_time:
                carried_active = (out_times >= carry_time) & (out_times < carry_end)
                if source.bitvector.any():
                    first_time = (
                        source.sync_time
                        + int(np.argmax(source.bitvector)) * source.period
                    )
                    carried_active &= out_times < first_time
                if carried_active.any():
                    sampled = np.where(carried_active, carry_value, sampled)
                    active = active | carried_active
        if source.bitvector[-1]:
            last_index = source.capacity - 1
        else:
            present = np.flatnonzero(source.bitvector)
            last_index = int(present[-1]) if present.size else -1
        if last_index < 0:
            # No events in the window at all: the carry stays as it was.
            return active, sampled, carry
        new_carry = (
            int(source.sync_time + last_index * source.period),
            float(source.values[last_index]),
            int(source.durations[last_index]),
        )
        return active, sampled, new_carry

    times = source.present_times()
    values = source.present_values()
    durations = source.present_durations()
    # The carry participates only when it is still alive at the window start
    # and strictly precedes the window's own events.  It is spliced into the
    # few slots it actually covers below, rather than concatenated in front
    # of the event columns (three fresh allocations per window on the old
    # slow path).
    use_carry = False
    if carry is not None:
        carry_time, carry_value, carry_duration = carry
        use_carry = carry_time + carry_duration > source.sync_time and (
            times.size == 0 or carry_time < times[0]
        )
    if times.size == 0:
        if not use_carry:
            mask = np.zeros(out_times.shape, dtype=bool)
            return mask, np.zeros(out_times.shape, dtype=np.float64), carry
        active = (out_times >= carry_time) & (out_times < carry_time + carry_duration)
        sampled = np.full(out_times.shape, carry_value, dtype=np.float64)
        return active, sampled, carry
    indices = np.searchsorted(times, out_times, side="right") - 1
    clipped = np.clip(indices, 0, times.size - 1)
    active = (indices >= 0) & (times[clipped] + durations[clipped] > out_times)
    sampled = values[clipped]
    if use_carry:
        # Slots before the window's first event (search index -1) may still
        # be covered by the carried event.
        carried_active = (
            (indices < 0)
            & (out_times >= carry_time)
            & (out_times < carry_time + carry_duration)
        )
        if carried_active.any():
            sampled = np.where(carried_active, carry_value, sampled)
            active = active | carried_active
    new_carry = (int(times[-1]), float(values[-1]), int(durations[-1]))
    return active, sampled, new_carry


def masked_reduce(
    values: np.ndarray,
    mask: np.ndarray,
    how: str | Callable[[np.ndarray, np.ndarray], np.ndarray],
) -> tuple[np.ndarray, np.ndarray]:
    """Reduce the rows of a 2-D array, honouring a presence mask.

    *values* and *mask* have shape ``(n_windows, samples_per_window)``.
    Returns ``(result, present)`` where ``present[i]`` is True when row *i*
    contained at least one present sample.  *how* is one of the named
    aggregates (``mean``, ``sum``, ``max``, ``min``, ``std``, ``count``,
    ``first``, ``last``) or a callable ``f(values, mask) -> 1-D array``.
    """
    counts = mask.sum(axis=1)
    present = counts > 0
    if callable(how):
        return np.asarray(how(values, mask), dtype=np.float64), present
    # Dense fast path: with every sample present, masking with a neutral fill
    # is the identity, so skip the np.where temporaries.  Bit-identical to
    # the masked path because an all-True np.where returns the values array
    # unchanged and the row reductions see the same operand order.
    dense = bool(mask.all())
    if how == "count":
        return counts.astype(np.float64), present
    if how == "sum":
        masked = values if dense else np.where(mask, values, 0.0)
        return masked.sum(axis=1), present
    if how == "mean":
        masked = values if dense else np.where(mask, values, 0.0)
        sums = masked.sum(axis=1)
        safe = np.maximum(counts, 1)
        return sums / safe, present
    if how == "max":
        masked = values if dense else np.where(mask, values, -np.inf)
        return masked.max(axis=1), present
    if how == "min":
        masked = values if dense else np.where(mask, values, np.inf)
        return masked.min(axis=1), present
    if how == "std":
        masked = values if dense else np.where(mask, values, 0.0)
        sums = masked.sum(axis=1)
        safe = np.maximum(counts, 1)
        means = sums / safe
        centered = values - means[:, None]
        if not dense:
            centered = np.where(mask, centered, 0.0)
        variance = (centered**2).sum(axis=1) / safe
        return np.sqrt(variance), present
    if how == "first":
        first_idx = np.argmax(mask, axis=1)
        return values[np.arange(values.shape[0]), first_idx], present
    if how == "last":
        reversed_mask = mask[:, ::-1]
        last_idx = mask.shape[1] - 1 - np.argmax(reversed_mask, axis=1)
        return values[np.arange(values.shape[0]), last_idx], present
    raise QueryConstructionError(f"unknown aggregate function {how!r}")
