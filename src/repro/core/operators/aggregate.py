"""Windowed aggregation.

``Aggregate(window, stride, func)`` applies a user-defined aggregate to
*window*-sized intervals of the input stream with a stride of *stride*
ticks.  With ``window == stride`` this is the classical tumbling window; a
larger *window* gives a sliding (rolling) aggregate.

The output stream has one event per stride; its duration is the window size
so that joining the aggregate back against the original fine-grained stream
(the Listing 1 pattern in the paper) pairs every fine event with the
aggregate that covers it.

The sliding case keeps a bounded tail of ``window - stride`` ticks of input
as operator state, preserving the bounded-memory property (Section 6.3).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.core.event import StreamDescriptor
from repro.core.fwindow import FWindow
from repro.core.intervals import IntervalSet
from repro.core.operators.base import Operator, WindowAgnosticRun, masked_reduce
from repro.core.timeutil import lcm
from repro.errors import QueryConstructionError


class _SlidingTail:
    """Constant-size carry of the last ``window - stride`` input samples."""

    __slots__ = ("values", "mask")

    def __init__(self, samples: int):
        self.values = np.zeros(samples, dtype=np.float64)
        self.mask = np.zeros(samples, dtype=bool)


class Aggregate(WindowAgnosticRun, Operator):
    """Apply an aggregate function over fixed windows of the input stream."""

    name = "Aggregate"

    def __init__(
        self,
        window: int,
        stride: int | None = None,
        func: str | Callable[[np.ndarray, np.ndarray], np.ndarray] = "mean",
    ):
        if window <= 0:
            raise QueryConstructionError(f"aggregate window must be positive, got {window}")
        stride = window if stride is None else stride
        if stride <= 0:
            raise QueryConstructionError(f"aggregate stride must be positive, got {stride}")
        if window < stride:
            raise QueryConstructionError(
                f"aggregate window ({window}) must be at least the stride ({stride})"
            )
        self.window = int(window)
        self.stride = int(stride)
        self.func = func
        # Tumbling aggregates need no cross-window state; sliding ones carry
        # the previous tail (Table 2: stateful unless window == stride).
        self.stateful = window != stride

    # -- compile-time ------------------------------------------------------

    def output_descriptor(self, inputs: Sequence[StreamDescriptor]) -> StreamDescriptor:
        source = inputs[0]
        if self.window % source.period != 0 or self.stride % source.period != 0:
            raise QueryConstructionError(
                f"aggregate window {self.window} and stride {self.stride} must be "
                f"multiples of the input period {source.period}"
            )
        return StreamDescriptor(offset=source.offset, period=self.stride)

    def dimension_constraint(self, inputs: Sequence[StreamDescriptor]) -> int:
        return lcm(self.window, self.stride)

    def propagate_coverage(self, coverages: Sequence[IntervalSet]) -> IntervalSet:
        # The output event at time t aggregates the trailing input window
        # ending at t + stride, so outputs can exist up to (window - stride)
        # ticks beyond the end of the input data.  Round the result outward
        # to the stride grid so targeted execution never misses a window.
        lookback = self.window - self.stride
        return coverages[0].dilate(0, lookback).align_to_grid(self.stride)

    def make_state(self):
        # The tail buffer itself is created on first use (its length depends
        # on the input period, which is only known at runtime), but the dict
        # holding it is the constant-size state slot allocated up front.
        return {} if self.stateful else None

    # -- runtime -----------------------------------------------------------

    def compute(self, output: FWindow, inputs: Sequence[FWindow], state) -> None:
        source = inputs[0]
        source.trace_read()
        period = source.period
        samples_per_window = self.window // period
        samples_per_stride = self.stride // period
        tail_samples = samples_per_window - samples_per_stride

        values = source.values
        mask = source.bitvector
        if self.stateful:
            if not isinstance(state, dict):
                raise QueryConstructionError("sliding aggregate state was not initialised")
            tail = state.get("tail")
            if tail is None:
                tail = _SlidingTail(tail_samples)
                state["tail"] = tail
            values = np.concatenate((tail.values, values))
            mask = np.concatenate((tail.mask, mask))

        n_out = output.capacity
        if self.stateful:
            # Sliding: window j covers samples [j*stride, j*stride + window).
            view = np.lib.stride_tricks.sliding_window_view(values, samples_per_window)
            mask_view = np.lib.stride_tricks.sliding_window_view(mask, samples_per_window)
            starts = np.arange(n_out) * samples_per_stride
            windows = view[starts]
            masks = mask_view[starts]
        else:
            windows = values.reshape(n_out, samples_per_window)
            masks = mask.reshape(n_out, samples_per_window)

        result, present = masked_reduce(windows, masks, self.func)
        output.values[:] = result
        output.bitvector[:] = present
        output.durations[:] = self.window
        output.trace_write()

        if self.stateful and tail_samples > 0:
            tail = state["tail"]
            tail.values[:] = values[-tail_samples:]
            tail.mask[:] = mask[-tail_samples:]
