"""Operators that change the periodic grid of a stream: AlterPeriod and Chop.

``AlterPeriod`` re-samples a stream onto a new period (the primitive behind
the Resample operation of Table 3): upsampling either holds the previous
value or linearly interpolates between neighbouring samples; downsampling
keeps one sample per new period.

``Chop`` splits the active interval of every event on user-defined period
boundaries (Table 2), which is how long-duration events (such as aggregate
outputs whose duration equals the aggregation window) are broken back down
into per-period events.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.event import StreamDescriptor
from repro.core.fwindow import FWindow
from repro.core.operators.base import Operator, WindowAgnosticRun, sample_active
from repro.core.timeutil import lcm
from repro.errors import QueryConstructionError

#: Re-sampling strategies supported by :class:`AlterPeriod`.
RESAMPLE_MODES = ("hold", "interpolate", "sample")


class AlterPeriod(WindowAgnosticRun, Operator):
    """Change the period of a stream, re-gridding its events."""

    name = "AlterPeriod"

    def __init__(self, period: int, mode: str = "hold"):
        if period <= 0:
            raise QueryConstructionError(f"new period must be positive, got {period}")
        if mode not in RESAMPLE_MODES:
            raise QueryConstructionError(
                f"unknown resample mode {mode!r}; expected one of {RESAMPLE_MODES}"
            )
        self.period = int(period)
        self.mode = mode

    def output_descriptor(self, inputs: Sequence[StreamDescriptor]) -> StreamDescriptor:
        return StreamDescriptor(offset=inputs[0].offset, period=self.period)

    def dimension_constraint(self, inputs: Sequence[StreamDescriptor]) -> int:
        return lcm(inputs[0].period, self.period)

    def batch_safe(self, inputs: Sequence[StreamDescriptor]) -> bool:
        in_period = inputs[0].period
        if self.period == in_period:
            return True
        if self.period < in_period and in_period % self.period == 0:
            # Upsampling: hold replicates values slot-locally, but linear
            # interpolation clamps at the window edge, so widening the window
            # changes the samples near every original boundary.
            return self.mode != "interpolate"
        if self.period > in_period and self.period % in_period == 0:
            return True
        # Non-multiple periods fall back to carry-less active sampling, whose
        # boundary behaviour depends on the window extent.
        return False

    def compute(self, output: FWindow, inputs: Sequence[FWindow], state) -> None:
        source = inputs[0]
        source.trace_read()
        in_period = source.period
        out_period = self.period

        if out_period == in_period:
            output.values[:] = source.values
            output.bitvector[:] = source.bitvector
            output.durations[:] = out_period
            output.trace_write()
            return

        if out_period < in_period and in_period % out_period == 0:
            factor = in_period // out_period
            if self.mode == "interpolate":
                self._upsample_interpolate(output, source, factor)
            else:
                output.values[:] = np.repeat(source.values, factor)
                output.bitvector[:] = np.repeat(source.bitvector, factor)
                output.durations[:] = out_period
        elif out_period > in_period and out_period % in_period == 0:
            factor = out_period // in_period
            output.values[:] = source.values[::factor]
            output.bitvector[:] = source.bitvector[::factor]
            output.durations[:] = out_period
        else:
            # Periods are not integer multiples of each other: fall back to
            # sampling the active event at each output slot.
            out_times = output.sync_times()
            active, values, _ = sample_active(out_times, source, None)
            output.values[:] = values
            output.bitvector[:] = active
            output.durations[:] = out_period
        output.trace_write()

    @staticmethod
    def _upsample_interpolate(output: FWindow, source: FWindow, factor: int) -> None:
        """Linear interpolation between neighbouring present input samples."""
        present = source.present_indices()
        out_positions = np.arange(output.capacity, dtype=np.float64) / factor
        if present.size == 0:
            output.bitvector[:] = False
            output.durations[:] = output.period
            return
        interpolated = np.interp(out_positions, present.astype(np.float64), source.values[present])
        output.values[:] = interpolated
        # An interpolated sample is only valid where the enclosing input
        # samples are present; outside the populated span or across a gap we
        # mark the slot absent rather than inventing data.
        output.bitvector[:] = np.repeat(source.bitvector, factor)
        output.durations[:] = output.period


class Chop(WindowAgnosticRun, Operator):
    """Split the interval of every event on period-*p* boundaries."""

    name = "Chop"
    stateful = True

    def __init__(self, period: int):
        if period <= 0:
            raise QueryConstructionError(f"chop period must be positive, got {period}")
        self.period = int(period)

    def output_descriptor(self, inputs: Sequence[StreamDescriptor]) -> StreamDescriptor:
        return StreamDescriptor(offset=inputs[0].offset, period=self.period)

    def dimension_constraint(self, inputs: Sequence[StreamDescriptor]) -> int:
        return lcm(inputs[0].period, self.period)

    def make_state(self):
        return {"carry": None}

    def compute(self, output: FWindow, inputs: Sequence[FWindow], state) -> None:
        source = inputs[0]
        source.trace_read()
        out_times = output.sync_times()
        active, values, state["carry"] = sample_active(out_times, source, state["carry"])
        output.values[:] = values
        output.bitvector[:] = active
        output.durations[:] = self.period
        output.trace_write()
