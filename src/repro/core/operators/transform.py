"""The generic Transform operator.

``Transform(window, fn)`` applies an arbitrary user-defined transformation
to *window*-sized intervals of the stream and produces an interval of the
same size as output (Table 2).  It is LifeStream's escape hatch for
integrating third-party numerical code — FIR filters, interpolation-based
gap filling, normalisation — into a temporal query without leaving the
engine (Section 6.1).

The user function receives the window's value array and its presence mask
and returns either a new value array or a ``(values, mask)`` pair when the
transformation also changes which slots hold events (for example when a
gap-filling transform materialises previously-absent samples).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.core.event import StreamDescriptor
from repro.core.fwindow import FWindow
from repro.core.operators.base import Operator, ensure_callable
from repro.errors import QueryConstructionError


class Transform(Operator):
    """Apply a user-defined transformation to fixed-size windows."""

    name = "Transform"

    def __init__(
        self,
        window: int,
        function: Callable[[np.ndarray, np.ndarray], np.ndarray | tuple[np.ndarray, np.ndarray]],
    ):
        if window <= 0:
            raise QueryConstructionError(f"transform window must be positive, got {window}")
        self.window = int(window)
        self.function = ensure_callable(function, "Transform function")

    def output_descriptor(self, inputs: Sequence[StreamDescriptor]) -> StreamDescriptor:
        source = inputs[0]
        if self.window % source.period != 0:
            raise QueryConstructionError(
                f"transform window {self.window} must be a multiple of the input "
                f"period {source.period}"
            )
        return source

    def dimension_constraint(self, inputs: Sequence[StreamDescriptor]) -> int:
        return self.window

    def compute(self, output: FWindow, inputs: Sequence[FWindow], state) -> None:
        source = inputs[0]
        source.trace_read()
        period = source.period
        samples_per_chunk = self.window // period
        n_chunks = source.capacity // samples_per_chunk
        for chunk in range(n_chunks):
            lo = chunk * samples_per_chunk
            hi = lo + samples_per_chunk
            chunk_values = source.values[lo:hi]
            chunk_mask = source.bitvector[lo:hi]
            with np.errstate(all="ignore"):
                result = self.function(chunk_values, chunk_mask)
            if isinstance(result, tuple):
                new_values, new_mask = result
                output.values[lo:hi] = new_values
                output.bitvector[lo:hi] = new_mask
            else:
                output.values[lo:hi] = result
                output.bitvector[lo:hi] = chunk_mask
        output.durations[:] = source.durations
        output.trace_write()
