"""The generic Transform operator.

``Transform(window, fn)`` applies an arbitrary user-defined transformation
to *window*-sized intervals of the stream and produces an interval of the
same size as output (Table 2).  It is LifeStream's escape hatch for
integrating third-party numerical code — FIR filters, interpolation-based
gap filling, normalisation — into a temporal query without leaving the
engine (Section 6.1).

The user function receives the window's value array and its presence mask
and returns either a new value array or a ``(values, mask)`` pair when the
transformation also changes which slots hold events (for example when a
gap-filling transform materialises previously-absent samples).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.core.event import StreamDescriptor
from repro.core.fwindow import FWindow
from repro.core.operators.base import Operator, ensure_callable
from repro.errors import QueryConstructionError


class Transform(Operator):
    """Apply a user-defined transformation to fixed-size windows."""

    name = "Transform"

    def __init__(
        self,
        window: int,
        function: Callable[[np.ndarray, np.ndarray], np.ndarray | tuple[np.ndarray, np.ndarray]],
    ):
        if window <= 0:
            raise QueryConstructionError(f"transform window must be positive, got {window}")
        self.window = int(window)
        self.function = ensure_callable(function, "Transform function")

    def output_descriptor(self, inputs: Sequence[StreamDescriptor]) -> StreamDescriptor:
        source = inputs[0]
        if self.window % source.period != 0:
            raise QueryConstructionError(
                f"transform window {self.window} must be a multiple of the input "
                f"period {source.period}"
            )
        return source

    def dimension_constraint(self, inputs: Sequence[StreamDescriptor]) -> int:
        return self.window

    def compute(self, output: FWindow, inputs: Sequence[FWindow], state) -> None:
        source = inputs[0]
        source.trace_read()
        period = source.period
        samples_per_chunk = self.window // period
        n_chunks = source.capacity // samples_per_chunk
        for chunk in range(n_chunks):
            lo = chunk * samples_per_chunk
            hi = lo + samples_per_chunk
            chunk_values = source.values[lo:hi]
            chunk_mask = source.bitvector[lo:hi]
            with np.errstate(all="ignore"):
                result = self.function(chunk_values, chunk_mask)
            if isinstance(result, tuple):
                new_values, new_mask = result
                output.values[lo:hi] = new_values
                output.bitvector[lo:hi] = new_mask
            else:
                output.values[lo:hi] = result
                output.bitvector[lo:hi] = chunk_mask
        output.durations[:] = source.durations
        output.trace_write()

    def compute_run(
        self, output: FWindow, inputs: Sequence[FWindow], state, windows: int
    ) -> None:
        """Apply the transform to every chunk of the run at once.

        A user function may expose a row-batched variant as a ``batched``
        attribute: ``batched(values_2d, mask_2d)`` receives all the run's
        chunks as rows of shape ``(n_chunks, samples_per_chunk)`` and must
        return exactly what calling the scalar function per row would (the
        kernels in :mod:`repro.ops.kernels` guarantee this by delegating any
        row the batched math cannot reproduce bit-for-bit to the scalar
        kernel).  Without one, the ordinary chunk loop already handles a run
        buffer — its chunk sequence over the run is exactly the serial
        executor's chunk sequence over the constituent windows, because
        ``dimension_constraint`` makes every window a whole number of chunks.
        """
        batched = getattr(self.function, "batched", None)
        if batched is None:
            self.compute(output, inputs, state)
            return
        source = inputs[0]
        source.trace_read()
        samples_per_chunk = self.window // source.period
        n_chunks = source.capacity // samples_per_chunk
        values = source.values.reshape(n_chunks, samples_per_chunk)
        mask = source.bitvector.reshape(n_chunks, samples_per_chunk)
        out_values = output.values.reshape(n_chunks, samples_per_chunk)
        with np.errstate(all="ignore"):
            if getattr(batched, "accepts_out", False):
                # The kernel writes its result straight into the output
                # column, saving a whole-run copy.
                result = batched(values, mask, out=out_values)
            else:
                result = batched(values, mask)
        if isinstance(result, tuple):
            new_values, new_mask = result
            if new_values is not out_values:
                output.values[:] = np.asarray(new_values).reshape(-1)
            output.bitvector[:] = np.asarray(new_mask).reshape(-1)
        else:
            if result is not out_values:
                output.values[:] = np.asarray(result).reshape(-1)
            output.bitvector[:] = source.bitvector
        output.durations[:] = source.durations
        output.trace_write()
