"""Shape-based Where: query visual patterns in a signal stream.

This operator implements the paper's extended ``Where`` primitive
(Section 6.1, Figure 4): the user supplies a representative shape as a
sequence of signal values, and the operator uses constrained dynamic time
warping to find stream regions matching that shape.  Matched regions can
either be removed from the stream (the artifact-scrubbing use case, e.g.
line-zero artifacts in arterial blood pressure) or kept exclusively (the
detection use case used by the LineZero pipeline).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.dtw import match_shape
from repro.core.event import StreamDescriptor
from repro.core.fwindow import FWindow
from repro.core.operators.base import Operator
from repro.errors import QueryConstructionError

#: What to do with regions matching the query shape.
SHAPE_MODES = ("remove", "keep", "mark")


class ShapeWhere(Operator):
    """Filter or mark stream regions matching a query shape."""

    name = "ShapeWhere"

    def __init__(
        self,
        shape: np.ndarray,
        threshold: float,
        mode: str = "remove",
        stride: int | None = None,
        band_fraction: float = 0.1,
        normalize_window: bool = True,
    ):
        shape = np.asarray(shape, dtype=np.float64)
        if shape.size < 2:
            raise QueryConstructionError("shape query needs at least two samples")
        if mode not in SHAPE_MODES:
            raise QueryConstructionError(
                f"unknown shape mode {mode!r}; expected one of {SHAPE_MODES}"
            )
        if threshold < 0:
            raise QueryConstructionError(f"threshold must be non-negative, got {threshold}")
        self.shape = shape
        self.threshold = float(threshold)
        self.mode = mode
        self.stride = stride
        self.band_fraction = band_fraction
        self.normalize_window = normalize_window
        if normalize_window:
            scale = np.max(np.abs(shape))
            self._normalized_shape = shape / scale if scale > 0 else shape
        else:
            self._normalized_shape = shape

    def output_descriptor(self, inputs: Sequence[StreamDescriptor]) -> StreamDescriptor:
        return inputs[0]

    def dimension_constraint(self, inputs: Sequence[StreamDescriptor]) -> int:
        # The FWindow must be able to hold at least one full candidate shape.
        return self.shape.size * inputs[0].period

    def batch_safe(self, inputs: Sequence[StreamDescriptor]) -> bool:
        # Matching normalises against the window's own value range and scans
        # the window's populated span, both of which change with the window
        # extent.
        return False

    def make_state(self):
        # Bounded cross-window state: the trailing (shape length - 1) samples
        # of the previous window, so that artifacts straddling an FWindow
        # boundary are still matched (Section 6.3's constant-size state rule).
        return {"tail_values": None}

    def compute(self, output: FWindow, inputs: Sequence[FWindow], state) -> None:
        source = inputs[0]
        source.trace_read()
        matched = np.zeros(source.capacity, dtype=bool)
        present = source.present_indices()
        tail_length = self.shape.size - 1
        previous_tail = state.get("tail_values") if isinstance(state, dict) else None
        if present.size >= self.shape.size:
            # Only scan the populated span of the window: slots outside it
            # hold no events (and stale buffer contents), so matching there
            # would be both wasted work and meaningless.
            span_start = int(present[0])
            span_stop = int(present[-1]) + 1
            values = source.values[span_start:span_stop]
            prepended = 0
            if previous_tail is not None and span_start == 0:
                values = np.concatenate((previous_tail, values))
                prepended = previous_tail.size
            if self.normalize_window:
                scale = np.max(np.abs(source.values[source.bitvector]))
                signal = values / scale if scale > 0 else values
                shape = self._normalized_shape
            else:
                signal = values
                shape = self.shape
            regions = match_shape(
                signal,
                shape,
                threshold=self.threshold,
                stride=self.stride,
                band_fraction=self.band_fraction,
            )
            for start, end in regions:
                lo = max(0, span_start + start - prepended)
                hi = max(0, span_start + end - prepended)
                matched[lo:hi] = True
            # Remember the trailing samples for the next window, but only when
            # the populated span actually reaches the window end (otherwise no
            # artifact can straddle the boundary).
            if isinstance(state, dict):
                if span_stop == source.capacity and tail_length > 0:
                    state["tail_values"] = source.values[source.capacity - tail_length :].copy()
                else:
                    state["tail_values"] = None
        elif isinstance(state, dict):
            state["tail_values"] = None

        output.values[:] = source.values
        output.durations[:] = source.durations
        if self.mode == "remove":
            output.bitvector[:] = source.bitvector & ~matched
        elif self.mode == "keep":
            output.bitvector[:] = source.bitvector & matched
        else:  # mark: payload becomes a 0/1 indicator of the match
            output.values[:] = matched.astype(np.float64)
            output.bitvector[:] = source.bitvector
        output.trace_write()
