"""The fused element-wise kernel produced by the FuseElementwise pass.

A chain of element-wise operators (Select, Where, Shift, AlterDuration)
translates FWindow slots one-to-one, so executing it as N separate plan
nodes pays N window slides, N presence-vector clears and up to 3N columnar
copies per window for work that is a single vectorised sweep.  The
compiler's ``fuse_elementwise`` pass collapses such a chain into one plan
node carrying a :class:`FusedElementwise` operator: the stage payloads are
applied to array views in sequence and only the final result is written to
the node's output FWindow.

Each stage keeps its original operator object (and its per-stage state, for
carry-based shifts), so the fused kernel is semantically identical to the
unfused chain — the parity suite in ``tests/core/test_backends.py`` asserts
bit-identical outputs.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.event import StreamDescriptor
from repro.core.fwindow import FWindow
from repro.core.intervals import IntervalSet
from repro.core.operators.base import Operator, WindowAgnosticRun
from repro.core.operators.elementwise import AlterDuration, Select, Shift, Where
from repro.core.timeutil import LinearTimeMap
from repro.errors import CompilationError

#: Operator types the FuseElementwise pass may place inside a fused chain.
FUSABLE_OPERATORS = (Select, Where, Shift, AlterDuration)


class FusedElementwise(WindowAgnosticRun, Operator):
    """A chain of element-wise operators executed as one kernel.

    ``stages`` is an ordered list of ``(operator, input_descriptor)`` pairs,
    innermost (closest to the source) first.  The input descriptor of each
    stage is recorded at fusion time so sync-time and coverage translation
    can be composed without the intermediate plan nodes.
    """

    name = "FusedElementwise"
    arity = 1

    def __init__(self, stages: Sequence[tuple[Operator, StreamDescriptor]]):
        if len(stages) < 2:
            raise CompilationError(
                f"a fused chain needs at least two stages, got {len(stages)}"
            )
        for op, _ in stages:
            if not isinstance(op, FUSABLE_OPERATORS):
                raise CompilationError(
                    f"operator {op.name} is not element-wise and cannot be fused"
                )
        self.stages = list(stages)
        self.stateful = any(op.stateful for op, _ in self.stages)
        self.name = "Fused[" + "+".join(op.name for op, _ in self.stages) + "]"

    # -- compile-time ------------------------------------------------------

    def output_descriptor(self, inputs: Sequence[StreamDescriptor]) -> StreamDescriptor:
        descriptor = inputs[0]
        for op, _ in self.stages:
            descriptor = op.output_descriptor([descriptor])
        return descriptor

    def time_map(self, input_index: int = 0) -> LinearTimeMap:
        composed = LinearTimeMap.identity()
        for op, _ in self.stages:
            composed = op.time_map(0).compose(composed)
        return composed

    def input_sync_time(
        self,
        output_sync_time: int,
        input_index: int,
        input_descriptor: StreamDescriptor,
    ) -> int:
        # Walk outermost -> innermost, letting every stage reposition exactly
        # as it would have when executed as its own plan node.
        sync = output_sync_time
        for op, stage_input in reversed(self.stages):
            sync = op.input_sync_time(sync, 0, stage_input)
        return sync

    def propagate_coverage(self, coverages: Sequence[IntervalSet]) -> IntervalSet:
        coverage = coverages[0]
        for op, _ in self.stages:
            coverage = op.propagate_coverage([coverage])
        return coverage

    def batch_safe(self, inputs: Sequence[StreamDescriptor]) -> bool:
        return all(op.batch_safe([stage_input]) for op, stage_input in self.stages)

    # -- runtime -----------------------------------------------------------

    def warmup_windows(self, dimension: int) -> int:
        return max(op.warmup_windows(dimension) for op, _ in self.stages)

    def make_state(self):
        return [op.make_state() for op, _ in self.stages]

    def snapshot_state(self, state):
        return [op.snapshot_state(s) for (op, _), s in zip(self.stages, state)]

    def restore_state(self, snapshot):
        return [op.restore_state(s) for (op, _), s in zip(self.stages, snapshot)]

    def compute(self, output: FWindow, inputs: Sequence[FWindow], state) -> None:
        source = inputs[0]
        source.trace_read()
        values = source.values
        durations = source.durations
        bits = source.bitvector
        capacity = source.capacity
        with np.errstate(all="ignore"):
            for (op, stage_input), stage_state in zip(self.stages, state):
                if isinstance(op, Select):
                    values = op.projection(values)
                elif isinstance(op, Where):
                    bits = bits & np.asarray(op.predicate(values), dtype=bool)
                elif isinstance(op, AlterDuration):
                    durations = np.full(capacity, op.duration, dtype=np.int64)
                elif isinstance(op, Shift):
                    values, durations, bits = _apply_shift(
                        op, stage_input, values, durations, bits, stage_state
                    )
                else:  # pragma: no cover - guarded by the constructor
                    raise CompilationError(f"unfusable stage {op.name}")
        output.values[:] = values
        output.durations[:] = durations
        output.bitvector[:] = bits
        output.trace_write()


def _apply_shift(
    op: Shift,
    input_descriptor: StreamDescriptor,
    values: np.ndarray,
    durations: np.ndarray,
    bits: np.ndarray,
    state: dict,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Array-level equivalent of :meth:`Shift.compute`.

    Non-carry shifts repositioned the chain's input window (via the composed
    ``input_sync_time``), so slot *i* of the arrays already corresponds to
    slot *i* of this stage's output.  Carry-based shifts rotate the arrays
    through the bounded per-stage carry, exactly as the standalone operator
    does with its input/output FWindow pair.
    """
    period = input_descriptor.period
    if not op._uses_carry(period):
        return values, durations, bits

    lag = op.offset // period
    capacity = values.shape[0]
    if state["carry_values"] is None:
        state["carry_values"] = np.zeros(lag, dtype=np.float64)
        state["carry_bits"] = np.zeros(lag, dtype=bool)
        state["carry_durations"] = np.full(lag, period, dtype=np.int64)

    # Same FIFO as the standalone Shift: emit the oldest ``capacity`` samples
    # of (carry + input), retain the newest ``lag`` — correct for any lag,
    # including shifts longer than the window.
    combined_values = np.concatenate((state["carry_values"], values))
    combined_bits = np.concatenate((state["carry_bits"], bits))
    combined_durations = np.concatenate((state["carry_durations"], durations))
    state["carry_values"] = combined_values[capacity:]
    state["carry_bits"] = combined_bits[capacity:]
    state["carry_durations"] = combined_durations[capacity:]
    return (
        combined_values[:capacity],
        combined_durations[:capacity],
        combined_bits[:capacity],
    )
