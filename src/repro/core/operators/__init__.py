"""Primitive temporal operators (Table 2 of the paper)."""

from repro.core.operators.aggregate import Aggregate
from repro.core.operators.base import Operator, masked_reduce, sample_active
from repro.core.operators.elementwise import AlterDuration, Select, Shift, Where
from repro.core.operators.fused import FUSABLE_OPERATORS, FusedElementwise
from repro.core.operators.join import ClipJoin, Join
from repro.core.operators.regrid import AlterPeriod, Chop
from repro.core.operators.shape_where import ShapeWhere
from repro.core.operators.transform import Transform

__all__ = [
    "Operator",
    "Select",
    "Where",
    "Shift",
    "AlterDuration",
    "Aggregate",
    "Join",
    "ClipJoin",
    "AlterPeriod",
    "Chop",
    "Transform",
    "ShapeWhere",
    "FusedElementwise",
    "FUSABLE_OPERATORS",
    "masked_reduce",
    "sample_active",
]
