"""Element-wise primitive operators: Select, Where, Shift, AlterDuration.

These operators transform each event independently and therefore translate
FWindow dimensions one-to-one (``[out] <- [in]`` in Table 2 of the paper).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.core.event import StreamDescriptor
from repro.core.fwindow import FWindow
from repro.core.operators.base import Operator, WindowAgnosticRun, ensure_callable
from repro.core.timeutil import LinearTimeMap


class Select(WindowAgnosticRun, Operator):
    """Project the payload of every event through a user function.

    The projection must be vectorised (accept and return a NumPy array).
    Non-vectorised callables can be wrapped with ``vectorized=False`` which
    falls back to ``numpy.vectorize`` at a substantial performance cost.
    """

    name = "Select"

    def __init__(self, projection: Callable[[np.ndarray], np.ndarray], vectorized: bool = True):
        projection = ensure_callable(projection, "Select projection")
        self.projection = projection if vectorized else np.vectorize(projection)

    def compute(self, output: FWindow, inputs: Sequence[FWindow], state) -> None:
        source = inputs[0]
        source.trace_read()
        with np.errstate(all="ignore"):
            result = self.projection(source.values)
        output.values[:] = result
        output.durations[:] = source.durations
        output.bitvector[:] = source.bitvector
        output.trace_write()


class Where(WindowAgnosticRun, Operator):
    """Filter events by a predicate on the payload value.

    Filtered-out events leave their grid slot absent (bitvector cleared);
    the stream stays periodic, which is what keeps downstream FWindows free
    of fragmentation (Section 6.2).
    """

    name = "Where"

    def __init__(self, predicate: Callable[[np.ndarray], np.ndarray], vectorized: bool = True):
        predicate = ensure_callable(predicate, "Where predicate")
        self.predicate = predicate if vectorized else np.vectorize(predicate)

    def compute(self, output: FWindow, inputs: Sequence[FWindow], state) -> None:
        source = inputs[0]
        source.trace_read()
        with np.errstate(all="ignore"):
            keep = np.asarray(self.predicate(source.values), dtype=bool)
        output.values[:] = source.values
        output.durations[:] = source.durations
        output.bitvector[:] = source.bitvector & keep
        output.trace_write()


class Shift(WindowAgnosticRun, Operator):
    """Shift the sync time of every event by a constant number of ticks.

    Two execution strategies are used:

    * when the shift is a non-negative multiple of the stream period (the
      overwhelmingly common case — delaying a signal by a whole number of
      samples), the operator reads its input FWindow at the *same* sync time
      as its output and carries the tail of the previous window as bounded
      state.  This is what Table 2's "stateful" marking refers to, and it
      keeps the operator compatible with ``Multicast`` fan-out (both
      consumers of the shared stream read the same window position);
    * for other shift amounts the compiler repositions the input window by
      the shift instead (no state needed), which is correct but means the
      shifted branch cannot share a multicast input with an unshifted one.
    """

    name = "Shift"
    stateful = True

    def __init__(self, offset: int):
        self.offset = int(offset)

    def _uses_carry(self, period: int) -> bool:
        return self.offset > 0 and self.offset % period == 0

    def output_descriptor(self, inputs: Sequence[StreamDescriptor]) -> StreamDescriptor:
        source = inputs[0]
        new_offset = source.offset + self.offset
        if new_offset < 0:
            # Shifting into negative time keeps the grid phase but clamps the
            # symbolic offset to the first non-negative grid point.
            new_offset = new_offset % source.period
        return StreamDescriptor(offset=new_offset, period=source.period)

    def time_map(self, input_index: int = 0) -> LinearTimeMap:
        return LinearTimeMap.shifted(self.offset)

    def input_sync_time(self, output_sync_time, input_index, input_descriptor):
        if self._uses_carry(input_descriptor.period):
            return input_descriptor.align_down(output_sync_time)
        return super().input_sync_time(output_sync_time, input_index, input_descriptor)

    def propagate_coverage(self, coverages):
        shifted = super().propagate_coverage(coverages)
        if self.offset > 0:
            # The carry-based execution strategy needs the window *preceding*
            # each covered region to have been processed so the carried tail
            # is populated; extend coverage left by the shift amount so the
            # targeted executor schedules that warm-up window.
            return shifted.dilate(self.offset, 0)
        return shifted

    def warmup_windows(self, dimension: int) -> int:
        # The carry holds the last ``offset`` ticks of input, which may span
        # several windows when the shift exceeds the FWindow dimension.
        if self.offset <= 0:
            return 0
        return -(-self.offset // dimension)

    def make_state(self):
        return {"carry_values": None, "carry_bits": None, "carry_durations": None}

    def compute(self, output: FWindow, inputs: Sequence[FWindow], state) -> None:
        source = inputs[0]
        source.trace_read()
        if not self._uses_carry(source.period):
            # The compiler positioned the input window at (output sync -
            # offset), so slot i of the input is exactly slot i of the output.
            output.values[:] = source.values
            output.durations[:] = source.durations
            output.bitvector[:] = source.bitvector
            output.trace_write()
            return

        lag = self.offset // source.period
        capacity = source.capacity
        if state["carry_values"] is None:
            state["carry_values"] = np.zeros(lag, dtype=np.float64)
            state["carry_bits"] = np.zeros(lag, dtype=bool)
            state["carry_durations"] = np.full(lag, source.period, dtype=np.int64)

        # FIFO through the carry: the window emits the oldest ``capacity``
        # samples of (carry + input) and retains the newest ``lag`` as the
        # next carry.  This stays correct when the shift exceeds the window
        # (lag > capacity): samples then wait in the carry for several
        # windows instead of being clobbered by the newest input.
        combined_values = np.concatenate((state["carry_values"], source.values))
        combined_bits = np.concatenate((state["carry_bits"], source.bitvector))
        combined_durations = np.concatenate((state["carry_durations"], source.durations))
        output.values[:] = combined_values[:capacity]
        output.bitvector[:] = combined_bits[:capacity]
        output.durations[:] = combined_durations[:capacity]
        state["carry_values"] = combined_values[capacity:]
        state["carry_bits"] = combined_bits[capacity:]
        state["carry_durations"] = combined_durations[capacity:]
        output.trace_write()


class AlterDuration(WindowAgnosticRun, Operator):
    """Set the active duration of every event to a constant."""

    name = "AlterDuration"

    def __init__(self, duration: int):
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        self.duration = int(duration)

    def propagate_coverage(self, coverages):
        covered = super().propagate_coverage(coverages)
        # Sync times are unchanged but every event now stays active for
        # ``duration`` ticks, so data extends up to ``duration - 1`` ticks
        # past each covered interval (the input period is not visible here;
        # period >= 1 bounds the overhang).  Without the dilation a
        # downstream interval consumer — Chop splitting the stretched tail
        # of the last event, say — produces events past the declared
        # coverage, and targeted execution never schedules the window that
        # would emit them.
        return covered.dilate(0, self.duration - 1)

    def compute(self, output: FWindow, inputs: Sequence[FWindow], state) -> None:
        source = inputs[0]
        source.trace_read()
        output.values[:] = source.values
        output.durations[:] = self.duration
        output.bitvector[:] = source.bitvector
        output.trace_write()
