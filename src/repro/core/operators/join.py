"""Temporal joins.

``Join`` performs a temporal equijoin of two periodic streams: for every
slot of the output grid, the event of the left stream and the event of the
right stream that are *active* at that instant are paired and combined into
a single payload.  The output grid is the finer of the two input grids,
which reproduces the behaviour shown in Figure 5(c) of the paper (a
``(0,1)`` stream joined with a ``(0,2)`` stream produces a ``(0,1)``
output).

``ClipJoin`` pairs each event of the left stream with the *immediately
succeeding* event of the right stream (Table 2).

Both operators are stateful in the bounded sense of Section 6.3: at most one
event per side can straddle an FWindow boundary (its duration extends past
the window end), so a single carried event per side is sufficient state.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.core.event import StreamDescriptor
from repro.core.fwindow import FWindow
from repro.core.intervals import IntervalSet
from repro.core.operators.base import (
    Operator,
    WindowAgnosticRun,
    ensure_callable,
    sample_active,
)
from repro.core.timeutil import lcm
from repro.errors import QueryConstructionError

#: Join flavours supported by :class:`Join`.
JOIN_KINDS = ("inner", "left", "outer")


def _pair_left(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """Default combiner: keep the left payload."""
    return left


def _grid_carry(
    source: FWindow, carry: tuple[int, float, int] | None
) -> tuple[int, float, int] | None:
    """The carry :func:`sample_active` would leave after an aligned window.

    The last present event of the window, or the existing carry when the
    window holds no events at all.
    """
    if source.bitvector[-1]:
        last_index = source.capacity - 1
    else:
        present = np.flatnonzero(source.bitvector)
        last_index = int(present[-1]) if present.size else -1
    if last_index < 0:
        return carry
    return (
        int(source.sync_time + last_index * source.period),
        float(source.values[last_index]),
        int(source.durations[last_index]),
    )


class Join(WindowAgnosticRun, Operator):
    """Temporal equijoin of two periodic streams."""

    name = "Join"
    arity = 2
    stateful = True

    def __init__(
        self,
        combine: Callable[[np.ndarray, np.ndarray], np.ndarray] | None = None,
        how: str = "inner",
        fill_value: float = np.nan,
    ):
        if how not in JOIN_KINDS:
            raise QueryConstructionError(
                f"unknown join kind {how!r}; expected one of {JOIN_KINDS}"
            )
        self.combine = ensure_callable(combine, "Join combiner") if combine else _pair_left
        self.how = how
        self.fill_value = float(fill_value)

    # -- compile-time ------------------------------------------------------

    def output_descriptor(self, inputs: Sequence[StreamDescriptor]) -> StreamDescriptor:
        left, right = inputs
        if left.period <= right.period:
            return StreamDescriptor(offset=left.offset, period=left.period)
        return StreamDescriptor(offset=right.offset, period=right.period)

    def dimension_constraint(self, inputs: Sequence[StreamDescriptor]) -> int:
        left, right = inputs
        # Table 2: [out] <- LCM([left], [right]).
        return lcm(left.period, right.period)

    def propagate_coverage(self, coverages: Sequence[IntervalSet]) -> IntervalSet:
        left, right = coverages
        if self.how == "inner":
            return left.intersect(right)
        if self.how == "left":
            return left
        return left.union(right)

    def make_state(self):
        return {"left_carry": None, "right_carry": None}

    # -- runtime -----------------------------------------------------------

    def compute(self, output: FWindow, inputs: Sequence[FWindow], state) -> None:
        left, right = inputs
        left.trace_read()
        right.trace_read()
        out_times = output.sync_times()
        left_active, left_values, state["left_carry"] = sample_active(
            out_times, left, state["left_carry"]
        )
        right_active, right_values, state["right_carry"] = sample_active(
            out_times, right, state["right_carry"]
        )
        if self.how == "inner":
            present = left_active & right_active
        elif self.how == "left":
            present = left_active
            right_values = np.where(right_active, right_values, self.fill_value)
        else:  # outer
            present = left_active | right_active
            left_values = np.where(left_active, left_values, self.fill_value)
            right_values = np.where(right_active, right_values, self.fill_value)
        with np.errstate(all="ignore"):
            combined = self.combine(left_values, right_values)
        output.values[:] = combined
        output.bitvector[:] = present
        output.durations[:] = output.period
        output.trace_write()

    def compute_run(
        self, output: FWindow, inputs: Sequence[FWindow], state, windows: int
    ) -> None:
        """Whole-run inner join without materialising the sampling grid.

        When both inputs live on exactly the output grid and every event
        spans one period (the common periodic-signal case,
        :func:`~repro.core.operators.base.sample_active`'s identity fast
        path), sampling each side is the identity: the join reduces to an
        AND of the bitvectors plus one combine over the value columns, and
        the per-side carries are the windows' last present events.  Any
        other geometry falls back to one ``compute`` over the run (the
        :class:`~repro.core.operators.base.WindowAgnosticRun` behaviour).
        """
        left, right = inputs
        if (
            self.how == "inner"
            and output.capacity > 0
            and left.capacity == output.capacity
            and left.period == output.period
            and left.sync_time == output.sync_time
            and right.capacity == output.capacity
            and right.period == output.period
            and right.sync_time == output.sync_time
            and bool((left.durations == left.period).all())
            and bool((right.durations == right.period).all())
        ):
            left.trace_read()
            right.trace_read()
            with np.errstate(all="ignore"):
                combined = self.combine(left.values, right.values)
            output.values[:] = combined
            np.logical_and(left.bitvector, right.bitvector, out=output.bitvector)
            output.durations[:] = output.period
            state["left_carry"] = _grid_carry(left, state["left_carry"])
            state["right_carry"] = _grid_carry(right, state["right_carry"])
            output.trace_write()
            return
        self.compute(output, inputs, state)


class ClipJoin(Operator):
    """Join each left event with the immediately succeeding right event.

    The output stream has the left stream's descriptor.  A left event whose
    succeeding right event falls beyond the current FWindow is dropped (the
    streaming engine cannot look into the future); in the periodic,
    densely-packed signals this operator is used on, that affects at most
    one event per window boundary.
    """

    name = "ClipJoin"
    arity = 2
    stateful = True

    def __init__(self, combine: Callable[[np.ndarray, np.ndarray], np.ndarray] | None = None):
        self.combine = ensure_callable(combine, "ClipJoin combiner") if combine else _pair_left

    def output_descriptor(self, inputs: Sequence[StreamDescriptor]) -> StreamDescriptor:
        return inputs[0]

    def dimension_constraint(self, inputs: Sequence[StreamDescriptor]) -> int:
        left, right = inputs
        return lcm(left.period, right.period)

    def propagate_coverage(self, coverages: Sequence[IntervalSet]) -> IntervalSet:
        return coverages[0]

    def batch_safe(self, inputs: Sequence[StreamDescriptor]) -> bool:
        # A left event's successor may lie beyond the current window, in
        # which case it is dropped — widening the window changes which
        # events survive.
        return False

    def make_state(self):
        return {}

    def compute(self, output: FWindow, inputs: Sequence[FWindow], state) -> None:
        left, right = inputs
        left.trace_read()
        right.trace_read()
        left_indices = left.present_indices()
        left_times = left.sync_time + left_indices * left.period
        left_values = left.values[left_indices]
        right_times = right.present_times()
        right_values = right.present_values()

        output.bitvector[:] = False
        if left_times.size == 0:
            output.trace_write()
            return
        if right_times.size == 0:
            output.trace_write()
            return
        successor = np.searchsorted(right_times, left_times, side="left")
        has_successor = successor < right_times.size
        successor_clipped = np.clip(successor, 0, right_times.size - 1)
        with np.errstate(all="ignore"):
            combined = self.combine(left_values, right_values[successor_clipped])

        out_indices = (left_times - output.sync_time) // output.period
        valid = has_successor & (out_indices >= 0) & (out_indices < output.capacity)
        output.values[out_indices[valid]] = combined[valid]
        output.durations[out_indices[valid]] = output.period
        output.bitvector[out_indices[valid]] = True
        output.trace_write()
