"""The temporal query language.

Queries are built with a fluent, declarative API modelled on the temporal
query languages of Trill-style engines (Listing 1 of the paper).  A query is
a pure *description*: building one performs no computation and touches no
data.  The engine compiles the description into an executable plan
(locality tracing, static memory allocation) and then streams data through
it.

Example — the paper's running example (Listing 1), joining a 500 Hz stream
with a 200 Hz stream after subtracting a 100 ms tumbling mean::

    sig500 = Query.source("sig500", frequency_hz=500)
    sig200 = Query.source("sig200", frequency_hz=200)

    left = sig500.multicast(
        lambda s: s.select(lambda v: v)
                   .join(s.tumbling_window(100).mean(), lambda val, mean: val - mean)
    )
    output = left.join(sig200.select(lambda v: v), lambda l, r: l + r)

    engine = LifeStreamEngine()
    result = engine.run(output, sources={"sig500": ..., "sig200": ...})
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Callable

import numpy as np

from repro.core.event import StreamDescriptor
from repro.core.operators import (
    Aggregate,
    AlterDuration,
    AlterPeriod,
    Chop,
    ClipJoin,
    Join,
    Operator,
    Select,
    ShapeWhere,
    Shift,
    Transform,
    Where,
)
from repro.core.sources import StreamSource
from repro.core.timeutil import period_from_hz
from repro.errors import QueryConstructionError


@dataclass
class QuerySpec:
    """A node of the declarative query tree.

    ``kind`` is either ``"source"`` (a leaf referencing a named or bound
    stream source) or ``"operator"`` (an interior node applying a temporal
    operator to its input spec nodes).  Spec nodes are shared by reference
    when a stream is multicast, which is what lets the compiler build a DAG
    rather than a tree.
    """

    kind: str
    name: str
    operator: Operator | None = None
    inputs: list["QuerySpec"] = field(default_factory=list)
    source_name: str | None = None
    bound_source: StreamSource | None = None
    declared_descriptor: StreamDescriptor | None = None


class Query:
    """A composable temporal query over one or more periodic streams."""

    # Monotonic allocator for node names.  ``next()`` on an itertools.count
    # is atomic under the GIL, so queries built concurrently from several
    # threads can never be handed the same name.
    _name_allocator = itertools.count(1)

    def __init__(self, spec: QuerySpec) -> None:
        self._spec = spec

    @staticmethod
    def _next_id() -> int:
        return next(Query._name_allocator)

    # -- construction -------------------------------------------------------

    @staticmethod
    def source(
        name: str,
        frequency_hz: float | None = None,
        period: int | None = None,
        offset: int = 0,
    ) -> "Query":
        """Reference a named input stream.

        The actual :class:`~repro.core.sources.StreamSource` is supplied at
        compile time via the engine's ``sources`` mapping.  Declaring the
        frequency (or period) here is optional but lets the compiler check
        that the bound source matches the query's expectations.
        """
        declared = None
        if frequency_hz is not None and period is not None:
            raise QueryConstructionError("pass either frequency_hz or period, not both")
        if frequency_hz is not None:
            declared = StreamDescriptor(offset=offset, period=period_from_hz(frequency_hz))
        elif period is not None:
            declared = StreamDescriptor(offset=offset, period=period)
        spec = QuerySpec(
            kind="source",
            name=name,
            source_name=name,
            declared_descriptor=declared,
        )
        return Query(spec)

    @staticmethod
    def from_source(source: StreamSource, name: str | None = None) -> "Query":
        """Build a query directly over a concrete stream source object."""
        label = name or f"source_{Query._next_id()}"
        spec = QuerySpec(kind="source", name=label, source_name=label, bound_source=source)
        return Query(spec)

    @property
    def spec(self) -> QuerySpec:
        """The underlying declarative spec node (used by the compiler)."""
        return self._spec

    def _apply(self, operator: Operator, *others: "Query") -> "Query":
        spec = QuerySpec(
            kind="operator",
            name=f"{operator.name.lower()}_{Query._next_id()}",
            operator=operator,
            inputs=[self._spec] + [other._spec for other in others],
        )
        return Query(spec)

    # -- element-wise operations ---------------------------------------------

    def select(self, projection: Callable[[np.ndarray], np.ndarray], vectorized: bool = True) -> "Query":
        """Project every event's payload through *projection*."""
        return self._apply(Select(projection, vectorized=vectorized))

    def where(self, predicate: Callable[[np.ndarray], np.ndarray], vectorized: bool = True) -> "Query":
        """Keep only the events whose payload satisfies *predicate*."""
        return self._apply(Where(predicate, vectorized=vectorized))

    def where_shape(
        self,
        shape: np.ndarray,
        threshold: float,
        mode: str = "remove",
        stride: int | None = None,
        band_fraction: float = 0.1,
    ) -> "Query":
        """Shape-based Where: filter regions matching a query shape (Section 6.1)."""
        return self._apply(
            ShapeWhere(shape, threshold, mode=mode, stride=stride, band_fraction=band_fraction)
        )

    def shift(self, offset: int) -> "Query":
        """Shift every event's sync time by a constant number of ticks."""
        return self._apply(Shift(offset))

    def alter_duration(self, duration: int) -> "Query":
        """Set every event's active duration to *duration* ticks."""
        return self._apply(AlterDuration(duration))

    # -- re-gridding ----------------------------------------------------------

    def alter_period(self, period: int, mode: str = "hold") -> "Query":
        """Change the stream's period, re-gridding events onto the new grid."""
        return self._apply(AlterPeriod(period, mode=mode))

    def resample(
        self,
        period: int | None = None,
        frequency_hz: float | None = None,
        mode: str = "interpolate",
    ) -> "Query":
        """Up/down-sample the signal (Table 3's Resample, linear interpolation by default)."""
        if (period is None) == (frequency_hz is None):
            raise QueryConstructionError("pass exactly one of period or frequency_hz")
        if period is None:
            period = period_from_hz(frequency_hz)
        return self._apply(AlterPeriod(period, mode=mode))

    def chop(self, period: int) -> "Query":
        """Split every event's active interval on *period* boundaries."""
        return self._apply(Chop(period))

    # -- windowed operations ---------------------------------------------------

    def aggregate(
        self,
        window: int,
        stride: int | None = None,
        func: str | Callable[[np.ndarray, np.ndarray], np.ndarray] = "mean",
    ) -> "Query":
        """Apply an aggregate over *window*-sized intervals with the given stride."""
        return self._apply(Aggregate(window, stride=stride, func=func))

    def tumbling_window(self, window: int) -> "WindowedQuery":
        """Fixed-size, non-overlapping, contiguous windows."""
        return WindowedQuery(self, window=window, stride=window)

    def sliding_window(self, window: int, stride: int) -> "WindowedQuery":
        """Overlapping windows of size *window* advancing by *stride* ticks."""
        return WindowedQuery(self, window=window, stride=stride)

    def transform(
        self,
        window: int,
        function: Callable[[np.ndarray, np.ndarray], np.ndarray | tuple[np.ndarray, np.ndarray]],
    ) -> "Query":
        """Apply an arbitrary user transformation to *window*-sized intervals."""
        return self._apply(Transform(window, function))

    # -- stream combination -------------------------------------------------------

    def join(
        self,
        other: "Query",
        combine: Callable[[np.ndarray, np.ndarray], np.ndarray] | None = None,
        how: str = "inner",
        fill_value: float = np.nan,
    ) -> "Query":
        """Temporal equijoin with another stream."""
        if not isinstance(other, Query):
            raise QueryConstructionError(f"join expects another Query, got {type(other).__name__}")
        return self._apply(Join(combine, how=how, fill_value=fill_value), other)

    def left_join(
        self,
        other: "Query",
        combine: Callable[[np.ndarray, np.ndarray], np.ndarray] | None = None,
        fill_value: float = np.nan,
    ) -> "Query":
        """Temporal left join with another stream."""
        return self.join(other, combine=combine, how="left", fill_value=fill_value)

    def outer_join(
        self,
        other: "Query",
        combine: Callable[[np.ndarray, np.ndarray], np.ndarray] | None = None,
        fill_value: float = np.nan,
    ) -> "Query":
        """Temporal outer join with another stream."""
        return self.join(other, combine=combine, how="outer", fill_value=fill_value)

    def clip_join(
        self,
        other: "Query",
        combine: Callable[[np.ndarray, np.ndarray], np.ndarray] | None = None,
    ) -> "Query":
        """Join each event with the immediately succeeding event of *other*."""
        if not isinstance(other, Query):
            raise QueryConstructionError(
                f"clip_join expects another Query, got {type(other).__name__}"
            )
        return self._apply(ClipJoin(combine), other)

    # -- fan-out ----------------------------------------------------------------

    def multicast(self, subquery: Callable[["Query"], "Query"]) -> "Query":
        """Fork the stream so multiple sub-queries share the same input.

        The callable receives this query and returns the combined result.
        Because both uses reference the same underlying spec node, the
        compiler builds a single shared plan node and the forked stream is
        computed exactly once per window.
        """
        if not callable(subquery):
            raise QueryConstructionError("multicast expects a callable building the sub-query")
        result = subquery(self)
        if not isinstance(result, Query):
            raise QueryConstructionError("multicast sub-query must return a Query")
        return result

    # -- introspection -------------------------------------------------------------

    def source_names(self) -> set[str]:
        """Names of all named sources referenced by the query."""
        names: set[str] = set()
        seen: set[int] = set()

        def walk(spec: QuerySpec) -> None:
            if id(spec) in seen:
                return
            seen.add(id(spec))
            if spec.kind == "source" and spec.bound_source is None:
                names.add(spec.source_name)
            for child in spec.inputs:
                walk(child)

        walk(self._spec)
        return names

    def operator_count(self) -> int:
        """Number of distinct operator nodes in the query."""
        count = 0
        seen: set[int] = set()

        def walk(spec: QuerySpec) -> None:
            nonlocal count
            if id(spec) in seen:
                return
            seen.add(id(spec))
            if spec.kind == "operator":
                count += 1
            for child in spec.inputs:
                walk(child)

        walk(self._spec)
        return count

    # -- normalization -----------------------------------------------------------

    def normalized(self) -> "Query":
        """Return an equivalent query with a canonicalised spec tree.

        This is the query-layer hook of the compiler's ``normalize`` pass:
        adjacent ``Shift`` nodes are merged, no-op shifts are dropped, and an
        ``AlterDuration`` directly shadowing another ``AlterDuration`` elides
        the inner one.  Nodes shared via ``Multicast`` are left untouched so
        the rewrite can never change how many times a shared stream is
        computed.
        """
        return Query(normalize_spec(self._spec))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Query {self._spec.name} over {sorted(self.source_names())}>"


def _spec_consumer_counts(root: QuerySpec) -> dict[int, int]:
    """Number of parents of every spec node in the DAG rooted at *root*."""
    counts: dict[int, int] = {}
    seen: set[int] = set()

    def walk(spec: QuerySpec) -> None:
        if id(spec) in seen:
            return
        seen.add(id(spec))
        for child in spec.inputs:
            counts[id(child)] = counts.get(id(child), 0) + 1
            walk(child)

    counts[id(root)] = counts.get(id(root), 0)
    walk(root)
    return counts


def normalize_spec(root: QuerySpec) -> QuerySpec:
    """Canonicalise a spec DAG (the compiler's normalize pass, spec level).

    Rewrites applied, innermost first:

    * ``Shift(0)`` is removed;
    * ``Shift(a)`` applied to a ``Shift(b)`` with a single consumer merges
      into ``Shift(a + b)``;
    * ``AlterDuration`` applied directly to another single-consumer
      ``AlterDuration`` drops the shadowed inner node.

    Shared (multicast) nodes are never rewritten away, and the input DAG is
    not mutated — changed regions are rebuilt as fresh spec nodes.
    """
    consumers = _spec_consumer_counts(root)
    memo: dict[int, QuerySpec] = {}

    def rewrite(spec: QuerySpec) -> QuerySpec:
        cached = memo.get(id(spec))
        if cached is not None:
            return cached
        if spec.kind != "operator":
            memo[id(spec)] = spec
            return spec
        inputs = [rewrite(child) for child in spec.inputs]
        result = spec if inputs == spec.inputs else replace(spec, inputs=inputs)
        op = result.operator
        if isinstance(op, Shift):
            inner = result.inputs[0]
            if (
                inner.kind == "operator"
                and isinstance(inner.operator, Shift)
                and consumers.get(id(spec.inputs[0]), 0) <= 1
            ):
                merged = Shift(op.offset + inner.operator.offset)
                result = replace(result, operator=merged, inputs=list(inner.inputs))
                op = merged
            if op.offset == 0:
                result = result.inputs[0]
        elif isinstance(op, AlterDuration):
            inner = result.inputs[0]
            if (
                inner.kind == "operator"
                and isinstance(inner.operator, AlterDuration)
                and consumers.get(id(spec.inputs[0]), 0) <= 1
            ):
                result = replace(result, inputs=list(inner.inputs))
        memo[id(spec)] = result
        return result

    return rewrite(root)


class WindowedQuery:
    """Intermediate builder returned by ``tumbling_window`` / ``sliding_window``."""

    def __init__(self, parent: Query, window: int, stride: int) -> None:
        self._parent = parent
        self._window = window
        self._stride = stride

    def _aggregate(self, func) -> Query:
        return self._parent.aggregate(self._window, stride=self._stride, func=func)

    def mean(self) -> Query:
        """Mean of the payload values in each window."""
        return self._aggregate("mean")

    def sum(self) -> Query:
        """Sum of the payload values in each window."""
        return self._aggregate("sum")

    def max(self) -> Query:
        """Maximum payload value in each window."""
        return self._aggregate("max")

    def min(self) -> Query:
        """Minimum payload value in each window."""
        return self._aggregate("min")

    def std(self) -> Query:
        """Population standard deviation of the payload values in each window."""
        return self._aggregate("std")

    def count(self) -> Query:
        """Number of present events in each window."""
        return self._aggregate("count")

    def first(self) -> Query:
        """First present payload value in each window."""
        return self._aggregate("first")

    def last(self) -> Query:
        """Last present payload value in each window."""
        return self._aggregate("last")

    def apply(self, func: Callable[[np.ndarray, np.ndarray], np.ndarray]) -> Query:
        """Apply a custom aggregate ``f(values, mask) -> 1-D array`` to each window."""
        return self._aggregate(func)
