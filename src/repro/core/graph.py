"""The executable computation graph.

A compiled query is a DAG of plan nodes.  Leaf nodes wrap stream sources;
interior nodes wrap temporal operators.  Every node owns exactly one output
:class:`~repro.core.fwindow.FWindow`, allocated once by the static memory
planner, plus the operator's constant-size state.

Execution is pull-based: asking the sink node to ``fill(sync_time)``
recursively positions and fills the upstream FWindows it needs (using each
operator's event-lineage map to translate output sync times into input sync
times) and then runs the operator's vectorised kernel.  Because a node
remembers the sync time it last produced, fan-out created by ``Multicast``
never recomputes a window: the second consumer finds the window already
filled.
"""

from __future__ import annotations

import numpy as np

from repro.core.event import StreamDescriptor
from repro.core.fwindow import FWindow
from repro.core.intervals import IntervalSet
from repro.core.operators.base import Operator
from repro.core.sources import StreamSource
from repro.errors import CompilationError, ExecutionError


class PlanNode:
    """Base class for nodes of the executable computation graph."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.inputs: list[PlanNode] = []
        self.descriptor: StreamDescriptor | None = None
        self.dimension: int | None = None
        self.fwindow: FWindow | None = None
        self.coverage: IntervalSet = IntervalSet.empty()
        self._filled_at: int | None = None
        #: Number of windows this node actually computed during the last run;
        #: used by the targeted-query-processing ablation.
        self.windows_computed: int = 0

    def fill(self, sync_time: int) -> None:
        """Ensure the node's FWindow holds the window starting at *sync_time*."""
        raise NotImplementedError

    def reset(self) -> None:
        """Clear runtime state so the plan can be executed again."""
        self._filled_at = None
        self.windows_computed = 0
        if self.fwindow is not None:
            self.fwindow.reset()

    def iter_nodes(self):
        """Yield every node reachable from this one (post-order, deduplicated)."""
        seen: set[int] = set()

        def walk(node: "PlanNode"):
            if id(node) in seen:
                return
            seen.add(id(node))
            for child in node.inputs:
                yield from walk(child)
            yield node

        yield from walk(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        dim = f"[{self.dimension}]" if self.dimension else ""
        return f"<{type(self).__name__} {self.name} {self.descriptor}{dim}>"


class SourceNode(PlanNode):
    """Leaf node streaming data out of a :class:`StreamSource`."""

    def __init__(self, name: str, source: StreamSource) -> None:
        super().__init__(name)
        self.source = source
        self.descriptor = source.descriptor

    def fill(self, sync_time: int) -> None:
        if self.fwindow is None:
            raise ExecutionError(f"source node {self.name} has no FWindow; was the plan compiled?")
        if self._filled_at == sync_time:
            return
        window = self.fwindow
        window.slide_to(sync_time)
        times, values, durations = self.source.read(sync_time, sync_time + window.dimension)
        if times.size:
            window.set_events(times, values, durations)
        self._filled_at = sync_time
        self.windows_computed += 1


class OperatorNode(PlanNode):
    """Interior node applying a temporal operator to its input nodes."""

    def __init__(self, name: str, operator: Operator, inputs: list[PlanNode]) -> None:
        super().__init__(name)
        self.operator = operator
        self.inputs = inputs
        if len(inputs) != operator.arity:
            raise CompilationError(
                f"operator {operator.name} expects {operator.arity} input(s), "
                f"got {len(inputs)}"
            )
        self.descriptor = operator.output_descriptor([node.descriptor for node in inputs])
        self.state = None

    def reset(self) -> None:
        super().reset()
        self.state = self.operator.make_state()

    def fill(self, sync_time: int) -> None:
        if self.fwindow is None:
            raise ExecutionError(f"node {self.name} has no FWindow; was the plan compiled?")
        if self._filled_at == sync_time:
            return
        for index, upstream in enumerate(self.inputs):
            input_sync = self.operator.input_sync_time(sync_time, index, upstream.descriptor)
            upstream.fill(input_sync)
        self.fwindow.slide_to(sync_time)
        self.operator.compute(self.fwindow, [node.fwindow for node in self.inputs], self.state)
        self._filled_at = sync_time
        self.windows_computed += 1


def topological_order(sink: PlanNode) -> list[PlanNode]:
    """All nodes reachable from *sink*, inputs before consumers."""
    return list(sink.iter_nodes())


def source_nodes(sink: PlanNode) -> list[SourceNode]:
    """The source (leaf) nodes of the graph rooted at *sink*."""
    return [node for node in sink.iter_nodes() if isinstance(node, SourceNode)]


def operator_nodes(sink: PlanNode) -> list[OperatorNode]:
    """The operator (interior) nodes of the graph rooted at *sink*."""
    return [node for node in sink.iter_nodes() if isinstance(node, OperatorNode)]


def describe_plan(sink: PlanNode) -> str:
    """Human-readable dump of the plan, one line per node.

    The format mirrors the paper's symbolic notation
    ``(offset, period)[dimension]`` from Figure 6.
    """
    lines = []
    for node in topological_order(sink):
        inputs = ", ".join(inp.name for inp in node.inputs) or "-"
        dim = node.dimension if node.dimension is not None else "?"
        lines.append(f"{node.name:<24} {node.descriptor}[{dim}]  <- {inputs}")
    return "\n".join(lines)


def total_preallocated_bytes(sink: PlanNode) -> int:
    """Total bytes of FWindow buffers pre-allocated for the plan."""
    return sum(
        node.fwindow.memory_bytes() for node in topological_order(sink) if node.fwindow is not None
    )


def plan_fragmentation(sink: PlanNode) -> float:
    """Worst-case FWindow fragmentation currently observed across the plan."""
    fragmentations = [
        node.fwindow.fragmentation()
        for node in topological_order(sink)
        if node.fwindow is not None
    ]
    return float(np.max(fragmentations)) if fragmentations else 0.0
