"""Time arithmetic for periodic streams.

All timestamps in the library are integers ("ticks").  The examples, tests
and benchmarks use one tick = one millisecond which matches the paper's
millisecond-precision event time, but nothing in the engine depends on the
physical meaning of a tick.

The module provides:

* conversion helpers between sampling frequency and period,
* grid arithmetic (aligning timestamps to a periodic grid),
* :class:`LinearTimeMap`, the formalisation of the paper's *linearity
  property*: the sync time of an operator's output events is a linear
  transformation ``t_out = scale * t_in + shift`` of its input events'
  sync times.  Time maps compose, invert, and transform intervals, which is
  what event-lineage tracking (Section 5.1) is built on.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from math import gcd

from repro.errors import StreamDefinitionError

#: Number of ticks per second used by the convenience helpers.  One tick is
#: one millisecond, so a 500 Hz signal has a period of 2 ticks.
TICKS_PER_SECOND = 1000

#: Ticks per minute, used for the paper's default 1 minute window size.
TICKS_PER_MINUTE = 60 * TICKS_PER_SECOND

#: Ticks per hour, the upper end of the window-size sensitivity study.
TICKS_PER_HOUR = 60 * TICKS_PER_MINUTE


def period_from_hz(frequency_hz: float) -> int:
    """Return the integer period (in ticks) of a signal sampled at *frequency_hz*.

    Raises :class:`StreamDefinitionError` if the frequency does not map to a
    whole number of ticks (e.g. 333 Hz with millisecond ticks).
    """
    if frequency_hz <= 0:
        raise StreamDefinitionError(f"frequency must be positive, got {frequency_hz}")
    period = TICKS_PER_SECOND / frequency_hz
    rounded = round(period)
    if rounded <= 0 or abs(period - rounded) > 1e-9:
        raise StreamDefinitionError(
            f"frequency {frequency_hz} Hz does not correspond to an integer "
            f"period in ticks (got {period}); choose a frequency that divides "
            f"{TICKS_PER_SECOND}"
        )
    return rounded


def hz_from_period(period: int) -> float:
    """Return the sampling frequency in Hz of a stream with the given *period*."""
    if period <= 0:
        raise StreamDefinitionError(f"period must be positive, got {period}")
    return TICKS_PER_SECOND / period


def lcm(a: int, b: int) -> int:
    """Least common multiple of two positive integers."""
    if a <= 0 or b <= 0:
        raise ValueError(f"lcm requires positive integers, got {a}, {b}")
    return a // gcd(a, b) * b


def lcm_all(values) -> int:
    """Least common multiple of an iterable of positive integers."""
    result = 1
    for value in values:
        result = lcm(result, int(value))
    return result


def align_down(timestamp: int, step: int, offset: int = 0) -> int:
    """Largest grid point ``offset + k * step`` that is ``<= timestamp``."""
    if step <= 0:
        raise ValueError(f"step must be positive, got {step}")
    return offset + ((timestamp - offset) // step) * step


def align_up(timestamp: int, step: int, offset: int = 0) -> int:
    """Smallest grid point ``offset + k * step`` that is ``>= timestamp``."""
    if step <= 0:
        raise ValueError(f"step must be positive, got {step}")
    return offset + -((offset - timestamp) // step) * step


def is_aligned(timestamp: int, step: int, offset: int = 0) -> bool:
    """Return True when *timestamp* lies on the grid ``offset + k * step``."""
    return (timestamp - offset) % step == 0


@dataclass(frozen=True)
class LinearTimeMap:
    """A linear transformation between two time domains.

    ``t_out = scale * t_in + shift`` where *scale* is an exact rational.
    The identity map has ``scale == 1`` and ``shift == 0``.

    The map is the building block of event lineage tracking: composing the
    maps of every operator along a path in the query graph yields the map
    from any intermediate stream back to the query's sources.
    """

    scale: Fraction = Fraction(1)
    shift: Fraction = Fraction(0)

    @staticmethod
    def identity() -> "LinearTimeMap":
        """The map that leaves timestamps unchanged."""
        return LinearTimeMap(Fraction(1), Fraction(0))

    @staticmethod
    def shifted(offset: int) -> "LinearTimeMap":
        """The map produced by ``Shift(offset)``: ``t_out = t_in + offset``."""
        return LinearTimeMap(Fraction(1), Fraction(offset))

    @staticmethod
    def scaled(numerator: int, denominator: int = 1) -> "LinearTimeMap":
        """A pure scaling map ``t_out = (numerator / denominator) * t_in``."""
        return LinearTimeMap(Fraction(numerator, denominator), Fraction(0))

    def apply(self, timestamp: int) -> int:
        """Map a single timestamp forward.  The result must be integral."""
        value = self.scale * timestamp + self.shift
        if value.denominator != 1:
            raise ValueError(
                f"time map {self} applied to {timestamp} produces non-integer {value}"
            )
        return int(value)

    def apply_float(self, timestamp: float) -> float:
        """Map a timestamp forward without requiring an integral result."""
        return float(self.scale) * timestamp + float(self.shift)

    def invert(self) -> "LinearTimeMap":
        """Return the inverse map (output domain back to input domain)."""
        if self.scale == 0:
            raise ValueError("a time map with zero scale cannot be inverted")
        inv_scale = 1 / self.scale
        return LinearTimeMap(inv_scale, -self.shift * inv_scale)

    def compose(self, inner: "LinearTimeMap") -> "LinearTimeMap":
        """Return the map equivalent to applying *inner* first, then *self*."""
        return LinearTimeMap(self.scale * inner.scale, self.scale * inner.shift + self.shift)

    def apply_interval(self, interval: tuple[int, int]) -> tuple[int, int]:
        """Map a half-open interval forward, preserving orientation."""
        start, end = interval
        a = self.apply_float(start)
        b = self.apply_float(end)
        lo, hi = (a, b) if a <= b else (b, a)
        return int(lo), int(-(-hi // 1))

    def is_identity(self) -> bool:
        """True when this map leaves every timestamp unchanged."""
        return self.scale == 1 and self.shift == 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LinearTimeMap(t_out = {self.scale} * t_in + {self.shift})"
