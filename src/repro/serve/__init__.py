"""Multi-tenant serving: plan caching, session multiplexing, session sharding.

The serving layer turns the single-session streaming runtime into the
paper's patient-level-scale story:

* :mod:`repro.serve.cache` — structural plan signatures and the LRU
  :class:`PlanCache` (compile a query shape once, serve every client);
* :mod:`repro.serve.service` — :class:`StreamingService`, which multiplexes
  many :class:`~repro.core.runtime.session.StreamingSession`s and batches
  their ticks profile-guided (ready-first, cheapest-first);
* :mod:`repro.serve.sharded` — :class:`ShardedStreamingService`, which
  shards *whole sessions* across forked worker processes;
* :mod:`repro.serve.subplan` — cross-tenant sub-plan sharing: tenants whose
  queries share a prefix sub-DAG over the same source objects execute that
  prefix once per tick (``StreamingService(subplan_sharing=True)``).
"""

from repro.serve.cache import (
    PlanCache,
    PlanCacheStats,
    ProfileStore,
    fingerprint_operator,
    fingerprint_value,
    has_bound_sources,
    plan_signature,
    signature_digest,
)
from repro.serve.service import ClientRecord, ServicePumpReport, StreamingService
from repro.serve.sharded import ShardedStreamingService
from repro.serve.subplan import (
    SharedFeedSource,
    SharedPrefixGroup,
    SharedPrefixPlan,
    plan_sharing,
    prefix_fingerprints,
    rewrite_tail,
)

__all__ = [
    "PlanCache",
    "PlanCacheStats",
    "ProfileStore",
    "plan_signature",
    "signature_digest",
    "fingerprint_operator",
    "fingerprint_value",
    "has_bound_sources",
    "StreamingService",
    "ServicePumpReport",
    "ClientRecord",
    "ShardedStreamingService",
    "SharedFeedSource",
    "SharedPrefixGroup",
    "SharedPrefixPlan",
    "plan_sharing",
    "prefix_fingerprints",
    "rewrite_tail",
]
