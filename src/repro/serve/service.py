"""Multi-tenant streaming service.

:class:`StreamingService` multiplexes many
:class:`~repro.core.runtime.session.StreamingSession`s — one per client —
over one engine and one shared :class:`~repro.serve.cache.PlanCache`.  This
is the serving story for the paper's patient-level scale: N clients running
the same query shape cost one compile (the template) plus N cheap
instantiations, and a single :meth:`StreamingService.pump` call ticks every
session for the new watermarks.

``pump`` is profile-guided: sessions whose watermark actually moved (ready
work) run before idle re-announcements, and among the ready sessions the
accumulated per-tick :class:`~repro.core.runtime.session.TickStats` order
the batch cheapest-expected-tick first — shortest-job-first over the
observed plan+execute timings, which minimises the mean time a client waits
for its tick inside the batch.  Sessions with no history yet run after the
profiled ones (their first tick drains an unknown backlog).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.engine import LifeStreamEngine
from repro.core.runtime.result import StreamResult
from repro.core.runtime.session import StreamingSession, TickStats
from repro.core.timeutil import TICKS_PER_MINUTE
from repro.errors import ExecutionError
from repro.serve.cache import PlanCache, PlanCacheStats

#: How many recent ticks inform a session's expected-cost estimate.
PROFILE_WINDOW = 8


@dataclass
class ClientRecord:
    """One client's session plus the compiled query it owns."""

    client_id: str
    session: StreamingSession
    compiled: object
    #: Whether this client's plan came from the cache (False = it compiled).
    cache_hit: bool


@dataclass
class ServicePumpReport:
    """Outcome of one :meth:`StreamingService.pump` over a batch of sessions."""

    #: Client ids in the order their sessions were ticked.
    order: list[str] = field(default_factory=list)
    #: Per-client tick instrumentation.
    ticks: dict[str, TickStats] = field(default_factory=dict)

    @property
    def windows_run(self) -> int:
        """Windows executed across the batch."""
        return sum(t.windows_run for t in self.ticks.values())

    @property
    def events_emitted(self) -> int:
        """Events emitted across the batch."""
        return sum(t.events_emitted for t in self.ticks.values())

    @property
    def plan_seconds(self) -> float:
        """Compile-side (coverage/readiness) seconds across the batch."""
        return sum(t.plan_seconds for t in self.ticks.values())

    @property
    def execute_seconds(self) -> float:
        """Window-loop seconds across the batch."""
        return sum(t.execute_seconds for t in self.ticks.values())

    @property
    def elapsed_seconds(self) -> float:
        """Total wall-clock seconds across the batch."""
        return self.plan_seconds + self.execute_seconds

    def merge(self, other: "ServicePumpReport") -> None:
        """Fold *other*'s per-client records into this report."""
        self.order.extend(other.order)
        self.ticks.update(other.ticks)


class StreamingService:
    """Serve many concurrent streaming clients from one engine.

    Each :meth:`open` compiles (or cache-instantiates) the client's query
    and holds a :class:`StreamingSession` open for it; :meth:`pump` advances
    a whole batch of clients at once.  All sessions share the engine's
    :class:`~repro.serve.cache.PlanCache`, so N clients with the same query
    shape pay for one compile.
    """

    def __init__(
        self,
        window_size: int = TICKS_PER_MINUTE,
        targeted: bool = True,
        backend=None,
        optimization_level: int | None = None,
        max_cached_plans: int = 32,
        engine: LifeStreamEngine | None = None,
    ) -> None:
        if engine is None:
            kwargs = {}
            if optimization_level is not None:
                kwargs["optimization_level"] = optimization_level
            engine = LifeStreamEngine(
                window_size=window_size,
                targeted=targeted,
                backend=backend,
                plan_cache=PlanCache(capacity=max_cached_plans),
                **kwargs,
            )
        elif engine.plan_cache is None:
            engine.plan_cache = PlanCache(capacity=max_cached_plans)
        self.engine = engine
        self._clients: dict[str, ClientRecord] = {}
        self._pumps = 0

    # -- lifecycle ---------------------------------------------------------

    def open(
        self,
        client_id: str,
        query,
        sources,
        targeted: bool | None = None,
    ) -> StreamingSession:
        """Open a session for *client_id* over its own *sources*."""
        if client_id in self._clients:
            raise ExecutionError(
                f"client {client_id!r} already has an open session; close it "
                f"before opening another"
            )
        hits_before = self.engine.plan_cache.stats.hits
        compiled = self.engine.compile(query, sources)
        session = compiled.open_session(targeted=targeted)
        self._clients[client_id] = ClientRecord(
            client_id=client_id,
            session=session,
            compiled=compiled,
            cache_hit=self.engine.plan_cache.stats.hits > hits_before,
        )
        return session

    def session(self, client_id: str) -> StreamingSession:
        """The open session of *client_id*."""
        return self._record(client_id).session

    def compiled_query(self, client_id: str):
        """The :class:`~repro.core.engine.CompiledQuery` owned by *client_id*."""
        return self._record(client_id).compiled

    def close(self, client_id: str) -> None:
        """Close *client_id*'s session and forget the client."""
        record = self._clients.pop(client_id, None)
        if record is not None:
            record.session.close()

    def close_all(self) -> None:
        """Close every client session."""
        for client_id in list(self._clients):
            self.close(client_id)

    def __enter__(self) -> "StreamingService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close_all()

    def __len__(self) -> int:
        return len(self._clients)

    @property
    def client_ids(self) -> list[str]:
        """Ids of the currently open clients, in open order."""
        return list(self._clients)

    @property
    def cache_stats(self) -> PlanCacheStats:
        """Hit/miss/eviction counters of the shared plan cache."""
        return self.engine.plan_cache.stats

    @property
    def pumps(self) -> int:
        """Number of :meth:`pump` batches served so far."""
        return self._pumps

    # -- the batch tick loop -----------------------------------------------

    def pump(self, watermarks) -> ServicePumpReport:
        """Advance a batch of sessions and run their newly-ready windows.

        *watermarks* is either one watermark for every open client or a
        ``{client_id: watermark}`` mapping for a subset.  Sessions with
        genuinely new data (watermark ahead of the session's clock) tick
        first, ordered cheapest-expected-tick first from their accumulated
        :class:`TickStats`; idle re-announcements tick last (no-ops).
        """
        if isinstance(watermarks, dict):
            batch = dict(watermarks)
            unknown = set(batch) - set(self._clients)
            if unknown:
                raise ExecutionError(
                    f"pump() was given unknown client(s) {sorted(unknown)}; "
                    f"open sessions: {sorted(self._clients)}"
                )
        else:
            batch = {
                client_id: watermarks
                for client_id, record in self._clients.items()
                if not record.session.finished
            }
        report = ServicePumpReport()
        for client_id in self._schedule(batch):
            stats = self._clients[client_id].session.advance(batch[client_id])
            report.order.append(client_id)
            report.ticks[client_id] = stats
        self._pumps += 1
        return report

    def _schedule(self, batch: dict[str, int]) -> list[str]:
        """Tick order for *batch*: ready sessions first, cheapest first."""
        ready: list[str] = []
        idle: list[str] = []
        for client_id, watermark in batch.items():
            current = self._record(client_id).session.watermark
            if current is None or watermark > current:
                ready.append(client_id)
            else:
                idle.append(client_id)
        ready.sort(key=self._expected_cost)
        idle.sort(key=self._expected_cost)
        return ready + idle

    def _expected_cost(self, client_id: str) -> tuple[int, float]:
        """Shortest-job-first key from the session's recent tick profile."""
        ticks = self._clients[client_id].session.recent_ticks(PROFILE_WINDOW)
        if not ticks:
            # No profile yet: run after the profiled sessions.
            return (1, 0.0)
        return (0, sum(t.elapsed_seconds for t in ticks) / len(ticks))

    def finish(self) -> ServicePumpReport:
        """Drain every open session's deferred tail (see ``Session.finish``)."""
        report = ServicePumpReport()
        for client_id in sorted(self._clients, key=self._expected_cost):
            stats = self._clients[client_id].session.finish()
            report.order.append(client_id)
            report.ticks[client_id] = stats
        self._pumps += 1
        return report

    # -- results -------------------------------------------------------------

    def result(self, client_id: str) -> StreamResult:
        """Everything *client_id*'s session has emitted so far."""
        return self._record(client_id).session.result()

    def results(self) -> dict[str, StreamResult]:
        """Per-client results for every open client."""
        return {client_id: self.result(client_id) for client_id in self._clients}

    def _record(self, client_id: str) -> ClientRecord:
        record = self._clients.get(client_id)
        if record is None:
            raise ExecutionError(
                f"no open session for client {client_id!r} "
                f"(open: {sorted(self._clients)})"
            )
        return record

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<StreamingService {len(self._clients)} client(s), "
            f"{self.cache_stats.hits} cache hit(s), {self._pumps} pump(s)>"
        )
