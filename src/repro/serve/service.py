"""Multi-tenant streaming service.

:class:`StreamingService` multiplexes many
:class:`~repro.core.runtime.session.StreamingSession`s — one per client —
over one engine and one shared :class:`~repro.serve.cache.PlanCache`.  This
is the serving story for the paper's patient-level scale: N clients running
the same query shape cost one compile (the template) plus N cheap
instantiations, and a single :meth:`StreamingService.pump` call ticks every
session for the new watermarks.

``pump`` is profile-guided: sessions whose watermark actually moved (ready
work) run before idle re-announcements, and among the ready sessions the
accumulated per-tick :class:`~repro.core.runtime.session.TickStats` order
the batch cheapest-expected-tick first — shortest-job-first over the
observed plan+execute timings, which minimises the mean time a client waits
for its tick inside the batch.  Sessions with no history yet are assumed
optimistically cheap (:data:`COLD_START_EXPECTED_SECONDS`).

With ``adaptive=True`` the same per-tick stats feed the plan cache's
:class:`~repro.serve.cache.ProfileStore`, and the service closes the
profile-guided optimization loop: every ``adapt_after_ticks`` ticks a
client's merged signature profile is turned into
:class:`~repro.core.compiler.CompileHints` plus a profile-aware
:func:`~repro.core.runtime.backends.recommend_backend` choice; if they
disagree with the session's current configuration, the signature is
recompiled with the hints (cached under ``(signature, hints)``, so N
clients converging on the same choices share one recompile) and the new
plan is hot-swapped into the live session at the tick boundary via
:meth:`~repro.core.runtime.session.StreamingSession.swap_plan` —
bit-identical output, no stream interruption.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.compiler import compile_plan
from repro.core.engine import CompiledQuery, LifeStreamEngine
from repro.core.query import Query
from repro.core.runtime.backends import recommend_backend
from repro.core.runtime.result import StreamResult
from repro.core.runtime.session import StreamingSession, TickStats
from repro.core.sources import ReplaySource
from repro.core.timeutil import TICKS_PER_MINUTE
from repro.errors import ExecutionError
from repro.serve.cache import PlanCache, PlanCacheStats, signature_digest
from repro.serve.subplan import (
    MIN_GROUP_SIZE,
    SharedFeedSource,
    SharedPrefixGroup,
    SharedPrefixPlan,
    plan_sharing,
    prefix_fingerprints,
    rewrite_tail,
)

#: How many recent ticks inform a session's expected-cost estimate.
PROFILE_WINDOW = 8

#: Expected cost assumed for a session with no tick history.  Deliberately
#: optimistic (zero): a cold session's first tick is usually a near-empty
#: catch-up, and scheduling it early gets its profile started — after one
#: tick it is ranked by real measurements like everyone else.  Shortest-
#: job-first over *estimates* only mis-schedules a cold outlier once.
COLD_START_EXPECTED_SECONDS = 0.0

#: Minimum profiled ticks (and re-evaluation cadence) before the adaptive
#: service considers recompiling a client's plan.
ADAPT_MIN_TICKS = 3


def _require_int_watermark(client_id, watermark) -> None:
    """Reject non-integer watermarks before they fail deep in the tick loop.

    ``bool`` is explicitly rejected even though it subclasses ``int`` — a
    ``True`` watermark is always a caller bug, never stream time.
    """
    if isinstance(watermark, bool) or not isinstance(watermark, (int, np.integer)):
        where = "" if client_id is None else f" for client {client_id!r}"
        raise ValueError(
            f"pump() watermark{where} must be an integer tick, got "
            f"{watermark!r} ({type(watermark).__name__})"
        )


@dataclass
class ClientRecord:
    """One client's session plus the compiled query it owns."""

    client_id: str
    session: StreamingSession
    compiled: object
    #: Whether this client's plan came from the cache (False = it compiled).
    cache_hit: bool
    #: Structural plan signature (None when the query binds concrete
    #: sources and is uncacheable — such clients never adapt).
    signature: tuple | None = None
    #: Digest of :attr:`signature`; the client's ProfileStore key.
    profile_key: str | None = None
    #: The query/sources the client opened with (recompiled from on adapt).
    query: object = None
    sources: dict | None = None
    #: Hot swaps performed on this client's session.
    swaps: int = 0
    #: Ticks observed since the last adaptation check.
    ticks_since_check: int = 0
    #: Human-readable reason behind the most recent swap (from
    #: :func:`~repro.core.runtime.backends.recommend_backend`).
    last_adapt_reason: str | None = None


@dataclass
class ServicePumpReport:
    """Outcome of one :meth:`StreamingService.pump` over a batch of sessions."""

    #: Client ids in the order their sessions were ticked.
    order: list[str] = field(default_factory=list)
    #: Per-client tick instrumentation.
    ticks: dict[str, TickStats] = field(default_factory=dict)
    #: Clients whose plan was hot-swapped at this pump's tick boundary.
    swapped: list[str] = field(default_factory=list)
    #: Per-group prefix tick instrumentation (``subplan_sharing`` only) —
    #: exactly one entry per sharing group whose members were in the batch,
    #: proving the shared prefix executed once, not once per member.  Not
    #: folded into the client-level aggregate properties below.
    prefix_ticks: dict[str, TickStats] = field(default_factory=dict)

    @property
    def windows_run(self) -> int:
        """Windows executed across the batch."""
        return sum(t.windows_run for t in self.ticks.values())

    @property
    def events_emitted(self) -> int:
        """Events emitted across the batch."""
        return sum(t.events_emitted for t in self.ticks.values())

    @property
    def plan_seconds(self) -> float:
        """Compile-side (coverage/readiness) seconds across the batch."""
        return sum(t.plan_seconds for t in self.ticks.values())

    @property
    def execute_seconds(self) -> float:
        """Window-loop seconds across the batch."""
        return sum(t.execute_seconds for t in self.ticks.values())

    @property
    def elapsed_seconds(self) -> float:
        """Total wall-clock seconds across the batch."""
        return self.plan_seconds + self.execute_seconds

    def merge(self, other: "ServicePumpReport") -> None:
        """Fold *other*'s per-client records into this report."""
        self.order.extend(other.order)
        self.ticks.update(other.ticks)
        self.swapped.extend(other.swapped)
        self.prefix_ticks.update(other.prefix_ticks)


class StreamingService:
    """Serve many concurrent streaming clients from one engine.

    Each :meth:`open` compiles (or cache-instantiates) the client's query
    and holds a :class:`StreamingSession` open for it; :meth:`pump` advances
    a whole batch of clients at once.  All sessions share the engine's
    :class:`~repro.serve.cache.PlanCache`, so N clients with the same query
    shape pay for one compile.
    """

    def __init__(
        self,
        window_size: int = TICKS_PER_MINUTE,
        targeted: bool = True,
        backend=None,
        optimization_level: int | None = None,
        max_cached_plans: int = 32,
        engine: LifeStreamEngine | None = None,
        adaptive: bool = False,
        adapt_after_ticks: int = ADAPT_MIN_TICKS,
        profile_path=None,
        subplan_sharing: bool = False,
    ) -> None:
        if adapt_after_ticks < 1:
            raise ExecutionError(
                f"adapt_after_ticks must be positive, got {adapt_after_ticks}"
            )
        if engine is None:
            kwargs = {}
            if optimization_level is not None:
                kwargs["optimization_level"] = optimization_level
            engine = LifeStreamEngine(
                window_size=window_size,
                targeted=targeted,
                backend=backend,
                plan_cache=PlanCache(
                    capacity=max_cached_plans, profile_path=profile_path
                ),
                **kwargs,
            )
        elif engine.plan_cache is None:
            engine.plan_cache = PlanCache(
                capacity=max_cached_plans, profile_path=profile_path
            )
        self.engine = engine
        self.adaptive = adaptive
        self.adapt_after_ticks = int(adapt_after_ticks)
        #: Detect tenants whose queries share a structurally identical
        #: prefix sub-DAG over the *same source objects* and execute that
        #: prefix once per batch instead of once per tenant (see
        #: :mod:`repro.serve.subplan`).  Groups form lazily at the first
        #: pump/poll/finish after the candidate sessions open and before
        #: they tick; output stays bit-identical to unshared serving.
        self.subplan_sharing = subplan_sharing
        self._clients: dict[str, ClientRecord] = {}
        self._groups: list[SharedPrefixGroup] = []
        self._grouped: dict[str, SharedPrefixGroup] = {}
        self._pumps = 0

    # -- lifecycle ---------------------------------------------------------

    def open(
        self,
        client_id: str,
        query,
        sources,
        targeted: bool | None = None,
        checkpoint=None,
    ) -> StreamingSession:
        """Open a session for *client_id* over its own *sources*.

        Pass ``checkpoint=`` (a dict from
        :meth:`StreamingSession.checkpoint` or a path to a pickled one) to
        resume a previous session's stream position and carries — this is
        how the ingest worker pool restores a dead worker's clients on a
        peer.
        """
        if client_id in self._clients:
            raise ExecutionError(
                f"client {client_id!r} already has an open session; close it "
                f"before opening another"
            )
        hits_before = self.engine.plan_cache.stats.hits
        compiled = self.engine.compile(query, sources)
        plan_errors = [
            d for d in compiled.plan.diagnostics if d.severity == "error"
        ]
        if plan_errors:
            raise ExecutionError(
                f"refusing to serve client {client_id!r}: plan verification "
                f"found {len(plan_errors)} error(s): "
                + "; ".join(d.render() for d in plan_errors)
            )
        session = compiled.open_session(targeted=targeted, checkpoint=checkpoint)
        # The engine already computed the structural signature for its cache
        # lookup; reuse it (recomputing would re-fingerprint every callable
        # in the query).  It is None exactly when the query binds concrete
        # sources — such clients are uncacheable and never adapt.  The
        # digest (the ProfileStore key) is only derived in adaptive mode:
        # a static service never reads profiles, so hashing a deep
        # signature per open() would be pure overhead on its hot path.
        signature = self.engine.last_signature
        profile_key = None
        if self.adaptive and signature is not None:
            profile_key = signature_digest(signature)
        self._clients[client_id] = ClientRecord(
            client_id=client_id,
            session=session,
            compiled=compiled,
            cache_hit=self.engine.plan_cache.stats.hits > hits_before,
            signature=signature,
            profile_key=profile_key,
            query=query,
            sources=dict(sources or {}),
        )
        return session

    def session(self, client_id: str) -> StreamingSession:
        """The open session of *client_id*."""
        return self._record(client_id).session

    def compiled_query(self, client_id: str):
        """The :class:`~repro.core.engine.CompiledQuery` owned by *client_id*."""
        return self._record(client_id).compiled

    def close(self, client_id: str) -> None:
        """Close *client_id*'s session and forget the client."""
        record = self._clients.pop(client_id, None)
        if record is not None:
            record.session.close()
            group = self._grouped.pop(client_id, None)
            if group is not None:
                group.forget(client_id)
                if not group.feeds:
                    group.close()
                    self._groups.remove(group)

    def close_all(self) -> None:
        """Close every client session."""
        for client_id in list(self._clients):
            self.close(client_id)

    def __enter__(self) -> "StreamingService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close_all()

    def __len__(self) -> int:
        return len(self._clients)

    @property
    def client_ids(self) -> list[str]:
        """Ids of the currently open clients, in open order."""
        return list(self._clients)

    @property
    def cache_stats(self) -> PlanCacheStats:
        """Hit/miss/eviction counters of the shared plan cache."""
        return self.engine.plan_cache.stats

    @property
    def pumps(self) -> int:
        """Number of :meth:`pump` batches served so far."""
        return self._pumps

    @property
    def sharing_groups(self) -> list[dict]:
        """One summary dict per active sub-plan sharing group."""
        return [
            {
                "group_id": group.group_id,
                "feed": group.feed_name,
                "members": group.member_ids,
                "prefix_ticks": len(group.prefix_session.ticks),
                "operator_count": group.operator_count,
            }
            for group in self._groups
        ]

    # -- the batch tick loop -----------------------------------------------

    def pump(self, watermarks) -> ServicePumpReport:
        """Advance a batch of sessions and run their newly-ready windows.

        *watermarks* is either one watermark for every open client or a
        ``{client_id: watermark}`` mapping for a subset.  Sessions with
        genuinely new data (watermark ahead of the session's clock) tick
        first, ordered cheapest-expected-tick first from their accumulated
        :class:`TickStats`; idle re-announcements tick last (no-ops).

        The batch is validated up front — an unknown client id or a non-int
        watermark raises :class:`ValueError` naming the offending key,
        instead of failing deep inside the tick loop; an empty mapping is a
        cheap no-op.
        """
        if isinstance(watermarks, dict):
            batch = dict(watermarks)
            if not batch:
                self._pumps += 1
                return ServicePumpReport()
            unknown = set(batch) - set(self._clients)
            if unknown:
                raise ValueError(
                    f"pump() was given unknown client(s) {sorted(unknown)}; "
                    f"open sessions: {sorted(self._clients)}"
                )
            for client_id, watermark in batch.items():
                _require_int_watermark(client_id, watermark)
        else:
            _require_int_watermark(None, watermarks)
            batch = {
                client_id: watermarks
                for client_id, record in self._clients.items()
                if not record.session.finished
            }
        report = ServicePumpReport()
        self._maybe_form_groups()
        grouped = self._tick_groups(batch, report)
        for client_id in self._schedule(batch):
            # A grouped member's origin sources were already advanced by its
            # group (shared objects, forward-only), so its tail ticks by
            # poll; advancing would trip the feed's finality watermark.
            watermark = None if client_id in grouped else batch[client_id]
            self._tick_client(client_id, report, watermark=watermark)
        self._pumps += 1
        return report

    def poll(self, client_ids=None) -> ServicePumpReport:
        """Tick sessions whose sources were advanced *externally* (push path).

        Where :meth:`pump` hand-delivers one watermark per client and
        advances every replayed source to it, ``poll`` trusts that the
        sources already moved — the ingest gateway appends pushed samples
        straight into each client's :class:`~repro.core.sources.PushSource`,
        which advances per-source watermarks as a side effect, and then
        polls the affected sessions.  This matters for multi-stream clients
        whose streams advance at different rates: pumping the minimum
        watermark would trip the regression guard on the faster stream.

        *client_ids* is an iterable of clients to tick (default: every open,
        unfinished client).  Unknown ids raise :class:`ValueError`, like
        :meth:`pump`; an empty batch is a cheap no-op.  The batch runs
        cheapest-expected-tick first and feeds the same adaptive
        recompilation loop as ``pump``.
        """
        if client_ids is None:
            batch = [
                client_id
                for client_id, record in self._clients.items()
                if not record.session.finished
            ]
        else:
            batch = list(client_ids)
            unknown = set(batch) - set(self._clients)
            if unknown:
                raise ValueError(
                    f"poll() was given unknown client(s) {sorted(unknown)}; "
                    f"open sessions: {sorted(self._clients)}"
                )
        report = ServicePumpReport()
        self._maybe_form_groups()
        self._tick_groups({client_id: None for client_id in batch}, report)
        for client_id in sorted(batch, key=self._expected_cost):
            self._tick_client(client_id, report, watermark=None)
        self._pumps += 1
        return report

    def _tick_client(
        self, client_id: str, report: ServicePumpReport, watermark=None
    ) -> None:
        """Advance (or poll) one client and fold the tick into *report*."""
        record = self._clients[client_id]
        if watermark is None:
            stats = record.session.poll()
        else:
            stats = record.session.advance(watermark)
        report.order.append(client_id)
        report.ticks[client_id] = stats
        self._observe(record, stats)
        if self.adaptive and self._maybe_adapt(record):
            report.swapped.append(client_id)

    def _observe(self, record: ClientRecord, stats: TickStats) -> None:
        """Fold one tick into the client's shared signature profile."""
        if record.profile_key is not None:
            self.engine.plan_cache.profiles.observe(record.profile_key, stats)
            record.ticks_since_check += 1

    def _schedule(self, batch: dict[str, int]) -> list[str]:
        """Tick order for *batch*: ready sessions first, cheapest first."""
        ready: list[str] = []
        idle: list[str] = []
        for client_id, watermark in batch.items():
            current = self._record(client_id).session.watermark
            if current is None or watermark > current:
                ready.append(client_id)
            else:
                idle.append(client_id)
        ready.sort(key=self._expected_cost)
        idle.sort(key=self._expected_cost)
        return ready + idle

    def _expected_cost(self, client_id: str) -> float:
        """Shortest-job-first key: mean elapsed seconds of the session's
        recent ticks, or :data:`COLD_START_EXPECTED_SECONDS` when it has no
        history yet (so cold sessions run first and get profiled)."""
        ticks = self._clients[client_id].session.recent_ticks(PROFILE_WINDOW)
        if not ticks:
            return COLD_START_EXPECTED_SECONDS
        return sum(t.elapsed_seconds for t in ticks) / len(ticks)

    def finish(self) -> ServicePumpReport:
        """Drain every open session's deferred tail (see ``Session.finish``)."""
        report = ServicePumpReport()
        self._maybe_form_groups()
        for group in self._groups:
            # Prefixes drain before their members: the members' finish must
            # see the feeds' full final coverage.
            report.prefix_ticks[group.group_id] = group.finish_prefix()
        for client_id in sorted(self._clients, key=self._expected_cost):
            record = self._clients[client_id]
            stats = record.session.finish()
            report.order.append(client_id)
            report.ticks[client_id] = stats
            self._observe(record, stats)
        self._pumps += 1
        return report

    # -- cross-tenant sub-plan sharing ---------------------------------------

    def _tick_groups(self, batch: dict, report: ServicePumpReport) -> set[str]:
        """Advance and tick the shared prefixes whose members are in *batch*.

        For each group with at least one batch member: the batch members'
        origin replay sources advance to their watermarks (forward-only —
        the sources are shared objects, so the max wins, exactly as when
        tenants hand-share sources in unshared serving), the prefix session
        ticks exactly once, and the emitted delta plus the finality
        watermark fan out to every member feed.  Returns the batch members
        that belong to a group (their sessions then tick by ``poll``).
        """
        grouped: set[str] = set()
        for group in self._groups:
            members = [cid for cid in group.member_ids if cid in batch]
            if not members:
                continue
            grouped.update(members)
            if group.prefix_session.finished:
                continue
            for client_id in members:
                watermark = batch[client_id]
                if watermark is not None:
                    group.advance_member_sources(client_id, watermark)
            report.prefix_ticks[group.group_id] = group.tick_prefix()
        return grouped

    def _maybe_form_groups(self) -> None:
        """Group fresh clients that share a prefix sub-DAG (lazy, idempotent).

        Only clients whose sessions have not ticked yet are candidates: a
        mid-stream rewrite would have to replay the prefix up to the
        member's frontier.  Clients that stay ungrouped (or open later) are
        reconsidered on every subsequent batch until they first tick.
        """
        if not self.subplan_sharing:
            return
        candidates = []
        for client_id, record in self._clients.items():
            session = record.session
            if (
                client_id in self._grouped
                or session.finished
                or session.frontier is not None
                or session.ticks
                or record.query is None
            ):
                continue
            candidates.append((client_id, record.query, record.sources))
        if len(candidates) < MIN_GROUP_SIZE:
            return
        for plan in plan_sharing(candidates):
            group = self._build_group(plan)
            if group is not None:
                self._groups.append(group)
                for client_id in group.member_ids:
                    self._grouped[client_id] = group

    def _build_group(self, plan: SharedPrefixPlan) -> SharedPrefixGroup | None:
        """Compile one sharing group and switch its members onto tails.

        Everything fallible (prefix compile, per-member rewrite + tail
        compile) runs before any member session is touched, so a failure
        leaves every client serving unshared exactly as before — sharing is
        an optimisation and must never take a tenant down.
        """
        engine = self.engine
        first = self._clients[plan.members[0]]
        staged = []
        try:
            prefix_compiled = engine.compile(Query(plan.prefix_spec), first.sources)
            if any(
                d.severity == "error" for d in prefix_compiled.plan.diagnostics
            ):
                return None
            descriptor = prefix_compiled.plan.sink.descriptor
            feed_spec = Query.source(
                plan.feed_name, period=descriptor.period, offset=descriptor.offset
            ).spec
            for client_id in plan.members:
                record = self._clients[client_id]
                fingerprints, _, _ = prefix_fingerprints(record.query, record.sources)
                tail_query = rewrite_tail(
                    record.query, fingerprints, plan.fingerprint, feed_spec
                )
                feed = SharedFeedSource(descriptor)
                tail_sources = dict(record.sources or {})
                tail_sources[plan.feed_name] = feed
                tail_compiled = engine.compile(tail_query, tail_sources)
                if any(
                    d.severity == "error" for d in tail_compiled.plan.diagnostics
                ):
                    return None
                staged.append(
                    (record, tail_query, tail_sources, feed, tail_compiled,
                     engine.last_signature)
                )
            prefix_session = prefix_compiled.open_session(targeted=True)
        except Exception:
            # Any compile/rewrite failure falls back to unshared serving.
            return None
        feeds: dict[str, SharedFeedSource] = {}
        origins: dict[str, list] = {}
        for record, tail_query, tail_sources, feed, tail_compiled, signature in staged:
            targeted = record.session.targeted
            record.session.close()
            record.session = tail_compiled.open_session(targeted=targeted)
            record.compiled = tail_compiled
            record.query = tail_query
            record.sources = tail_sources
            # The tail signature replaces the full-plan one so the adaptive
            # loop profiles and recompiles what actually runs per tenant.
            record.signature = signature
            record.profile_key = (
                signature_digest(signature)
                if self.adaptive and signature is not None
                else None
            )
            record.ticks_since_check = 0
            feeds[record.client_id] = feed
            origins[record.client_id] = [
                source
                for name, source in tail_sources.items()
                if name != plan.feed_name and isinstance(source, ReplaySource)
            ]
        return SharedPrefixGroup(
            group_id=f"shared:{signature_digest(plan.fingerprint)}",
            fingerprint=plan.fingerprint,
            feed_name=plan.feed_name,
            prefix_session=prefix_session,
            prefix_compiled=prefix_compiled,
            feeds=feeds,
            member_origins=origins,
            operator_count=plan.operator_count,
        )

    # -- adaptive recompilation ----------------------------------------------

    @staticmethod
    def _backend_config(backend) -> tuple:
        """Comparable identity of a backend choice (name + tuning knobs)."""
        if backend is None:
            return ("serial",)
        name = getattr(backend, "name", "serial")
        if name == "batched":
            return (name, backend.batch_windows)
        if name == "vectorized":
            return (name, backend.max_run_windows)
        return (name,)

    def _maybe_adapt(self, record: ClientRecord) -> bool:
        """Recompile and hot-swap *record*'s session if its signature profile
        recommends a different configuration.  Returns True on a swap.

        Runs at most every :attr:`adapt_after_ticks` observed ticks per
        client, and only once the merged profile holds at least that many
        ticks.  A recommendation matching the current configuration is a
        no-op (no recompile, no swap); a misaligned swap (the frontier does
        not land on the new plan's window grid — e.g. onto a batched twin
        mid-batch) is abandoned and retried at a later boundary.
        """
        if (
            record.profile_key is None
            or record.session.finished
            or record.ticks_since_check < self.adapt_after_ticks
        ):
            return False
        record.ticks_since_check = 0
        profile = self.engine.plan_cache.profiles.get(record.profile_key)
        if profile is None or profile.ticks < self.adapt_after_ticks:
            return False
        targeted = record.session.targeted
        backend, reason = recommend_backend(
            record.compiled.plan, targeted=targeted, profile=profile
        )
        hints = replace(profile.hints(), backend=backend.name)
        current_hints = record.compiled.plan.hints
        current_cut = None if current_hints is None else current_hints.max_fusion_length
        # Of the hint fields, only the fusion cut changes the compiled plan
        # itself — batch width and the run cap live on the backend object.
        # Swap only when the execution configuration genuinely changes; a
        # recommendation matching the status quo must not churn sessions.
        if (
            self._backend_config(backend)
            == self._backend_config(record.session.backend)
            and hints.max_fusion_length == current_cut
        ):
            return False
        engine = self.engine
        template = engine.plan_cache.get_or_compile(
            (record.signature, hints.cache_key()),
            lambda: compile_plan(
                record.query,
                sources=record.sources,
                window_size=engine.window_size,
                tracer=engine.tracer,
                optimization_level=engine.optimization_level,
                hints=hints,
            ),
        )
        plan = template.instantiate(record.sources, strict=False)
        compiled = CompiledQuery(plan, targeted=targeted, backend=backend)
        try:
            new_session = record.session.swap_plan(
                compiled, targeted=targeted, backend=backend
            )
        except ExecutionError:
            # Misaligned boundary (or a defensive state mismatch): keep the
            # current session and re-evaluate after the next check window.
            return False
        record.session = new_session
        record.compiled = compiled
        record.swaps += 1
        record.last_adapt_reason = reason
        return True

    # -- results -------------------------------------------------------------

    def result(self, client_id: str) -> StreamResult:
        """Everything *client_id*'s session has emitted so far."""
        return self._record(client_id).session.result()

    def results(self) -> dict[str, StreamResult]:
        """Per-client results for every open client."""
        return {client_id: self.result(client_id) for client_id in self._clients}

    def _record(self, client_id: str) -> ClientRecord:
        record = self._clients.get(client_id)
        if record is None:
            raise ExecutionError(
                f"no open session for client {client_id!r} "
                f"(open: {sorted(self._clients)})"
            )
        return record

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<StreamingService {len(self._clients)} client(s), "
            f"{self.cache_stats.hits} cache hit(s), {self._pumps} pump(s)>"
        )
